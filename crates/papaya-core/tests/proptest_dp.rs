//! Property tests for the DP pipeline (clipping, noise, accounting).
//!
//! The privacy guarantee rests on four mechanical facts, each checked here
//! over random inputs: (1) no clipped update ever exceeds the L2 bound —
//! clipping is what gives a release finite sensitivity; (2) clipping is the
//! identity inside the bound — utility is only spent when the guarantee
//! needs it; (3) the noise stream is bit-deterministic per seed — the
//! simulator's reproducibility contract extends to noised runs; and (4) the
//! accountant's ε is monotone in releases and decreasing in the noise
//! multiplier — more releases can never claim *more* privacy, and more
//! noise can never cost more.

use papaya_core::aggregator::Aggregator;
use papaya_core::client::ClientUpdate;
use papaya_core::dp::{DpAggregator, DpConfig, PrivacyAccountant};
use papaya_core::fedbuff::FedBuffAggregator;
use papaya_core::staleness::StalenessWeighting;
use papaya_nn::params::ParamVec;
use proptest::prelude::*;

fn update(id: usize, delta: Vec<f32>, examples: usize) -> ClientUpdate {
    ClientUpdate {
        client_id: id,
        delta: ParamVec::from_vec(delta),
        num_examples: examples,
        start_version: 0,
        train_loss: 0.0,
    }
}

/// A goal-1 DP FedBuff aggregator: every accepted update is released alone,
/// so the release *is* the (clipped, optionally noised) update.
fn dp_goal_one(config: DpConfig, seed: u64) -> DpAggregator {
    DpAggregator::new(
        Box::new(FedBuffAggregator::new(
            1,
            StalenessWeighting::Constant,
            None,
        )),
        config,
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the input vector, the released (zero-noise, goal-1) delta
    /// never exceeds the clip bound beyond `f32` rounding slack.
    #[test]
    fn clipped_updates_never_exceed_the_bound(
        values in proptest::collection::vec(-1000.0f32..1000.0, 1..32),
        clip_bound in 0.01f64..100.0,
    ) {
        let mut agg = dp_goal_one(DpConfig::new(clip_bound, 0.0), 1);
        agg.accumulate(update(0, values, 10), 0, 0.0);
        let released = agg.take(0.0).expect("goal 1 releases immediately");
        let norm = released.norm() as f64;
        prop_assert!(
            norm <= clip_bound * (1.0 + 1e-5),
            "norm {norm} exceeds bound {clip_bound}"
        );
    }

    /// An update already inside the bound passes through bit-exact (no
    /// rescaling by 1.0, no rounding): the DP release equals the clear
    /// release bitwise when no clipping or noise applies.
    #[test]
    fn clipping_is_identity_inside_the_bound(
        values in proptest::collection::vec(-10.0f32..10.0, 1..32),
    ) {
        let norm = values.iter().map(|v| (*v as f64).powi(2)).sum::<f64>().sqrt();
        let clip_bound = norm + 1.0;
        let mut clear = FedBuffAggregator::new(1, StalenessWeighting::Constant, None);
        let mut dp = dp_goal_one(DpConfig::new(clip_bound, 0.0), 2);
        clear.accumulate(update(0, values.clone(), 10), 0, 0.0);
        dp.accumulate(update(0, values, 10), 0, 0.0);
        let clear_out = clear.take(0.0).unwrap();
        let dp_out = dp.take(0.0).unwrap();
        prop_assert_eq!(clear_out.as_slice(), dp_out.as_slice());
        prop_assert_eq!(dp.telemetry().clipped_updates, 0);
    }

    /// The noise stream is a pure function of the seed: equal seeds give
    /// bit-identical noised releases, and the released delta actually moved
    /// away from the clear value (the noise is not a no-op).
    #[test]
    fn noise_is_bit_deterministic_per_seed(
        values in proptest::collection::vec(-5.0f32..5.0, 1..16),
        seed in 0u64..1_000_000,
        noise_multiplier in 0.1f64..5.0,
    ) {
        let run = |seed: u64| {
            let mut agg = dp_goal_one(DpConfig::new(10.0, noise_multiplier), seed);
            agg.accumulate(update(0, values.clone(), 10), 0, 0.0);
            agg.take(0.0).unwrap()
        };
        let (a, b) = (run(seed), run(seed));
        prop_assert_eq!(a.as_slice(), b.as_slice(), "same seed diverged");
        let other = run(seed ^ 0xFFFF_FFFF);
        prop_assert_ne!(a.as_slice(), other.as_slice(), "seed ignored");
    }

    /// ε is monotone non-decreasing in the number of releases, for any
    /// sampling rate and positive noise.
    #[test]
    fn accountant_epsilon_is_monotone_in_releases(
        sampling_rate in 0.001f64..=1.0,
        noise_multiplier in 0.3f64..5.0,
        delta_exp in 3u32..9,
        steps in 1usize..50,
    ) {
        let delta = 10f64.powi(-(delta_exp as i32));
        let mut accountant = PrivacyAccountant::new(sampling_rate, noise_multiplier);
        let mut previous = accountant.epsilon(delta);
        prop_assert_eq!(previous, 0.0);
        for _ in 0..steps {
            accountant.record_release();
            let epsilon = accountant.epsilon(delta);
            prop_assert!(
                epsilon >= previous,
                "epsilon decreased: {previous} -> {epsilon}"
            );
            prop_assert!(epsilon.is_finite() && epsilon > 0.0);
            previous = epsilon;
        }
    }

    /// More noise can never cost more privacy: ε is non-increasing in the
    /// noise multiplier at a fixed release count.
    #[test]
    fn accountant_epsilon_decreases_with_noise(
        sampling_rate in 0.001f64..=1.0,
        noise_low in 0.3f64..3.0,
        noise_gap in 0.1f64..3.0,
        releases in 1u64..200,
    ) {
        let delta = 1e-5;
        let epsilon_at = |z: f64| {
            let mut accountant = PrivacyAccountant::new(sampling_rate, z);
            for _ in 0..releases {
                accountant.record_release();
            }
            accountant.epsilon(delta)
        };
        let (low, high) = (epsilon_at(noise_low), epsilon_at(noise_low + noise_gap));
        prop_assert!(
            high <= low,
            "more noise cost more privacy: z={noise_low} -> {low}, \
             z={} -> {high}",
            noise_low + noise_gap
        );
    }
}
