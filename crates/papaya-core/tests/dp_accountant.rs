//! Golden tests for the privacy accountant.
//!
//! Two independent anchors pin the accountant's numerics:
//!
//! 1. **Closed-form analytic values** for the unsampled Gaussian mechanism
//!    (`q = 1`), where the Rényi curve is exactly `T·α/(2z²)` for all real
//!    `α > 1` and the optimal conversion is
//!    `ε(δ) = a + 2·sqrt(a·ln(1/δ))` with `a = T/(2z²)` — each test
//!    recomputes the formula from scratch and demands agreement to 1e-6.
//! 2. **Reference table entries** for the subsampled mechanism, computed
//!    with an independent (Python, `math.lgamma`-based) implementation of
//!    the published integer-order bound for the sampled Gaussian mechanism
//!    (Mironov, Talwar, Zhang 2019) over the same order grid.  The entry
//!    `(q=0.01, z=1.0, T=1000, δ=1e-5) → ε ≈ 2.538` is the widely-quoted
//!    DP-SGD textbook operating point.

use papaya_core::dp::PrivacyAccountant;

fn epsilon_after(q: f64, z: f64, releases: u64, delta: f64) -> f64 {
    let mut accountant = PrivacyAccountant::new(q, z);
    for _ in 0..releases {
        accountant.record_release();
    }
    accountant.epsilon(delta)
}

/// The analytic optimal RDP conversion for the unsampled Gaussian
/// mechanism, derived independently of the accountant's code path:
/// minimize `α·a + ln(1/δ)/(α−1)` over real `α > 1` at `a = T/(2z²)`.
fn analytic_gaussian_epsilon(z: f64, releases: u64, delta: f64) -> f64 {
    let a = releases as f64 / (2.0 * z * z);
    let log_inv_delta = (1.0 / delta).ln();
    a + 2.0 * (a * log_inv_delta).sqrt()
}

#[test]
fn unsampled_gaussian_matches_the_closed_form() {
    for (z, releases, delta) in [
        (1.1, 100u64, 1e-5),
        (2.0, 1, 1e-6),
        (0.5, 10, 1e-5),
        (4.0, 10_000, 1e-7),
        (1.0, 1, 1e-9),
    ] {
        let got = epsilon_after(1.0, z, releases, delta);
        let want = analytic_gaussian_epsilon(z, releases, delta);
        assert!(
            (got - want).abs() < 1e-6,
            "q=1 z={z} T={releases} delta={delta}: {got} vs analytic {want}"
        );
    }
}

#[test]
fn unsampled_golden_values() {
    // Spot values of the closed form, as numbers (guarding the formula
    // itself against regression, not just internal consistency).
    let cases = [
        (1.1f64, 100u64, 1e-5f64, 84.945_276_887_660_f64),
        (2.0, 1, 1e-6, 2.753_260_884_878),
    ];
    for (z, releases, delta, want) in cases {
        let got = epsilon_after(1.0, z, releases, delta);
        assert!(
            (got - want).abs() < 1e-6,
            "q=1 z={z} T={releases} delta={delta}: {got} vs golden {want}"
        );
    }
}

#[test]
fn subsampled_golden_values_match_the_reference_implementation() {
    // Computed with an independent Python implementation of the
    // integer-order sampled-Gaussian RDP bound (lgamma-based binomial,
    // log-sum-exp) over the same order grid; tolerance 1e-6 absolute.
    let cases = [
        // (q, z, T, delta, epsilon)
        (0.01f64, 1.0f64, 1000u64, 1e-5f64, 2.538_347_545_459_f64),
        (0.02, 1.1, 5000, 1e-6, 10.142_281_642_623),
        (0.05, 2.0, 10_000, 1e-5, 16.561_310_325_279),
        (0.001, 0.8, 20_000, 1e-7, 2.656_731_073_976),
        (0.01, 1.0, 1, 1e-5, 1.317_484_359_447),
    ];
    for (q, z, releases, delta, want) in cases {
        let got = epsilon_after(q, z, releases, delta);
        assert!(
            (got - want).abs() < 1e-6,
            "q={q} z={z} T={releases} delta={delta}: {got} vs reference {want}"
        );
    }
}

#[test]
fn subsampled_epsilon_never_exceeds_the_unsampled_epsilon() {
    // Privacy amplification by subsampling: for every q < 1 the accountant
    // must claim at most the q = 1 loss (here across a z sweep at a fixed
    // release count).
    for z in [0.6, 1.0, 2.0] {
        let full = epsilon_after(1.0, z, 500, 1e-5);
        for q in [0.9, 0.5, 0.1, 0.01, 0.001] {
            let sampled = epsilon_after(q, z, 500, 1e-5);
            assert!(
                sampled <= full + 1e-9,
                "q={q} z={z}: {sampled} > unsampled {full}"
            );
        }
    }
}

#[test]
fn epsilon_scales_sublinearly_but_monotonically_in_composition() {
    // Strong composition: T releases cost more than 1 but far less than
    // T times the single-release ε in the small-q regime.
    let one = epsilon_after(0.01, 1.0, 1, 1e-5);
    let thousand = epsilon_after(0.01, 1.0, 1000, 1e-5);
    assert!(thousand > one);
    assert!(
        thousand < 100.0 * one,
        "composition lost the moments-accounting advantage: {thousand} vs {one} per release"
    );
}
