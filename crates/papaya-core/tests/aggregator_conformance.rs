//! Behavioral conformance suite for the [`Aggregator`] protocol.
//!
//! Every aggregation strategy — FedBuff, synchronous rounds, the timed
//! hybrid, and any future addition — must satisfy the same contract the
//! runtime relies on: goal/readiness invariants, weighted-average releases
//! (including the all-zero-weight edge case), reset-after-crash semantics
//! with preserved lifetime counters, and staleness rejection wherever a
//! bound is configured.  Each check is written once against
//! `&mut dyn Aggregator` and run against all registered implementations —
//! including a [`SecureAggregator`]-wrapped variant of each strategy (the
//! secure decorator alters the numerics only to fixed-point precision), a
//! [`DpAggregator`]-wrapped variant (noiseless, with an unreachable clip
//! bound — DP alters the numerics only when clipping or noise actually
//! bind), and the full `dp+secure+fedbuff` stack; all must pass the whole
//! suite unchanged, because neither decorator touches protocol behavior.

use papaya_core::aggregator::{AccumulateOutcome, Aggregator};
use papaya_core::client::ClientUpdate;
use papaya_core::staleness::StalenessWeighting;
use papaya_core::{
    DpAggregator, DpConfig, FedBuffAggregator, SecureAggregator, SyncRoundAggregator,
    TimedHybridAggregator,
};
use papaya_nn::params::ParamVec;

const GOAL: usize = 3;

/// A DP configuration that must not perturb the conformance numerics: zero
/// noise and a clip bound far above any delta the suite folds.
fn conformance_dp() -> DpConfig {
    DpConfig::new(1e6, 0.0)
}

/// One factory per clear implementation, all configured with the same goal
/// and (where supported) the same staleness bound.
fn clear_implementations() -> Vec<(&'static str, Box<dyn Aggregator>)> {
    vec![
        (
            "fedbuff",
            Box::new(FedBuffAggregator::new(
                GOAL,
                StalenessWeighting::Constant,
                Some(5),
            )),
        ),
        ("sync_round", Box::new(SyncRoundAggregator::new(GOAL))),
        (
            "timed_hybrid",
            Box::new(TimedHybridAggregator::new(
                GOAL,
                StalenessWeighting::Constant,
                Some(5),
                1_000_000.0, // deadline far away: behave like FedBuff here
            )),
        ),
    ]
}

/// Every clear strategy plus its secure-wrapped, dp-wrapped, and
/// dp-over-secure counterparts.  The secure variants use the threshold the
/// release pattern supports (the goal for strategies that always release
/// full buffers, 1 for the deadline strategy), matching
/// `papaya_core::secure::recommended_threshold`.
fn implementations() -> Vec<(String, Box<dyn Aggregator>)> {
    let mut all: Vec<(String, Box<dyn Aggregator>)> = Vec::new();
    for (name, agg) in clear_implementations() {
        all.push((name.to_string(), agg));
    }
    for (name, agg) in clear_implementations() {
        let threshold = if name == "timed_hybrid" { 1 } else { GOAL };
        all.push((
            format!("secure+{name}"),
            Box::new(SecureAggregator::new(agg, 2, threshold, 0xC0DE)),
        ));
    }
    for (name, agg) in clear_implementations() {
        all.push((
            format!("dp+{name}"),
            Box::new(DpAggregator::new(agg, conformance_dp(), 0xD1FF)),
        ));
    }
    // The full privacy stack: clipping before masking, accounting on the
    // decoded release.
    let (name, agg) = clear_implementations().swap_remove(0);
    all.push((
        format!("dp+secure+{name}"),
        Box::new(DpAggregator::new(
            Box::new(SecureAggregator::new(agg, 2, GOAL, 0xC0DE)),
            conformance_dp(),
            0xD1FF,
        )),
    ));
    all
}

fn update(id: usize, value: f32, examples: usize, start_version: u64) -> ClientUpdate {
    ClientUpdate {
        client_id: id,
        delta: ParamVec::from_vec(vec![value, -value]),
        num_examples: examples,
        start_version,
        train_loss: 0.0,
    }
}

/// Fills the buffer with `n` fresh unit-weight updates of the given value.
fn fill(agg: &mut dyn Aggregator, n: usize, value: f32) {
    for i in 0..n {
        let outcome = agg.accumulate(update(i, value, 10, 0), 0, i as f64);
        assert!(outcome.accepted(), "fresh update {i} was not accepted");
    }
}

#[test]
fn goal_and_readiness_invariants() {
    for (name, mut agg) in implementations() {
        assert_eq!(agg.goal(), GOAL, "{name}");
        assert_eq!(agg.buffered(), 0, "{name}");
        assert!(!agg.is_ready(0.0), "{name}: empty buffer must not be ready");
        assert!(
            agg.take(0.0).is_none(),
            "{name}: take before ready must be None"
        );

        fill(agg.as_mut(), GOAL - 1, 1.0);
        assert_eq!(agg.buffered(), GOAL - 1, "{name}");
        assert!(!agg.is_ready(2.0), "{name}: one short of goal");
        assert!(agg.take(2.0).is_none(), "{name}");

        fill(agg.as_mut(), 1, 1.0);
        assert!(agg.is_ready(2.0), "{name}: goal met must be ready");
        let released = agg.take(2.0).expect("ready aggregator must release");
        assert_eq!(released.len(), 2, "{name}");
        assert_eq!(agg.buffered(), 0, "{name}: release empties the buffer");
        assert!(!agg.is_ready(2.0), "{name}: drained buffer is not ready");
        assert!(agg.take(2.0).is_none(), "{name}");
    }
}

#[test]
fn release_is_the_weighted_average() {
    for (name, mut agg) in implementations() {
        // Weights 10/10/20 over values 1, 1, 4 → (10 + 10 + 80) / 40 = 2.5.
        agg.accumulate(update(0, 1.0, 10, 0), 0, 0.0);
        agg.accumulate(update(1, 1.0, 10, 0), 0, 0.0);
        agg.accumulate(update(2, 4.0, 20, 0), 0, 0.0);
        let out = agg.take(0.0).unwrap();
        assert!(
            (out.as_slice()[0] - 2.5).abs() < 1e-6,
            "{name}: got {}",
            out.as_slice()[0]
        );
    }
}

#[test]
fn all_zero_weight_release_is_a_zero_delta() {
    for (name, mut agg) in implementations() {
        // Every update trained on zero examples: combined weight is zero, so
        // the release must be a no-op delta, not the unscaled raw sum.
        for i in 0..GOAL {
            agg.accumulate(update(i, 100.0, 0, 0), 0, 0.0);
        }
        assert!(agg.is_ready(0.0), "{name}");
        let out = agg.take(0.0).unwrap();
        assert_eq!(out.as_slice(), &[0.0, 0.0], "{name}");

        // The aggregator is reusable with normal weights afterwards.
        fill(agg.as_mut(), GOAL, 2.0);
        let next = agg.take(GOAL as f64).unwrap();
        assert!((next.as_slice()[0] - 2.0).abs() < 1e-6, "{name}");
    }
}

#[test]
fn reset_after_crash_drops_buffer_and_preserves_stats() {
    for (name, mut agg) in implementations() {
        fill(agg.as_mut(), GOAL - 1, 3.0);
        assert_eq!(
            agg.reset(),
            GOAL - 1,
            "{name}: reset must report dropped updates"
        );
        assert_eq!(agg.buffered(), 0, "{name}");
        assert!(!agg.is_ready(1e12), "{name}: reset buffer is never ready");
        assert!(agg.take(1e12).is_none(), "{name}");
        assert_eq!(
            agg.stats().accepted,
            (GOAL - 1) as u64,
            "{name}: lifetime counters must survive reset"
        );

        // The next goal starts from an empty buffer: GOAL fresh updates are
        // required again, and the dropped ones do not leak into the average.
        fill(agg.as_mut(), GOAL - 1, 9.0);
        assert!(!agg.is_ready(0.0), "{name}: old progress leaked past reset");
        fill(agg.as_mut(), 1, 9.0);
        let out = agg.take(0.0).unwrap();
        assert!((out.as_slice()[0] - 9.0).abs() < 1e-6, "{name}");
        assert_eq!(agg.reset(), 0, "{name}: reset on empty buffer drops 0");
    }
}

#[test]
fn staleness_rejection_where_applicable() {
    for (name, mut agg) in implementations() {
        let Some(bound) = agg.max_staleness() else {
            // Strategies without a staleness bound (synchronous rounds) must
            // accept arbitrarily old start versions.
            let outcome = agg.accumulate(update(0, 1.0, 10, 0), 1_000, 0.0);
            assert!(outcome.accepted(), "{name}");
            continue;
        };
        let stale_version = bound + 1;
        let outcome = agg.accumulate(update(0, 1.0, 10, 0), stale_version, 0.0);
        assert_eq!(
            outcome,
            AccumulateOutcome::RejectedStale {
                staleness: stale_version,
                max_staleness: bound,
            },
            "{name}"
        );
        assert_eq!(agg.buffered(), 0, "{name}: rejected update must not buffer");
        assert_eq!(agg.stats().rejected_stale, 1, "{name}");

        // An update exactly at the bound is still accepted.
        let outcome = agg.accumulate(update(1, 1.0, 10, 0), bound, 0.0);
        assert_eq!(
            outcome,
            AccumulateOutcome::Accepted { staleness: bound },
            "{name}"
        );
        assert_eq!(agg.stats().max_observed_staleness, bound, "{name}");
    }
}

#[test]
fn stats_accumulate_across_releases() {
    for (name, mut agg) in implementations() {
        fill(agg.as_mut(), GOAL, 1.0);
        agg.take(0.0).unwrap();
        fill(agg.as_mut(), GOAL, 2.0);
        agg.take(0.0).unwrap();
        assert_eq!(agg.stats().accepted, 2 * GOAL as u64, "{name}");
        assert_eq!(agg.stats().mean_staleness(), 0.0, "{name}");
    }
}

/// Strategy-specific release semantics: only synchronous rounds close a
/// round on release, and only they discard over-goal arrivals.
#[test]
fn round_closing_and_over_goal_behavior_match_the_strategy() {
    for (name, mut agg) in implementations() {
        let closes = agg.closes_round_on_release();
        assert_eq!(closes, name.ends_with("sync_round"), "{name}");
        fill(agg.as_mut(), GOAL, 1.0);
        let over_goal = agg.accumulate(update(99, 50.0, 10, 0), 0, 0.0);
        if closes {
            assert_eq!(over_goal, AccumulateOutcome::Discarded, "{name}");
            assert_eq!(agg.stats().discarded, 1, "{name}");
            assert_eq!(agg.buffered(), GOAL, "{name}");
        } else {
            // Buffered strategies keep accepting past the goal.
            assert!(over_goal.accepted(), "{name}");
            assert_eq!(agg.buffered(), GOAL + 1, "{name}");
        }
    }
}
