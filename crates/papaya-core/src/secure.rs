//! The [`SecureAggregator`] decorator: any aggregation strategy, run through
//! the asynchronous TEE-based secure-aggregation protocol.
//!
//! `SecureAggregator` wraps a `Box<dyn Aggregator>` and preserves its entire
//! observable contract — accept/reject decisions, readiness (count, deadline,
//! or round goal), lifetime stats, reset-on-crash semantics — while moving
//! the *numerical* aggregation into ciphertext space:
//!
//! * on [`accumulate`](Aggregator::accumulate) the simulated client
//!   fixed-point-encodes its (weight-scaled) delta, masks it with a
//!   seed-expanded one-time pad, and uploads; the untrusted host sums masked
//!   updates incrementally and forwards only the encrypted seed into the
//!   TSA (`O(K + m)` boundary traffic, Figure 6);
//! * on [`take`](Aggregator::take) the TSA releases the aggregated unmask
//!   for the closing buffer — the per-buffer *key release* — and the host
//!   subtracts it, decodes `Σ wᵢ·Δᵢ`, and divides by the publicly known
//!   weight total;
//! * on [`reset`](Aggregator::reset) (Aggregator crash) the masked partial
//!   sum is dropped **without** a key release: the TSA never unmasks a
//!   partial buffer, so a crash reveals nothing.
//!
//! Two modeling choices worth stating explicitly:
//!
//! 1. **Weights are applied client-side before masking.**  Every weight in
//!    the system ([`Aggregator::update_weight`]) is a pure function of
//!    metadata the server already sees in the clear (example count,
//!    staleness), so the server can hand the weight to the client with the
//!    download/upload exchange and track only the weight *total*; nothing
//!    an honest-but-curious server learns changes.
//! 2. **The inner strategy still folds the clear update.**  In this
//!    simulation the wrapped strategy serves as the *reference path*: it
//!    drives policy (readiness, staleness, round semantics) exactly as a
//!    production metadata service would, and its release is compared
//!    against the decoded secure release to produce the per-buffer
//!    quantization-error trace.  The value returned to the server model is
//!    always the **decoded secure sum**, never the clear reference.
//!
//! The protocol RNG is seeded deterministically, and every protocol step
//! happens inside `accumulate`/`take`/`reset` on the event-loop thread, so
//! simulations stay bit-identical at any training parallelism.

use crate::aggregator::{AccumulateOutcome, Aggregator, AggregatorStats};
use crate::client::ClientUpdate;
use crate::config::{TaskConfig, TrainingMode};
use papaya_crypto::chacha20::ChaCha20Rng;
use papaya_crypto::sha256::sha256;
use papaya_nn::params::ParamVec;
use papaya_secagg::fixed_point::FixedPointCodec;
use papaya_secagg::group::GroupParams;
use papaya_secagg::{SecAggClient, SecAggConfig, Tsa, TsaPublication, UntrustedAggregator};

/// Cumulative counters of the secure pipeline, exported through
/// [`Aggregator::secure_telemetry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SecureTelemetry {
    /// Masked updates accepted into a ciphertext buffer.
    pub masked_updates: u64,
    /// Masked uploads discarded by server policy (staleness rejection or a
    /// closed round) — dropped on the host without forwarding the seed, so
    /// host and TSA sums stay consistent.
    pub masked_discarded: u64,
    /// Per-buffer TSA key releases (aggregated unmasks generated).  Always
    /// equals the number of server updates of a secure task: the TSA never
    /// unmasks a partial buffer.
    pub tsa_key_releases: u64,
    /// Buffers dropped without a key release (Aggregator crashes).
    pub buffers_dropped_unreleased: u64,
    /// Key releases whose decoded sum diverged from the clear reference by
    /// more than the fixed-point error budget — the signature of a
    /// per-client encode saturation or an aggregate wrapping the group
    /// modulus.  A nonzero count means the deployment needs a larger group
    /// or a smaller scale.
    pub out_of_range_releases: u64,
    /// Cumulative bytes into the TEE (encrypted seeds + key exchanges).
    pub tee_bytes_in: u64,
    /// Cumulative bytes out of the TEE (initial messages + unmask vectors).
    pub tee_bytes_out: u64,
    /// `(virtual_seconds, max_abs_error)` per key release: the element-wise
    /// gap between the decoded secure release and the clear reference
    /// release (pure fixed-point quantization).
    pub quantization_error_trace: Vec<(f64, f64)>,
}

impl SecureTelemetry {
    /// Mean TEE-boundary bytes (inbound) per masked client update — the
    /// `O(K + m)` claim of Figure 6 in counter form.
    pub fn tee_bytes_in_per_client(&self) -> f64 {
        if self.masked_updates == 0 {
            0.0
        } else {
            self.tee_bytes_in as f64 / self.masked_updates as f64
        }
    }

    /// Largest per-release quantization error observed so far.
    pub fn max_quantization_error(&self) -> f64 {
        self.quantization_error_trace
            .iter()
            .map(|&(_, e)| e)
            .fold(0.0, f64::max)
    }

    /// Refreshes `self` from a newer snapshot of the same telemetry stream:
    /// cumulative counters are overwritten, and the append-only error trace
    /// is extended with the entries `self` has not seen yet (so periodic
    /// syncing stays O(new entries), not O(trace)).
    pub fn sync_from(&mut self, src: &SecureTelemetry) {
        let synced = self.quantization_error_trace.len();
        debug_assert!(
            synced <= src.quantization_error_trace.len(),
            "telemetry snapshots must come from one growing stream"
        );
        self.quantization_error_trace
            .extend_from_slice(&src.quantization_error_trace[synced..]);
        self.masked_updates = src.masked_updates;
        self.masked_discarded = src.masked_discarded;
        self.tsa_key_releases = src.tsa_key_releases;
        self.buffers_dropped_unreleased = src.buffers_dropped_unreleased;
        self.out_of_range_releases = src.out_of_range_releases;
        self.tee_bytes_in = src.tee_bytes_in;
        self.tee_bytes_out = src.tee_bytes_out;
    }
}

/// The TSA unmasking threshold a task's strategy calls for.
///
/// Strategies whose releases always carry exactly the aggregation goal
/// (FedBuff drains the instant the goal is met; a synchronous round closes
/// at the goal) get the goal itself — the strongest privacy the release
/// pattern supports.  The timed hybrid force-releases *partial* buffers on a
/// deadline, so any threshold above 1 would deadlock a deadline release; a
/// deployment wanting a larger `t` must accept stalled releases instead.
pub fn recommended_threshold(config: &TaskConfig) -> usize {
    match config.mode {
        TrainingMode::TimedHybrid { .. } => 1,
        TrainingMode::Async { .. } | TrainingMode::Sync { .. } => config.aggregation_goal,
    }
}

/// The protocol configuration used for simulated secure tasks: the small
/// (non-production-strength) Diffie–Hellman group for speed, and fixed point
/// over `Z_{2^40}` with scale `2^16` so weighted aggregates up to ±2²³ —
/// far beyond anything an example-weighted buffer produces — encode without
/// wrapping, at ~1.5e-5 resolution.
fn simulation_config(vector_len: usize, threshold: usize) -> SecAggConfig {
    let mut config = SecAggConfig::insecure_fast(vector_len, threshold);
    config.codec = FixedPointCodec::new(GroupParams::new(1 << 40), 65_536.0);
    config
}

/// Derives a 32-byte protocol seed from a task seed, domain-separated so
/// the TSA hardware key, the client RNG stream, and the DP noise stream
/// ([`crate::dp`]) never collide.
pub(crate) fn derive_seed(domain: &[u8], seed: u64) -> [u8; 32] {
    let mut input = domain.to_vec();
    input.extend_from_slice(&seed.to_le_bytes());
    sha256(&input)
}

/// An aggregation strategy wrapped in the AsyncSecAgg protocol.
pub struct SecureAggregator {
    inner: Box<dyn Aggregator>,
    config: SecAggConfig,
    tsa: Tsa,
    publication: TsaPublication,
    rng: ChaCha20Rng,
    host: UntrustedAggregator,
    /// Clear-metadata weight total of the buffer in progress.
    weight_sum: f64,
    telemetry: SecureTelemetry,
}

impl SecureAggregator {
    /// Wraps `inner` in the secure pipeline for updates of `vector_len`
    /// parameters.  The TSA refuses to release an unmask for a buffer with
    /// fewer than `threshold` contributions
    /// (see [`recommended_threshold`]); `seed` makes the protocol run
    /// deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `vector_len == 0` or `threshold == 0`.
    pub fn new(inner: Box<dyn Aggregator>, vector_len: usize, threshold: usize, seed: u64) -> Self {
        Self::with_config(inner, simulation_config(vector_len, threshold), seed)
    }

    /// Wraps `inner` with an explicit protocol configuration, for
    /// deployments needing a different group/scale trade-off (larger models,
    /// larger weighted aggregates) than [`SecureAggregator::new`]'s default.
    ///
    /// # Panics
    ///
    /// Panics if the config has no parameters or a zero threshold.
    pub fn with_config(inner: Box<dyn Aggregator>, config: SecAggConfig, seed: u64) -> Self {
        assert!(config.vector_len > 0, "secure updates must have parameters");
        assert!(config.threshold > 0, "unmasking threshold must be positive");
        let tsa = Tsa::new(&config, derive_seed(b"papaya/tsa-hardware-key/", seed));
        let publication = tsa.publication();
        let host = UntrustedAggregator::new(&config);
        let rng = ChaCha20Rng::from_seed(derive_seed(b"papaya/secagg-clients/", seed));
        SecureAggregator {
            inner,
            config,
            tsa,
            publication,
            rng,
            host,
            weight_sum: 0.0,
            telemetry: SecureTelemetry::default(),
        }
    }

    /// The cumulative secure-pipeline telemetry.
    pub fn telemetry(&self) -> &SecureTelemetry {
        &self.telemetry
    }

    /// The TSA unmasking threshold.
    pub fn threshold(&self) -> usize {
        self.config.threshold
    }

    fn sync_boundary(&mut self) {
        let stats = self.tsa.boundary_stats();
        self.telemetry.tee_bytes_in = stats.bytes_in;
        self.telemetry.tee_bytes_out = stats.bytes_out;
    }
}

impl Aggregator for SecureAggregator {
    /// Runs the client protocol for the offered update (attestation check,
    /// key exchange, weight-scaled fixed-point encoding, masking), then lets
    /// the inner strategy decide.  Accepted uploads are folded into the
    /// host's masked sum and their seed forwarded into the TSA; rejected or
    /// discarded uploads are dropped on the host without a seed forward.
    fn accumulate(
        &mut self,
        update: ClientUpdate,
        current_version: u64,
        now_s: f64,
    ) -> AccumulateOutcome {
        assert_eq!(
            update.delta.len(),
            self.config.vector_len,
            "update dimensionality does not match the secure-aggregation config"
        );
        let staleness = update.staleness(current_version);
        let weight = self.inner.update_weight(update.num_examples, staleness);
        // Client side: scale by the metadata-derived weight exactly as the
        // clear buffer would (`f32` product), encode, mask, upload.
        let mut scaled = update.delta.clone();
        scaled.scale(weight as f32);
        let initial = self
            .tsa
            .prepare_initial_messages(1, &mut self.rng)
            .pop()
            .expect("one initial message");
        let upload = SecAggClient::participate(
            scaled.as_slice(),
            &initial,
            &self.publication,
            &self.config,
            &mut self.rng,
        )
        .expect("simulated client validates its own TSA");

        let outcome = self.inner.accumulate(update, current_version, now_s);
        if outcome.accepted() {
            self.host
                .submit(upload, &mut self.tsa)
                .expect("fresh key-exchange completion is accepted");
            self.weight_sum += weight;
            self.telemetry.masked_updates += 1;
        } else {
            // The masked upload is dropped host-side; tell the TSA to
            // forget the never-to-be-completed exchange so rejected clients
            // cannot pin enclave state forever.
            self.tsa.revoke_unused_exchange(initial.index);
            self.telemetry.masked_discarded += 1;
        }
        self.sync_boundary();
        outcome
    }

    /// Ready when the inner strategy is ready *and* the buffer holds at
    /// least the TSA threshold — below it the key release is refused and the
    /// buffer keeps accumulating (privacy outranks the release schedule).
    fn is_ready(&self, now_s: f64) -> bool {
        self.inner.is_ready(now_s) && self.host.accepted() >= self.config.threshold
    }

    fn take(&mut self, now_s: f64) -> Option<ParamVec> {
        if !self.is_ready(now_s) {
            return None;
        }
        let reference = self.inner.take(now_s)?;
        let accepted = self.host.accepted();
        let decoded = self
            .host
            .finalize(&mut self.tsa)
            .expect("is_ready implies the TSA threshold is met");
        self.telemetry.tsa_key_releases += 1;
        // Weighted average: the weight total is public metadata, so the
        // division happens in the clear — mirroring WeightedBuffer, an
        // all-zero-weight buffer releases an exact zero delta.
        let weight_sum = std::mem::replace(&mut self.weight_sum, 0.0);
        let released = if weight_sum > 0.0 {
            let mut sum = ParamVec::from_vec(decoded);
            sum.scale((1.0 / weight_sum) as f32);
            sum
        } else {
            ParamVec::zeros(self.config.vector_len)
        };
        let error = released
            .as_slice()
            .iter()
            .zip(reference.as_slice())
            .map(|(s, c)| (s - c).abs() as f64)
            .fold(0.0, f64::max);
        self.telemetry.quantization_error_trace.push((now_s, error));
        // Fixed-point error budget for this release: one half-quantum of
        // encode rounding per contribution (plus one for the decode),
        // scaled down by the weight total, plus `f32` representation noise
        // on the reference.  An error past the budget cannot come from
        // quantization — a client's weighted delta saturated at encode or
        // the aggregate wrapped the modulus — so flag the release instead
        // of letting a garbage delta pass silently.
        let reference_magnitude = reference
            .as_slice()
            .iter()
            .map(|v| v.abs() as f64)
            .fold(0.0, f64::max);
        let quanta = (accepted as f64 + 1.0) / self.config.codec.scale();
        let budget = if weight_sum > 0.0 {
            quanta / weight_sum + reference_magnitude * 1e-4 + 1e-9
        } else {
            0.0
        };
        if error > budget {
            self.telemetry.out_of_range_releases += 1;
        }
        self.sync_boundary();
        Some(released)
    }

    /// Drops the buffer on both sides of the TEE boundary **without** a key
    /// release (the Aggregator holding the masked sum died); the TSA never
    /// unmasks a partial buffer.  The inner strategy's lifetime stats
    /// survive, as the trait requires.
    fn reset(&mut self) -> usize {
        if self.host.accepted() > 0 {
            self.telemetry.buffers_dropped_unreleased += 1;
        }
        self.host.discard_buffer(&mut self.tsa);
        self.weight_sum = 0.0;
        self.inner.reset()
    }

    fn goal(&self) -> usize {
        self.inner.goal()
    }

    fn buffered(&self) -> usize {
        self.inner.buffered()
    }

    fn stats(&self) -> &AggregatorStats {
        self.inner.stats()
    }

    fn max_staleness(&self) -> Option<u64> {
        self.inner.max_staleness()
    }

    fn next_deadline_s(&self) -> Option<f64> {
        self.inner.next_deadline_s()
    }

    fn closes_round_on_release(&self) -> bool {
        self.inner.closes_round_on_release()
    }

    fn update_weight(&self, num_examples: usize, staleness: u64) -> f64 {
        self.inner.update_weight(num_examples, staleness)
    }

    fn secure_telemetry(&self) -> Option<&SecureTelemetry> {
        Some(&self.telemetry)
    }

    fn dp_telemetry(&self) -> Option<&crate::dp::DpTelemetry> {
        self.inner.dp_telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fedbuff::FedBuffAggregator;
    use crate::staleness::StalenessWeighting;
    use crate::timed_hybrid::TimedHybridAggregator;

    fn update(id: usize, delta: Vec<f32>, examples: usize, start_version: u64) -> ClientUpdate {
        ClientUpdate {
            client_id: id,
            delta: ParamVec::from_vec(delta),
            num_examples: examples,
            start_version,
            train_loss: 0.0,
        }
    }

    fn secure_fedbuff(goal: usize, weighting: StalenessWeighting) -> SecureAggregator {
        SecureAggregator::new(
            Box::new(FedBuffAggregator::new(goal, weighting, Some(5))),
            2,
            goal,
            0xC0DE,
        )
    }

    #[test]
    fn secure_release_matches_clear_release_to_fixed_point_tolerance() {
        let mut clear = FedBuffAggregator::new(3, StalenessWeighting::PolynomialHalf, Some(5));
        let mut secure = secure_fedbuff(3, StalenessWeighting::PolynomialHalf);
        let updates = [
            update(0, vec![0.25, -1.5], 10, 0),
            update(1, vec![1.125, 0.5], 30, 0),
            update(2, vec![-0.75, 2.0], 20, 1),
        ];
        for u in &updates {
            assert!(clear.accumulate(u.clone(), 2, 0.0).accepted());
            assert!(secure.accumulate(u.clone(), 2, 0.0).accepted());
        }
        let clear_out = clear.take(0.0).unwrap();
        let secure_out = secure.take(0.0).unwrap();
        for (c, s) in clear_out.as_slice().iter().zip(secure_out.as_slice()) {
            assert!((c - s).abs() < 1e-4, "clear {c} vs secure {s}");
        }
        let telemetry = secure.telemetry();
        assert_eq!(telemetry.masked_updates, 3);
        assert_eq!(telemetry.tsa_key_releases, 1);
        assert_eq!(telemetry.quantization_error_trace.len(), 1);
        assert!(telemetry.max_quantization_error() < 1e-4);
        assert!(telemetry.tee_bytes_in > 0 && telemetry.tee_bytes_out > 0);
    }

    #[test]
    fn secure_releases_are_deterministic_for_a_seed() {
        let run = || {
            let mut agg = secure_fedbuff(2, StalenessWeighting::Constant);
            agg.accumulate(update(0, vec![0.3, 0.7], 10, 0), 0, 0.0);
            agg.accumulate(update(1, vec![-0.1, 0.2], 20, 0), 0, 1.0);
            agg.take(1.0).unwrap()
        };
        assert_eq!(run().as_slice(), run().as_slice());
    }

    #[test]
    fn rejected_stale_upload_is_discarded_masked_not_submitted() {
        let mut agg = secure_fedbuff(2, StalenessWeighting::Constant);
        // max_staleness is 5; staleness 7 must be rejected by the inner
        // policy, and the masked upload dropped without a seed forward.
        let outcome = agg.accumulate(update(0, vec![1.0, 1.0], 10, 0), 7, 0.0);
        assert!(!outcome.accepted());
        assert_eq!(agg.telemetry().masked_discarded, 1);
        assert_eq!(agg.telemetry().masked_updates, 0);
        assert_eq!(agg.tsa.processed_clients(), 0);
        assert_eq!(agg.stats().rejected_stale, 1);
    }

    #[test]
    fn reset_drops_masked_buffer_without_key_release() {
        let mut agg = secure_fedbuff(3, StalenessWeighting::Constant);
        agg.accumulate(update(0, vec![1.0, 1.0], 10, 0), 0, 0.0);
        agg.accumulate(update(1, vec![2.0, 2.0], 10, 0), 0, 0.0);
        assert_eq!(agg.reset(), 2);
        let telemetry = agg.telemetry();
        assert_eq!(telemetry.buffers_dropped_unreleased, 1);
        assert_eq!(telemetry.tsa_key_releases, 0);
        // Lifetime stats survive, and the next buffer is uncontaminated.
        assert_eq!(agg.stats().accepted, 2);
        for i in 0..3 {
            agg.accumulate(update(10 + i, vec![4.0, -4.0], 10, 0), 0, 1.0);
        }
        let out = agg.take(1.0).unwrap();
        assert!((out.as_slice()[0] - 4.0).abs() < 1e-4, "{out:?}");
        assert_eq!(agg.telemetry().tsa_key_releases, 1);
        // Resetting an empty buffer does not count a dropped buffer.
        assert_eq!(agg.reset(), 0);
        assert_eq!(agg.telemetry().buffers_dropped_unreleased, 1);
    }

    #[test]
    fn below_threshold_deadline_release_is_blocked() {
        // A timed hybrid with threshold 2: the deadline passes with a single
        // buffered update, but the TSA refuses the key release, so nothing
        // moves and the buffered update survives for the next arrival.
        let inner = Box::new(TimedHybridAggregator::new(
            10,
            StalenessWeighting::Constant,
            None,
            60.0,
        ));
        let mut agg = SecureAggregator::new(inner, 2, 2, 7);
        agg.accumulate(update(0, vec![1.0, 0.0], 10, 0), 0, 0.0);
        assert!(!agg.is_ready(1e6), "threshold must gate readiness");
        assert!(agg.take(1e6).is_none());
        assert_eq!(agg.buffered(), 1, "blocked release must not drain");
        // A second contribution satisfies the threshold.
        agg.accumulate(update(1, vec![0.0, 1.0], 10, 0), 0, 2.0);
        assert!(agg.is_ready(70.0));
        let out = agg.take(70.0).unwrap();
        assert!((out.as_slice()[0] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn all_zero_weight_buffer_releases_exact_zeros() {
        let mut agg = secure_fedbuff(2, StalenessWeighting::Constant);
        agg.accumulate(update(0, vec![3.0, -1.0], 0, 0), 0, 0.0);
        agg.accumulate(update(1, vec![5.0, 2.0], 0, 0), 0, 0.0);
        assert_eq!(agg.take(0.0).unwrap().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn tee_traffic_per_client_is_independent_of_model_size() {
        let per_client = |dim: usize| {
            let inner = Box::new(FedBuffAggregator::new(
                2,
                StalenessWeighting::Constant,
                None,
            ));
            let mut agg = SecureAggregator::new(inner, dim, 2, 3);
            agg.accumulate(update(0, [0.1; 2].repeat(dim / 2), 10, 0), 0, 0.0);
            agg.accumulate(update(1, [0.2; 2].repeat(dim / 2), 10, 0), 0, 0.0);
            agg.take(0.0).unwrap();
            agg.telemetry().tee_bytes_in_per_client()
        };
        let small = per_client(4);
        let large = per_client(4096);
        assert!(small > 0.0);
        assert_eq!(small, large, "inbound TEE bytes must not scale with m");
    }

    #[test]
    fn out_of_range_aggregates_are_flagged_not_silent() {
        // A deliberately tiny group (±128 representable) so two in-range
        // contributions wrap the modulus when summed: the release must be
        // counted as out-of-range instead of passing silently.
        let inner = Box::new(FedBuffAggregator::new(
            2,
            StalenessWeighting::Constant,
            None,
        ));
        let mut config = SecAggConfig::insecure_fast(1, 2);
        config.codec = FixedPointCodec::new(GroupParams::new(1 << 16), 256.0);
        let mut agg = SecureAggregator::with_config(inner, config, 9);
        agg.accumulate(update(0, vec![100.0], 1, 0), 0, 0.0);
        agg.accumulate(update(1, vec![100.0], 1, 0), 0, 0.0);
        let released = agg.take(0.0).unwrap();
        assert_eq!(agg.telemetry().out_of_range_releases, 1);
        // The wrapped decode is nowhere near the clear average of 100.
        assert!((released.as_slice()[0] - 100.0).abs() > 1.0);

        // A healthy buffer afterwards is not flagged.
        agg.accumulate(update(2, vec![1.0], 1, 0), 0, 1.0);
        agg.accumulate(update(3, vec![2.0], 1, 0), 0, 1.0);
        let ok = agg.take(1.0).unwrap();
        assert!((ok.as_slice()[0] - 1.5).abs() < 1e-2);
        assert_eq!(agg.telemetry().out_of_range_releases, 1);
    }

    #[test]
    fn telemetry_sync_from_is_incremental_on_the_trace() {
        let mut dst = SecureTelemetry::default();
        let mut src = SecureTelemetry {
            masked_updates: 3,
            tsa_key_releases: 1,
            quantization_error_trace: vec![(1.0, 1e-6)],
            ..SecureTelemetry::default()
        };
        dst.sync_from(&src);
        assert_eq!(dst, src);
        src.tsa_key_releases = 2;
        src.quantization_error_trace.push((2.0, 2e-6));
        dst.sync_from(&src);
        assert_eq!(dst, src);
        // Re-syncing an unchanged stream is a no-op, not a duplication.
        dst.sync_from(&src);
        assert_eq!(dst.quantization_error_trace.len(), 2);
    }

    #[test]
    fn rejected_upload_releases_tsa_exchange_state() {
        let mut agg = secure_fedbuff(2, StalenessWeighting::Constant);
        // Rejected by the staleness bound: the exchange must be revoked, so
        // the TSA holds no pending per-client state afterwards.
        agg.accumulate(update(0, vec![1.0, 1.0], 10, 0), 7, 0.0);
        assert_eq!(agg.tsa.pending_exchanges(), 0);
    }

    #[test]
    fn recommended_threshold_follows_the_release_pattern() {
        assert_eq!(
            recommended_threshold(&TaskConfig::async_task("a", 100, 25)),
            25
        );
        assert_eq!(
            recommended_threshold(&TaskConfig::sync_task("s", 130, 0.3)),
            100
        );
        assert_eq!(
            recommended_threshold(&TaskConfig::timed_hybrid_task("h", 10, 4, 60.0)),
            1
        );
    }

    #[test]
    #[should_panic(expected = "dimensionality does not match")]
    fn mismatched_dimensions_panic() {
        let mut agg = secure_fedbuff(2, StalenessWeighting::Constant);
        agg.accumulate(update(0, vec![1.0], 10, 0), 0, 0.0);
    }
}
