//! The [`SecureAggregator`] decorator: any aggregation strategy, run through
//! the asynchronous TEE-based secure-aggregation protocol.
//!
//! `SecureAggregator` wraps a `Box<dyn Aggregator>` and preserves its entire
//! observable contract — accept/reject decisions, readiness (count, deadline,
//! or round goal), lifetime stats, reset-on-crash semantics — while moving
//! the *numerical* aggregation into ciphertext space:
//!
//! * on [`accumulate`](Aggregator::accumulate) the simulated client
//!   fixed-point-encodes its (weight-scaled) delta, masks it with a
//!   seed-expanded one-time pad, and uploads; the untrusted host sums masked
//!   updates incrementally and forwards only the encrypted seed into the
//!   TSA (`O(K + m)` boundary traffic, Figure 6);
//! * on [`take`](Aggregator::take) the TSA releases the aggregated unmask
//!   for the closing buffer — the per-buffer *key release* — and the host
//!   subtracts it, decodes `Σ wᵢ·Δᵢ`, and divides by the publicly known
//!   weight total;
//! * on [`reset`](Aggregator::reset) (Aggregator crash) the masked partial
//!   sum is dropped **without** a key release: the TSA never unmasks a
//!   partial buffer, so a crash reveals nothing.
//!
//! Two modeling choices worth stating explicitly:
//!
//! 1. **Weights are applied client-side before masking.**  Every weight in
//!    the system ([`Aggregator::update_weight`]) is a pure function of
//!    metadata the server already sees in the clear (example count,
//!    staleness), so the server can hand the weight to the client with the
//!    download/upload exchange and track only the weight *total*; nothing
//!    an honest-but-curious server learns changes.
//! 2. **The inner strategy still folds the clear update.**  In this
//!    simulation the wrapped strategy serves as the *reference path*: it
//!    drives policy (readiness, staleness, round semantics) exactly as a
//!    production metadata service would, and its release is compared
//!    against the decoded secure release to produce the per-buffer
//!    quantization-error trace.  The value returned to the server model is
//!    always the **decoded secure sum**, never the clear reference.
//!
//! The protocol RNG is seeded deterministically, and every protocol step
//! happens inside `accumulate`/`take`/`reset` on the event-loop thread, so
//! simulations stay bit-identical at any training parallelism.

use crate::aggregator::{AccumulateOutcome, Aggregator, AggregatorStats};
use crate::client::ClientUpdate;
use crate::config::{TaskConfig, TrainingMode};
use papaya_crypto::chacha20::ChaCha20Rng;
use papaya_crypto::dh::{DhPrecomputedPublic, SharedSecret};
use papaya_crypto::hmac::hmac_sha256;
use papaya_crypto::sha256::sha256;
use papaya_nn::params::ParamVec;
use papaya_secagg::fixed_point::FixedPointCodec;
use papaya_secagg::group::GroupParams;
use papaya_secagg::session::{HandshakePlan, MaskPlanKind, MaskRef};
use papaya_secagg::{SecAggClient, SecAggConfig, Tsa, TsaPublication, UntrustedAggregator};
use std::collections::BTreeMap;
use std::time::Instant;

// Re-exported so the `Aggregator` trait hooks and the simulator's executor
// speak the same types without a papaya-secagg dependency at every call
// site.
pub use papaya_secagg::session::{MaskPlan, MaskScratch, PrecomputedMask};

/// Cumulative counters of the secure pipeline, exported through
/// [`Aggregator::secure_telemetry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SecureTelemetry {
    /// Masked updates accepted into a ciphertext buffer.
    pub masked_updates: u64,
    /// Masked uploads discarded by server policy (staleness rejection or a
    /// closed round) — dropped on the host without forwarding the seed, so
    /// host and TSA sums stay consistent.
    pub masked_discarded: u64,
    /// Per-buffer TSA key releases (aggregated unmasks generated).  Always
    /// equals the number of server updates of a secure task: the TSA never
    /// unmasks a partial buffer.
    pub tsa_key_releases: u64,
    /// Buffers dropped without a key release (Aggregator crashes).
    pub buffers_dropped_unreleased: u64,
    /// Key releases whose decoded sum diverged from the clear reference by
    /// more than the fixed-point error budget — the signature of a
    /// per-client encode saturation or an aggregate wrapping the group
    /// modulus.  A nonzero count means the deployment needs a larger group
    /// or a smaller scale.
    pub out_of_range_releases: u64,
    /// Cumulative bytes into the TEE (encrypted seeds + key exchanges).
    pub tee_bytes_in: u64,
    /// Cumulative bytes out of the TEE (initial messages + unmask vectors).
    pub tee_bytes_out: u64,
    /// Masked updates served from a cached session (ratchet only, zero
    /// group exponentiations).
    pub session_cache_hits: u64,
    /// Masked updates that ran a full session handshake (first contact per
    /// epoch).  Zero in per-update mode, which has no cache to miss.
    pub session_cache_misses: u64,
    /// Diffie–Hellman exchanges the session cache avoided: one per cache
    /// hit, each worth ~4 group exponentiations of the per-update protocol.
    pub dh_exchanges_saved: u64,
    /// `(virtual_seconds, max_abs_error)` per key release: the element-wise
    /// gap between the decoded secure release and the clear reference
    /// release (pure fixed-point quantization).
    pub quantization_error_trace: Vec<(f64, f64)>,
}

impl SecureTelemetry {
    /// Mean TEE-boundary bytes (inbound) per masked client update — the
    /// `O(K + m)` claim of Figure 6 in counter form.
    pub fn tee_bytes_in_per_client(&self) -> f64 {
        if self.masked_updates == 0 {
            0.0
        } else {
            self.tee_bytes_in as f64 / self.masked_updates as f64
        }
    }

    /// Largest per-release quantization error observed so far.
    pub fn max_quantization_error(&self) -> f64 {
        self.quantization_error_trace
            .iter()
            .map(|&(_, e)| e)
            .fold(0.0, f64::max)
    }

    /// Refreshes `self` from a newer snapshot of the same telemetry stream:
    /// cumulative counters are overwritten, and the append-only error trace
    /// is extended with the entries `self` has not seen yet (so periodic
    /// syncing stays O(new entries), not O(trace)).
    pub fn sync_from(&mut self, src: &SecureTelemetry) {
        let synced = self.quantization_error_trace.len();
        debug_assert!(
            synced <= src.quantization_error_trace.len(),
            "telemetry snapshots must come from one growing stream"
        );
        self.quantization_error_trace
            .extend_from_slice(&src.quantization_error_trace[synced..]);
        self.masked_updates = src.masked_updates;
        self.masked_discarded = src.masked_discarded;
        self.tsa_key_releases = src.tsa_key_releases;
        self.buffers_dropped_unreleased = src.buffers_dropped_unreleased;
        self.out_of_range_releases = src.out_of_range_releases;
        self.tee_bytes_in = src.tee_bytes_in;
        self.tee_bytes_out = src.tee_bytes_out;
        self.session_cache_hits = src.session_cache_hits;
        self.session_cache_misses = src.session_cache_misses;
        self.dh_exchanges_saved = src.dh_exchanges_saved;
    }
}

/// Wall-clock seconds the secure pipeline spent on the event-loop thread,
/// split by protocol stage — the `--profile` breakdown of the benchmark
/// suite.  Speculatively precomputed masks are charged to the worker pool,
/// not here, so under speculation `handshake_s + mask_s` collapse toward
/// zero while `encode_s`/`unmask_s` (inherently on-loop) remain.
///
/// Excluded from [`SecureTelemetry`] (and from result fingerprints): wall
/// time is machine-dependent, and fingerprints must not be.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SecureTimings {
    /// Session handshakes (attestation check + Diffie–Hellman) run inline.
    pub handshake_s: f64,
    /// Mask ratchet + expansion run inline.
    pub mask_s: f64,
    /// Fixed-point encoding and mask application of uploads.
    pub encode_s: f64,
    /// Batched TSA key releases and unmask subtraction.
    pub unmask_s: f64,
}

impl SecureTimings {
    /// Total on-loop seconds across all stages.
    pub fn total_s(&self) -> f64 {
        self.handshake_s + self.mask_s + self.encode_s + self.unmask_s
    }

    /// Accumulates another breakdown (e.g. across a fleet of aggregators).
    pub fn merge(&mut self, other: &SecureTimings) {
        self.handshake_s += other.handshake_s;
        self.mask_s += other.mask_s;
        self.encode_s += other.encode_s;
        self.unmask_s += other.unmask_s;
    }
}

/// The TSA unmasking threshold a task's strategy calls for.
///
/// Strategies whose releases always carry exactly the aggregation goal
/// (FedBuff drains the instant the goal is met; a synchronous round closes
/// at the goal) get the goal itself — the strongest privacy the release
/// pattern supports.  The timed hybrid force-releases *partial* buffers on a
/// deadline, so any threshold above 1 would deadlock a deadline release; a
/// deployment wanting a larger `t` must accept stalled releases instead.
pub fn recommended_threshold(config: &TaskConfig) -> usize {
    match config.mode {
        TrainingMode::TimedHybrid { .. } => 1,
        TrainingMode::Async { .. } | TrainingMode::Sync { .. } => config.aggregation_goal,
    }
}

/// The protocol configuration used for simulated secure tasks: the small
/// (non-production-strength) Diffie–Hellman group for speed, and fixed point
/// over `Z_{2^40}` with scale `2^16` so weighted aggregates up to ±2²³ —
/// far beyond anything an example-weighted buffer produces — encode without
/// wrapping, at ~1.5e-5 resolution.
fn simulation_config(vector_len: usize, threshold: usize) -> SecAggConfig {
    let mut config = SecAggConfig::insecure_fast(vector_len, threshold);
    config.codec = FixedPointCodec::new(GroupParams::new(1 << 40), 65_536.0);
    config
}

/// Derives a 32-byte protocol seed from a task seed, domain-separated so
/// the TSA hardware key, the client RNG stream, and the DP noise stream
/// ([`crate::dp`]) never collide.
pub(crate) fn derive_seed(domain: &[u8], seed: u64) -> [u8; 32] {
    let mut input = domain.to_vec();
    input.extend_from_slice(&seed.to_le_bytes());
    sha256(&input)
}

/// Host-side bookkeeping of the session-cached protocol mode.
struct SessionState {
    /// Master key from which each client's deterministic session-handshake
    /// key is derived (keyed by client id and TSA epoch), so post-crash
    /// re-handshakes get fresh keys without any shared protocol RNG draws —
    /// the property that makes speculative precompute order-safe.
    client_master: [u8; 32],
    /// Established sessions: client id → cached shared secret.
    secrets: BTreeMap<usize, SharedSecret>,
    /// Next ratchet counter per client.  Burned at *plan* time: even a
    /// participation later rejected by policy consumes its counter, so no
    /// two uploads ever share a mask seed.
    counters: BTreeMap<usize, u64>,
    /// Plans issued (to the speculative executor) but not yet consumed.
    planned: BTreeMap<usize, MaskPlan>,
    /// Speculative results handed back via
    /// [`Aggregator::provide_precomputed_mask`].
    provided: BTreeMap<usize, PrecomputedMask>,
    /// Mask references of the buffer in progress, released as one batch.
    pending_refs: Vec<MaskRef>,
    /// Monotone plan-id source.
    next_plan_id: u64,
    /// Plans below this id predate an invalidation; their speculative
    /// results are rejected on arrival.
    valid_from_plan_id: u64,
    /// Fixed-base window table for the TSA's epoch key, built on the first
    /// handshake of each epoch and shared (via `Arc`) by every handshake
    /// plan of that epoch.  An epoch bump (crash, reset, republication)
    /// naturally misses the cache and rebuilds.
    epoch_table: Option<(u64, DhPrecomputedPublic)>,
    /// Reusable mask-expansion buffer for inline (non-speculative) computes.
    scratch: MaskScratch,
}

/// The session-cached protocol state.  Callers are session-mode paths that
/// already dispatched on `session.is_some()`; taking the field (not
/// `&mut self`) keeps sibling-field borrows legal at the call sites.
fn session_state(session: &mut Option<SessionState>) -> &mut SessionState {
    session
        .as_mut()
        // papaya-lint: allow(panic-hygiene) -- session-mode dispatch guarantees presence; absence is an internal invariant breach, not a reachable input
        .expect("session-mode call on a per-update aggregator")
}

impl SessionState {
    fn new(seed: u64) -> Self {
        SessionState {
            client_master: derive_seed(b"papaya/secagg-client-master/", seed),
            secrets: BTreeMap::new(),
            counters: BTreeMap::new(),
            planned: BTreeMap::new(),
            provided: BTreeMap::new(),
            pending_refs: Vec::new(),
            next_plan_id: 0,
            valid_from_plan_id: 0,
            epoch_table: None,
            scratch: MaskScratch::default(),
        }
    }
}

/// An aggregation strategy wrapped in the AsyncSecAgg protocol.
///
/// Two protocol modes share this type:
///
/// * **Session-cached** (the default, [`SecureAggregator::new`]): per-client
///   Diffie–Hellman sessions are cached across participations, later masks
///   are derived by ratcheting, mask expansion can run speculatively off the
///   event loop, and the TSA releases each buffer in one batched
///   round-trip.
/// * **Per-update** ([`SecureAggregator::new_per_update`]): the original
///   protocol — a full key exchange and an individual seed forward per
///   masked update.  Kept as the reference implementation; masks cancel
///   exactly in both modes, so released aggregates are bit-identical.
pub struct SecureAggregator {
    inner: Box<dyn Aggregator>,
    config: SecAggConfig,
    tsa: Tsa,
    publication: TsaPublication,
    rng: ChaCha20Rng,
    host: UntrustedAggregator,
    /// Clear-metadata weight total of the buffer in progress.
    weight_sum: f64,
    telemetry: SecureTelemetry,
    /// `Some` in session-cached mode, `None` in per-update mode.
    session: Option<SessionState>,
    /// Adversarial clients deviating from the masking protocol, if the
    /// simulation injects any (see [`SecureAggregator::with_deviation`]).
    deviation: Option<crate::adversary::AdversarySpec>,
    timings: SecureTimings,
}

impl SecureAggregator {
    /// Wraps `inner` in the session-cached secure pipeline for updates of
    /// `vector_len` parameters.  The TSA refuses to release an unmask for a
    /// buffer with fewer than `threshold` contributions
    /// (see [`recommended_threshold`]); `seed` makes the protocol run
    /// deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `vector_len == 0` or `threshold == 0`.
    pub fn new(inner: Box<dyn Aggregator>, vector_len: usize, threshold: usize, seed: u64) -> Self {
        Self::with_config(inner, simulation_config(vector_len, threshold), seed)
    }

    /// Like [`SecureAggregator::new`] but running the original per-update
    /// key-exchange protocol ([`crate::config::SecAggMode::AsyncSecAggPerUpdate`]).
    pub fn new_per_update(
        inner: Box<dyn Aggregator>,
        vector_len: usize,
        threshold: usize,
        seed: u64,
    ) -> Self {
        Self::with_config_per_update(inner, simulation_config(vector_len, threshold), seed)
    }

    /// Wraps `inner` with an explicit protocol configuration, for
    /// deployments needing a different group/scale trade-off (larger models,
    /// larger weighted aggregates) than [`SecureAggregator::new`]'s default.
    ///
    /// # Panics
    ///
    /// Panics if the config has no parameters or a zero threshold.
    pub fn with_config(inner: Box<dyn Aggregator>, config: SecAggConfig, seed: u64) -> Self {
        let mut agg = Self::with_config_per_update(inner, config, seed);
        agg.session = Some(SessionState::new(seed));
        agg
    }

    /// [`SecureAggregator::with_config`] in per-update mode.
    pub fn with_config_per_update(
        inner: Box<dyn Aggregator>,
        config: SecAggConfig,
        seed: u64,
    ) -> Self {
        assert!(config.vector_len > 0, "secure updates must have parameters");
        assert!(config.threshold > 0, "unmasking threshold must be positive");
        let tsa = Tsa::new(&config, derive_seed(b"papaya/tsa-hardware-key/", seed));
        let publication = tsa.publication();
        let host = UntrustedAggregator::new(&config);
        let rng = ChaCha20Rng::from_seed(derive_seed(b"papaya/secagg-clients/", seed));
        SecureAggregator {
            inner,
            config,
            tsa,
            publication,
            rng,
            host,
            weight_sum: 0.0,
            telemetry: SecureTelemetry::default(),
            session: None,
            deviation: None,
            timings: SecureTimings::default(),
        }
    }

    /// Injects SecAgg protocol deviations: clients the spec marks as
    /// malicious (and whose [`Malice`](crate::adversary::Malice) is a
    /// [`SecAggDeviation`](crate::adversary::Malice::SecAggDeviation))
    /// violate the masking protocol on upload — lying about their ratchet
    /// counter or double-applying their pad.  A spec without a deviation
    /// behavior is ignored.  Deviations are modeled for the session-cached
    /// protocol only (the per-update protocol has no client-controlled
    /// counter to lie about); this is a *simulation* hook for the
    /// attack-vs-defense matrix, never part of a production configuration.
    pub fn with_deviation(mut self, spec: crate::adversary::AdversarySpec) -> Self {
        if spec.deviation().is_some() {
            self.deviation = Some(spec);
        }
        self
    }

    /// The cumulative secure-pipeline telemetry.
    pub fn telemetry(&self) -> &SecureTelemetry {
        &self.telemetry
    }

    /// The on-loop timing breakdown.
    pub fn timings(&self) -> SecureTimings {
        self.timings
    }

    /// The TSA unmasking threshold.
    pub fn threshold(&self) -> usize {
        self.config.threshold
    }

    fn sync_boundary(&mut self) {
        let stats = self.tsa.boundary_stats();
        self.telemetry.tee_bytes_in = stats.bytes_in;
        self.telemetry.tee_bytes_out = stats.bytes_out;
    }

    /// Builds the next mask plan for `client_id`, burning a ratchet counter.
    fn session_plan(&mut self, client_id: usize) -> MaskPlan {
        let cached = session_state(&mut self.session)
            .secrets
            .get(&client_id)
            .copied();
        let kind = match cached {
            Some(secret) => MaskPlanKind::Resumed { secret },
            None => {
                let init = self.tsa.session_init();
                let session = session_state(&mut self.session);
                // Per-(client, epoch) deterministic handshake key: stable
                // within an epoch (a rejected first contact retries with the
                // same secret but a fresh counter), fresh across epochs.
                let mut info = (client_id as u64).to_be_bytes().to_vec();
                info.extend_from_slice(&init.epoch.to_be_bytes());
                let client_key_seed = hmac_sha256(&session.client_master, &info);
                // One fixed-base table per epoch, amortized over every
                // first contact of the epoch.
                let table = match &session.epoch_table {
                    Some((epoch, table)) if *epoch == init.epoch => table.clone(),
                    _ => {
                        let table = self.config.dh_group.precompute_public(&init.tsa_public);
                        session.epoch_table = Some((init.epoch, table.clone()));
                        table
                    }
                };
                MaskPlanKind::Handshake(Box::new(HandshakePlan {
                    group: self.config.dh_group.clone(),
                    client_key_seed,
                    init,
                    publication: self.publication.clone(),
                    tsa_precomputed: Some(table),
                }))
            }
        };
        let session = session_state(&mut self.session);
        let counter_slot = session.counters.entry(client_id).or_insert(0);
        let counter = *counter_slot;
        *counter_slot += 1;
        let plan_id = session.next_plan_id;
        session.next_plan_id += 1;
        MaskPlan {
            plan_id,
            counter,
            vector_len: self.config.vector_len,
            params: self.config.group_params(),
            kind,
        }
    }

    /// Takes the plan issued for `client_id` (or makes one on the spot) and
    /// its mask: the speculative result when one with a matching plan id was
    /// provided, an inline compute otherwise.
    fn consume_mask(&mut self, client_id: usize) -> (MaskPlan, PrecomputedMask) {
        let planned = session_state(&mut self.session).planned.remove(&client_id);
        let plan = planned.unwrap_or_else(|| self.session_plan(client_id));
        let session = session_state(&mut self.session);
        let pre = match session.provided.remove(&client_id) {
            Some(pre) if pre.plan_id == plan.plan_id => pre,
            _ => {
                // papaya-lint: allow(wall-clock) -- stage timing for SecureTimings; profiling only, never fingerprinted
                let start = Instant::now();
                let pre = plan.compute(&mut session.scratch);
                let elapsed = start.elapsed().as_secs_f64();
                // The handshake's modexps dwarf the mask expansion, so an
                // inline first contact is charged entirely to handshakes.
                match plan.kind {
                    MaskPlanKind::Handshake(_) => self.timings.handshake_s += elapsed,
                    MaskPlanKind::Resumed { .. } => self.timings.mask_s += elapsed,
                }
                pre
            }
        };
        (plan, pre)
    }

    /// Session-mode [`Aggregator::accumulate`].
    fn accumulate_session(
        &mut self,
        update: ClientUpdate,
        current_version: u64,
        now_s: f64,
    ) -> AccumulateOutcome {
        let staleness = update.staleness(current_version);
        let weight = self.inner.update_weight(update.num_examples, staleness);
        let client_id = update.client_id;
        let deviation = self
            .deviation
            .filter(|spec| spec.is_malicious(client_id))
            .and_then(|spec| spec.deviation());
        let (plan, pre) = self.consume_mask(client_id);
        // Client side: scale by the metadata-derived weight exactly as the
        // clear buffer would (`f32` product), encode, apply the one-time
        // pad.
        let mut scaled = update.delta.clone();
        scaled.scale(weight as f32);
        // papaya-lint: allow(wall-clock) -- stage timing for SecureTimings; profiling only, never fingerprinted
        let start = Instant::now();
        let mut masked = self
            .config
            .codec
            .encode_vec(scaled.as_slice())
            .add(&pre.mask);
        if deviation == Some(crate::adversary::DeviationKind::GarbageMask) {
            // A garbage-mask client pads twice: the TSA's unmask removes
            // one copy and the released aggregate keeps a full
            // pseudorandom pad — caught downstream as an out-of-range
            // release (the decode no longer matches the clear reference).
            masked = masked.add(&pre.mask);
        }
        self.timings.encode_s += start.elapsed().as_secs_f64();

        let outcome = self.inner.accumulate(update, current_version, now_s);
        // Cache accounting happens at consumption so hit/miss ordering is
        // the event order, identical at any training parallelism.
        match plan.kind {
            MaskPlanKind::Resumed { .. } => {
                self.telemetry.session_cache_hits += 1;
                self.telemetry.dh_exchanges_saved += 1;
            }
            MaskPlanKind::Handshake(_) => self.telemetry.session_cache_misses += 1,
        }
        if outcome.accepted() {
            if let Some(handshake) = pre.handshake {
                self.tsa
                    .establish_session(client_id as u64, &handshake.client_public);
                let session = session_state(&mut self.session);
                session.secrets.insert(client_id, handshake.secret);
            }
            self.host
                .submit_masked(&masked)
                // papaya-lint: allow(panic-hygiene) -- codec and host share one deployment config by construction; a mismatch is a wiring bug
                .expect("mask and update share the deployment group");
            let session = session_state(&mut self.session);
            // A wrong-counter client claims the *next* ratchet counter: the
            // TSA's monotone floor accepts a higher counter, expands a seed
            // the client's mask was not derived from, and the unmask
            // leaves residue — an out-of-range release, never a panic.
            // (Consistent lying keeps the floor at lie+1, so every later
            // lie from the same client clears the floor too.)
            let claimed_counter =
                if deviation == Some(crate::adversary::DeviationKind::WrongCounter) {
                    plan.counter + 1
                } else {
                    plan.counter
                };
            session.pending_refs.push(MaskRef {
                client_id: client_id as u64,
                counter: claimed_counter,
            });
            self.weight_sum += weight;
            self.telemetry.masked_updates += 1;
        } else {
            // The masked upload is dropped host-side.  For an established
            // session the TSA must burn the counter so the seed can never
            // be released; a rejected *first contact* established nothing —
            // no enclave state to pin, and the next participation simply
            // re-plans the handshake with a fresh counter.
            if matches!(plan.kind, MaskPlanKind::Resumed { .. }) {
                self.tsa
                    .revoke_session_counter(client_id as u64, plan.counter);
            }
            self.telemetry.masked_discarded += 1;
        }
        self.sync_boundary();
        outcome
    }

    /// Per-update-mode [`Aggregator::accumulate`] (the original protocol).
    fn accumulate_per_update(
        &mut self,
        update: ClientUpdate,
        current_version: u64,
        now_s: f64,
    ) -> AccumulateOutcome {
        let staleness = update.staleness(current_version);
        let weight = self.inner.update_weight(update.num_examples, staleness);
        let mut scaled = update.delta.clone();
        scaled.scale(weight as f32);
        // papaya-lint: allow(wall-clock) -- stage timing for SecureTimings; profiling only, never fingerprinted
        let start = Instant::now();
        let initial = self
            .tsa
            .prepare_initial_messages(1, &mut self.rng)
            .pop()
            // papaya-lint: allow(panic-hygiene) -- one message was requested on the line above; an empty batch is an internal invariant breach
            .expect("one initial message");
        let upload = SecAggClient::participate(
            scaled.as_slice(),
            &initial,
            &self.publication,
            &self.config,
            &mut self.rng,
        )
        // papaya-lint: allow(panic-hygiene) -- the simulated client verifies the publication it was just handed; rejection is a protocol wiring bug
        .expect("simulated client validates its own TSA");
        self.timings.handshake_s += start.elapsed().as_secs_f64();

        let outcome = self.inner.accumulate(update, current_version, now_s);
        if outcome.accepted() {
            // papaya-lint: allow(wall-clock) -- stage timing for SecureTimings; profiling only, never fingerprinted
            let start = Instant::now();
            self.host
                .submit(upload, &mut self.tsa)
                // papaya-lint: allow(panic-hygiene) -- the exchange was created by this aggregator's own TSA moments ago; rejection is a protocol wiring bug
                .expect("fresh key-exchange completion is accepted");
            self.timings.encode_s += start.elapsed().as_secs_f64();
            self.weight_sum += weight;
            self.telemetry.masked_updates += 1;
        } else {
            // The masked upload is dropped host-side; tell the TSA to
            // forget the never-to-be-completed exchange so rejected clients
            // cannot pin enclave state forever.
            self.tsa.revoke_unused_exchange(initial.index);
            self.telemetry.masked_discarded += 1;
        }
        self.sync_boundary();
        outcome
    }
}

impl Aggregator for SecureAggregator {
    /// Runs the client protocol for the offered update (attestation check,
    /// key exchange, weight-scaled fixed-point encoding, masking), then lets
    /// the inner strategy decide.  Accepted uploads are folded into the
    /// host's masked sum and their seed forwarded into the TSA; rejected or
    /// discarded uploads are dropped on the host without a seed forward.
    fn accumulate(
        &mut self,
        update: ClientUpdate,
        current_version: u64,
        now_s: f64,
    ) -> AccumulateOutcome {
        assert_eq!(
            update.delta.len(),
            self.config.vector_len,
            "update dimensionality does not match the secure-aggregation config"
        );
        if self.session.is_some() {
            self.accumulate_session(update, current_version, now_s)
        } else {
            self.accumulate_per_update(update, current_version, now_s)
        }
    }

    /// Ready when the inner strategy is ready *and* the buffer holds at
    /// least the TSA threshold — below it the key release is refused and the
    /// buffer keeps accumulating (privacy outranks the release schedule).
    fn is_ready(&self, now_s: f64) -> bool {
        self.inner.is_ready(now_s) && self.host.accepted() >= self.config.threshold
    }

    fn take(&mut self, now_s: f64) -> Option<ParamVec> {
        if !self.is_ready(now_s) {
            return None;
        }
        let reference = self.inner.take(now_s)?;
        let accepted = self.host.accepted();
        // papaya-lint: allow(wall-clock) -- stage timing for SecureTimings; profiling only, never fingerprinted
        let start = Instant::now();
        let decoded = if let Some(session) = self.session.as_mut() {
            // One TSA round-trip for the whole buffer: the batch of 16-byte
            // mask references goes in, the aggregated unmask comes out.
            let refs = std::mem::take(&mut session.pending_refs);
            self.host
                .finalize_batch(&mut self.tsa, &refs)
                // papaya-lint: allow(panic-hygiene) -- take() is gated on is_ready, which requires the TSA threshold; refusal is an internal invariant breach
                .expect("is_ready implies the TSA threshold is met")
        } else {
            self.host
                .finalize(&mut self.tsa)
                // papaya-lint: allow(panic-hygiene) -- take() is gated on is_ready, which requires the TSA threshold; refusal is an internal invariant breach
                .expect("is_ready implies the TSA threshold is met")
        };
        self.timings.unmask_s += start.elapsed().as_secs_f64();
        self.telemetry.tsa_key_releases += 1;
        // Weighted average: the weight total is public metadata, so the
        // division happens in the clear — mirroring WeightedBuffer, an
        // all-zero-weight buffer releases an exact zero delta.
        let weight_sum = std::mem::replace(&mut self.weight_sum, 0.0);
        let released = if weight_sum > 0.0 {
            let mut sum = ParamVec::from_vec(decoded);
            sum.scale((1.0 / weight_sum) as f32);
            sum
        } else {
            ParamVec::zeros(self.config.vector_len)
        };
        let error = released
            .as_slice()
            .iter()
            .zip(reference.as_slice())
            .map(|(s, c)| (s - c).abs() as f64)
            .fold(0.0, f64::max);
        self.telemetry.quantization_error_trace.push((now_s, error));
        // Fixed-point error budget for this release: one half-quantum of
        // encode rounding per contribution (plus one for the decode),
        // scaled down by the weight total, plus `f32` representation noise
        // on the reference.  An error past the budget cannot come from
        // quantization — a client's weighted delta saturated at encode or
        // the aggregate wrapped the modulus — so flag the release instead
        // of letting a garbage delta pass silently.
        let reference_magnitude = reference
            .as_slice()
            .iter()
            .map(|v| v.abs() as f64)
            .fold(0.0, f64::max);
        let quanta = (accepted as f64 + 1.0) / self.config.codec.scale();
        let budget = if weight_sum > 0.0 {
            quanta / weight_sum + reference_magnitude * 1e-4 + 1e-9
        } else {
            0.0
        };
        if error > budget {
            self.telemetry.out_of_range_releases += 1;
        }
        self.sync_boundary();
        Some(released)
    }

    /// Drops the buffer on both sides of the TEE boundary **without** a key
    /// release (the Aggregator holding the masked sum died); the TSA never
    /// unmasks a partial buffer.  In session mode the crash also
    /// invalidates every cached session — the enclave's epoch key died with
    /// the process — so every client re-handshakes, and speculative results
    /// planned before the crash are rejected by plan id.  The inner
    /// strategy's lifetime stats survive, as the trait requires.
    fn reset(&mut self) -> usize {
        if self.host.accepted() > 0 {
            self.telemetry.buffers_dropped_unreleased += 1;
        }
        if let Some(session) = self.session.as_mut() {
            self.host.discard_masked_sum();
            self.tsa.invalidate_sessions();
            session.secrets.clear();
            session.counters.clear();
            session.planned.clear();
            session.provided.clear();
            session.pending_refs.clear();
            session.valid_from_plan_id = session.next_plan_id;
        } else {
            self.host.discard_buffer(&mut self.tsa);
        }
        self.weight_sum = 0.0;
        self.inner.reset()
    }

    fn goal(&self) -> usize {
        self.inner.goal()
    }

    fn buffered(&self) -> usize {
        self.inner.buffered()
    }

    fn stats(&self) -> &AggregatorStats {
        self.inner.stats()
    }

    fn max_staleness(&self) -> Option<u64> {
        self.inner.max_staleness()
    }

    fn next_deadline_s(&self) -> Option<f64> {
        self.inner.next_deadline_s()
    }

    fn closes_round_on_release(&self) -> bool {
        self.inner.closes_round_on_release()
    }

    fn update_weight(&self, num_examples: usize, staleness: u64) -> f64 {
        self.inner.update_weight(num_examples, staleness)
    }

    fn secure_telemetry(&self) -> Option<&SecureTelemetry> {
        Some(&self.telemetry)
    }

    fn dp_telemetry(&self) -> Option<&crate::dp::DpTelemetry> {
        self.inner.dp_telemetry()
    }

    fn robust_telemetry(&self) -> Option<&crate::robust::RobustTelemetry> {
        self.inner.robust_telemetry()
    }

    /// Issues the mask plan for `client_id`'s upcoming participation so the
    /// expensive half (handshake and/or mask expansion) can run
    /// speculatively off the event loop.  Per-update mode returns `None` —
    /// its protocol draws from a shared RNG and cannot move off-loop.
    fn plan_mask_precompute(&mut self, client_id: usize) -> Option<MaskPlan> {
        self.session.as_ref()?;
        let plan = self.session_plan(client_id);
        session_state(&mut self.session)
            .planned
            .insert(client_id, plan.clone());
        Some(plan)
    }

    /// Accepts a speculatively computed mask.  Results whose plan predates
    /// an invalidation are dropped — the plan's session died with the
    /// crash, so its mask must never be applied.
    fn provide_precomputed_mask(&mut self, client_id: usize, mask: PrecomputedMask) {
        if let Some(session) = self.session.as_mut() {
            if mask.plan_id >= session.valid_from_plan_id {
                session.provided.insert(client_id, mask);
            }
        }
    }

    fn secure_timings(&self) -> Option<SecureTimings> {
        Some(self.timings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fedbuff::FedBuffAggregator;
    use crate::staleness::StalenessWeighting;
    use crate::timed_hybrid::TimedHybridAggregator;

    fn update(id: usize, delta: Vec<f32>, examples: usize, start_version: u64) -> ClientUpdate {
        ClientUpdate {
            client_id: id,
            delta: ParamVec::from_vec(delta),
            num_examples: examples,
            start_version,
            train_loss: 0.0,
        }
    }

    fn secure_fedbuff(goal: usize, weighting: StalenessWeighting) -> SecureAggregator {
        SecureAggregator::new(
            Box::new(FedBuffAggregator::new(goal, weighting, Some(5))),
            2,
            goal,
            0xC0DE,
        )
    }

    fn per_update_fedbuff(goal: usize, weighting: StalenessWeighting) -> SecureAggregator {
        SecureAggregator::new_per_update(
            Box::new(FedBuffAggregator::new(goal, weighting, Some(5))),
            2,
            goal,
            0xC0DE,
        )
    }

    fn deviant_fedbuff(kind: crate::adversary::DeviationKind) -> SecureAggregator {
        secure_fedbuff(2, StalenessWeighting::Constant).with_deviation(
            crate::adversary::AdversarySpec::new(
                1.0,
                crate::adversary::Malice::SecAggDeviation { kind },
            ),
        )
    }

    #[test]
    fn wrong_counter_deviation_is_flagged_never_a_panic() {
        let mut agg = deviant_fedbuff(crate::adversary::DeviationKind::WrongCounter);
        agg.accumulate(update(0, vec![0.5, -0.25], 10, 0), 0, 0.0);
        agg.accumulate(update(1, vec![0.25, 0.125], 10, 0), 0, 0.0);
        let released = agg.take(0.0).expect("deviant buffers still release");
        assert!(released.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(
            agg.telemetry().out_of_range_releases,
            1,
            "mask residue must be caught by the error budget"
        );
        // Consistent liars clear the advanced TSA floor on the next buffer
        // too: the protocol keeps running, each garbage release flagged.
        agg.accumulate(update(0, vec![0.5, -0.25], 10, 1), 1, 1.0);
        agg.accumulate(update(1, vec![0.25, 0.125], 10, 1), 1, 1.0);
        assert!(agg.take(1.0).is_some());
        assert_eq!(agg.telemetry().out_of_range_releases, 2);
    }

    #[test]
    fn garbage_mask_deviation_is_flagged_never_a_panic() {
        let mut agg = deviant_fedbuff(crate::adversary::DeviationKind::GarbageMask);
        agg.accumulate(update(0, vec![0.5, -0.25], 10, 0), 0, 0.0);
        agg.accumulate(update(1, vec![0.25, 0.125], 10, 0), 0, 0.0);
        let released = agg.take(0.0).expect("deviant buffers still release");
        assert!(released.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(
            agg.telemetry().out_of_range_releases,
            1,
            "the surviving pad must be caught by the error budget"
        );
    }

    #[test]
    fn honest_cohort_with_a_deviant_minority_is_still_flagged() {
        // fraction 1.0 but only client ids the hash marks... use 0.5 and
        // find one honest + one deviant id so the release mixes both.
        let spec = crate::adversary::AdversarySpec::new(
            0.5,
            crate::adversary::Malice::SecAggDeviation {
                kind: crate::adversary::DeviationKind::GarbageMask,
            },
        );
        let honest = (0..100).find(|&id| !spec.is_malicious(id)).unwrap();
        let deviant = (0..100).find(|&id| spec.is_malicious(id)).unwrap();
        let mut agg = secure_fedbuff(2, StalenessWeighting::Constant).with_deviation(spec);
        agg.accumulate(update(honest, vec![0.5, -0.25], 10, 0), 0, 0.0);
        agg.accumulate(update(deviant, vec![0.25, 0.125], 10, 0), 0, 0.0);
        agg.take(0.0).expect("release proceeds");
        assert_eq!(agg.telemetry().out_of_range_releases, 1);
    }

    #[test]
    fn non_deviation_malice_never_arms_the_secure_hook() {
        let agg = secure_fedbuff(2, StalenessWeighting::Constant).with_deviation(
            crate::adversary::AdversarySpec::new(
                1.0,
                crate::adversary::Malice::SignFlip { scale: 1.0 },
            ),
        );
        assert!(agg.deviation.is_none(), "delta attacks live in the runtime");
    }

    #[test]
    fn secure_release_matches_clear_release_to_fixed_point_tolerance() {
        let mut clear = FedBuffAggregator::new(3, StalenessWeighting::PolynomialHalf, Some(5));
        let mut secure = secure_fedbuff(3, StalenessWeighting::PolynomialHalf);
        let updates = [
            update(0, vec![0.25, -1.5], 10, 0),
            update(1, vec![1.125, 0.5], 30, 0),
            update(2, vec![-0.75, 2.0], 20, 1),
        ];
        for u in &updates {
            assert!(clear.accumulate(u.clone(), 2, 0.0).accepted());
            assert!(secure.accumulate(u.clone(), 2, 0.0).accepted());
        }
        let clear_out = clear.take(0.0).unwrap();
        let secure_out = secure.take(0.0).unwrap();
        for (c, s) in clear_out.as_slice().iter().zip(secure_out.as_slice()) {
            assert!((c - s).abs() < 1e-4, "clear {c} vs secure {s}");
        }
        let telemetry = secure.telemetry();
        assert_eq!(telemetry.masked_updates, 3);
        assert_eq!(telemetry.tsa_key_releases, 1);
        assert_eq!(telemetry.quantization_error_trace.len(), 1);
        assert!(telemetry.max_quantization_error() < 1e-4);
        assert!(telemetry.tee_bytes_in > 0 && telemetry.tee_bytes_out > 0);
    }

    #[test]
    fn secure_releases_are_deterministic_for_a_seed() {
        let run = || {
            let mut agg = secure_fedbuff(2, StalenessWeighting::Constant);
            agg.accumulate(update(0, vec![0.3, 0.7], 10, 0), 0, 0.0);
            agg.accumulate(update(1, vec![-0.1, 0.2], 20, 0), 0, 1.0);
            agg.take(1.0).unwrap()
        };
        assert_eq!(run().as_slice(), run().as_slice());
    }

    #[test]
    fn rejected_stale_upload_is_discarded_masked_not_submitted() {
        for mut agg in [
            secure_fedbuff(2, StalenessWeighting::Constant),
            per_update_fedbuff(2, StalenessWeighting::Constant),
        ] {
            // max_staleness is 5; staleness 7 must be rejected by the inner
            // policy, and the masked upload dropped without a seed forward.
            let outcome = agg.accumulate(update(0, vec![1.0, 1.0], 10, 0), 7, 0.0);
            assert!(!outcome.accepted());
            assert_eq!(agg.telemetry().masked_discarded, 1);
            assert_eq!(agg.telemetry().masked_updates, 0);
            assert_eq!(agg.tsa.processed_clients(), 0);
            assert_eq!(agg.host.accepted(), 0);
            assert_eq!(agg.stats().rejected_stale, 1);
        }
    }

    #[test]
    fn reset_drops_masked_buffer_without_key_release() {
        let mut agg = secure_fedbuff(3, StalenessWeighting::Constant);
        agg.accumulate(update(0, vec![1.0, 1.0], 10, 0), 0, 0.0);
        agg.accumulate(update(1, vec![2.0, 2.0], 10, 0), 0, 0.0);
        assert_eq!(agg.reset(), 2);
        let telemetry = agg.telemetry();
        assert_eq!(telemetry.buffers_dropped_unreleased, 1);
        assert_eq!(telemetry.tsa_key_releases, 0);
        // Lifetime stats survive, and the next buffer is uncontaminated.
        assert_eq!(agg.stats().accepted, 2);
        for i in 0..3 {
            agg.accumulate(update(10 + i, vec![4.0, -4.0], 10, 0), 0, 1.0);
        }
        let out = agg.take(1.0).unwrap();
        assert!((out.as_slice()[0] - 4.0).abs() < 1e-4, "{out:?}");
        assert_eq!(agg.telemetry().tsa_key_releases, 1);
        // Resetting an empty buffer does not count a dropped buffer.
        assert_eq!(agg.reset(), 0);
        assert_eq!(agg.telemetry().buffers_dropped_unreleased, 1);
    }

    #[test]
    fn below_threshold_deadline_release_is_blocked() {
        // A timed hybrid with threshold 2: the deadline passes with a single
        // buffered update, but the TSA refuses the key release, so nothing
        // moves and the buffered update survives for the next arrival.
        let inner = Box::new(TimedHybridAggregator::new(
            10,
            StalenessWeighting::Constant,
            None,
            60.0,
        ));
        let mut agg = SecureAggregator::new(inner, 2, 2, 7);
        agg.accumulate(update(0, vec![1.0, 0.0], 10, 0), 0, 0.0);
        assert!(!agg.is_ready(1e6), "threshold must gate readiness");
        assert!(agg.take(1e6).is_none());
        assert_eq!(agg.buffered(), 1, "blocked release must not drain");
        // A second contribution satisfies the threshold.
        agg.accumulate(update(1, vec![0.0, 1.0], 10, 0), 0, 2.0);
        assert!(agg.is_ready(70.0));
        let out = agg.take(70.0).unwrap();
        assert!((out.as_slice()[0] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn all_zero_weight_buffer_releases_exact_zeros() {
        let mut agg = secure_fedbuff(2, StalenessWeighting::Constant);
        agg.accumulate(update(0, vec![3.0, -1.0], 0, 0), 0, 0.0);
        agg.accumulate(update(1, vec![5.0, 2.0], 0, 0), 0, 0.0);
        assert_eq!(agg.take(0.0).unwrap().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn tee_traffic_per_client_is_independent_of_model_size() {
        let per_client = |dim: usize| {
            let inner = Box::new(FedBuffAggregator::new(
                2,
                StalenessWeighting::Constant,
                None,
            ));
            let mut agg = SecureAggregator::new(inner, dim, 2, 3);
            agg.accumulate(update(0, [0.1; 2].repeat(dim / 2), 10, 0), 0, 0.0);
            agg.accumulate(update(1, [0.2; 2].repeat(dim / 2), 10, 0), 0, 0.0);
            agg.take(0.0).unwrap();
            agg.telemetry().tee_bytes_in_per_client()
        };
        let small = per_client(4);
        let large = per_client(4096);
        assert!(small > 0.0);
        assert_eq!(small, large, "inbound TEE bytes must not scale with m");
    }

    #[test]
    fn out_of_range_aggregates_are_flagged_not_silent() {
        // A deliberately tiny group (±128 representable) so two in-range
        // contributions wrap the modulus when summed: the release must be
        // counted as out-of-range instead of passing silently.
        let inner = Box::new(FedBuffAggregator::new(
            2,
            StalenessWeighting::Constant,
            None,
        ));
        let mut config = SecAggConfig::insecure_fast(1, 2);
        config.codec = FixedPointCodec::new(GroupParams::new(1 << 16), 256.0);
        let mut agg = SecureAggregator::with_config(inner, config, 9);
        agg.accumulate(update(0, vec![100.0], 1, 0), 0, 0.0);
        agg.accumulate(update(1, vec![100.0], 1, 0), 0, 0.0);
        let released = agg.take(0.0).unwrap();
        assert_eq!(agg.telemetry().out_of_range_releases, 1);
        // The wrapped decode is nowhere near the clear average of 100.
        assert!((released.as_slice()[0] - 100.0).abs() > 1.0);

        // A healthy buffer afterwards is not flagged.
        agg.accumulate(update(2, vec![1.0], 1, 0), 0, 1.0);
        agg.accumulate(update(3, vec![2.0], 1, 0), 0, 1.0);
        let ok = agg.take(1.0).unwrap();
        assert!((ok.as_slice()[0] - 1.5).abs() < 1e-2);
        assert_eq!(agg.telemetry().out_of_range_releases, 1);
    }

    #[test]
    fn telemetry_sync_from_is_incremental_on_the_trace() {
        let mut dst = SecureTelemetry::default();
        let mut src = SecureTelemetry {
            masked_updates: 3,
            tsa_key_releases: 1,
            quantization_error_trace: vec![(1.0, 1e-6)],
            ..SecureTelemetry::default()
        };
        dst.sync_from(&src);
        assert_eq!(dst, src);
        src.tsa_key_releases = 2;
        src.quantization_error_trace.push((2.0, 2e-6));
        dst.sync_from(&src);
        assert_eq!(dst, src);
        // Re-syncing an unchanged stream is a no-op, not a duplication.
        dst.sync_from(&src);
        assert_eq!(dst.quantization_error_trace.len(), 2);
    }

    #[test]
    fn rejected_upload_releases_tsa_exchange_state() {
        let mut agg = per_update_fedbuff(2, StalenessWeighting::Constant);
        // Rejected by the staleness bound: the exchange must be revoked, so
        // the TSA holds no pending per-client state afterwards.
        agg.accumulate(update(0, vec![1.0, 1.0], 10, 0), 7, 0.0);
        assert_eq!(agg.tsa.pending_exchanges(), 0);
    }

    #[test]
    fn rejected_first_contact_pins_no_session_state_but_burns_its_counter() {
        let mut agg = secure_fedbuff(2, StalenessWeighting::Constant);
        // A policy-rejected first contact must not establish a session on
        // either side of the boundary...
        agg.accumulate(update(0, vec![1.0, 1.0], 10, 0), 7, 0.0);
        assert_eq!(agg.tsa.active_sessions(), 0);
        let session = agg.session.as_ref().unwrap();
        assert!(session.secrets.is_empty());
        assert!(session.pending_refs.is_empty());
        // ...but its ratchet counter is burned, so the retry can never
        // reuse the rejected participation's mask seed.
        assert_eq!(session.counters[&0], 1);
        agg.accumulate(update(0, vec![1.0, 1.0], 10, 0), 0, 1.0);
        let session = agg.session.as_ref().unwrap();
        assert_eq!(session.counters[&0], 2);
        assert_eq!(
            session.pending_refs,
            vec![MaskRef {
                client_id: 0,
                counter: 1,
            }]
        );
        assert_eq!(agg.tsa.active_sessions(), 1);
    }

    #[test]
    fn rejected_resumed_participation_revokes_its_counter() {
        let mut agg = secure_fedbuff(2, StalenessWeighting::Constant);
        // Establish client 0's session with an accepted first contact.
        agg.accumulate(update(0, vec![1.0, 1.0], 10, 0), 0, 0.0);
        assert_eq!(agg.telemetry().session_cache_misses, 1);
        // Its next participation is rejected: the cached session survives,
        // but the TSA burns the counter so the seed can never be released.
        agg.accumulate(update(0, vec![2.0, 2.0], 10, 0), 7, 1.0);
        assert_eq!(agg.telemetry().session_cache_hits, 1);
        assert_eq!(agg.tsa.active_sessions(), 1);
        // The pending counter 0 of the open buffer must still release.
        agg.accumulate(update(1, vec![3.0, 3.0], 10, 0), 0, 2.0);
        let out = agg.take(2.0).unwrap();
        assert!((out.as_slice()[0] - 2.0).abs() < 1e-4, "{out:?}");
    }

    #[test]
    fn session_cache_amortizes_handshakes_across_buffers() {
        let mut agg = secure_fedbuff(2, StalenessWeighting::Constant);
        for round in 0..4u64 {
            agg.accumulate(update(0, vec![0.5, 0.5], 10, round), round, round as f64);
            agg.accumulate(update(1, vec![1.5, 1.5], 10, round), round, round as f64);
            assert!(agg.take(round as f64).is_some());
        }
        let telemetry = agg.telemetry();
        // 2 distinct clients handshake once each; the other 6 masked
        // updates ride the cached sessions.
        assert_eq!(telemetry.session_cache_misses, 2);
        assert_eq!(telemetry.session_cache_hits, 6);
        assert_eq!(telemetry.dh_exchanges_saved, 6);
        assert_eq!(telemetry.tsa_key_releases, 4);
        assert_eq!(agg.tsa.active_sessions(), 2);
    }

    #[test]
    fn session_and_per_update_releases_are_bit_identical() {
        // Masks cancel exactly in both protocol modes, so the released
        // aggregates must match bit for bit, not just to tolerance.
        let mut session = secure_fedbuff(3, StalenessWeighting::PolynomialHalf);
        let mut per_update = per_update_fedbuff(3, StalenessWeighting::PolynomialHalf);
        let updates = [
            update(0, vec![0.25, -1.5], 10, 0),
            update(1, vec![1.125, 0.5], 30, 0),
            update(2, vec![-0.75, 2.0], 20, 1),
        ];
        for u in &updates {
            assert!(session.accumulate(u.clone(), 2, 0.0).accepted());
            assert!(per_update.accumulate(u.clone(), 2, 0.0).accepted());
        }
        let a = session.take(0.0).unwrap();
        let b = per_update.take(0.0).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn speculative_precompute_is_bit_identical_to_inline() {
        use papaya_secagg::MaskScratch;
        let run = |speculate: bool| {
            let mut agg = secure_fedbuff(2, StalenessWeighting::Constant);
            let mut scratch = MaskScratch::default();
            let mut releases = Vec::new();
            for round in 0..3u64 {
                for id in 0..2usize {
                    if speculate {
                        // The executor's contract: compute the plan on some
                        // worker, hand the result back before the upload.
                        let plan = agg.plan_mask_precompute(id).unwrap();
                        let pre = plan.compute(&mut scratch);
                        agg.provide_precomputed_mask(id, pre);
                    }
                    agg.accumulate(
                        update(id, vec![0.1 * id as f32, -0.2], 10, round),
                        round,
                        round as f64,
                    );
                }
                releases.push(agg.take(round as f64).unwrap().as_slice().to_vec());
            }
            let hits = agg.telemetry().session_cache_hits;
            let timings = agg.timings();
            (releases, hits, timings)
        };
        let (inline_out, inline_hits, _) = run(false);
        let (spec_out, spec_hits, spec_timings) = run(true);
        assert_eq!(inline_out, spec_out);
        assert_eq!(inline_hits, spec_hits);
        // With every mask provided speculatively, no handshake or mask
        // expansion ever ran on the "event loop".
        assert_eq!(spec_timings.handshake_s, 0.0);
        assert_eq!(spec_timings.mask_s, 0.0);
        assert!(spec_timings.encode_s > 0.0);
    }

    #[test]
    fn stale_speculative_results_are_rejected_after_reset() {
        let mut agg = secure_fedbuff(2, StalenessWeighting::Constant);
        let plan = agg.plan_mask_precompute(0).unwrap();
        let pre = plan.compute(&mut papaya_secagg::MaskScratch::default());
        // The aggregator crashes between the plan and the result arriving.
        agg.reset();
        agg.provide_precomputed_mask(0, pre);
        assert!(
            agg.session.as_ref().unwrap().provided.is_empty(),
            "a pre-crash speculative mask must not survive the invalidation"
        );
        // The post-crash epoch re-handshakes and still aggregates exactly.
        agg.accumulate(update(0, vec![1.0, -1.0], 10, 0), 0, 1.0);
        agg.accumulate(update(1, vec![3.0, 1.0], 10, 0), 0, 1.0);
        let out = agg.take(1.0).unwrap();
        assert!((out.as_slice()[0] - 2.0).abs() < 1e-4, "{out:?}");
        assert_eq!(agg.telemetry().session_cache_misses, 2);
    }

    #[test]
    fn reset_invalidates_sessions_and_forces_rehandshakes() {
        let mut agg = secure_fedbuff(2, StalenessWeighting::Constant);
        agg.accumulate(update(0, vec![1.0, 1.0], 10, 0), 0, 0.0);
        agg.accumulate(update(1, vec![1.0, 1.0], 10, 0), 0, 0.0);
        assert_eq!(agg.tsa.active_sessions(), 2);
        let epoch_before = agg.tsa.session_epoch();
        agg.reset();
        assert_eq!(agg.tsa.active_sessions(), 0);
        assert_eq!(agg.tsa.session_epoch(), epoch_before + 1);
        assert_eq!(agg.telemetry().buffers_dropped_unreleased, 1);
        assert_eq!(agg.telemetry().tsa_key_releases, 0);
        // The same clients handshake again in the new epoch.
        agg.accumulate(update(0, vec![2.0, 0.0], 10, 0), 0, 1.0);
        agg.accumulate(update(1, vec![0.0, 2.0], 10, 0), 0, 1.0);
        assert_eq!(agg.telemetry().session_cache_misses, 4);
        assert_eq!(agg.telemetry().session_cache_hits, 0);
        let out = agg.take(1.0).unwrap();
        assert!((out.as_slice()[0] - 1.0).abs() < 1e-4, "{out:?}");
    }

    #[test]
    fn recommended_threshold_follows_the_release_pattern() {
        assert_eq!(
            recommended_threshold(&TaskConfig::async_task("a", 100, 25)),
            25
        );
        assert_eq!(
            recommended_threshold(&TaskConfig::sync_task("s", 130, 0.3)),
            100
        );
        assert_eq!(
            recommended_threshold(&TaskConfig::timed_hybrid_task("h", 10, 4, 60.0)),
            1
        );
    }

    #[test]
    #[should_panic(expected = "dimensionality does not match")]
    fn mismatched_dimensions_panic() {
        let mut agg = secure_fedbuff(2, StalenessWeighting::Constant);
        agg.accumulate(update(0, vec![1.0], 10, 0), 0, 0.0);
    }
}
