//! The timed hybrid strategy: a FedBuff buffer with a round deadline.
//!
//! The paper's sync/async comparison (Sections 3 and 7) is a story about
//! stragglers: synchronous rounds are gated on the slowest cohort member,
//! while FedBuff waits for a *count* and can stall when arrivals dry up
//! (small populations, aggressive eligibility criteria, night-time troughs).
//! `TimedHybridAggregator` combines the two release conditions: it buffers
//! and staleness-weights updates exactly like FedBuff, but the moment the
//! first update of a buffer arrives a deadline starts ticking, and when the
//! deadline expires the buffer is released with whatever has arrived — a
//! sync-style round boundary without sync-style discarded work.
//!
//! Unlike a synchronous round, a deadline release does **not** close a
//! round: still-running clients keep training and their uploads remain
//! welcome, subject to the staleness bound.

use crate::aggregator::{AccumulateOutcome, Aggregator, AggregatorStats, WeightedBuffer};
use crate::client::ClientUpdate;
use crate::staleness::StalenessWeighting;
use papaya_nn::params::ParamVec;

/// A buffered aggregator that force-releases on a round deadline.
#[derive(Clone, Debug)]
pub struct TimedHybridAggregator {
    aggregation_goal: usize,
    staleness_weighting: StalenessWeighting,
    max_staleness: Option<u64>,
    weight_by_examples: bool,
    round_deadline_s: f64,
    buffer: WeightedBuffer,
    stats: AggregatorStats,
    /// When the first update of the current buffer arrived; the deadline is
    /// measured from here.  `None` while the buffer is empty.
    open_since_s: Option<f64>,
    timed_releases: u64,
}

impl TimedHybridAggregator {
    /// Creates a hybrid aggregator: release at `aggregation_goal` buffered
    /// updates *or* `round_deadline_s` seconds after the buffer opened,
    /// whichever comes first.  `max_staleness = None` disables the staleness
    /// bound.
    ///
    /// # Panics
    ///
    /// Panics if `aggregation_goal == 0` or `round_deadline_s` is not
    /// positive and finite.
    pub fn new(
        aggregation_goal: usize,
        staleness_weighting: StalenessWeighting,
        max_staleness: Option<u64>,
        round_deadline_s: f64,
    ) -> Self {
        assert!(aggregation_goal > 0, "aggregation goal must be positive");
        assert!(
            round_deadline_s > 0.0 && round_deadline_s.is_finite(),
            "round deadline must be positive and finite"
        );
        TimedHybridAggregator {
            aggregation_goal,
            staleness_weighting,
            max_staleness,
            weight_by_examples: true,
            round_deadline_s,
            buffer: WeightedBuffer::default(),
            stats: AggregatorStats::default(),
            open_since_s: None,
            timed_releases: 0,
        }
    }

    /// Disables (or re-enables) weighting by example count.
    pub fn with_example_weighting(mut self, enabled: bool) -> Self {
        self.weight_by_examples = enabled;
        self
    }

    /// The configured round deadline in seconds.
    pub fn round_deadline_s(&self) -> f64 {
        self.round_deadline_s
    }

    /// The virtual time at which the open buffer will be force-released, or
    /// `None` while the buffer is empty.  Drivers can use this to schedule
    /// a readiness check instead of polling.
    pub fn next_deadline_s(&self) -> Option<f64> {
        self.open_since_s.map(|t| t + self.round_deadline_s)
    }

    /// Releases performed because the deadline expired before the goal was
    /// met (the straggler-bounding path).
    pub fn timed_releases(&self) -> u64 {
        self.timed_releases
    }

    fn deadline_expired(&self, now_s: f64) -> bool {
        match self.open_since_s {
            Some(opened) => now_s - opened >= self.round_deadline_s,
            None => false,
        }
    }
}

// papaya-lint: allow(decorator-conformance) -- base strategy, no inner aggregator to forward to; the trait defaults are the correct behavior
impl Aggregator for TimedHybridAggregator {
    fn accumulate(
        &mut self,
        update: ClientUpdate,
        current_version: u64,
        now_s: f64,
    ) -> AccumulateOutcome {
        let staleness = update.staleness(current_version);
        if let Some(max) = self.max_staleness {
            if staleness > max {
                self.stats.record_rejected_stale();
                return AccumulateOutcome::RejectedStale {
                    staleness,
                    max_staleness: max,
                };
            }
        }
        let weight = self.update_weight(update.num_examples, staleness);
        if self.buffer.len() == 0 {
            self.open_since_s = Some(now_s);
        }
        self.buffer.fold(&update.delta, weight);
        self.stats.record_accepted(staleness);
        AccumulateOutcome::Accepted { staleness }
    }

    /// Ready once the goal is met, or once the deadline has expired with at
    /// least one buffered update.
    fn is_ready(&self, now_s: f64) -> bool {
        self.buffer.len() >= self.aggregation_goal
            || (self.buffer.len() > 0 && self.deadline_expired(now_s))
    }

    fn take(&mut self, now_s: f64) -> Option<ParamVec> {
        if !self.is_ready(now_s) {
            return None;
        }
        if self.buffer.len() < self.aggregation_goal {
            self.timed_releases = self.timed_releases.saturating_add(1);
        }
        self.open_since_s = None;
        self.buffer.release()
    }

    fn reset(&mut self) -> usize {
        self.open_since_s = None;
        self.buffer.clear()
    }

    fn goal(&self) -> usize {
        self.aggregation_goal
    }

    fn buffered(&self) -> usize {
        self.buffer.len()
    }

    fn stats(&self) -> &AggregatorStats {
        &self.stats
    }

    fn max_staleness(&self) -> Option<u64> {
        self.max_staleness
    }

    fn next_deadline_s(&self) -> Option<f64> {
        TimedHybridAggregator::next_deadline_s(self)
    }

    /// FedBuff's weighting: example count (zero-example clients contribute
    /// nothing) times the staleness down-weight.
    fn update_weight(&self, num_examples: usize, staleness: u64) -> f64 {
        let example_weight = if self.weight_by_examples {
            num_examples as f64
        } else {
            1.0
        };
        example_weight * self.staleness_weighting.weight(staleness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::Aggregator;

    fn update(id: usize, delta: Vec<f32>, examples: usize, start_version: u64) -> ClientUpdate {
        ClientUpdate {
            client_id: id,
            delta: ParamVec::from_vec(delta),
            num_examples: examples,
            start_version,
            train_loss: 0.0,
        }
    }

    fn hybrid(goal: usize, deadline_s: f64) -> TimedHybridAggregator {
        TimedHybridAggregator::new(goal, StalenessWeighting::Constant, None, deadline_s)
    }

    #[test]
    fn releases_at_goal_like_fedbuff() {
        let mut agg = hybrid(2, 1000.0);
        agg.accumulate(update(0, vec![2.0], 10, 0), 0, 0.0);
        assert!(!agg.is_ready(1.0));
        agg.accumulate(update(1, vec![4.0], 10, 0), 0, 2.0);
        assert!(agg.is_ready(2.0));
        assert_eq!(agg.take(2.0).unwrap().as_slice(), &[3.0]);
        assert_eq!(agg.timed_releases(), 0);
    }

    #[test]
    fn deadline_forces_partial_release() {
        let mut agg = hybrid(100, 60.0);
        agg.accumulate(update(0, vec![2.0], 10, 0), 0, 10.0);
        assert_eq!(agg.next_deadline_s(), Some(70.0));
        assert!(!agg.is_ready(69.9));
        assert!(agg.take(69.9).is_none());
        assert!(agg.is_ready(70.0));
        assert_eq!(agg.take(70.0).unwrap().as_slice(), &[2.0]);
        assert_eq!(agg.timed_releases(), 1);
        assert_eq!(agg.buffered(), 0);
        assert_eq!(agg.next_deadline_s(), None);
    }

    #[test]
    fn deadline_restarts_with_each_new_buffer() {
        let mut agg = hybrid(10, 60.0);
        agg.accumulate(update(0, vec![1.0], 1, 0), 0, 0.0);
        assert!(agg.take(60.0).is_some());
        // The next buffer opens at its own first arrival, not the old one.
        agg.accumulate(update(1, vec![5.0], 1, 0), 0, 100.0);
        assert_eq!(agg.next_deadline_s(), Some(160.0));
        assert!(!agg.is_ready(120.0));
        assert!(agg.is_ready(160.0));
    }

    #[test]
    fn empty_buffer_never_becomes_ready() {
        let agg = hybrid(10, 60.0);
        assert!(!agg.is_ready(1e9));
    }

    #[test]
    fn stale_updates_are_rejected_like_fedbuff() {
        let mut agg = TimedHybridAggregator::new(10, StalenessWeighting::Constant, Some(3), 60.0);
        let outcome = agg.accumulate(update(0, vec![1.0], 10, 0), 5, 0.0);
        assert_eq!(
            outcome,
            AccumulateOutcome::RejectedStale {
                staleness: 5,
                max_staleness: 3
            }
        );
        assert_eq!(agg.stats().rejected_stale, 1);
        // A rejected update does not open the deadline window.
        assert_eq!(agg.next_deadline_s(), None);
    }

    #[test]
    fn reset_closes_the_deadline_window() {
        let mut agg = hybrid(10, 60.0);
        agg.accumulate(update(0, vec![1.0], 1, 0), 0, 0.0);
        agg.accumulate(update(1, vec![1.0], 1, 0), 0, 1.0);
        assert_eq!(agg.reset(), 2);
        assert_eq!(agg.next_deadline_s(), None);
        assert!(!agg.is_ready(1e9));
        // Lifetime counters survive.
        assert_eq!(agg.stats().accepted, 2);
    }

    #[test]
    fn staleness_weighting_applies_to_buffered_updates() {
        let mut agg =
            TimedHybridAggregator::new(2, StalenessWeighting::PolynomialHalf, None, 1000.0);
        agg.accumulate(update(0, vec![0.0], 10, 5), 5, 0.0);
        agg.accumulate(update(1, vec![1.0], 10, 2), 5, 1.0);
        // Weighted average: (0*1 + 1*0.5) / 1.5 = 1/3, as in FedBuff.
        assert!((agg.take(1.0).unwrap().as_slice()[0] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "round deadline must be positive")]
    fn non_positive_deadline_rejected() {
        let _ = hybrid(10, 0.0);
    }
}
