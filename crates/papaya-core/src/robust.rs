//! The [`RobustAggregator`] decorator: Byzantine-robust aggregation for any
//! strategy.
//!
//! The defense half of the Byzantine threat model (the attack half is
//! [`crate::adversary`]), in the same decorator shape as
//! [`SecureAggregator`](crate::secure::SecureAggregator) and
//! [`DpAggregator`](crate::dp::DpAggregator).  It stacks **outermost** —
//! `robust(dp(secure(strategy)))` — so defenses inspect exactly what the
//! device uploaded, before DP clipping can shrink an attack back into
//! bounds and hide it:
//!
//! * on [`accumulate`](Aggregator::accumulate), updates carrying NaN or
//!   infinite values are rejected with a typed outcome before they can
//!   poison any downstream statistic, and the
//!   [`NormFilter`](RobustDefense::NormFilter) defense rejects updates
//!   whose L2 norm exceeds its bound;
//! * on [`take`](Aggregator::take), the estimator defenses
//!   ([`TrimmedMean`](RobustDefense::TrimmedMean) and
//!   [`CoordinateMedian`](RobustDefense::CoordinateMedian)) replace the
//!   wrapped release with a coordinate-wise robust statistic computed over
//!   the buffer's clear updates — which is also what neutralizes SecAgg
//!   protocol deviations: a garbage-masked secure release is simply
//!   discarded in favor of the robust estimate.
//!
//! # Neutral settings are bit-exact
//!
//! Every defense has a *neutral* setting under which the decorator is a
//! pure pass-through: a norm filter at `∞` and a trimmed mean with
//! `trim_fraction == 0` forward every finite update and release untouched,
//! so a no-attack run with a neutral defense is **bit-identical** to the
//! clear run — the robustness analogue of the zero-noise DP equivalence.
//! The telemetry counters stay at their defaults in such runs, which is
//! what lets reports hash robustness telemetry conditionally without
//! perturbing pre-existing fingerprints.
//!
//! # Composition caveat (documented, deliberate)
//!
//! An *engaged* estimator defense recomputes the release from buffered
//! clear updates, bypassing the inner layers' release path: under SecAgg it
//! models the paper's TEE running the robust estimator inside the enclave
//! (the simulator, standing in for the TEE, legitimately holds the clear
//! updates), and under DP it replaces the noised release, trading the
//! privacy guarantee for robustness.  `docs/THREAT_MODEL.md` spells out
//! this trade; the norm filter composes with both without caveats.

use crate::aggregator::{AccumulateOutcome, Aggregator, AggregatorStats};
use crate::client::ClientUpdate;
use papaya_nn::params::ParamVec;

/// A Byzantine-robust aggregation rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RobustDefense {
    /// Rejects any update whose L2 norm exceeds `max_norm` before it
    /// reaches the wrapped strategy.  `f64::INFINITY` is the neutral
    /// setting (nothing finite is ever rejected).
    NormFilter {
        /// The L2 bound; must be positive (infinity allowed).
        max_norm: f64,
    },
    /// Releases the coordinate-wise trimmed mean of the buffer's clear
    /// updates: per coordinate, the `⌊trim_fraction · n⌋` smallest and
    /// largest values are dropped and the rest are weight-averaged.
    /// `trim_fraction == 0` is the neutral setting — a documented pure
    /// pass-through of the wrapped release, *not* an estimator over the
    /// full buffer (the weighted mean of everything is what the inner
    /// strategy already released, bit-exactly).
    TrimmedMean {
        /// Fraction trimmed from each tail, in `[0, 0.5)`.
        trim_fraction: f64,
    },
    /// Releases the coordinate-wise weighted median of the buffer's clear
    /// updates — the strongest estimator here (breakdown point 1/2), with
    /// no neutral setting: configuring it always engages the estimator.
    CoordinateMedian,
}

/// Robust-aggregation configuration of one task.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RobustConfig {
    /// The defense applied to this task's updates and releases.
    pub defense: RobustDefense,
}

impl RobustConfig {
    /// A robust configuration with the given defense.
    pub fn new(defense: RobustDefense) -> Self {
        RobustConfig { defense }
    }

    /// The neutral configuration: a norm filter at infinity.  Wrapping a
    /// task in it changes nothing but the availability of robustness
    /// telemetry (which stays all-zero without an attack).
    pub fn neutral() -> Self {
        RobustConfig {
            defense: RobustDefense::NormFilter {
                max_norm: f64::INFINITY,
            },
        }
    }

    /// Panics unless every knob is in its valid range; called by
    /// scenario-side config validation and by [`RobustAggregator::new`].
    ///
    /// # Panics
    ///
    /// Panics on a non-positive or NaN norm bound, or a trim fraction
    /// outside `[0, 0.5)`.
    pub fn validate(&self) {
        // Exhaustive destructure: a new robustness knob must be
        // range-checked here (or explicitly ignored) before it compiles.
        let RobustConfig { defense } = *self;
        match defense {
            RobustDefense::NormFilter { max_norm } => assert!(
                max_norm > 0.0 && !max_norm.is_nan(),
                "robust: norm bound must be positive (infinity = neutral), got {max_norm}"
            ),
            RobustDefense::TrimmedMean { trim_fraction } => assert!(
                (0.0..0.5).contains(&trim_fraction),
                "robust: trim fraction must be in [0, 0.5), got {trim_fraction}"
            ),
            RobustDefense::CoordinateMedian => {}
        }
    }
}

/// One estimator release, as recorded in the telemetry trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RobustRelease {
    /// Virtual time of the release, in seconds.
    pub time_s: f64,
    /// Number of clear updates the estimator was computed over.
    pub estimated_over: u64,
    /// Largest absolute per-coordinate difference between the wrapped
    /// release and the robust estimate that replaced it — a measure of how
    /// much the defense actually corrected.
    pub estimator_shift: f64,
}

/// Cumulative counters and traces of the robust-aggregation pipeline,
/// exported through [`Aggregator::robust_telemetry`].
///
/// Every field stays at its default in a no-attack run with a neutral
/// defense: the counters only move on rejections and engaged-estimator
/// releases, never on ordinary accepted updates.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RobustTelemetry {
    /// Updates rejected for carrying NaN or infinite values.
    pub rejected_non_finite: u64,
    /// Updates rejected by the L2 norm filter.
    pub rejected_by_norm: u64,
    /// Releases replaced by an engaged estimator (trimmed mean or median).
    pub estimator_releases: u64,
    /// Append-only per-release trace of engaged-estimator corrections.
    pub estimator_trace: Vec<RobustRelease>,
}

impl RobustTelemetry {
    /// Total updates rejected by any defense.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_non_finite + self.rejected_by_norm
    }

    /// Refreshes `self` from a newer snapshot of the same telemetry
    /// stream: cumulative counters are overwritten and the append-only
    /// estimator trace is extended with the entries `self` has not seen
    /// yet (periodic syncing stays O(new entries), not O(trace)).
    pub fn sync_from(&mut self, src: &RobustTelemetry) {
        let synced = self.estimator_trace.len();
        debug_assert!(
            synced <= src.estimator_trace.len(),
            "telemetry snapshots must come from one growing stream"
        );
        self.estimator_trace
            .extend_from_slice(&src.estimator_trace[synced..]);
        self.rejected_non_finite = src.rejected_non_finite;
        self.rejected_by_norm = src.rejected_by_norm;
        self.estimator_releases = src.estimator_releases;
    }
}

/// An aggregation strategy wrapped in Byzantine-robust filtering and
/// estimation.  See the module docs for the mechanism and the stacking
/// order with the secure and DP decorators.
pub struct RobustAggregator {
    inner: Box<dyn Aggregator>,
    config: RobustConfig,
    /// Clear `(weight, delta)` copies of the buffer in progress, kept only
    /// while an estimator defense is engaged (empty otherwise).
    buffer: Vec<(f64, ParamVec)>,
    telemetry: RobustTelemetry,
}

impl RobustAggregator {
    /// Wraps `inner` in the robust pipeline.  Fully deterministic — no
    /// seed, no RNG: every defense is a pure function of the updates.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (see
    /// [`RobustConfig::validate`]).
    pub fn new(inner: Box<dyn Aggregator>, config: RobustConfig) -> Self {
        config.validate();
        RobustAggregator {
            inner,
            config,
            buffer: Vec::new(),
            telemetry: RobustTelemetry::default(),
        }
    }

    /// The robust configuration.
    pub fn config(&self) -> &RobustConfig {
        &self.config
    }

    /// The cumulative robustness telemetry.
    pub fn telemetry(&self) -> &RobustTelemetry {
        &self.telemetry
    }

    /// Whether releases are replaced by a robust estimator (as opposed to
    /// filter-only defenses, which pass the wrapped release through).
    fn estimator_engaged(&self) -> bool {
        match self.config.defense {
            RobustDefense::NormFilter { .. } => false,
            RobustDefense::TrimmedMean { trim_fraction } => trim_fraction > 0.0,
            RobustDefense::CoordinateMedian => true,
        }
    }
}

impl Aggregator for RobustAggregator {
    /// Applies the accumulate-time defenses (non-finite rejection, norm
    /// filtering), then lets the wrapped stack decide; accepted updates
    /// are additionally copied into the clear buffer while an estimator
    /// defense is engaged.
    fn accumulate(
        &mut self,
        update: ClientUpdate,
        current_version: u64,
        now_s: f64,
    ) -> AccumulateOutcome {
        if update.delta.as_slice().iter().any(|v| !v.is_finite()) {
            self.telemetry.rejected_non_finite += 1;
            return AccumulateOutcome::RejectedByDefense;
        }
        if let RobustDefense::NormFilter { max_norm } = self.config.defense {
            if (update.delta.norm() as f64) > max_norm {
                self.telemetry.rejected_by_norm += 1;
                return AccumulateOutcome::RejectedByDefense;
            }
        }
        let engaged = self.estimator_engaged();
        let copy = if engaged {
            let staleness = update.staleness(current_version);
            let weight = self.inner.update_weight(update.num_examples, staleness);
            Some((weight, update.delta.clone()))
        } else {
            None
        };
        let outcome = self.inner.accumulate(update, current_version, now_s);
        if outcome.accepted() {
            if let Some(copy) = copy {
                self.buffer.push(copy);
            }
        }
        outcome
    }

    fn is_ready(&self, now_s: f64) -> bool {
        self.inner.is_ready(now_s)
    }

    /// Releases the wrapped stack's aggregate; with an engaged estimator
    /// the release is *replaced* by the coordinate-wise robust statistic
    /// over the buffered clear updates, and the correction is recorded in
    /// the telemetry trace.
    fn take(&mut self, now_s: f64) -> Option<ParamVec> {
        let released = self.inner.take(now_s)?;
        if !self.estimator_engaged() {
            return Some(released);
        }
        let buffered = std::mem::take(&mut self.buffer);
        if buffered.is_empty() {
            // A forced release of an empty buffer (deadline strategies):
            // nothing to estimate over.
            return Some(released);
        }
        let estimate = match self.config.defense {
            RobustDefense::TrimmedMean { trim_fraction } => {
                coordinate_trimmed_mean(&buffered, trim_fraction)
            }
            RobustDefense::CoordinateMedian => coordinate_weighted_median(&buffered),
            // estimator_engaged() returned true, so the defense is an estimator
            RobustDefense::NormFilter { .. } => unreachable!("filter defenses never engage"),
        };
        let shift = released
            .as_slice()
            .iter()
            .zip(estimate.as_slice())
            .map(|(a, b)| (a - b).abs() as f64)
            .fold(0.0f64, f64::max);
        self.telemetry.estimator_releases += 1;
        self.telemetry.estimator_trace.push(RobustRelease {
            time_s: now_s,
            estimated_over: buffered.len() as u64,
            estimator_shift: shift,
        });
        Some(estimate)
    }

    /// Drops the buffer (the process holding it died) and the clear copies
    /// with it; lifetime telemetry survives.
    fn reset(&mut self) -> usize {
        self.buffer.clear();
        self.inner.reset()
    }

    fn goal(&self) -> usize {
        self.inner.goal()
    }

    fn buffered(&self) -> usize {
        self.inner.buffered()
    }

    fn stats(&self) -> &AggregatorStats {
        self.inner.stats()
    }

    fn max_staleness(&self) -> Option<u64> {
        self.inner.max_staleness()
    }

    fn next_deadline_s(&self) -> Option<f64> {
        self.inner.next_deadline_s()
    }

    fn closes_round_on_release(&self) -> bool {
        self.inner.closes_round_on_release()
    }

    fn update_weight(&self, num_examples: usize, staleness: u64) -> f64 {
        self.inner.update_weight(num_examples, staleness)
    }

    fn secure_telemetry(&self) -> Option<&crate::secure::SecureTelemetry> {
        self.inner.secure_telemetry()
    }

    fn dp_telemetry(&self) -> Option<&crate::dp::DpTelemetry> {
        self.inner.dp_telemetry()
    }

    fn robust_telemetry(&self) -> Option<&RobustTelemetry> {
        Some(&self.telemetry)
    }

    // Robust is the outermost layer of the stack, so the speculative
    // mask-precompute hooks pass straight through to the secure layer.
    fn plan_mask_precompute(&mut self, client_id: usize) -> Option<crate::secure::MaskPlan> {
        self.inner.plan_mask_precompute(client_id)
    }

    fn provide_precomputed_mask(&mut self, client_id: usize, mask: crate::secure::PrecomputedMask) {
        self.inner.provide_precomputed_mask(client_id, mask)
    }

    fn secure_timings(&self) -> Option<crate::secure::SecureTimings> {
        self.inner.secure_timings()
    }
}

/// Coordinate-wise trimmed mean: per coordinate, sort the buffered values,
/// drop `⌊trim_fraction · n⌋` from each tail, and weight-average the rest
/// (an exact zero when the surviving weight is zero, matching the
/// zero-weight contract of [`crate::aggregator::WeightedBuffer`]).
fn coordinate_trimmed_mean(buffered: &[(f64, ParamVec)], trim_fraction: f64) -> ParamVec {
    let n = buffered.len();
    let k = (trim_fraction * n as f64).floor() as usize;
    let dimension = buffered[0].1.len();
    let mut out = Vec::with_capacity(dimension);
    let mut column: Vec<(f32, f64)> = Vec::with_capacity(n);
    for i in 0..dimension {
        column.clear();
        column.extend(buffered.iter().map(|(w, delta)| (delta.as_slice()[i], *w)));
        // total_cmp gives a total order; values are finite (non-finite
        // updates never reach the buffer), so ties resolve bitwise and the
        // sort is deterministic regardless of arrival interleaving.
        column.sort_by(|a, b| a.0.total_cmp(&b.0));
        let survivors = &column[k..n - k];
        let weight_sum: f64 = survivors.iter().map(|(_, w)| w).sum();
        out.push(if weight_sum > 0.0 {
            (survivors.iter().map(|(v, w)| *v as f64 * w).sum::<f64>() / weight_sum) as f32
        } else {
            0.0
        });
    }
    ParamVec::from_vec(out)
}

/// Coordinate-wise weighted (lower) median: per coordinate, the smallest
/// value whose cumulative weight reaches half the total.  Falls back to
/// the unweighted lower median when every weight is zero, preserving the
/// estimator's breakdown point even for zero-weight buffers.
fn coordinate_weighted_median(buffered: &[(f64, ParamVec)]) -> ParamVec {
    let n = buffered.len();
    let dimension = buffered[0].1.len();
    let mut out = Vec::with_capacity(dimension);
    let mut column: Vec<(f32, f64)> = Vec::with_capacity(n);
    for i in 0..dimension {
        column.clear();
        column.extend(buffered.iter().map(|(w, delta)| (delta.as_slice()[i], *w)));
        column.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: f64 = column.iter().map(|(_, w)| w).sum();
        let value = if total > 0.0 {
            let half = total / 2.0;
            let mut cumulative = 0.0;
            let mut picked = column[n - 1].0;
            for &(v, w) in &column {
                cumulative += w;
                if cumulative >= half {
                    picked = v;
                    break;
                }
            }
            picked
        } else {
            column[(n - 1) / 2].0
        };
        out.push(value);
    }
    ParamVec::from_vec(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fedbuff::FedBuffAggregator;
    use crate::staleness::StalenessWeighting;

    fn update(id: usize, delta: Vec<f32>, examples: usize) -> ClientUpdate {
        ClientUpdate {
            client_id: id,
            delta: ParamVec::from_vec(delta),
            num_examples: examples,
            start_version: 0,
            train_loss: 0.0,
        }
    }

    fn robust_fedbuff(goal: usize, defense: RobustDefense) -> RobustAggregator {
        RobustAggregator::new(
            Box::new(FedBuffAggregator::new(
                goal,
                StalenessWeighting::Constant,
                Some(5),
            )),
            RobustConfig::new(defense),
        )
    }

    #[test]
    fn neutral_defense_is_bit_exact_against_clear() {
        let mut clear = FedBuffAggregator::new(2, StalenessWeighting::Constant, Some(5));
        let mut robust = robust_fedbuff(2, RobustConfig::neutral().defense);
        for (id, delta) in [(0usize, vec![0.25, -1.5]), (1, vec![1.125, 0.5])] {
            clear.accumulate(update(id, delta.clone(), 10), 0, 0.0);
            robust.accumulate(update(id, delta, 10), 0, 0.0);
        }
        assert_eq!(
            clear.take(0.0).unwrap().as_slice(),
            robust.take(0.0).unwrap().as_slice(),
            "neutral robust must be bit-exact"
        );
        assert_eq!(robust.telemetry(), &RobustTelemetry::default());
    }

    #[test]
    fn zero_trim_is_a_documented_pass_through() {
        let mut clear = FedBuffAggregator::new(2, StalenessWeighting::Constant, Some(5));
        let mut robust = robust_fedbuff(2, RobustDefense::TrimmedMean { trim_fraction: 0.0 });
        for (id, delta) in [(0usize, vec![3.0, 4.0]), (1, vec![-1.0, 2.0])] {
            clear.accumulate(update(id, delta.clone(), 10), 0, 0.0);
            robust.accumulate(update(id, delta, 10), 0, 0.0);
        }
        assert_eq!(
            clear.take(0.0).unwrap().as_slice(),
            robust.take(0.0).unwrap().as_slice()
        );
        assert_eq!(robust.telemetry().estimator_releases, 0);
    }

    #[test]
    fn non_finite_updates_are_rejected_with_a_typed_outcome() {
        let mut robust = robust_fedbuff(2, RobustConfig::neutral().defense);
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let outcome = robust.accumulate(update(0, vec![1.0, bad], 10), 0, 0.0);
            assert_eq!(outcome, AccumulateOutcome::RejectedByDefense);
            assert!(!outcome.accepted());
        }
        assert_eq!(robust.telemetry().rejected_non_finite, 3);
        assert_eq!(robust.buffered(), 0, "poison never reached the buffer");
    }

    #[test]
    fn non_finite_updates_cannot_poison_an_estimator() {
        let mut robust = robust_fedbuff(2, RobustDefense::CoordinateMedian);
        robust.accumulate(update(0, vec![f32::NAN], 10), 0, 0.0);
        robust.accumulate(update(1, vec![1.0], 10), 0, 0.0);
        robust.accumulate(update(2, vec![3.0], 10), 0, 0.0);
        let out = robust.take(0.0).unwrap();
        assert!(out.as_slice()[0].is_finite());
        assert_eq!(robust.telemetry().rejected_non_finite, 1);
    }

    #[test]
    fn norm_filter_rejects_oversized_updates() {
        let mut robust = robust_fedbuff(2, RobustDefense::NormFilter { max_norm: 1.0 });
        let outcome = robust.accumulate(update(0, vec![30.0, 40.0], 10), 0, 0.0);
        assert_eq!(outcome, AccumulateOutcome::RejectedByDefense);
        robust.accumulate(update(1, vec![0.6, 0.8], 10), 0, 0.0);
        robust.accumulate(update(2, vec![0.0, 0.5], 10), 0, 0.0);
        let out = robust.take(0.0).unwrap();
        assert!((out.as_slice()[0] - 0.3).abs() < 1e-6);
        assert_eq!(robust.telemetry().rejected_by_norm, 1);
    }

    #[test]
    fn trimmed_mean_discards_the_tails() {
        // Five clients, one of them boosting 100x: with 20 % trim the
        // outlier lands in the dropped tail of every coordinate.
        let mut robust = robust_fedbuff(5, RobustDefense::TrimmedMean { trim_fraction: 0.2 });
        for (id, v) in [(0usize, 1.0f32), (1, 1.1), (2, 0.9), (3, 1.05)] {
            assert!(robust
                .accumulate(update(id, vec![v], 10), 0, 0.0)
                .accepted());
        }
        robust.accumulate(update(4, vec![100.0], 10), 0, 0.0);
        let out = robust.take(0.0).unwrap();
        assert!(
            (out.as_slice()[0] - 1.05).abs() < 0.051,
            "outlier survived the trim: {}",
            out.as_slice()[0]
        );
        assert_eq!(robust.telemetry().estimator_releases, 1);
        let trace = &robust.telemetry().estimator_trace;
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].estimated_over, 5);
        assert!(trace[0].estimator_shift > 1.0, "the correction was large");
    }

    #[test]
    fn median_shrugs_off_a_sign_flipping_minority() {
        let mut robust = robust_fedbuff(5, RobustDefense::CoordinateMedian);
        for (id, v) in [(0usize, 1.0f32), (1, 1.2), (2, 0.8)] {
            robust.accumulate(update(id, vec![v], 10), 0, 0.0);
        }
        // Two sign-flippers out of five: the (lower) median lands on the
        // smallest honest value instead of being dragged negative.
        robust.accumulate(update(3, vec![-50.0], 10), 0, 0.0);
        robust.accumulate(update(4, vec![-50.0], 10), 0, 0.0);
        let out = robust.take(0.0).unwrap();
        assert_eq!(out.as_slice()[0], 0.8);
    }

    #[test]
    fn weighted_median_respects_example_counts() {
        let mut robust = RobustAggregator::new(
            Box::new(FedBuffAggregator::new(
                3,
                StalenessWeighting::Constant,
                None,
            )),
            RobustConfig::new(RobustDefense::CoordinateMedian),
        );
        // Weight 1+1 on the left of 5.0, weight 10 at 5.0: the weighted
        // median is 5.0 even though the unweighted one would be 2.0.
        robust.accumulate(update(0, vec![1.0], 1), 0, 0.0);
        robust.accumulate(update(1, vec![2.0], 1), 0, 0.0);
        robust.accumulate(update(2, vec![5.0], 10), 0, 0.0);
        assert_eq!(robust.take(0.0).unwrap().as_slice(), &[5.0]);
    }

    #[test]
    fn zero_weight_buffers_release_exact_zeros_under_trimming() {
        let mut robust = robust_fedbuff(
            2,
            RobustDefense::TrimmedMean {
                trim_fraction: 0.25,
            },
        );
        robust.accumulate(update(0, vec![3.0, -1.0], 0), 0, 0.0);
        robust.accumulate(update(1, vec![5.0, 2.0], 0), 0, 0.0);
        assert_eq!(robust.take(0.0).unwrap().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn zero_weight_buffers_keep_a_meaningful_median() {
        let mut robust = robust_fedbuff(3, RobustDefense::CoordinateMedian);
        robust.accumulate(update(0, vec![1.0], 0), 0, 0.0);
        robust.accumulate(update(1, vec![2.0], 0), 0, 0.0);
        robust.accumulate(update(2, vec![9.0], 0), 0, 0.0);
        // All weights zero: the unweighted lower median, not a panic.
        assert_eq!(robust.take(0.0).unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn reset_drops_the_clear_buffer_but_keeps_lifetime_telemetry() {
        let mut robust = robust_fedbuff(3, RobustDefense::CoordinateMedian);
        robust.accumulate(update(0, vec![f32::NAN], 10), 0, 0.0);
        robust.accumulate(update(1, vec![1.0], 10), 0, 0.0);
        assert_eq!(robust.reset(), 1);
        assert_eq!(robust.telemetry().rejected_non_finite, 1);
        // The next buffer starts clean: the dead buffer's copy is gone.
        robust.accumulate(update(2, vec![2.0], 10), 0, 1.0);
        robust.accumulate(update(3, vec![4.0], 10), 0, 1.0);
        robust.accumulate(update(4, vec![6.0], 10), 0, 1.0);
        let out = robust.take(1.0).unwrap();
        assert_eq!(out.as_slice(), &[4.0], "median over the fresh buffer only");
    }

    #[test]
    fn hooks_forward_through_the_robust_layer() {
        let robust = robust_fedbuff(4, RobustConfig::neutral().defense);
        assert_eq!(robust.goal(), 4);
        assert_eq!(robust.max_staleness(), Some(5));
        assert!(!robust.closes_round_on_release());
        assert!(robust.secure_telemetry().is_none());
        assert!(robust.dp_telemetry().is_none());
        assert!(robust.robust_telemetry().is_some());
        // Example weighting passes through to the wrapped strategy.
        assert_eq!(
            robust.update_weight(10, 0) * 2.0,
            robust.update_weight(20, 0)
        );
    }

    #[test]
    fn telemetry_sync_from_is_incremental_on_the_trace() {
        let mut dst = RobustTelemetry::default();
        let mut src = RobustTelemetry {
            rejected_non_finite: 1,
            rejected_by_norm: 2,
            estimator_releases: 1,
            estimator_trace: vec![RobustRelease {
                time_s: 1.0,
                estimated_over: 4,
                estimator_shift: 0.5,
            }],
        };
        dst.sync_from(&src);
        assert_eq!(dst, src);
        src.estimator_releases = 2;
        src.estimator_trace.push(RobustRelease {
            time_s: 2.0,
            estimated_over: 6,
            estimator_shift: 0.1,
        });
        dst.sync_from(&src);
        assert_eq!(dst, src);
        dst.sync_from(&src);
        assert_eq!(dst.estimator_trace.len(), 2, "re-sync must not duplicate");
        assert_eq!(dst.rejected_total(), 3);
    }

    #[test]
    #[should_panic(expected = "norm bound must be positive")]
    fn invalid_norm_bound_rejected() {
        RobustConfig::new(RobustDefense::NormFilter { max_norm: 0.0 }).validate();
    }

    #[test]
    #[should_panic(expected = "trim fraction must be in [0, 0.5)")]
    fn invalid_trim_fraction_rejected() {
        RobustConfig::new(RobustDefense::TrimmedMean { trim_fraction: 0.5 }).validate();
    }
}
