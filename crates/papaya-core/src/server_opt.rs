//! Server optimizers.
//!
//! The server treats the aggregated client delta as a pseudo-gradient
//! (direction of improvement) and applies an optimizer step to the global
//! model.  The paper uses FedAdam (Reddi et al., 2020) on the server with
//! Adam's default learning rate; FedAvg/FedSGD are provided as baselines and
//! for the surrogate experiments.

use papaya_nn::params::ParamVec;

/// A server-side update rule applied to aggregated model deltas.
pub trait ServerOptimizer: Send {
    /// Applies one step: updates `model` in place using the aggregated
    /// `delta` (the weighted average of client deltas).
    ///
    /// # Panics
    ///
    /// Implementations panic if `model` and `delta` lengths differ.
    fn apply(&mut self, model: &mut ParamVec, delta: &ParamVec);

    /// Human-readable name (for logs and experiment output).
    fn name(&self) -> &'static str;
}

/// Federated averaging: `model += delta`.
#[derive(Clone, Debug, Default)]
pub struct FedAvg;

impl ServerOptimizer for FedAvg {
    fn apply(&mut self, model: &mut ParamVec, delta: &ParamVec) {
        assert_eq!(model.len(), delta.len(), "length mismatch");
        model.add_scaled(delta, 1.0);
    }

    fn name(&self) -> &'static str {
        "fedavg"
    }
}

/// Server SGD with a configurable learning rate: `model += lr * delta`.
#[derive(Clone, Debug)]
pub struct FedSgd {
    learning_rate: f32,
}

impl FedSgd {
    /// Creates a FedSGD optimizer.
    pub fn new(learning_rate: f32) -> Self {
        FedSgd { learning_rate }
    }
}

impl ServerOptimizer for FedSgd {
    fn apply(&mut self, model: &mut ParamVec, delta: &ParamVec) {
        assert_eq!(model.len(), delta.len(), "length mismatch");
        model.add_scaled(delta, self.learning_rate);
    }

    fn name(&self) -> &'static str {
        "fedsgd"
    }
}

/// FedAdam: Adam on the server using the aggregated delta as the negative
/// gradient.
#[derive(Clone, Debug)]
pub struct FedAdam {
    learning_rate: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    step: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl FedAdam {
    /// FedAdam with Adam's default learning rate (0.001) and a tunable first
    /// moment, matching Section 7.1 ("we use Adam's default learning rate and
    /// tune the first-moment parameter").
    pub fn new(learning_rate: f32, beta1: f32) -> Self {
        FedAdam {
            learning_rate,
            beta1,
            beta2: 0.999,
            epsilon: 1e-8,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The paper's default configuration.
    pub fn default_config() -> Self {
        FedAdam::new(1e-3, 0.9)
    }

    /// Adam's bias correction `1 - beta^step`, computed in `f64`.
    ///
    /// `beta.powi(step as i32)` silently truncates once `step` exceeds
    /// `i32::MAX` (a week-long run at production cadence gets there), and
    /// `powi` with a huge exponent is wasted work: past a few thousand
    /// steps the correction is exactly 1.0 in `f32`, so we early-out.
    fn bias_correction(beta: f32, step: u64) -> f32 {
        // ln(beta) <= beta - 1, so beta^step <= exp(-step * (1 - beta)).
        // Once that bound drops below half an f32 ulp at 1.0 the
        // correction rounds to exactly 1.0 and powf can be skipped.
        if step as f64 * (1.0 - beta as f64) >= 25.0 {
            return 1.0;
        }
        (1.0 - (beta as f64).powf(step as f64)) as f32
    }
}

impl ServerOptimizer for FedAdam {
    fn apply(&mut self, model: &mut ParamVec, delta: &ParamVec) {
        assert_eq!(model.len(), delta.len(), "length mismatch");
        if self.m.is_empty() {
            self.m = vec![0.0; model.len()];
            self.v = vec![0.0; model.len()];
        }
        self.step += 1;
        let bc1 = Self::bias_correction(self.beta1, self.step);
        let bc2 = Self::bias_correction(self.beta2, self.step);
        let grads = delta.as_slice();
        for (i, value) in model.as_mut_slice().iter_mut().enumerate() {
            // Pseudo-gradient: the aggregated delta points towards lower loss,
            // so the "gradient" is its negation.
            let g = -grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            *value -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    fn name(&self) -> &'static str {
        "fedadam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fedavg_adds_delta() {
        let mut model = ParamVec::from_vec(vec![1.0, 2.0]);
        FedAvg.apply(&mut model, &ParamVec::from_vec(vec![0.5, -1.0]));
        assert_eq!(model.as_slice(), &[1.5, 1.0]);
    }

    #[test]
    fn fedsgd_scales_delta() {
        let mut model = ParamVec::from_vec(vec![0.0]);
        FedSgd::new(0.5).apply(&mut model, &ParamVec::from_vec(vec![2.0]));
        assert_eq!(model.as_slice(), &[1.0]);
    }

    #[test]
    fn fedadam_moves_in_delta_direction() {
        let mut model = ParamVec::from_vec(vec![0.0, 0.0]);
        let mut opt = FedAdam::default_config();
        opt.apply(&mut model, &ParamVec::from_vec(vec![1.0, -1.0]));
        assert!(model.as_slice()[0] > 0.0);
        assert!(model.as_slice()[1] < 0.0);
    }

    #[test]
    fn fedadam_converges_on_quadratic() {
        // Minimize f(w) = 0.5*||w - 3||^2; the "client delta" is the negative
        // gradient direction (3 - w) scaled by a local learning rate.
        let mut model = ParamVec::from_vec(vec![0.0]);
        let mut opt = FedAdam::new(0.05, 0.9);
        for _ in 0..2000 {
            let delta = ParamVec::from_vec(vec![(3.0 - model.as_slice()[0]) * 0.1]);
            opt.apply(&mut model, &delta);
        }
        assert!(
            (model.as_slice()[0] - 3.0).abs() < 0.05,
            "got {}",
            model.as_slice()[0]
        );
    }

    #[test]
    fn fedadam_step_size_is_bounded_by_lr() {
        // Adam normalizes by the gradient magnitude, so a huge delta moves
        // the model by roughly the learning rate only.
        let mut model = ParamVec::from_vec(vec![0.0]);
        let mut opt = FedAdam::new(0.01, 0.9);
        opt.apply(&mut model, &ParamVec::from_vec(vec![1.0e6]));
        assert!(model.as_slice()[0].abs() < 0.05);
    }

    #[test]
    fn fedadam_bias_correction_survives_huge_step_counts() {
        // `powi(step as i32)` used to truncate (and could even see a
        // negative exponent) once the step count passed i32::MAX, blowing
        // up the corrected moments.  The f64 path saturates to exactly 1.
        for step in [1u64, 10, 1000, 1_000_000, i32::MAX as u64 + 5, u64::MAX] {
            let bc = FedAdam::bias_correction(0.9, step);
            assert!(bc.is_finite() && bc > 0.0 && bc <= 1.0, "step={step}: {bc}");
        }
        assert_eq!(FedAdam::bias_correction(0.999, i32::MAX as u64 + 5), 1.0);
        assert_eq!(FedAdam::bias_correction(0.9, u64::MAX), 1.0);
        // Small steps still match the textbook formula.
        assert!((FedAdam::bias_correction(0.9, 1) - 0.1).abs() < 1e-6);
        assert!((FedAdam::bias_correction(0.9, 2) - 0.19).abs() < 1e-6);
        // A very sticky beta1 must not be treated as saturated too early.
        let bc = FedAdam::bias_correction(0.99999, 20_000);
        assert!(bc < 0.25, "0.99999^20000 is nowhere near 0: bc={bc}");
    }

    #[test]
    fn fedadam_long_run_steps_stay_bounded() {
        // Simulate a model that has already taken > i32::MAX steps; the
        // next apply must behave exactly like a fully bias-corrected Adam
        // step instead of dividing by a garbage correction.
        let mut model = ParamVec::from_vec(vec![0.0]);
        let mut opt = FedAdam::new(0.01, 0.9);
        opt.step = i32::MAX as u64 + 41;
        opt.apply(&mut model, &ParamVec::from_vec(vec![1.0]));
        let moved = model.as_slice()[0];
        assert!(moved.is_finite());
        assert!(moved > 0.0 && moved < 0.05, "moved {moved}");
    }

    #[test]
    fn optimizer_names() {
        assert_eq!(FedAvg.name(), "fedavg");
        assert_eq!(FedSgd::new(1.0).name(), "fedsgd");
        assert_eq!(FedAdam::default_config().name(), "fedadam");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut model = ParamVec::zeros(2);
        FedAvg.apply(&mut model, &ParamVec::zeros(3));
    }
}
