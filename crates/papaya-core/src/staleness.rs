//! Staleness down-weighting (Appendix E.2).
//!
//! Staleness `s` of a client update is the number of server model versions
//! produced between the client's download and its upload.  PAPAYA weights
//! each update by `1/sqrt(1 + s)` before aggregation; this module also
//! provides the alternatives studied in the FedBuff paper so the ablation
//! bench can compare them.

/// A staleness-to-weight mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StalenessWeighting {
    /// No down-weighting: every update counts fully regardless of staleness.
    Constant,
    /// The PAPAYA/FedBuff default, `1/sqrt(1 + s)`.
    #[default]
    PolynomialHalf,
    /// Stronger polynomial decay, `1/(1 + s)`.
    Linear,
    /// Exponential decay, `2^{-s}`.
    Exponential,
}

impl StalenessWeighting {
    /// Returns the weight for an update with staleness `s`.
    pub fn weight(&self, staleness: u64) -> f64 {
        match self {
            StalenessWeighting::Constant => 1.0,
            StalenessWeighting::PolynomialHalf => 1.0 / (1.0 + staleness as f64).sqrt(),
            StalenessWeighting::Linear => 1.0 / (1.0 + staleness as f64),
            // `2^{-s}` computed in floating point so the weight keeps
            // strictly decreasing all the way into subnormal territory
            // (2^-1074); only past that does it floor at the smallest
            // positive subnormal instead of collapsing to zero, so an
            // astronomically stale update still carries zero-ish — but
            // nonzero and ordered — weight.
            StalenessWeighting::Exponential => (-(staleness as f64)).exp2().max(f64::from_bits(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_updates_have_weight_one() {
        for w in [
            StalenessWeighting::Constant,
            StalenessWeighting::PolynomialHalf,
            StalenessWeighting::Linear,
            StalenessWeighting::Exponential,
        ] {
            assert!((w.weight(0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn polynomial_half_matches_formula() {
        let w = StalenessWeighting::PolynomialHalf;
        assert!((w.weight(1) - 1.0 / 2.0f64.sqrt()).abs() < 1e-12);
        assert!((w.weight(3) - 0.5).abs() < 1e-12);
        assert!((w.weight(99) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn weights_are_monotone_decreasing() {
        // Well past the old `min(60)` clamp that used to flatten the
        // exponential scheme: strict decrease must hold deep into the
        // subnormal range.
        for w in [
            StalenessWeighting::PolynomialHalf,
            StalenessWeighting::Linear,
            StalenessWeighting::Exponential,
        ] {
            for s in 0..200u64 {
                assert!(
                    w.weight(s + 1) < w.weight(s),
                    "{w:?} not strictly decreasing at s={s}"
                );
            }
        }
    }

    #[test]
    fn exponential_decreases_to_subnormal_territory() {
        let w = StalenessWeighting::Exponential;
        // 2^-s is exactly representable down to the smallest positive
        // subnormal (2^-1074), so strict decrease holds until there.
        for s in [100u64, 500, 1000, 1073] {
            assert!(w.weight(s + 1) < w.weight(s), "flat at s={s}");
            assert!(w.weight(s + 1) > 0.0);
        }
        assert_eq!(w.weight(1074), f64::from_bits(1));
        // Beyond true underflow the weight floors at the smallest
        // subnormal rather than collapsing to zero.
        assert_eq!(w.weight(2000), f64::from_bits(1));
    }

    #[test]
    fn ordering_of_schemes() {
        // For the same staleness: constant >= poly-half >= linear >= exponential (s >= 2).
        for s in 2..20u64 {
            assert!(
                StalenessWeighting::Constant.weight(s)
                    >= StalenessWeighting::PolynomialHalf.weight(s)
            );
            assert!(
                StalenessWeighting::PolynomialHalf.weight(s)
                    >= StalenessWeighting::Linear.weight(s)
            );
            assert!(
                StalenessWeighting::Linear.weight(s) >= StalenessWeighting::Exponential.weight(s)
            );
        }
    }

    #[test]
    fn exponential_does_not_underflow_for_huge_staleness() {
        let w = StalenessWeighting::Exponential.weight(10_000);
        assert!(w > 0.0);
        assert!(w < 1e-15);
    }
}
