//! Synchronous round aggregation with over-selection.
//!
//! In SyncFL a cohort of clients is selected for each round.  With
//! over-selection factor `o`, `goal * (1 + o)` clients train but only the
//! first `goal` updates to arrive are aggregated; the rest are discarded
//! (wasted work, and the source of the sampling bias studied in Section 7.4).
//! PAPAYA's SyncFL implementation additionally allows replacing clients that
//! drop out mid-round.

use crate::client::ClientUpdate;
use papaya_nn::params::ParamVec;

/// Aggregator for one synchronous round.
#[derive(Clone, Debug)]
pub struct SyncRoundAggregator {
    aggregation_goal: usize,
    weight_by_examples: bool,
    buffer: Option<ParamVec>,
    weight_sum: f64,
    received: usize,
    discarded: u64,
    accepted_clients: Vec<usize>,
}

impl SyncRoundAggregator {
    /// Creates an aggregator that releases after `aggregation_goal` updates.
    ///
    /// # Panics
    ///
    /// Panics if `aggregation_goal == 0`.
    pub fn new(aggregation_goal: usize) -> Self {
        assert!(aggregation_goal > 0, "aggregation goal must be positive");
        SyncRoundAggregator {
            aggregation_goal,
            weight_by_examples: true,
            buffer: None,
            weight_sum: 0.0,
            received: 0,
            discarded: 0,
            accepted_clients: Vec::new(),
        }
    }

    /// Disables (or re-enables) weighting by example count.
    pub fn with_example_weighting(mut self, enabled: bool) -> Self {
        self.weight_by_examples = enabled;
        self
    }

    /// The aggregation goal for the round.
    pub fn aggregation_goal(&self) -> usize {
        self.aggregation_goal
    }

    /// Number of updates accepted so far this round.
    pub fn received(&self) -> usize {
        self.received
    }

    /// Number of updates discarded (arrived after the goal was met).
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Clients whose updates were accepted this round.
    pub fn accepted_clients(&self) -> &[usize] {
        &self.accepted_clients
    }

    /// Offers an update.  Returns `true` if it was accepted, `false` if the
    /// round had already reached its goal (the over-selection discard path).
    pub fn accumulate(&mut self, update: ClientUpdate) -> bool {
        if self.received >= self.aggregation_goal {
            self.discarded += 1;
            return false;
        }
        // Zero-example clients carry zero weight: counted toward the round
        // goal but contributing nothing to the average.
        let weight = if self.weight_by_examples {
            update.num_examples as f64
        } else {
            1.0
        };
        let buffer = self
            .buffer
            .get_or_insert_with(|| ParamVec::zeros(update.delta.len()));
        assert_eq!(
            buffer.len(),
            update.delta.len(),
            "update dimensionality changed mid-training"
        );
        buffer.add_scaled(&update.delta, weight as f32);
        self.weight_sum += weight;
        self.received += 1;
        self.accepted_clients.push(update.client_id);
        true
    }

    /// Returns true when the round has collected enough updates.
    pub fn is_ready(&self) -> bool {
        self.received >= self.aggregation_goal
    }

    /// Releases the round's weighted-average update and resets the
    /// aggregator for the next round.  Returns `None` if the round is not
    /// complete.
    ///
    /// If every accepted update carried zero weight the release is a zero
    /// delta (a no-op server step) rather than the unscaled raw sum.
    pub fn take(&mut self) -> Option<ParamVec> {
        if !self.is_ready() {
            return None;
        }
        let mut buffer = self.buffer.take()?;
        if self.weight_sum > 0.0 {
            buffer.scale((1.0 / self.weight_sum) as f32);
        } else {
            buffer = ParamVec::zeros(buffer.len());
        }
        self.weight_sum = 0.0;
        self.received = 0;
        self.accepted_clients.clear();
        Some(buffer)
    }

    /// Abandons the round in progress (the Aggregator holding it died).
    /// Returns how many already-received updates were dropped.
    pub fn reset(&mut self) -> usize {
        let dropped = self.received;
        self.buffer = None;
        self.weight_sum = 0.0;
        self.received = 0;
        self.accepted_clients.clear();
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(id: usize, delta: Vec<f32>, examples: usize) -> ClientUpdate {
        ClientUpdate {
            client_id: id,
            delta: ParamVec::from_vec(delta),
            num_examples: examples,
            start_version: 0,
            train_loss: 0.0,
        }
    }

    #[test]
    fn aggregates_weighted_average() {
        let mut agg = SyncRoundAggregator::new(2);
        assert!(agg.accumulate(update(0, vec![1.0], 10)));
        assert!(agg.accumulate(update(1, vec![4.0], 30)));
        let out = agg.take().unwrap();
        // (1*10 + 4*30) / 40 = 3.25
        assert!((out.as_slice()[0] - 3.25).abs() < 1e-6);
    }

    #[test]
    fn updates_after_goal_are_discarded() {
        let mut agg = SyncRoundAggregator::new(1);
        assert!(agg.accumulate(update(0, vec![1.0], 1)));
        assert!(!agg.accumulate(update(1, vec![100.0], 1)));
        assert_eq!(agg.discarded(), 1);
        let out = agg.take().unwrap();
        assert_eq!(out.as_slice(), &[1.0]);
    }

    #[test]
    fn accepted_clients_are_tracked_per_round() {
        let mut agg = SyncRoundAggregator::new(2);
        agg.accumulate(update(7, vec![0.0], 1));
        agg.accumulate(update(9, vec![0.0], 1));
        assert_eq!(agg.accepted_clients(), &[7, 9]);
        let _ = agg.take();
        assert!(agg.accepted_clients().is_empty());
    }

    #[test]
    fn take_before_ready_is_none() {
        let mut agg = SyncRoundAggregator::new(3);
        agg.accumulate(update(0, vec![1.0], 1));
        assert!(!agg.is_ready());
        assert!(agg.take().is_none());
    }

    #[test]
    fn consecutive_rounds_are_independent() {
        let mut agg = SyncRoundAggregator::new(1);
        agg.accumulate(update(0, vec![2.0], 1));
        assert_eq!(agg.take().unwrap().as_slice(), &[2.0]);
        agg.accumulate(update(1, vec![-2.0], 1));
        assert_eq!(agg.take().unwrap().as_slice(), &[-2.0]);
    }

    #[test]
    fn all_zero_weight_round_releases_zero_delta() {
        let mut agg = SyncRoundAggregator::new(2);
        agg.accumulate(update(0, vec![7.0], 0));
        agg.accumulate(update(1, vec![-3.0], 0));
        assert!(agg.is_ready());
        assert_eq!(agg.take().unwrap().as_slice(), &[0.0]);
        // The next round is unaffected.
        agg.accumulate(update(2, vec![2.0], 4));
        agg.accumulate(update(3, vec![2.0], 4));
        assert_eq!(agg.take().unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn reset_abandons_round_in_progress() {
        let mut agg = SyncRoundAggregator::new(3);
        agg.accumulate(update(0, vec![1.0], 1));
        agg.accumulate(update(1, vec![1.0], 1));
        assert_eq!(agg.reset(), 2);
        assert_eq!(agg.received(), 0);
        assert!(agg.accepted_clients().is_empty());
        assert!(agg.take().is_none());
        agg.accumulate(update(2, vec![5.0], 1));
        agg.accumulate(update(3, vec![5.0], 1));
        agg.accumulate(update(4, vec![5.0], 1));
        assert_eq!(agg.take().unwrap().as_slice(), &[5.0]);
    }

    #[test]
    fn unweighted_mode_ignores_example_counts() {
        let mut agg = SyncRoundAggregator::new(2).with_example_weighting(false);
        agg.accumulate(update(0, vec![0.0], 1000));
        agg.accumulate(update(1, vec![2.0], 1));
        assert!((agg.take().unwrap().as_slice()[0] - 1.0).abs() < 1e-6);
    }
}
