//! Synchronous round aggregation with over-selection.
//!
//! In SyncFL a cohort of clients is selected for each round.  With
//! over-selection factor `o`, `goal * (1 + o)` clients train but only the
//! first `goal` updates to arrive are aggregated; the rest are discarded
//! (wasted work, and the source of the sampling bias studied in Section 7.4).
//! PAPAYA's SyncFL implementation additionally allows replacing clients that
//! drop out mid-round.
//!
//! `SyncRoundAggregator` implements the [`Aggregator`] protocol and is the
//! one strategy whose release closes a round
//! ([`closes_round_on_release`](Aggregator::closes_round_on_release)):
//! drivers abort still-running cohort members when it releases.

use crate::aggregator::{AccumulateOutcome, Aggregator, AggregatorStats, WeightedBuffer};
use crate::client::ClientUpdate;
use papaya_nn::params::ParamVec;

/// Aggregator for one synchronous round.
#[derive(Clone, Debug)]
pub struct SyncRoundAggregator {
    aggregation_goal: usize,
    weight_by_examples: bool,
    buffer: WeightedBuffer,
    stats: AggregatorStats,
    accepted_clients: Vec<usize>,
}

impl SyncRoundAggregator {
    /// Creates an aggregator that releases after `aggregation_goal` updates.
    ///
    /// # Panics
    ///
    /// Panics if `aggregation_goal == 0`.
    pub fn new(aggregation_goal: usize) -> Self {
        assert!(aggregation_goal > 0, "aggregation goal must be positive");
        SyncRoundAggregator {
            aggregation_goal,
            weight_by_examples: true,
            buffer: WeightedBuffer::default(),
            stats: AggregatorStats::default(),
            accepted_clients: Vec::new(),
        }
    }

    /// Disables (or re-enables) weighting by example count.
    pub fn with_example_weighting(mut self, enabled: bool) -> Self {
        self.weight_by_examples = enabled;
        self
    }

    /// Clients whose updates were accepted this round.
    pub fn accepted_clients(&self) -> &[usize] {
        &self.accepted_clients
    }
}

// papaya-lint: allow(decorator-conformance) -- base strategy, no inner aggregator to forward to; the trait defaults are the correct behavior
impl Aggregator for SyncRoundAggregator {
    /// Offers an update.  Updates arriving after the round reached its goal
    /// are discarded (the over-selection waste path).  Within a round the
    /// server model does not move, so staleness is always zero; virtual time
    /// is ignored.
    fn accumulate(
        &mut self,
        update: ClientUpdate,
        current_version: u64,
        _now_s: f64,
    ) -> AccumulateOutcome {
        if self.buffer.len() >= self.aggregation_goal {
            self.stats.record_discarded();
            return AccumulateOutcome::Discarded;
        }
        let staleness = update.staleness(current_version);
        let weight = self.update_weight(update.num_examples, staleness);
        self.buffer.fold(&update.delta, weight);
        self.accepted_clients.push(update.client_id);
        self.stats.record_accepted(staleness);
        AccumulateOutcome::Accepted { staleness }
    }

    fn is_ready(&self, _now_s: f64) -> bool {
        self.buffer.len() >= self.aggregation_goal
    }

    fn take(&mut self, now_s: f64) -> Option<ParamVec> {
        if !self.is_ready(now_s) {
            return None;
        }
        self.accepted_clients.clear();
        self.buffer.release()
    }

    fn reset(&mut self) -> usize {
        self.accepted_clients.clear();
        self.buffer.clear()
    }

    fn goal(&self) -> usize {
        self.aggregation_goal
    }

    fn buffered(&self) -> usize {
        self.buffer.len()
    }

    fn stats(&self) -> &AggregatorStats {
        &self.stats
    }

    fn closes_round_on_release(&self) -> bool {
        true
    }

    /// Zero-example clients carry zero weight: counted toward the round
    /// goal but contributing nothing to the average.  Within a round the
    /// server model does not move, so staleness never enters the weight.
    fn update_weight(&self, num_examples: usize, _staleness: u64) -> f64 {
        if self.weight_by_examples {
            num_examples as f64
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::Aggregator;

    fn update(id: usize, delta: Vec<f32>, examples: usize) -> ClientUpdate {
        ClientUpdate {
            client_id: id,
            delta: ParamVec::from_vec(delta),
            num_examples: examples,
            start_version: 0,
            train_loss: 0.0,
        }
    }

    #[test]
    fn aggregates_weighted_average() {
        let mut agg = SyncRoundAggregator::new(2);
        assert!(agg.accumulate(update(0, vec![1.0], 10), 0, 0.0).accepted());
        assert!(agg.accumulate(update(1, vec![4.0], 30), 0, 0.0).accepted());
        let out = agg.take(0.0).unwrap();
        // (1*10 + 4*30) / 40 = 3.25
        assert!((out.as_slice()[0] - 3.25).abs() < 1e-6);
    }

    #[test]
    fn updates_after_goal_are_discarded() {
        let mut agg = SyncRoundAggregator::new(1);
        assert!(agg.accumulate(update(0, vec![1.0], 1), 0, 0.0).accepted());
        assert_eq!(
            agg.accumulate(update(1, vec![100.0], 1), 0, 0.0),
            AccumulateOutcome::Discarded
        );
        assert_eq!(agg.stats().discarded, 1);
        let out = agg.take(0.0).unwrap();
        assert_eq!(out.as_slice(), &[1.0]);
    }

    #[test]
    fn accepted_clients_are_tracked_per_round() {
        let mut agg = SyncRoundAggregator::new(2);
        agg.accumulate(update(7, vec![0.0], 1), 0, 0.0);
        agg.accumulate(update(9, vec![0.0], 1), 0, 0.0);
        assert_eq!(agg.accepted_clients(), &[7, 9]);
        let _ = agg.take(0.0);
        assert!(agg.accepted_clients().is_empty());
    }

    #[test]
    fn take_before_ready_is_none() {
        let mut agg = SyncRoundAggregator::new(3);
        agg.accumulate(update(0, vec![1.0], 1), 0, 0.0);
        assert!(!agg.is_ready(0.0));
        assert!(agg.take(0.0).is_none());
    }

    #[test]
    fn consecutive_rounds_are_independent() {
        let mut agg = SyncRoundAggregator::new(1);
        agg.accumulate(update(0, vec![2.0], 1), 0, 0.0);
        assert_eq!(agg.take(0.0).unwrap().as_slice(), &[2.0]);
        agg.accumulate(update(1, vec![-2.0], 1), 0, 0.0);
        assert_eq!(agg.take(0.0).unwrap().as_slice(), &[-2.0]);
    }

    #[test]
    fn all_zero_weight_round_releases_zero_delta() {
        let mut agg = SyncRoundAggregator::new(2);
        agg.accumulate(update(0, vec![7.0], 0), 0, 0.0);
        agg.accumulate(update(1, vec![-3.0], 0), 0, 0.0);
        assert!(agg.is_ready(0.0));
        assert_eq!(agg.take(0.0).unwrap().as_slice(), &[0.0]);
        // The next round is unaffected.
        agg.accumulate(update(2, vec![2.0], 4), 0, 0.0);
        agg.accumulate(update(3, vec![2.0], 4), 0, 0.0);
        assert_eq!(agg.take(0.0).unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn reset_abandons_round_in_progress() {
        let mut agg = SyncRoundAggregator::new(3);
        agg.accumulate(update(0, vec![1.0], 1), 0, 0.0);
        agg.accumulate(update(1, vec![1.0], 1), 0, 0.0);
        assert_eq!(agg.reset(), 2);
        assert_eq!(agg.buffered(), 0);
        assert!(agg.accepted_clients().is_empty());
        assert!(agg.take(0.0).is_none());
        agg.accumulate(update(2, vec![5.0], 1), 0, 0.0);
        agg.accumulate(update(3, vec![5.0], 1), 0, 0.0);
        agg.accumulate(update(4, vec![5.0], 1), 0, 0.0);
        assert_eq!(agg.take(0.0).unwrap().as_slice(), &[5.0]);
    }

    #[test]
    fn unweighted_mode_ignores_example_counts() {
        let mut agg = SyncRoundAggregator::new(2).with_example_weighting(false);
        agg.accumulate(update(0, vec![0.0], 1000), 0, 0.0);
        agg.accumulate(update(1, vec![2.0], 1), 0, 0.0);
        assert!((agg.take(0.0).unwrap().as_slice()[0] - 1.0).abs() < 1e-6);
    }
}
