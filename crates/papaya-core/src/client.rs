//! The client-trainer abstraction and the client-update record.
//!
//! A *client trainer* encapsulates "what happens on the device": given the
//! downloaded global parameters and a client id, it runs local training and
//! returns the model delta, the number of examples used, and the local loss.
//! The discrete-event simulator calls trainers when a (virtual) client
//! finishes; the same trait is implemented by the real LSTM trainer in
//! `papaya-lm` and the fast surrogate objective in [`crate::surrogate`].

use papaya_nn::params::ParamVec;

/// Derives the RNG seed of one participation from the task's base seed.
///
/// This is the *only* place the per-participation training stream is
/// derived, split out of the runtime's shared state so that a sequential
/// driver and a parallel training executor are guaranteed to hand the same
/// seed to [`ClientTrainer::train`] for the same participation — the
/// precondition for bit-identical simulations at any thread count.
pub fn participation_seed(task_seed: u64, participation_id: u64) -> u64 {
    task_seed ^ participation_id
}

/// The result of one client's local training.
#[derive(Clone, Debug, PartialEq)]
pub struct LocalTrainResult {
    /// Model delta: `trained_parameters − downloaded_parameters`.
    pub delta: ParamVec,
    /// Number of training examples used.
    pub num_examples: usize,
    /// Mean training loss over the local data after training.
    pub train_loss: f32,
}

/// A client update as received by an Aggregator: the local training result
/// plus the metadata needed for weighting and staleness tracking.
#[derive(Clone, Debug, PartialEq)]
pub struct ClientUpdate {
    /// The contributing client/device id.
    pub client_id: usize,
    /// Model delta produced by local training.
    pub delta: ParamVec,
    /// Number of examples the client trained on.
    pub num_examples: usize,
    /// Server model version the client downloaded before training.
    pub start_version: u64,
    /// Mean local training loss.
    pub train_loss: f32,
}

impl ClientUpdate {
    /// Builds an update from a training result.
    pub fn from_result(client_id: usize, start_version: u64, result: LocalTrainResult) -> Self {
        ClientUpdate {
            client_id,
            delta: result.delta,
            num_examples: result.num_examples,
            start_version,
            train_loss: result.train_loss,
        }
    }

    /// Staleness of this update given the current server model version.
    ///
    /// Staleness is the number of server updates performed between this
    /// client's download and its upload.
    pub fn staleness(&self, current_version: u64) -> u64 {
        current_version.saturating_sub(self.start_version)
    }
}

/// On-device training logic for a federated task.
///
/// Implementations must be deterministic given `(client_id, global, seed)` so
/// simulations are reproducible.
pub trait ClientTrainer: Send + Sync {
    /// Number of scalar parameters in the model.
    fn parameter_count(&self) -> usize;

    /// Initial global model parameters.
    fn initial_parameters(&self) -> ParamVec;

    /// Runs local training for `client_id` starting from `global`.
    fn train(&self, client_id: usize, global: &ParamVec, seed: u64) -> LocalTrainResult;

    /// Evaluates the population loss of `params` over the given clients
    /// (e.g. their held-out data).  Lower is better.
    fn evaluate(&self, params: &ParamVec, client_ids: &[usize]) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn participation_seed_is_deterministic_and_distinct() {
        assert_eq!(participation_seed(5, 9), participation_seed(5, 9));
        assert_ne!(participation_seed(5, 9), participation_seed(5, 10));
        assert_ne!(participation_seed(5, 9), participation_seed(6, 9));
    }

    #[test]
    fn staleness_is_version_difference() {
        let u = ClientUpdate {
            client_id: 1,
            delta: ParamVec::zeros(2),
            num_examples: 5,
            start_version: 10,
            train_loss: 0.0,
        };
        assert_eq!(u.staleness(10), 0);
        assert_eq!(u.staleness(13), 3);
        // A client can never have negative staleness.
        assert_eq!(u.staleness(9), 0);
    }

    #[test]
    fn from_result_copies_fields() {
        let result = LocalTrainResult {
            delta: ParamVec::from_vec(vec![1.0]),
            num_examples: 7,
            train_loss: 0.25,
        };
        let u = ClientUpdate::from_result(3, 11, result.clone());
        assert_eq!(u.client_id, 3);
        assert_eq!(u.start_version, 11);
        assert_eq!(u.delta, result.delta);
        assert_eq!(u.num_examples, 7);
        assert_eq!(u.train_loss, 0.25);
    }
}
