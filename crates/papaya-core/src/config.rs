//! Task configuration.
//!
//! A *task* is one federated training job.  PAPAYA supports synchronous and
//! asynchronous training of the same task through a configuration change
//! (Appendix E.3); the differences — client demand computation, handling of
//! stale clients, and the aggregation rule — are all derived from
//! [`TrainingMode`].

use crate::adversary::AdversarySpec;
use crate::dp::DpConfig;
use crate::robust::RobustConfig;
use crate::staleness::StalenessWeighting;

/// Whether and how secure aggregation is enabled for a task.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SecAggMode {
    /// Updates are uploaded in the clear.
    #[default]
    Disabled,
    /// Updates are masked with the asynchronous TEE-based SecAgg protocol,
    /// using session-cached key exchange: the Diffie–Hellman handshake runs
    /// once per client and later participations ratchet fresh one-time mask
    /// seeds from the cached shared secret.
    AsyncSecAgg,
    /// The pre-session-cache protocol: a fresh Diffie–Hellman exchange per
    /// masked update.  Numerically identical to [`SecAggMode::AsyncSecAgg`]
    /// (the masks cancel exactly in both), but ~4 group exponentiations per
    /// update slower; kept for the equivalence suite and as a conservative
    /// fallback.
    AsyncSecAggPerUpdate,
}

/// The training regime of a task.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TrainingMode {
    /// Synchronous rounds (the GFL-style baseline).
    Sync {
        /// Over-selection factor `o`: the cohort has
        /// `aggregation_goal * (1 + o)` clients and the slowest are
        /// discarded.  `0.0` disables over-selection.
        over_selection: f64,
    },
    /// Asynchronous buffered aggregation (FedBuff).
    Async {
        /// Updates with staleness above this value are aborted
        /// (Appendix E.1/E.2).
        max_staleness: u64,
        /// Staleness down-weighting scheme.
        staleness_weighting: StalenessWeighting,
    },
    /// Buffered asynchronous aggregation with a round deadline: the buffer
    /// is force-released `round_deadline_s` after it opens even if the
    /// aggregation goal has not been met, bounding the straggler tail.
    TimedHybrid {
        /// Updates with staleness above this value are aborted.
        max_staleness: u64,
        /// Staleness down-weighting scheme.
        staleness_weighting: StalenessWeighting,
        /// Seconds after the first buffered update at which the buffer is
        /// force-released.
        round_deadline_s: f64,
    },
}

impl TrainingMode {
    /// The default asynchronous mode used throughout the evaluation:
    /// `1/sqrt(1+s)` weighting and a generous staleness bound.
    pub fn default_async() -> Self {
        TrainingMode::Async {
            max_staleness: 500,
            staleness_weighting: StalenessWeighting::PolynomialHalf,
        }
    }

    /// The default synchronous baseline: 30 % over-selection (Bonawitz et
    /// al., 2019).
    pub fn default_sync() -> Self {
        TrainingMode::Sync {
            over_selection: 0.3,
        }
    }

    /// The default timed-hybrid mode: FedBuff's staleness defaults plus the
    /// given round deadline.
    pub fn default_timed_hybrid(round_deadline_s: f64) -> Self {
        TrainingMode::TimedHybrid {
            max_staleness: 500,
            staleness_weighting: StalenessWeighting::PolynomialHalf,
            round_deadline_s,
        }
    }

    /// Returns true for buffered (non-round-gated) modes, including the
    /// timed hybrid.
    pub fn is_async(&self) -> bool {
        matches!(
            self,
            TrainingMode::Async { .. } | TrainingMode::TimedHybrid { .. }
        )
    }
}

/// Full configuration of a federated training task.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskConfig {
    /// Human-readable task name.
    pub name: String,
    /// Maximum number of concurrently participating clients (Appendix E.1).
    pub concurrency: usize,
    /// Number of client updates aggregated before a server model update.
    /// For SyncFL this is the cohort goal; for AsyncFL it is `K`.
    pub aggregation_goal: usize,
    /// Training regime.
    pub mode: TrainingMode,
    /// Whether updates are weighted by the client's example count.
    pub weight_by_examples: bool,
    /// Client-side training timeout in seconds (paper: 4 minutes).
    pub client_timeout_s: f64,
    /// Secure-aggregation mode.
    pub secagg: SecAggMode,
    /// User-level differential privacy: per-update L2 clipping, Gaussian
    /// release noise, and privacy accounting.  `None` runs without DP.
    /// Composes with [`SecAggMode::AsyncSecAgg`] (clipping happens
    /// client-side before masking; the noise lands on the decoded release).
    pub dp: Option<DpConfig>,
    /// Byzantine-robust aggregation: norm filtering or a robust release
    /// estimator wrapped around the (possibly DP + secure) strategy as the
    /// outermost decorator.  `None` runs undefended.
    pub robust: Option<RobustConfig>,
    /// Adversarial client model: which fraction of the population is
    /// malicious and how.  `None` means every client is honest.  This is a
    /// *simulation* knob — it configures the attack being studied, not the
    /// server — and never affects the defense's behavior.
    pub adversary: Option<AdversarySpec>,
    /// Serialized model size in bytes (used for cost accounting only).
    pub model_size_bytes: u64,
    /// Minimum device capability tier required to train this task; clients
    /// report their tier at check-in and 0 means any device qualifies
    /// (Section 6.2, "constructing lists of eligible tasks").
    pub min_capability_tier: u8,
}

impl TaskConfig {
    /// An asynchronous (FedBuff) task with the given concurrency and
    /// aggregation goal `K`.
    ///
    /// # Panics
    ///
    /// Panics if `concurrency == 0` or `aggregation_goal == 0`.
    pub fn async_task(
        name: impl Into<String>,
        concurrency: usize,
        aggregation_goal: usize,
    ) -> Self {
        assert!(concurrency > 0, "concurrency must be positive");
        assert!(aggregation_goal > 0, "aggregation goal must be positive");
        TaskConfig {
            name: name.into(),
            concurrency,
            aggregation_goal,
            mode: TrainingMode::default_async(),
            weight_by_examples: true,
            client_timeout_s: 240.0,
            secagg: SecAggMode::Disabled,
            dp: None,
            robust: None,
            adversary: None,
            model_size_bytes: 20_000_000,
            min_capability_tier: 0,
        }
    }

    /// A synchronous task.  With over-selection `o`, `concurrency` clients
    /// are selected per round and the aggregation goal is
    /// `concurrency / (1 + o)` (Figure 7's configuration).
    ///
    /// # Panics
    ///
    /// Panics if `concurrency == 0` or `over_selection < 0`.
    pub fn sync_task(name: impl Into<String>, concurrency: usize, over_selection: f64) -> Self {
        assert!(concurrency > 0, "concurrency must be positive");
        assert!(over_selection >= 0.0, "over-selection must be non-negative");
        let aggregation_goal = ((concurrency as f64) / (1.0 + over_selection)).round() as usize;
        TaskConfig {
            name: name.into(),
            concurrency,
            aggregation_goal: aggregation_goal.max(1),
            mode: TrainingMode::Sync { over_selection },
            weight_by_examples: true,
            client_timeout_s: 240.0,
            secagg: SecAggMode::Disabled,
            dp: None,
            robust: None,
            adversary: None,
            model_size_bytes: 20_000_000,
            min_capability_tier: 0,
        }
    }

    /// A timed-hybrid task: FedBuff-style buffering with aggregation goal
    /// `K`, force-released `round_deadline_s` after the buffer opens.
    ///
    /// # Panics
    ///
    /// Panics if `concurrency == 0`, `aggregation_goal == 0`, or the
    /// deadline is not positive.
    pub fn timed_hybrid_task(
        name: impl Into<String>,
        concurrency: usize,
        aggregation_goal: usize,
        round_deadline_s: f64,
    ) -> Self {
        assert!(concurrency > 0, "concurrency must be positive");
        assert!(aggregation_goal > 0, "aggregation goal must be positive");
        assert!(round_deadline_s > 0.0, "round deadline must be positive");
        TaskConfig {
            name: name.into(),
            concurrency,
            aggregation_goal,
            mode: TrainingMode::default_timed_hybrid(round_deadline_s),
            weight_by_examples: true,
            client_timeout_s: 240.0,
            secagg: SecAggMode::Disabled,
            dp: None,
            robust: None,
            adversary: None,
            model_size_bytes: 20_000_000,
            min_capability_tier: 0,
        }
    }

    /// Sets the client timeout.
    pub fn with_timeout(mut self, timeout_s: f64) -> Self {
        self.client_timeout_s = timeout_s;
        self
    }

    /// Enables or disables example-count weighting.
    pub fn with_example_weighting(mut self, enabled: bool) -> Self {
        self.weight_by_examples = enabled;
        self
    }

    /// Sets the secure aggregation mode.
    pub fn with_secagg(mut self, secagg: SecAggMode) -> Self {
        self.secagg = secagg;
        self
    }

    /// Enables user-level differential privacy with the given
    /// configuration.
    pub fn with_dp(mut self, dp: DpConfig) -> Self {
        self.dp = Some(dp);
        self
    }

    /// Enables Byzantine-robust aggregation with the given configuration.
    pub fn with_robust(mut self, robust: RobustConfig) -> Self {
        self.robust = Some(robust);
        self
    }

    /// Injects the given adversarial client model into the simulation.
    pub fn with_adversary(mut self, adversary: AdversarySpec) -> Self {
        self.adversary = Some(adversary);
        self
    }

    /// Sets the maximum staleness (buffered modes only; no-op for
    /// synchronous tasks).
    pub fn with_max_staleness(mut self, max: u64) -> Self {
        match &mut self.mode {
            TrainingMode::Async { max_staleness, .. }
            | TrainingMode::TimedHybrid { max_staleness, .. } => *max_staleness = max,
            TrainingMode::Sync { .. } => {}
        }
        self
    }

    /// Sets the serialized model size used for communication accounting.
    pub fn with_model_size_bytes(mut self, bytes: u64) -> Self {
        self.model_size_bytes = bytes;
        self
    }

    /// Restricts the task to devices of at least the given capability tier.
    pub fn with_min_capability_tier(mut self, tier: u8) -> Self {
        self.min_capability_tier = tier;
        self
    }

    /// The over-selection factor (0 for asynchronous tasks).
    pub fn over_selection(&self) -> f64 {
        match self.mode {
            TrainingMode::Sync { over_selection } => over_selection,
            TrainingMode::Async { .. } | TrainingMode::TimedHybrid { .. } => 0.0,
        }
    }

    /// Client demand given the current number of active (participating but
    /// unfinished) clients and the number of updates already completed in the
    /// current round (Appendix E.3).
    ///
    /// * AsyncFL: `concurrency − active`.
    /// * SyncFL: `concurrency − completed − active` — once enough clients
    ///   have reported for this round no more are selected until the next
    ///   round starts.
    pub fn client_demand(&self, active_clients: usize, completed_this_round: usize) -> usize {
        match self.mode {
            TrainingMode::Async { .. } | TrainingMode::TimedHybrid { .. } => {
                self.concurrency.saturating_sub(active_clients)
            }
            TrainingMode::Sync { .. } => self
                .concurrency
                .saturating_sub(completed_this_round)
                .saturating_sub(active_clients),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_task_derives_aggregation_goal_from_over_selection() {
        let t = TaskConfig::sync_task("t", 1300, 0.3);
        assert_eq!(t.aggregation_goal, 1000);
        assert!((t.over_selection() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn sync_without_over_selection_waits_for_everyone() {
        let t = TaskConfig::sync_task("t", 1000, 0.0);
        assert_eq!(t.aggregation_goal, 1000);
    }

    #[test]
    fn async_task_defaults() {
        let t = TaskConfig::async_task("t", 1300, 100);
        assert!(t.mode.is_async());
        assert_eq!(t.aggregation_goal, 100);
        assert_eq!(t.over_selection(), 0.0);
    }

    #[test]
    fn async_client_demand_tracks_active_only() {
        let t = TaskConfig::async_task("t", 100, 10);
        assert_eq!(t.client_demand(40, 7), 60);
        assert_eq!(t.client_demand(100, 0), 0);
        assert_eq!(t.client_demand(150, 0), 0);
    }

    #[test]
    fn sync_client_demand_shrinks_as_round_completes() {
        let t = TaskConfig::sync_task("t", 130, 0.3);
        assert_eq!(t.client_demand(0, 0), 130);
        assert_eq!(t.client_demand(100, 0), 30);
        assert_eq!(t.client_demand(50, 60), 20);
        assert_eq!(t.client_demand(30, 100), 0);
    }

    #[test]
    fn builder_methods_apply() {
        let t = TaskConfig::async_task("t", 10, 5)
            .with_timeout(60.0)
            .with_example_weighting(false)
            .with_secagg(SecAggMode::AsyncSecAgg)
            .with_dp(DpConfig::new(1.0, 0.5))
            .with_robust(RobustConfig::neutral())
            .with_adversary(AdversarySpec::new(
                0.1,
                crate::adversary::Malice::StalenessLiar,
            ))
            .with_max_staleness(7)
            .with_model_size_bytes(1000)
            .with_min_capability_tier(2);
        assert_eq!(t.client_timeout_s, 60.0);
        assert!(!t.weight_by_examples);
        assert_eq!(t.secagg, SecAggMode::AsyncSecAgg);
        assert_eq!(t.dp, Some(DpConfig::new(1.0, 0.5)));
        assert_eq!(t.robust, Some(RobustConfig::neutral()));
        assert_eq!(
            t.adversary,
            Some(AdversarySpec::new(
                0.1,
                crate::adversary::Malice::StalenessLiar
            ))
        );
        assert_eq!(t.model_size_bytes, 1000);
        assert_eq!(t.min_capability_tier, 2);
        match t.mode {
            TrainingMode::Async { max_staleness, .. } => assert_eq!(max_staleness, 7),
            _ => panic!("expected async mode"),
        }
    }

    #[test]
    fn timed_hybrid_task_defaults() {
        let t = TaskConfig::timed_hybrid_task("t", 100, 25, 300.0);
        assert!(t.mode.is_async());
        assert_eq!(t.over_selection(), 0.0);
        // Demand follows the async rule: deadline releases never gate
        // selection the way a closing round does.
        assert_eq!(t.client_demand(40, 7), 60);
        match t.with_max_staleness(9).mode {
            TrainingMode::TimedHybrid {
                max_staleness,
                round_deadline_s,
                ..
            } => {
                assert_eq!(max_staleness, 9);
                assert_eq!(round_deadline_s, 300.0);
            }
            _ => panic!("expected timed-hybrid mode"),
        }
    }

    #[test]
    #[should_panic(expected = "concurrency must be positive")]
    fn zero_concurrency_rejected() {
        let _ = TaskConfig::async_task("t", 0, 1);
    }
}
