//! Typed Byzantine client behaviors.
//!
//! The paper's production system assumes well-behaved clients; at millions
//! of devices the threat model must extend past crashes to adversarial
//! updates.  This module is the attack half of that extension (the defense
//! half is [`crate::robust`]): an [`AdversarySpec`] marks a deterministic
//! fraction of the client population as malicious and gives every malicious
//! client one typed [`Malice`] behavior.  Simulation drivers consult the
//! spec at the upload choke point — after local training, before the update
//! reaches the aggregator — so the attack surface is exactly what a real
//! server faces: it sees only what the device chooses to send.
//!
//! Behaviors are modeled on the malicious-party test harnesses of
//! threshold-crypto implementations (tofn-style `malicious` modules): each
//! behavior is a small, named, individually testable deviation from the
//! honest protocol, and the attack-vs-defense matrix in `papaya-sim` proves
//! which [`crate::robust::RobustDefense`] neutralizes which behavior.
//!
//! Everything here is deterministic: membership is a pure hash of
//! `(seed, client_id)` and the collusion target is a pure function of the
//! seed, so adversarial runs are bit-identical at any thread count, like
//! every other part of the simulator.

use papaya_nn::params::ParamVec;

/// How a SecAgg-enabled malicious client deviates from the masking
/// protocol (instead of, or in addition to, corrupting its delta).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviationKind {
    /// The client uploads a mask reference claiming the *next* ratchet
    /// counter instead of the one its mask was actually expanded from.
    /// The TSA's monotone floor accepts the higher counter, expands a
    /// different mask seed, and the unmask leaves mask residue on the
    /// aggregate — detectable as an out-of-range release, never a panic.
    WrongCounter,
    /// The client applies its pad twice, so the TSA's unmask removes only
    /// one copy and the released aggregate carries a full pseudorandom
    /// pad of garbage.
    GarbageMask,
}

impl DeviationKind {
    /// Stable attack label for telemetry and reports.
    pub fn label(&self) -> &'static str {
        match self {
            DeviationKind::WrongCounter => "secagg-wrong-counter",
            DeviationKind::GarbageMask => "secagg-garbage-mask",
        }
    }
}

/// One typed malicious behavior, applied by every malicious client.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Malice {
    /// Uploads `-scale * delta`: the classic sign-flip (gradient-ascent)
    /// attack, optionally amplified.
    SignFlip {
        /// Amplification applied on top of the flip; `1.0` is a pure flip.
        scale: f64,
    },
    /// Uploads `factor * delta`: a scaled (boosted) update that dominates
    /// the weighted average without changing direction.
    Scaled {
        /// The boost factor (e.g. `100.0`).
        factor: f64,
    },
    /// Colluding cohort: every malicious client discards its honest delta
    /// and uploads the *same* pseudorandom target vector of the given L2
    /// magnitude (derived from the adversary seed), steering the model
    /// toward a shared poisoned point.
    Collusion {
        /// L2 norm of the shared target vector.
        magnitude: f64,
    },
    /// Staleness liar: the client trains against the *initial* global
    /// model forever (never re-downloading) but reports the current
    /// version as its start version, claiming staleness 0 so staleness
    /// down-weighting never discounts its increasingly stale update.
    StalenessLiar,
    /// SecAgg protocol deviation (only meaningful for secure tasks; a
    /// clear task treats this as honest behavior).
    SecAggDeviation {
        /// Which protocol step is violated.
        kind: DeviationKind,
    },
}

impl Malice {
    /// Stable attack label for telemetry, traces, and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Malice::SignFlip { .. } => "sign-flip",
            Malice::Scaled { .. } => "scaled",
            Malice::Collusion { .. } => "collusion",
            Malice::StalenessLiar => "staleness-liar",
            Malice::SecAggDeviation { kind } => kind.label(),
        }
    }
}

/// The adversarial client model of one task: which clients are malicious
/// and what they do.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdversarySpec {
    /// Fraction of the client population that is malicious, in `[0, 1]`.
    /// Membership is decided per client id by a deterministic hash, so the
    /// realized fraction converges to this value over the population.
    pub fraction: f64,
    /// The behavior every malicious client exhibits.
    pub malice: Malice,
    /// Seed for membership hashing and the collusion target (independent
    /// of the task seed, so the same attack can be replayed against
    /// different training randomness).
    pub seed: u64,
}

impl AdversarySpec {
    /// An adversary where the given fraction of clients exhibits `malice`.
    pub fn new(fraction: f64, malice: Malice) -> Self {
        AdversarySpec {
            fraction,
            malice,
            seed: 0xBAD_C0DE,
        }
    }

    /// Sets the membership/targeting seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Panics unless every knob is in its valid range; called by
    /// scenario-side config validation.
    ///
    /// # Panics
    ///
    /// Panics on a fraction outside `[0, 1]` or a non-finite / non-positive
    /// attack parameter.
    pub fn validate(&self) {
        // Exhaustive destructure: a new adversary knob must be
        // range-checked here (or explicitly ignored) before it compiles.
        let AdversarySpec {
            fraction,
            malice,
            seed: _,
        } = *self;
        assert!(
            (0.0..=1.0).contains(&fraction),
            "adversary: fraction must be in [0, 1], got {fraction}"
        );
        match malice {
            Malice::SignFlip { scale } => assert!(
                scale.is_finite() && scale > 0.0,
                "adversary: sign-flip scale must be positive and finite, got {scale}"
            ),
            Malice::Scaled { factor } => assert!(
                factor.is_finite(),
                "adversary: scale factor must be finite, got {factor}"
            ),
            Malice::Collusion { magnitude } => assert!(
                magnitude.is_finite() && magnitude > 0.0,
                "adversary: collusion magnitude must be positive and finite, got {magnitude}"
            ),
            Malice::StalenessLiar | Malice::SecAggDeviation { .. } => {}
        }
    }

    /// Whether `client_id` is malicious under this spec.  A pure hash of
    /// `(seed, client_id)` compared against the fraction — deterministic,
    /// stateless, and O(1) per call.
    pub fn is_malicious(&self, client_id: usize) -> bool {
        if self.fraction <= 0.0 {
            return false;
        }
        if self.fraction >= 1.0 {
            return true;
        }
        let h = splitmix64(self.seed ^ (client_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Top 53 bits as a uniform in [0, 1).
        ((h >> 11) as f64 / (1u64 << 53) as f64) < self.fraction
    }

    /// The SecAgg protocol deviation malicious clients perform, if the
    /// behavior is one.
    pub fn deviation(&self) -> Option<DeviationKind> {
        match self.malice {
            Malice::SecAggDeviation { kind } => Some(kind),
            _ => None,
        }
    }

    /// Whether malicious clients lie about their staleness (train against
    /// the initial model while claiming the current version).
    pub fn lies_about_staleness(&self) -> bool {
        matches!(self.malice, Malice::StalenessLiar)
    }

    /// Applies the behavior's delta corruption in place (the upload-time
    /// transformation a malicious device performs on its own update).
    /// No-op for behaviors that corrupt metadata or protocol state instead
    /// of the delta, and for honest clients.
    pub fn corrupt_delta(&self, client_id: usize, delta: &mut ParamVec) {
        if !self.is_malicious(client_id) {
            return;
        }
        match self.malice {
            Malice::SignFlip { scale } => delta.scale(-scale as f32),
            Malice::Scaled { factor } => delta.scale(factor as f32),
            Malice::Collusion { magnitude } => {
                // Every colluder uploads the identical target vector, so
                // the attack survives averaging at full strength.
                let target = collusion_target(self.seed, delta.len(), magnitude);
                delta.as_mut_slice().copy_from_slice(target.as_slice());
            }
            Malice::StalenessLiar | Malice::SecAggDeviation { .. } => {}
        }
    }
}

/// The shared collusion target: a pseudorandom direction derived from the
/// adversary seed, scaled to the requested L2 magnitude.
pub fn collusion_target(seed: u64, dimension: usize, magnitude: f64) -> ParamVec {
    let mut values = Vec::with_capacity(dimension);
    for i in 0..dimension {
        let h = splitmix64(seed ^ 0xC011_0DE0 ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
        // Uniform in [-1, 1).
        values.push(((h >> 11) as f64 / (1u64 << 52) as f64 - 1.0) as f32);
    }
    let mut target = ParamVec::from_vec(values);
    let norm = target.norm() as f64;
    if norm > 0.0 {
        target.scale((magnitude / norm) as f32);
    }
    target
}

/// SplitMix64: a fast, well-mixed 64-bit hash (Steele et al., 2014), used
/// for membership and targeting so adversary checks cost a few ALU ops
/// instead of a cryptographic hash per upload.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_is_deterministic_and_tracks_the_fraction() {
        let spec = AdversarySpec::new(0.3, Malice::SignFlip { scale: 1.0 });
        let malicious = (0..10_000).filter(|&id| spec.is_malicious(id)).count();
        // The hash is uniform; 30 % ± a small tolerance over 10k clients.
        assert!(
            (2_700..=3_300).contains(&malicious),
            "realized fraction off: {malicious}/10000"
        );
        for id in 0..100 {
            assert_eq!(spec.is_malicious(id), spec.is_malicious(id));
        }
        // Different seeds pick different cohorts.
        let reseeded = spec.with_seed(7);
        assert!((0..1000).any(|id| spec.is_malicious(id) != reseeded.is_malicious(id)));
    }

    #[test]
    fn fraction_extremes_are_exact() {
        let none = AdversarySpec::new(0.0, Malice::StalenessLiar);
        let all = AdversarySpec::new(1.0, Malice::StalenessLiar);
        assert!((0..1000).all(|id| !none.is_malicious(id)));
        assert!((0..1000).all(|id| all.is_malicious(id)));
    }

    #[test]
    fn sign_flip_negates_and_scales() {
        let spec = AdversarySpec::new(1.0, Malice::SignFlip { scale: 2.0 });
        let mut delta = ParamVec::from_vec(vec![1.0, -0.5]);
        spec.corrupt_delta(0, &mut delta);
        assert_eq!(delta.as_slice(), &[-2.0, 1.0]);
    }

    #[test]
    fn scaled_attack_boosts_without_turning() {
        let spec = AdversarySpec::new(1.0, Malice::Scaled { factor: 100.0 });
        let mut delta = ParamVec::from_vec(vec![0.1, 0.2]);
        spec.corrupt_delta(3, &mut delta);
        assert!((delta.as_slice()[0] - 10.0).abs() < 1e-5);
        assert!((delta.as_slice()[1] - 20.0).abs() < 1e-5);
    }

    #[test]
    fn honest_clients_are_untouched() {
        let spec = AdversarySpec::new(0.5, Malice::Scaled { factor: 100.0 });
        let honest = (0..1000).find(|&id| !spec.is_malicious(id)).unwrap();
        let mut delta = ParamVec::from_vec(vec![1.0, 2.0]);
        spec.corrupt_delta(honest, &mut delta);
        assert_eq!(delta.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn colluders_share_one_target_of_the_requested_magnitude() {
        let spec = AdversarySpec::new(1.0, Malice::Collusion { magnitude: 5.0 });
        let mut a = ParamVec::from_vec(vec![1.0, 2.0, 3.0]);
        let mut b = ParamVec::from_vec(vec![-9.0, 0.0, 4.0]);
        spec.corrupt_delta(0, &mut a);
        spec.corrupt_delta(71, &mut b);
        assert_eq!(a.as_slice(), b.as_slice(), "colluders must agree");
        assert!((a.norm() as f64 - 5.0).abs() < 1e-4);
        // A different seed steers somewhere else.
        let mut c = ParamVec::from_vec(vec![0.0, 0.0, 0.0]);
        spec.with_seed(99).corrupt_delta(0, &mut c);
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn metadata_attacks_leave_the_delta_alone() {
        for malice in [
            Malice::StalenessLiar,
            Malice::SecAggDeviation {
                kind: DeviationKind::WrongCounter,
            },
        ] {
            let spec = AdversarySpec::new(1.0, malice);
            let mut delta = ParamVec::from_vec(vec![1.0, -1.0]);
            spec.corrupt_delta(0, &mut delta);
            assert_eq!(delta.as_slice(), &[1.0, -1.0]);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            AdversarySpec::new(0.1, Malice::SignFlip { scale: 1.0 })
                .malice
                .label(),
            "sign-flip"
        );
        assert_eq!(Malice::Scaled { factor: 2.0 }.label(), "scaled");
        assert_eq!(Malice::Collusion { magnitude: 1.0 }.label(), "collusion");
        assert_eq!(Malice::StalenessLiar.label(), "staleness-liar");
        assert_eq!(
            Malice::SecAggDeviation {
                kind: DeviationKind::WrongCounter
            }
            .label(),
            "secagg-wrong-counter"
        );
        assert_eq!(
            Malice::SecAggDeviation {
                kind: DeviationKind::GarbageMask
            }
            .label(),
            "secagg-garbage-mask"
        );
    }

    #[test]
    fn accessors_expose_metadata_behaviors() {
        let liar = AdversarySpec::new(0.2, Malice::StalenessLiar);
        assert!(liar.lies_about_staleness());
        assert_eq!(liar.deviation(), None);
        let deviant = AdversarySpec::new(
            0.2,
            Malice::SecAggDeviation {
                kind: DeviationKind::GarbageMask,
            },
        );
        assert!(!deviant.lies_about_staleness());
        assert_eq!(deviant.deviation(), Some(DeviationKind::GarbageMask));
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn out_of_range_fraction_rejected() {
        AdversarySpec::new(1.5, Malice::StalenessLiar).validate();
    }

    #[test]
    #[should_panic(expected = "collusion magnitude must be positive")]
    fn non_finite_magnitude_rejected() {
        AdversarySpec::new(
            0.5,
            Malice::Collusion {
                magnitude: f64::NAN,
            },
        )
        .validate();
    }

    #[test]
    #[should_panic(expected = "scale factor must be finite")]
    fn non_finite_scale_rejected() {
        AdversarySpec::new(
            0.5,
            Malice::Scaled {
                factor: f64::INFINITY,
            },
        )
        .validate();
    }
}
