//! The aggregation protocol: one trait, many strategies.
//!
//! PAPAYA's central systems claim is that a single server architecture
//! serves synchronous rounds, buffered asynchronous aggregation, and
//! anything in between through configuration alone.  This module is that
//! claim in interface form: an [`Aggregator`] folds client updates into a
//! buffer, decides when the buffer is ready, and releases a weighted-average
//! delta for the server optimizer — while the runtime driving it never
//! branches on *which* strategy is plugged in.
//!
//! Three strategies implement the trait:
//!
//! * [`FedBuffAggregator`] — buffered
//!   asynchronous aggregation: release after `K` accepted updates, stale
//!   updates down-weighted or rejected (Section 3.1 / Appendix E.2);
//! * [`SyncRoundAggregator`] —
//!   synchronous rounds with over-selection: release once the cohort goal is
//!   met, later arrivals discarded, and a release closes the round
//!   (Section 7 / Appendix E.3);
//! * [`TimedHybridAggregator`] —
//!   a FedBuff-style buffer with a sync-style round deadline that
//!   force-releases whatever has arrived when the deadline expires, bounding
//!   the straggler tail the paper's sync/async comparison is about.
//!
//! [`for_task`] builds the strategy a [`TaskConfig`] asks for, so drivers
//! hold a `Box<dyn Aggregator>` and stay mode-agnostic.
//!
//! # Example
//!
//! ```
//! use papaya_core::aggregator::{for_task, AccumulateOutcome, Aggregator};
//! use papaya_core::client::ClientUpdate;
//! use papaya_core::TaskConfig;
//! use papaya_nn::params::ParamVec;
//!
//! let task = TaskConfig::async_task("demo", 8, 2);
//! let mut agg = for_task(&task);
//! let update = |id, delta: Vec<f32>| ClientUpdate {
//!     client_id: id,
//!     delta: ParamVec::from_vec(delta),
//!     num_examples: 10,
//!     start_version: 0,
//!     train_loss: 0.0,
//! };
//! assert!(agg.accumulate(update(0, vec![1.0, 0.0]), 0, 0.0).accepted());
//! assert!(agg.accumulate(update(1, vec![0.0, 1.0]), 0, 1.0).accepted());
//! assert!(agg.is_ready(1.0));
//! assert_eq!(agg.take(1.0).unwrap().as_slice(), &[0.5, 0.5]);
//! ```

use crate::client::ClientUpdate;
use crate::config::{TaskConfig, TrainingMode};
use crate::fedbuff::FedBuffAggregator;
use crate::sync_agg::SyncRoundAggregator;
use crate::timed_hybrid::TimedHybridAggregator;
use papaya_nn::params::ParamVec;

/// The outcome of offering one update to an aggregator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccumulateOutcome {
    /// The update was folded into the buffer.
    Accepted {
        /// Staleness of the accepted update.
        staleness: u64,
    },
    /// The update exceeded the maximum allowed staleness and was discarded.
    RejectedStale {
        /// Staleness of the rejected update.
        staleness: u64,
        /// The configured bound it exceeded.
        max_staleness: u64,
    },
    /// The update arrived after the goal was already met and was discarded
    /// (the over-selection waste of synchronous rounds).
    Discarded,
    /// A robust-aggregation defense rejected the update before it could
    /// reach the wrapped strategy's buffer: it carried NaN/infinite values
    /// or its L2 norm exceeded the configured filter bound
    /// ([`crate::robust::RobustAggregator`]).
    RejectedByDefense,
}

impl AccumulateOutcome {
    /// Returns true if the update was accepted.
    pub fn accepted(&self) -> bool {
        matches!(self, AccumulateOutcome::Accepted { .. })
    }
}

/// Lifetime counters every aggregation strategy maintains.
///
/// The counters survive [`Aggregator::take`] and [`Aggregator::reset`]: they
/// describe the aggregator's whole history, not the buffer in progress.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AggregatorStats {
    /// Updates folded into a buffer.
    pub accepted: u64,
    /// Updates rejected for exceeding the staleness bound.
    pub rejected_stale: u64,
    /// Updates discarded because the goal was already met.
    pub discarded: u64,
    /// Sum of staleness over accepted updates.
    pub staleness_sum: u64,
    /// Largest staleness observed among accepted updates.
    pub max_observed_staleness: u64,
}

impl AggregatorStats {
    /// Mean staleness of accepted updates.
    pub fn mean_staleness(&self) -> f64 {
        if self.accepted == 0 {
            0.0
        } else {
            self.staleness_sum as f64 / self.accepted as f64
        }
    }

    /// Records an accepted update of the given staleness.
    ///
    /// All counters saturate instead of wrapping, so week-long soak runs
    /// cannot panic a debug build on overflow.
    pub fn record_accepted(&mut self, staleness: u64) {
        self.accepted = self.accepted.saturating_add(1);
        self.staleness_sum = self.staleness_sum.saturating_add(staleness);
        self.max_observed_staleness = self.max_observed_staleness.max(staleness);
    }

    /// Records an update rejected for exceeding the staleness bound
    /// (saturating).
    pub fn record_rejected_stale(&mut self) {
        self.rejected_stale = self.rejected_stale.saturating_add(1);
    }

    /// Records an update discarded because the goal was already met
    /// (saturating).
    pub fn record_discarded(&mut self) {
        self.discarded = self.discarded.saturating_add(1);
    }
}

/// An aggregation strategy: buffers client updates and releases a
/// weighted-average model delta when its readiness condition is met.
///
/// `now_s` is virtual time in seconds.  Purely count-based strategies ignore
/// it; time-aware strategies (deadline release) use it, which is why it
/// threads through [`accumulate`](Aggregator::accumulate),
/// [`is_ready`](Aggregator::is_ready), and [`take`](Aggregator::take).
pub trait Aggregator: Send {
    /// Offers an update; `current_version` is the server model version at
    /// upload time (used to compute staleness).
    fn accumulate(
        &mut self,
        update: ClientUpdate,
        current_version: u64,
        now_s: f64,
    ) -> AccumulateOutcome;

    /// Returns true once the release condition is met at `now_s`.
    fn is_ready(&self, now_s: f64) -> bool;

    /// Releases the aggregated (weighted-average) update and clears the
    /// buffer, or returns `None` when [`is_ready`](Aggregator::is_ready) is
    /// false at `now_s`.
    ///
    /// If every buffered update carried zero weight the release is a zero
    /// delta (a no-op server step) rather than the unscaled raw sum.
    fn take(&mut self, now_s: f64) -> Option<ParamVec>;

    /// Discards all buffered updates without releasing them (the process
    /// holding the buffer died).  Returns how many buffered updates were
    /// dropped.  Lifetime [`stats`](Aggregator::stats) are preserved.
    fn reset(&mut self) -> usize;

    /// The configured aggregation goal (`K` for buffered strategies, the
    /// cohort goal for rounds).
    fn goal(&self) -> usize;

    /// Number of updates currently buffered.
    fn buffered(&self) -> usize;

    /// Lifetime counters (accepted/rejected/staleness).
    fn stats(&self) -> &AggregatorStats;

    /// The staleness bound this strategy enforces, if any.  Drivers use it
    /// to abort in-flight clients whose update could never be accepted
    /// (Appendix E.1).
    fn max_staleness(&self) -> Option<u64> {
        None
    }

    /// The virtual time at which this strategy becomes ready without any
    /// further arrival, if such a time exists (deadline strategies with an
    /// open buffer).  Drivers schedule an exact readiness check at this
    /// time instead of polling.  Count-based strategies return `None`.
    fn next_deadline_s(&self) -> Option<f64> {
        None
    }

    /// Whether a release closes a cohort round: participants that started
    /// before the release are aborted and late arrivals from earlier rounds
    /// discarded.  Buffered strategies return false — stragglers keep
    /// training and their updates stay welcome, subject to staleness.
    fn closes_round_on_release(&self) -> bool {
        false
    }

    /// The weight this strategy would assign to an accepted update, given
    /// only metadata the server legitimately sees in the clear: the client's
    /// example count and the staleness at upload time.
    ///
    /// Must be a pure function of that metadata (no buffer state) and must
    /// be exactly the weight [`accumulate`](Aggregator::accumulate) folds
    /// with — [`crate::secure::SecureAggregator`] relies on this to
    /// reproduce the weighted average in ciphertext space, where the weight
    /// is applied client-side before masking and the weight *total* is the
    /// only thing the server tracks in the clear.
    fn update_weight(&self, num_examples: usize, staleness: u64) -> f64;

    /// Secure-aggregation telemetry, for strategies that run the AsyncSecAgg
    /// protocol underneath ([`crate::secure::SecureAggregator`]).  Clear
    /// strategies return `None`; drivers use this both to detect that a
    /// task is running privately and to export TEE-boundary metrics.
    fn secure_telemetry(&self) -> Option<&crate::secure::SecureTelemetry> {
        None
    }

    /// Differential-privacy telemetry, for strategies wrapped in the DP
    /// pipeline ([`crate::dp::DpAggregator`]).  Non-DP strategies return
    /// `None`; drivers use this both to detect that a task's releases are
    /// noised and to export the clip/noise/ε traces.
    fn dp_telemetry(&self) -> Option<&crate::dp::DpTelemetry> {
        None
    }

    /// Robust-aggregation telemetry, for strategies wrapped in the
    /// Byzantine-defense pipeline ([`crate::robust::RobustAggregator`]).
    /// Undefended strategies return `None`; drivers use this both to
    /// detect that a task is defended and to export rejection counts and
    /// estimator-correction traces.
    fn robust_telemetry(&self) -> Option<&crate::robust::RobustTelemetry> {
        None
    }

    /// Plans the mask work for `client_id`'s next participation, burning its
    /// ratchet counter (session-cached secure aggregation only).  The plan
    /// is pure — drivers may compute it speculatively on a worker thread —
    /// and must be called exactly once per participation that will reach
    /// [`accumulate`](Aggregator::accumulate), in driver event order.
    /// Clear strategies return `None`.
    fn plan_mask_precompute(&mut self, _client_id: usize) -> Option<crate::secure::MaskPlan> {
        None
    }

    /// Hands back the result of a speculatively computed
    /// [`plan_mask_precompute`](Aggregator::plan_mask_precompute) plan so
    /// the next [`accumulate`](Aggregator::accumulate) for that client can
    /// skip the inline computation.  Stale results (from before an
    /// invalidation) are ignored.  No-op for clear strategies.
    fn provide_precomputed_mask(
        &mut self,
        _client_id: usize,
        _mask: crate::secure::PrecomputedMask,
    ) {
    }

    /// Cumulative wall-clock spent in the secure pipeline's phases, for
    /// profiling (never part of a report fingerprint).  Clear strategies
    /// return `None`.
    fn secure_timings(&self) -> Option<crate::secure::SecureTimings> {
        None
    }
}

/// Builds the aggregation strategy a task's [`TrainingMode`] asks for.
///
/// This is the only place mode is ever inspected; everything downstream
/// works through `Box<dyn Aggregator>`.
pub fn for_task(config: &TaskConfig) -> Box<dyn Aggregator> {
    match config.mode {
        TrainingMode::Async {
            max_staleness,
            staleness_weighting,
        } => Box::new(
            FedBuffAggregator::new(
                config.aggregation_goal,
                staleness_weighting,
                Some(max_staleness),
            )
            .with_example_weighting(config.weight_by_examples),
        ),
        TrainingMode::Sync { .. } => Box::new(
            SyncRoundAggregator::new(config.aggregation_goal)
                .with_example_weighting(config.weight_by_examples),
        ),
        TrainingMode::TimedHybrid {
            max_staleness,
            staleness_weighting,
            round_deadline_s,
        } => Box::new(
            TimedHybridAggregator::new(
                config.aggregation_goal,
                staleness_weighting,
                Some(max_staleness),
                round_deadline_s,
            )
            .with_example_weighting(config.weight_by_examples),
        ),
    }
}

/// The weighted running sum shared by every buffering strategy: folds
/// deltas scaled by their weight and releases the weighted average (or a
/// zero delta when all weights were zero).
#[derive(Clone, Debug, Default)]
pub(crate) struct WeightedBuffer {
    buffer: Option<ParamVec>,
    weight_sum: f64,
    buffered: usize,
}

impl WeightedBuffer {
    /// Folds one delta with the given weight.
    ///
    /// # Panics
    ///
    /// Panics if the delta's dimensionality differs from earlier deltas.
    pub fn fold(&mut self, delta: &ParamVec, weight: f64) {
        let buffer = self
            .buffer
            .get_or_insert_with(|| ParamVec::zeros(delta.len()));
        assert_eq!(
            buffer.len(),
            delta.len(),
            "update dimensionality changed mid-training"
        );
        buffer.add_scaled(delta, weight as f32);
        self.weight_sum += weight;
        self.buffered += 1;
    }

    /// Number of deltas folded since the last release or clear.
    pub fn len(&self) -> usize {
        self.buffered
    }

    /// Releases the weighted average and empties the buffer.  Returns `None`
    /// when nothing was buffered; returns a zero delta when every folded
    /// update carried zero weight.
    pub fn release(&mut self) -> Option<ParamVec> {
        let mut buffer = self.buffer.take()?;
        if self.weight_sum > 0.0 {
            buffer.scale((1.0 / self.weight_sum) as f32);
        } else {
            buffer = ParamVec::zeros(buffer.len());
        }
        self.weight_sum = 0.0;
        self.buffered = 0;
        Some(buffer)
    }

    /// Discards the buffer contents; returns how many deltas were dropped.
    pub fn clear(&mut self) -> usize {
        let dropped = self.buffered;
        self.buffer = None;
        self.weight_sum = 0.0;
        self.buffered = 0;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::staleness::StalenessWeighting;

    #[test]
    fn factory_builds_the_mode_the_config_asks_for() {
        let async_agg = for_task(&TaskConfig::async_task("a", 10, 4));
        assert_eq!(async_agg.goal(), 4);
        assert_eq!(async_agg.max_staleness(), Some(500));
        assert!(!async_agg.closes_round_on_release());

        let sync_agg = for_task(&TaskConfig::sync_task("s", 13, 0.3));
        assert_eq!(sync_agg.goal(), 10);
        assert_eq!(sync_agg.max_staleness(), None);
        assert!(sync_agg.closes_round_on_release());

        let hybrid = for_task(&TaskConfig::timed_hybrid_task("h", 10, 4, 120.0));
        assert_eq!(hybrid.goal(), 4);
        assert_eq!(hybrid.max_staleness(), Some(500));
        assert!(!hybrid.closes_round_on_release());
    }

    #[test]
    fn factory_respects_example_weighting_flag() {
        let task = TaskConfig::async_task("a", 10, 2).with_example_weighting(false);
        let mut agg = for_task(&task);
        let update = |id: usize, value: f32, examples: usize| ClientUpdate {
            client_id: id,
            delta: ParamVec::from_vec(vec![value]),
            num_examples: examples,
            start_version: 0,
            train_loss: 0.0,
        };
        agg.accumulate(update(0, 0.0, 1000), 0, 0.0);
        agg.accumulate(update(1, 2.0, 1), 0, 0.0);
        assert!((agg.take(0.0).unwrap().as_slice()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_buffer_averages_and_clears() {
        let mut buffer = WeightedBuffer::default();
        buffer.fold(&ParamVec::from_vec(vec![2.0]), 1.0);
        buffer.fold(&ParamVec::from_vec(vec![4.0]), 3.0);
        assert_eq!(buffer.len(), 2);
        let out = buffer.release().unwrap();
        assert!((out.as_slice()[0] - 3.5).abs() < 1e-6);
        assert_eq!(buffer.len(), 0);
        assert!(buffer.release().is_none());
    }

    #[test]
    fn weighted_buffer_zero_weight_releases_zero_delta() {
        let mut buffer = WeightedBuffer::default();
        buffer.fold(&ParamVec::from_vec(vec![5.0, -3.0]), 0.0);
        assert_eq!(buffer.release().unwrap().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn stats_track_mean_and_max_staleness() {
        let mut stats = AggregatorStats::default();
        assert_eq!(stats.mean_staleness(), 0.0);
        stats.record_accepted(0);
        stats.record_accepted(4);
        assert_eq!(stats.accepted, 2);
        assert!((stats.mean_staleness() - 2.0).abs() < 1e-12);
        assert_eq!(stats.max_observed_staleness, 4);
    }

    #[test]
    fn stats_counters_saturate_instead_of_overflowing() {
        // A soak run that somehow reaches u64::MAX must not panic in debug
        // builds; the counters pin at the maximum.
        let mut stats = AggregatorStats {
            accepted: u64::MAX,
            rejected_stale: u64::MAX,
            discarded: u64::MAX,
            staleness_sum: u64::MAX - 1,
            max_observed_staleness: 0,
        };
        stats.record_accepted(7);
        stats.record_rejected_stale();
        stats.record_discarded();
        assert_eq!(stats.accepted, u64::MAX);
        assert_eq!(stats.rejected_stale, u64::MAX);
        assert_eq!(stats.discarded, u64::MAX);
        assert_eq!(stats.staleness_sum, u64::MAX);
        assert_eq!(stats.max_observed_staleness, 7);
    }

    #[test]
    fn trait_objects_are_interchangeable() {
        let update = |id: usize, value: f32| ClientUpdate {
            client_id: id,
            delta: ParamVec::from_vec(vec![value]),
            num_examples: 10,
            start_version: 0,
            train_loss: 0.0,
        };
        let mut strategies: Vec<Box<dyn Aggregator>> = vec![
            Box::new(FedBuffAggregator::new(
                2,
                StalenessWeighting::Constant,
                None,
            )),
            Box::new(SyncRoundAggregator::new(2)),
            Box::new(TimedHybridAggregator::new(
                2,
                StalenessWeighting::Constant,
                None,
                60.0,
            )),
        ];
        for agg in &mut strategies {
            assert!(agg.accumulate(update(0, 2.0), 0, 0.0).accepted());
            assert!(!agg.is_ready(0.0));
            assert!(agg.accumulate(update(1, 4.0), 0, 1.0).accepted());
            assert!(agg.is_ready(1.0));
            assert_eq!(agg.take(1.0).unwrap().as_slice(), &[3.0]);
            assert_eq!(agg.stats().accepted, 2);
        }
    }
}
