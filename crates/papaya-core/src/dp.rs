//! The [`DpAggregator`] decorator: user-level differential privacy for any
//! aggregation strategy.
//!
//! PAPAYA's title promises *private* federated learning on two legs: secure
//! aggregation (the server never sees an individual update — [`crate::secure`])
//! and differential privacy (the released aggregate provably bounds what
//! *anyone* can learn about one user).  This module is the second leg, in the
//! same decorator shape as [`SecureAggregator`](crate::secure::SecureAggregator):
//!
//! * on [`accumulate`](Aggregator::accumulate) each update's delta is
//!   **L2-clipped** to [`DpConfig::clip_bound`] before the wrapped strategy
//!   sees it — bounding every user's contribution is what gives the release
//!   a finite sensitivity;
//! * on [`take`](Aggregator::take) seeded Gaussian noise of standard
//!   deviation `clip_bound * noise_multiplier * max_weight / weight_total`
//!   is added to the released weighted average — the central-DP Gaussian
//!   mechanism over the buffer's weighted sum, whose L2 sensitivity to one
//!   user is at most `max_weight * clip_bound` (the largest weight folded
//!   into the buffer — pure public metadata — times the clip bound),
//!   divided out with the public weight total.  With uniform unit weights
//!   this reduces to the textbook `clip_bound * noise_multiplier / K`;
//!   under example-count weighting the `max_weight` factor is what keeps
//!   the accountant's ε honest for the heaviest client;
//! * every release is fed into a [`PrivacyAccountant`] — Rényi-DP (moments)
//!   accounting for the subsampled Gaussian mechanism, composed across
//!   releases and queried as [`epsilon(delta)`](PrivacyAccountant::epsilon).
//!
//! # Stacking with secure aggregation
//!
//! `DpAggregator` composes with the secure pipeline as the **outer** layer:
//! `dp(secure(strategy))`.  Clipping then happens on the client before the
//! update is masked (clients clip locally — the host never needs the clear
//! delta), and the noise is added to the *decoded* release — exactly where
//! the paper's TEE would add it, since only the TSA ever holds the unmasked
//! aggregate.  The reverse nesting (`secure(dp(...))`) would mask unclipped
//! deltas and noise only the reference path, so
//! [`crate::config::TaskConfig`]-driven wiring always builds DP outermost.
//!
//! The noise RNG is seeded deterministically and every protocol step runs
//! inside `accumulate`/`take`/`reset` on the event-loop thread, so reports
//! stay bit-identical at any training parallelism.  With
//! `noise_multiplier == 0` the noise step is skipped entirely (not "adds a
//! zero"), so a zero-noise DP run is **bit-exact** against the clear run —
//! the equivalence the `dp_equivalence` suite pins.

use crate::aggregator::{AccumulateOutcome, Aggregator, AggregatorStats};
use crate::client::ClientUpdate;
use papaya_crypto::chacha20::ChaCha20Rng;
use papaya_nn::params::ParamVec;

/// Differential-privacy configuration of one task.
///
/// Deliberately agnostic of the task's [`TrainingMode`](crate::TrainingMode):
/// clipping and release noise apply identically to FedBuff buffers,
/// synchronous cohorts, and deadline partials.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DpConfig {
    /// L2 bound every accepted update is clipped to (the per-user
    /// contribution bound `C`).  Must be positive and finite.
    pub clip_bound: f64,
    /// Noise multiplier `z`: each release carries Gaussian noise of std
    /// `clip_bound * z * max_weight / weight_total` (noise per unit of the
    /// release's per-user sensitivity).  `0` disables noise (and makes the
    /// run bit-exact against a clear run); must be non-negative and finite.
    pub noise_multiplier: f64,
    /// Per-release user sampling probability `q` assumed by the accountant
    /// (the fraction of the user population contributing to one buffer).
    /// `1.0` — the conservative default — claims no subsampling
    /// amplification and is always sound.  Must be in `(0, 1]`.
    ///
    /// **Caveat:** the amplified bound assumes each user enters a release
    /// independently with probability `q` (Poisson sampling).  Buffered
    /// asynchronous selection is speed-biased — fast devices land in far
    /// more buffers than `q` suggests — so an amplified ε under FedBuff is
    /// a modeling approximation for the *typical* user, not a worst-case
    /// certificate; deployments wanting a certificate keep the default.
    pub sampling_rate: f64,
    /// The `δ` at which the cumulative privacy loss is tracked (budget
    /// checks, telemetry, reports).  Must be in `(0, 1)`.
    pub target_delta: f64,
    /// Optional `ε` budget: once the accountant's cumulative
    /// `epsilon(target_delta)` reaches this value, scenario drivers stop
    /// the run (`StopReason::PrivacyBudgetExhausted` in `papaya-sim`).
    /// Requires a positive noise multiplier (a noiseless mechanism has
    /// infinite ε and would stop on the first release).
    pub epsilon_budget: Option<f64>,
}

impl DpConfig {
    /// A DP configuration with the given clip bound and noise multiplier,
    /// no subsampling amplification (`sampling_rate = 1`), `δ = 1e-6`, and
    /// no ε budget.
    pub fn new(clip_bound: f64, noise_multiplier: f64) -> Self {
        DpConfig {
            clip_bound,
            noise_multiplier,
            sampling_rate: 1.0,
            target_delta: 1e-6,
            epsilon_budget: None,
        }
    }

    /// Sets the accountant's per-release sampling probability.
    pub fn with_sampling_rate(mut self, q: f64) -> Self {
        self.sampling_rate = q;
        self
    }

    /// Sets the `δ` the cumulative ε is tracked at.
    pub fn with_target_delta(mut self, delta: f64) -> Self {
        self.target_delta = delta;
        self
    }

    /// Sets the ε budget the scenario stops at.
    pub fn with_epsilon_budget(mut self, epsilon: f64) -> Self {
        self.epsilon_budget = Some(epsilon);
        self
    }

    /// Panics unless every knob is in its valid range; called by
    /// scenario-side config validation and by [`DpAggregator::new`].
    ///
    /// # Panics
    ///
    /// Panics on a non-positive/non-finite clip bound, a negative or
    /// non-finite noise multiplier, a sampling rate outside `(0, 1]`, a
    /// `target_delta` outside `(0, 1)`, or an ε budget that is non-positive
    /// or combined with `noise_multiplier == 0`.
    pub fn validate(&self) {
        // Exhaustive destructure: a new DP knob must be range-checked here
        // (or explicitly ignored) before it compiles — the same choke-point
        // discipline as the scenario's TaskConfig validation.
        let DpConfig {
            clip_bound,
            noise_multiplier,
            sampling_rate,
            target_delta,
            epsilon_budget,
        } = *self;
        assert!(
            clip_bound.is_finite() && clip_bound > 0.0,
            "dp: clip bound must be positive and finite, got {clip_bound}"
        );
        assert!(
            noise_multiplier.is_finite() && noise_multiplier >= 0.0,
            "dp: noise multiplier must be non-negative and finite, got {noise_multiplier}"
        );
        assert!(
            sampling_rate > 0.0 && sampling_rate <= 1.0,
            "dp: sampling rate must be in (0, 1], got {sampling_rate}"
        );
        assert!(
            target_delta > 0.0 && target_delta < 1.0,
            "dp: target delta must be in (0, 1), got {target_delta}"
        );
        if let Some(budget) = epsilon_budget {
            assert!(
                budget > 0.0,
                "dp: epsilon budget must be positive, got {budget}"
            );
            assert!(
                noise_multiplier > 0.0,
                "dp: an epsilon budget requires noise (noise_multiplier > 0); \
                 a noiseless mechanism has infinite epsilon and would stop on \
                 the first release"
            );
        }
    }
}

/// Rényi orders the accountant evaluates.  Integer orders admit the exact
/// binomial-expansion bound for the subsampled Gaussian mechanism; the tail
/// entries cover the high-privacy regime where the optimal order is large.
const RDP_ORDERS: &[u64] = &[
    2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27,
    28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47, 48, 49, 50, 51,
    52, 53, 54, 55, 56, 57, 58, 59, 60, 61, 62, 63, 64, 72, 80, 96, 128, 192, 256, 384, 512,
];

/// Rényi-DP (moments) accountant for the subsampled Gaussian mechanism.
///
/// Each recorded release is one application of the Gaussian mechanism with
/// noise multiplier `z` over a `q`-sampled user population.  Per-release
/// Rényi divergences are computed once at construction — at integer orders
/// `α` via the exact binomial expansion of the sampled-Gaussian pair
/// (Mironov, Talwar, Zhang, *Rényi Differential Privacy of the Sampled
/// Gaussian Mechanism*, 2019):
///
/// ```text
/// ε_α = ln Σ_{k=0..α} C(α,k) (1−q)^{α−k} q^k e^{(k²−k)/(2z²)}  / (α−1)
/// ```
///
/// — composed linearly across releases, and converted to `(ε, δ)` with the
/// standard bound `ε(δ) = min_α [ T·ε_α + ln(1/δ)/(α−1) ]`.  For `q = 1`
/// (no subsampling) the Rényi curve is exactly `α/(2z²)` for *all* real
/// `α > 1`, so the conversion is minimized in closed form instead of over
/// the grid:
///
/// ```text
/// ε(δ) = T/(2z²) + 2·sqrt( T/(2z²) · ln(1/δ) )
/// ```
///
/// The closed form is also applied as a cap for `q < 1` (subsampling only
/// ever shrinks the per-release Rényi divergence — joint quasi-convexity),
/// which keeps the conversion tight in the high-ε regime where the optimal
/// real order drops below the grid's `α = 2`.
#[derive(Clone, Debug)]
pub struct PrivacyAccountant {
    sampling_rate: f64,
    noise_multiplier: f64,
    releases: u64,
    /// Per-release Rényi divergence at each of [`RDP_ORDERS`] (empty for
    /// the `q == 1` closed form and for `z == 0`).
    rdp_per_release: Vec<f64>,
}

impl PrivacyAccountant {
    /// Creates an accountant for releases of the subsampled Gaussian
    /// mechanism with sampling probability `q` and noise multiplier `z`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]` or `z` is negative or non-finite.
    pub fn new(sampling_rate: f64, noise_multiplier: f64) -> Self {
        assert!(
            sampling_rate > 0.0 && sampling_rate <= 1.0,
            "sampling rate must be in (0, 1], got {sampling_rate}"
        );
        assert!(
            noise_multiplier.is_finite() && noise_multiplier >= 0.0,
            "noise multiplier must be non-negative and finite, got {noise_multiplier}"
        );
        let rdp_per_release = if sampling_rate == 1.0 || noise_multiplier == 0.0 {
            Vec::new()
        } else {
            RDP_ORDERS
                .iter()
                .map(|&alpha| subsampled_gaussian_rdp(sampling_rate, noise_multiplier, alpha))
                .collect()
        };
        PrivacyAccountant {
            sampling_rate,
            noise_multiplier,
            releases: 0,
            rdp_per_release,
        }
    }

    /// Builds the accountant a [`DpConfig`] asks for.
    pub fn for_config(config: &DpConfig) -> Self {
        Self::new(config.sampling_rate, config.noise_multiplier)
    }

    /// Records one mechanism release (one noised aggregate published).
    pub fn record_release(&mut self) {
        self.releases = self.releases.saturating_add(1);
    }

    /// Number of releases recorded so far.
    pub fn releases(&self) -> u64 {
        self.releases
    }

    /// The accountant's sampling probability `q`.
    pub fn sampling_rate(&self) -> f64 {
        self.sampling_rate
    }

    /// The accountant's noise multiplier `z`.
    pub fn noise_multiplier(&self) -> f64 {
        self.noise_multiplier
    }

    /// The cumulative `(ε, δ)` privacy loss after the recorded releases:
    /// `0` before any release, `∞` for a noiseless mechanism, otherwise the
    /// tightest conversion over the Rényi orders.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is outside `(0, 1)`.
    pub fn epsilon(&self, delta: f64) -> f64 {
        assert!(
            delta > 0.0 && delta < 1.0,
            "delta must be in (0, 1), got {delta}"
        );
        if self.releases == 0 {
            return 0.0;
        }
        if self.noise_multiplier == 0.0 {
            return f64::INFINITY;
        }
        let log_inv_delta = (1.0 / delta).ln();
        let releases = self.releases as f64;
        // The unsampled Gaussian curve T·α/(2z²) holds for every real
        // α > 1, so its conversion minimizes in closed form
        // (α* = 1 + sqrt(L/a)) — and by joint quasi-convexity of the Rényi
        // divergence, subsampling can only shrink the per-release
        // divergence, so the closed form is a valid bound at every
        // sampling rate.  It wins in the high-ε regime, where the optimal
        // order drops below the integer grid's α = 2.
        let a = releases / (2.0 * self.noise_multiplier * self.noise_multiplier);
        let unsampled = a + 2.0 * (a * log_inv_delta).sqrt();
        if self.sampling_rate == 1.0 {
            return unsampled;
        }
        RDP_ORDERS
            .iter()
            .zip(&self.rdp_per_release)
            .map(|(&alpha, &rdp)| releases * rdp + log_inv_delta / (alpha as f64 - 1.0))
            .fold(unsampled, f64::min)
    }
}

/// Per-release Rényi divergence of the sampled Gaussian mechanism at
/// integer order `alpha`, via the exact binomial expansion (log-sum-exp for
/// stability; `ln C(α,k)` from an exact running log-factorial).
fn subsampled_gaussian_rdp(q: f64, z: f64, alpha: u64) -> f64 {
    debug_assert!(alpha >= 2 && q > 0.0 && q < 1.0 && z > 0.0);
    // ln(k!) for k = 0..=alpha, built incrementally.
    let mut log_factorial = Vec::with_capacity(alpha as usize + 1);
    log_factorial.push(0.0f64);
    for k in 1..=alpha {
        log_factorial.push(log_factorial[k as usize - 1] + (k as f64).ln());
    }
    let log_binomial = |k: u64| {
        log_factorial[alpha as usize]
            - log_factorial[k as usize]
            - log_factorial[(alpha - k) as usize]
    };
    let mut log_terms = Vec::with_capacity(alpha as usize + 1);
    for k in 0..=alpha {
        let mut term = log_binomial(k) + (alpha - k) as f64 * (1.0 - q).ln();
        if k > 0 {
            term += k as f64 * q.ln();
        }
        term += (k * k - k) as f64 / (2.0 * z * z);
        log_terms.push(term);
    }
    let max = log_terms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let sum: f64 = log_terms.iter().map(|t| (t - max).exp()).sum();
    (max + sum.ln()) / (alpha as f64 - 1.0)
}

/// One DP release, as recorded in the telemetry trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DpRelease {
    /// Virtual time of the release, in seconds.
    pub time_s: f64,
    /// Fraction of the released buffer's accepted updates that were clipped
    /// (their L2 norm exceeded the bound).
    pub clip_fraction: f64,
    /// Standard deviation of the Gaussian noise added to this release's
    /// weighted-average delta: `clip_bound * z * max_weight / weight_total`
    /// (`0` for a noiseless or all-zero-weight buffer).
    pub noise_std: f64,
    /// Cumulative `epsilon(target_delta)` after this release.
    pub cumulative_epsilon: f64,
}

/// Cumulative counters and traces of the DP pipeline, exported through
/// [`Aggregator::dp_telemetry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DpTelemetry {
    /// Updates accepted into a buffer (post-clipping).
    pub accepted_updates: u64,
    /// Accepted updates whose delta was actually clipped (L2 norm above the
    /// bound).
    pub clipped_updates: u64,
    /// Releases fed into the accountant — always equals the wrapped task's
    /// server updates.
    pub releases: u64,
    /// Cumulative `epsilon(target_delta)` after the last release (`0`
    /// before any release; `∞` for a noiseless mechanism).
    pub cumulative_epsilon: f64,
    /// Append-only per-release trace: clip fraction, noise std, and the
    /// cumulative ε trajectory.
    pub release_trace: Vec<DpRelease>,
}

impl DpTelemetry {
    /// Lifetime fraction of accepted updates that were clipped.
    pub fn clip_fraction(&self) -> f64 {
        if self.accepted_updates == 0 {
            0.0
        } else {
            self.clipped_updates as f64 / self.accepted_updates as f64
        }
    }

    /// Refreshes `self` from a newer snapshot of the same telemetry stream:
    /// cumulative counters are overwritten and the append-only release
    /// trace is extended with the entries `self` has not seen yet (periodic
    /// syncing stays O(new entries), not O(trace)).
    pub fn sync_from(&mut self, src: &DpTelemetry) {
        let synced = self.release_trace.len();
        debug_assert!(
            synced <= src.release_trace.len(),
            "telemetry snapshots must come from one growing stream"
        );
        self.release_trace
            .extend_from_slice(&src.release_trace[synced..]);
        self.accepted_updates = src.accepted_updates;
        self.clipped_updates = src.clipped_updates;
        self.releases = src.releases;
        self.cumulative_epsilon = src.cumulative_epsilon;
    }
}

/// The noise stream's domain, separating it from the TSA/secure-client
/// streams derived from the same task seed (shared
/// [`crate::secure::derive_seed`] scheme).
const NOISE_SEED_DOMAIN: &[u8] = b"papaya/dp-noise/";

/// An aggregation strategy wrapped in per-update clipping, release noise,
/// and privacy accounting.  See the module docs for the mechanism and the
/// stacking order with [`SecureAggregator`](crate::secure::SecureAggregator).
pub struct DpAggregator {
    inner: Box<dyn Aggregator>,
    config: DpConfig,
    accountant: PrivacyAccountant,
    rng: ChaCha20Rng,
    /// Pending second normal of the Box–Muller pair, if any.
    spare_normal: Option<f64>,
    /// Weight total of the buffer in progress (public metadata; the divisor
    /// of the release the noise std is scaled by).
    weight_sum: f64,
    /// Largest single weight folded into the buffer in progress (public
    /// metadata; the release's per-user L2 sensitivity is
    /// `max_weight * clip_bound / weight_sum`).
    buffer_max_weight: f64,
    /// Accepted updates in the buffer in progress.
    buffer_accepted: u64,
    /// Clipped updates in the buffer in progress.
    buffer_clipped: u64,
    telemetry: DpTelemetry,
}

impl DpAggregator {
    /// Wraps `inner` in the DP pipeline; `seed` makes the noise stream
    /// deterministic.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (see [`DpConfig::validate`]).
    pub fn new(inner: Box<dyn Aggregator>, config: DpConfig, seed: u64) -> Self {
        config.validate();
        DpAggregator {
            inner,
            accountant: PrivacyAccountant::for_config(&config),
            config,
            rng: ChaCha20Rng::from_seed(crate::secure::derive_seed(NOISE_SEED_DOMAIN, seed)),
            spare_normal: None,
            weight_sum: 0.0,
            buffer_max_weight: 0.0,
            buffer_accepted: 0,
            buffer_clipped: 0,
            telemetry: DpTelemetry::default(),
        }
    }

    /// The DP configuration.
    pub fn config(&self) -> &DpConfig {
        &self.config
    }

    /// The privacy accountant (releases recorded, ε queries).
    pub fn accountant(&self) -> &PrivacyAccountant {
        &self.accountant
    }

    /// The cumulative DP telemetry.
    pub fn telemetry(&self) -> &DpTelemetry {
        &self.telemetry
    }

    /// Whether the cumulative ε has reached the configured budget.
    pub fn budget_exhausted(&self) -> bool {
        self.config
            .epsilon_budget
            .is_some_and(|budget| self.telemetry.cumulative_epsilon >= budget)
    }

    /// One standard normal via the shared Box–Muller transform, consuming
    /// uniforms from the seeded noise stream two at a time (the spare is
    /// kept for the next call, so a release of any dimensionality advances
    /// the stream deterministically).
    fn standard_normal(&mut self) -> f64 {
        if let Some(spare) = self.spare_normal.take() {
            return spare;
        }
        // u1 in (0, 1] so ln(u1) is finite; u2 in [0, 1).
        let u1 = ((self.rng.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        let u2 = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let (normal, spare) = papaya_data::stats::standard_normal_pair(u1, u2);
        self.spare_normal = Some(spare);
        normal
    }
}

impl Aggregator for DpAggregator {
    /// L2-clips the update's delta to the configured bound (a pure
    /// client-side transformation — under a secure inner layer the clipped
    /// delta is what gets masked), then lets the wrapped strategy decide.
    fn accumulate(
        &mut self,
        mut update: ClientUpdate,
        current_version: u64,
        now_s: f64,
    ) -> AccumulateOutcome {
        let norm = update.delta.norm() as f64;
        let clipped = norm > self.config.clip_bound;
        if clipped {
            update.delta.scale((self.config.clip_bound / norm) as f32);
        }
        let staleness = update.staleness(current_version);
        let weight = self.inner.update_weight(update.num_examples, staleness);
        let outcome = self.inner.accumulate(update, current_version, now_s);
        if outcome.accepted() {
            self.weight_sum += weight;
            self.buffer_max_weight = self.buffer_max_weight.max(weight);
            self.buffer_accepted += 1;
            self.telemetry.accepted_updates += 1;
            if clipped {
                self.buffer_clipped += 1;
                self.telemetry.clipped_updates += 1;
            }
        }
        outcome
    }

    fn is_ready(&self, now_s: f64) -> bool {
        self.inner.is_ready(now_s)
    }

    /// Releases the wrapped strategy's weighted average with Gaussian noise
    /// of std `clip_bound * noise_multiplier * max_weight / weight_total`
    /// added element-wise (noise proportional to the release's per-user L2
    /// sensitivity — `max_weight` is the largest weight in the buffer, so
    /// the heaviest client is the one the calibration protects), records
    /// the release with the accountant, and appends the telemetry sample.
    /// With `noise_multiplier == 0` (or an all-zero-weight buffer, whose
    /// release is a data-independent zero delta) the noise step is skipped
    /// entirely, so the release is bit-exact against the clear strategy.
    fn take(&mut self, now_s: f64) -> Option<ParamVec> {
        let mut released = self.inner.take(now_s)?;
        let weight_sum = std::mem::replace(&mut self.weight_sum, 0.0);
        let max_weight = std::mem::replace(&mut self.buffer_max_weight, 0.0);
        let accepted = std::mem::replace(&mut self.buffer_accepted, 0);
        let clipped = std::mem::replace(&mut self.buffer_clipped, 0);
        let noise_std = if self.config.noise_multiplier > 0.0 && weight_sum > 0.0 {
            self.config.clip_bound * self.config.noise_multiplier * max_weight / weight_sum
        } else {
            0.0
        };
        if noise_std > 0.0 {
            for value in released.as_mut_slice() {
                *value += (noise_std * self.standard_normal()) as f32;
            }
        }
        self.accountant.record_release();
        let cumulative_epsilon = self.accountant.epsilon(self.config.target_delta);
        self.telemetry.releases = self.accountant.releases();
        self.telemetry.cumulative_epsilon = cumulative_epsilon;
        self.telemetry.release_trace.push(DpRelease {
            time_s: now_s,
            clip_fraction: if accepted == 0 {
                0.0
            } else {
                clipped as f64 / accepted as f64
            },
            noise_std,
            cumulative_epsilon,
        });
        Some(released)
    }

    /// Drops the buffer (the process holding it died) and the per-buffer
    /// clip/weight bookkeeping with it; lifetime telemetry and the
    /// accountant survive — a dropped buffer was never released, so it
    /// costs no privacy.
    fn reset(&mut self) -> usize {
        self.weight_sum = 0.0;
        self.buffer_max_weight = 0.0;
        self.buffer_accepted = 0;
        self.buffer_clipped = 0;
        self.inner.reset()
    }

    fn goal(&self) -> usize {
        self.inner.goal()
    }

    fn buffered(&self) -> usize {
        self.inner.buffered()
    }

    fn stats(&self) -> &AggregatorStats {
        self.inner.stats()
    }

    fn max_staleness(&self) -> Option<u64> {
        self.inner.max_staleness()
    }

    fn next_deadline_s(&self) -> Option<f64> {
        self.inner.next_deadline_s()
    }

    fn closes_round_on_release(&self) -> bool {
        self.inner.closes_round_on_release()
    }

    fn update_weight(&self, num_examples: usize, staleness: u64) -> f64 {
        self.inner.update_weight(num_examples, staleness)
    }

    fn secure_telemetry(&self) -> Option<&crate::secure::SecureTelemetry> {
        self.inner.secure_telemetry()
    }

    fn dp_telemetry(&self) -> Option<&DpTelemetry> {
        Some(&self.telemetry)
    }

    fn robust_telemetry(&self) -> Option<&crate::robust::RobustTelemetry> {
        self.inner.robust_telemetry()
    }

    // DP is the outer layer of the dp+secure stack, so the speculative
    // mask-precompute hooks pass straight through to the secure layer.
    fn plan_mask_precompute(&mut self, client_id: usize) -> Option<crate::secure::MaskPlan> {
        self.inner.plan_mask_precompute(client_id)
    }

    fn provide_precomputed_mask(&mut self, client_id: usize, mask: crate::secure::PrecomputedMask) {
        self.inner.provide_precomputed_mask(client_id, mask)
    }

    fn secure_timings(&self) -> Option<crate::secure::SecureTimings> {
        self.inner.secure_timings()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fedbuff::FedBuffAggregator;
    use crate::secure::SecureAggregator;
    use crate::staleness::StalenessWeighting;

    fn update(id: usize, delta: Vec<f32>, examples: usize, start_version: u64) -> ClientUpdate {
        ClientUpdate {
            client_id: id,
            delta: ParamVec::from_vec(delta),
            num_examples: examples,
            start_version,
            train_loss: 0.0,
        }
    }

    fn dp_fedbuff(goal: usize, config: DpConfig) -> DpAggregator {
        DpAggregator::new(
            Box::new(FedBuffAggregator::new(
                goal,
                StalenessWeighting::Constant,
                Some(5),
            )),
            config,
            0xD1FF,
        )
    }

    #[test]
    fn out_of_bound_updates_are_clipped_to_the_sphere() {
        let mut agg = dp_fedbuff(1, DpConfig::new(1.0, 0.0));
        // Norm 5 clipped to 1: the release is the clipped delta.
        agg.accumulate(update(0, vec![3.0, 4.0], 10, 0), 0, 0.0);
        let out = agg.take(0.0).unwrap();
        assert!((out.as_slice()[0] - 0.6).abs() < 1e-6);
        assert!((out.as_slice()[1] - 0.8).abs() < 1e-6);
        assert_eq!(agg.telemetry().clipped_updates, 1);
        assert_eq!(agg.telemetry().release_trace[0].clip_fraction, 1.0);
    }

    #[test]
    fn in_bound_updates_pass_through_bit_exact() {
        let mut clear = FedBuffAggregator::new(2, StalenessWeighting::Constant, Some(5));
        let mut dp = dp_fedbuff(2, DpConfig::new(10.0, 0.0));
        for (id, delta) in [(0usize, vec![0.25, -1.5]), (1, vec![1.125, 0.5])] {
            clear.accumulate(update(id, delta.clone(), 10, 0), 0, 0.0);
            dp.accumulate(update(id, delta, 10, 0), 0, 0.0);
        }
        assert_eq!(
            clear.take(0.0).unwrap().as_slice(),
            dp.take(0.0).unwrap().as_slice(),
            "zero-noise DP must be bit-exact"
        );
        assert_eq!(dp.telemetry().clipped_updates, 0);
        assert_eq!(dp.telemetry().releases, 1);
        assert_eq!(dp.telemetry().cumulative_epsilon, f64::INFINITY);
    }

    #[test]
    fn noise_is_deterministic_per_seed_and_differs_across_seeds() {
        let run = |seed: u64| {
            let mut agg = DpAggregator::new(
                Box::new(FedBuffAggregator::new(
                    2,
                    StalenessWeighting::Constant,
                    None,
                )),
                DpConfig::new(1.0, 1.0),
                seed,
            );
            agg.accumulate(update(0, vec![0.3, 0.7], 10, 0), 0, 0.0);
            agg.accumulate(update(1, vec![-0.1, 0.2], 10, 0), 0, 1.0);
            agg.take(1.0).unwrap()
        };
        assert_eq!(run(7).as_slice(), run(7).as_slice());
        assert_ne!(run(7).as_slice(), run(8).as_slice());
    }

    #[test]
    fn noise_std_is_calibrated_to_the_per_user_sensitivity() {
        // The release is sum(w·Δ)/W, so one user moves it by at most
        // max_weight·C/W; the noise std must carry the max_weight factor
        // (an ε claimed for weight-1 users would silently under-protect
        // the heaviest client under example weighting).
        let mut agg = DpAggregator::new(
            Box::new(FedBuffAggregator::new(
                2,
                StalenessWeighting::Constant,
                None,
            )),
            DpConfig::new(2.0, 3.0),
            1,
        );
        // Uniform weights 10 + 10: std = 2·3·10/20 = 3.0 (equivalently the
        // textbook C·z/K for unit weights).
        agg.accumulate(update(0, vec![0.1], 10, 0), 0, 0.0);
        agg.accumulate(update(1, vec![0.2], 10, 0), 0, 0.0);
        agg.take(0.0).unwrap();
        assert!((agg.telemetry().release_trace[0].noise_std - 3.0).abs() < 1e-12);
        // Skewed weights 10 + 30: the heavy client dominates the release
        // (sensitivity 30·C/40), so std = 2·3·30/40 = 4.5.
        agg.accumulate(update(2, vec![0.1], 10, 0), 0, 1.0);
        agg.accumulate(update(3, vec![0.2], 30, 0), 0, 1.0);
        agg.take(1.0).unwrap();
        assert!((agg.telemetry().release_trace[1].noise_std - 4.5).abs() < 1e-12);
    }

    #[test]
    fn all_zero_weight_release_stays_an_exact_zero_delta() {
        // A data-independent release needs no noise; the conformance
        // contract (zero-weight buffers release exact zeros) survives DP.
        let mut agg = dp_fedbuff(2, DpConfig::new(1.0, 5.0));
        agg.accumulate(update(0, vec![3.0, -1.0], 0, 0), 0, 0.0);
        agg.accumulate(update(1, vec![5.0, 2.0], 0, 0), 0, 0.0);
        assert_eq!(agg.take(0.0).unwrap().as_slice(), &[0.0, 0.0]);
        assert_eq!(agg.telemetry().release_trace[0].noise_std, 0.0);
        assert_eq!(agg.telemetry().releases, 1);
    }

    #[test]
    fn reset_drops_buffer_bookkeeping_but_keeps_lifetime_state() {
        let mut agg = dp_fedbuff(2, DpConfig::new(0.5, 1.0));
        agg.accumulate(update(0, vec![3.0, 4.0], 10, 0), 0, 0.0);
        assert_eq!(agg.reset(), 1);
        assert_eq!(agg.telemetry().clipped_updates, 1, "lifetime counter");
        assert_eq!(
            agg.telemetry().releases,
            0,
            "a dropped buffer never cost privacy"
        );
        // The next buffer starts clean: one fresh unclipped update, clip
        // fraction 0 on release.
        agg.accumulate(update(1, vec![0.1, 0.1], 10, 0), 0, 1.0);
        agg.accumulate(update(2, vec![0.1, 0.1], 10, 0), 0, 1.0);
        agg.take(1.0).unwrap();
        assert_eq!(agg.telemetry().release_trace[0].clip_fraction, 0.0);
        assert_eq!(agg.accountant().releases(), 1);
    }

    #[test]
    fn budget_exhaustion_trips_after_enough_releases() {
        let config = DpConfig::new(1.0, 1.0)
            .with_target_delta(1e-5)
            .with_epsilon_budget(6.0);
        let mut agg = DpAggregator::new(
            Box::new(FedBuffAggregator::new(
                1,
                StalenessWeighting::Constant,
                None,
            )),
            config,
            3,
        );
        let mut releases = 0;
        while !agg.budget_exhausted() {
            agg.accumulate(update(releases, vec![0.1], 10, 0), 0, 0.0);
            agg.take(0.0).unwrap();
            releases += 1;
            assert!(releases < 100, "budget never tripped");
        }
        // ε(1e-5, z=1, T) reaches 6.0 within a handful of releases (T=1
        // gives ~5.3, T=2 ~7.8) but not on the first.
        assert_eq!(releases, 2);
        assert!(agg.telemetry().cumulative_epsilon >= 6.0);
    }

    #[test]
    fn dp_stacks_over_the_secure_pipeline() {
        // dp(secure(fedbuff)): the masked deltas are the clipped ones and
        // the noise lands on the decoded release.  With zero noise the
        // result matches dp(fedbuff) to fixed-point tolerance.
        let dp_cfg = DpConfig::new(1.0, 0.0);
        let mut dp_clear = dp_fedbuff(2, dp_cfg);
        let mut dp_secure = DpAggregator::new(
            Box::new(SecureAggregator::new(
                Box::new(FedBuffAggregator::new(
                    2,
                    StalenessWeighting::Constant,
                    Some(5),
                )),
                2,
                2,
                0xC0DE,
            )),
            dp_cfg,
            0xD1FF,
        );
        let updates = [
            update(0, vec![3.0, 4.0], 10, 0), // clipped to norm 1
            update(1, vec![0.1, -0.2], 30, 0),
        ];
        for u in &updates {
            assert!(dp_clear.accumulate(u.clone(), 0, 0.0).accepted());
            assert!(dp_secure.accumulate(u.clone(), 0, 0.0).accepted());
        }
        let clear_out = dp_clear.take(0.0).unwrap();
        let secure_out = dp_secure.take(0.0).unwrap();
        for (c, s) in clear_out.as_slice().iter().zip(secure_out.as_slice()) {
            assert!((c - s).abs() < 1e-4, "clear {c} vs secure {s}");
        }
        // Both telemetries are visible through the stacked decorator.
        assert!(dp_secure.dp_telemetry().is_some());
        let secure_telemetry = dp_secure.secure_telemetry().expect("pass-through");
        assert_eq!(secure_telemetry.masked_updates, 2);
        assert_eq!(secure_telemetry.tsa_key_releases, 1);
        assert_eq!(
            secure_telemetry.out_of_range_releases, 0,
            "masking the clipped delta must keep decode and reference aligned"
        );
        assert_eq!(dp_secure.telemetry().clipped_updates, 1);
    }

    #[test]
    fn telemetry_sync_from_is_incremental_on_the_trace() {
        let mut dst = DpTelemetry::default();
        let mut src = DpTelemetry {
            accepted_updates: 3,
            clipped_updates: 1,
            releases: 1,
            cumulative_epsilon: 0.5,
            release_trace: vec![DpRelease {
                time_s: 1.0,
                clip_fraction: 1.0 / 3.0,
                noise_std: 0.1,
                cumulative_epsilon: 0.5,
            }],
        };
        dst.sync_from(&src);
        assert_eq!(dst, src);
        src.releases = 2;
        src.cumulative_epsilon = 0.8;
        src.release_trace.push(DpRelease {
            time_s: 2.0,
            clip_fraction: 0.0,
            noise_std: 0.1,
            cumulative_epsilon: 0.8,
        });
        dst.sync_from(&src);
        assert_eq!(dst, src);
        // Re-syncing an unchanged stream is a no-op, not a duplication.
        dst.sync_from(&src);
        assert_eq!(dst.release_trace.len(), 2);
    }

    #[test]
    fn accountant_epsilon_is_zero_before_any_release() {
        let accountant = PrivacyAccountant::new(0.1, 1.0);
        assert_eq!(accountant.epsilon(1e-5), 0.0);
    }

    #[test]
    fn accountant_noiseless_mechanism_has_infinite_epsilon() {
        let mut accountant = PrivacyAccountant::new(1.0, 0.0);
        accountant.record_release();
        assert_eq!(accountant.epsilon(1e-5), f64::INFINITY);
    }

    #[test]
    fn subsampling_amplifies_privacy() {
        let mut full = PrivacyAccountant::new(1.0, 1.0);
        let mut sampled = PrivacyAccountant::new(0.01, 1.0);
        for _ in 0..100 {
            full.record_release();
            sampled.record_release();
        }
        let (e_full, e_sampled) = (full.epsilon(1e-5), sampled.epsilon(1e-5));
        assert!(
            e_sampled < e_full / 5.0,
            "q=0.01 must be far tighter than q=1: {e_sampled} vs {e_full}"
        );
    }

    #[test]
    #[should_panic(expected = "clip bound must be positive")]
    fn invalid_clip_bound_rejected() {
        DpConfig::new(0.0, 1.0).validate();
    }

    #[test]
    #[should_panic(expected = "requires noise")]
    fn budget_without_noise_rejected() {
        DpConfig::new(1.0, 0.0).with_epsilon_budget(1.0).validate();
    }

    #[test]
    #[should_panic(expected = "sampling rate must be in (0, 1]")]
    fn invalid_sampling_rate_rejected() {
        DpConfig::new(1.0, 1.0).with_sampling_rate(1.5).validate();
    }
}
