//! Bounded metric traces via deterministic stride decimation.
//!
//! The simulator's per-event traces (utilization samples, loss curve,
//! participation records) historically grew with the event count — fine at
//! 20k devices, hostile at a million, where a trace entry per event turns
//! the metrics layer into the resident-set ceiling.  [`DecimatedTrace`] is
//! a drop-in bounded recorder: it keeps at most a [`TraceBudget`] of
//! samples by *stride doubling* — record every sample until the budget
//! fills, then drop every other retained sample and record only every 2nd
//! offer, then every 4th, and so on.
//!
//! Properties the simulator's determinism pin needs (`docs/DETERMINISM.md`):
//!
//! * **Deterministic** — which samples survive is a pure function of the
//!   offer sequence and the budget; no randomness, no wall-clock.
//! * **Order-preserving** — retained samples keep their offer order, and
//!   every retained sample's offer index is a multiple of the current
//!   stride (the first offer is always retained).
//! * **Bounded** — at most `budget` samples are resident, ever; memory is
//!   O(budget) regardless of run length.
//! * **Fingerprint-honest** — the decimation parameters (budget, final
//!   stride, offers seen) are part of the trace's observable state, so
//!   `Report::fingerprint()` hashes them whenever a budget is active: two
//!   runs with different budgets hash differently instead of colliding on
//!   a truncated prefix.
//!
//! The default budget is [`TraceBudget::UNBOUNDED`], which records every
//! sample — bit-compatible with the historical unbounded `Vec` traces, so
//! existing scenario fingerprints are unchanged unless a budget is
//! explicitly configured (the `RunLimits::trace_budget` knob in
//! `papaya-sim`).

use std::ops::Deref;

/// Retention budget for a [`DecimatedTrace`].
///
/// Either [`TraceBudget::UNBOUNDED`] (the default: keep every sample) or
/// [`TraceBudget::bounded`]`(n)` (keep at most `n` samples by stride
/// decimation).  Surfaced per run as `RunLimits::trace_budget` in
/// `papaya-sim`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceBudget {
    max_samples: usize,
}

impl TraceBudget {
    /// Keep every offered sample (the historical behaviour).
    pub const UNBOUNDED: TraceBudget = TraceBudget {
        max_samples: usize::MAX,
    };

    /// Keep at most `max_samples` samples.
    ///
    /// # Panics
    ///
    /// Panics when `max_samples < 2`: stride doubling halves the retained
    /// set, so a budget of at least two is needed to make progress.
    pub fn bounded(max_samples: usize) -> Self {
        assert!(
            max_samples >= 2,
            "a trace budget must retain at least 2 samples, got {max_samples}"
        );
        TraceBudget { max_samples }
    }

    /// Whether this budget actually bounds the trace.
    pub fn is_bounded(&self) -> bool {
        self.max_samples != usize::MAX
    }

    /// Maximum retained samples (`usize::MAX` when unbounded).
    pub fn max_samples(&self) -> usize {
        self.max_samples
    }
}

impl Default for TraceBudget {
    fn default() -> Self {
        TraceBudget::UNBOUNDED
    }
}

/// A bounded, deterministically decimated metric trace.
///
/// Behaves like a read-only `Vec<T>` (it derefs to `[T]`), but `push` may
/// silently skip samples once the configured [`TraceBudget`] fills: the
/// trace then retains only every `stride`-th offered sample, doubling the
/// stride each time the budget would overflow.  With the default unbounded
/// budget every sample is retained and the container is exactly the
/// historical `Vec` trace.
#[derive(Clone, Debug, PartialEq)]
pub struct DecimatedTrace<T> {
    samples: Vec<T>,
    budget: TraceBudget,
    /// Record every `stride`-th offered sample (power of two; 1 until the
    /// budget first fills).
    stride: u64,
    /// Total samples ever offered via `push`.
    offered: u64,
}

impl<T> DecimatedTrace<T> {
    /// Creates an empty trace with the given budget.
    pub fn with_budget(budget: TraceBudget) -> Self {
        DecimatedTrace {
            samples: Vec::new(),
            budget,
            stride: 1,
            offered: 0,
        }
    }

    /// Replaces the budget of a trace that has not recorded anything yet.
    ///
    /// The budget is a construction-time property (it participates in the
    /// decimation state that fingerprints hash), so re-budgeting a
    /// populated trace is a logic error.
    ///
    /// # Panics
    ///
    /// Panics when samples have already been offered.
    pub fn set_budget(&mut self, budget: TraceBudget) {
        assert!(
            self.offered == 0,
            "trace budget must be set before the first sample"
        );
        self.budget = budget;
    }

    /// Offers a sample; retains it when the current stride selects it.
    pub fn push(&mut self, sample: T) {
        let index = self.offered;
        self.offered += 1;
        if !index.is_multiple_of(self.stride) {
            return;
        }
        if self.samples.len() >= self.budget.max_samples {
            // Budget full: drop every other retained sample and double the
            // stride.  Retained offer indices stay multiples of the (new)
            // stride, so the surviving set is exactly what a from-scratch
            // run at the final stride would have kept.
            let mut keep = 0usize;
            self.samples.retain(|_| {
                let retained = keep.is_multiple_of(2);
                keep += 1;
                retained
            });
            self.stride *= 2;
            if !index.is_multiple_of(self.stride) {
                return;
            }
        }
        self.samples.push(sample);
    }

    /// Total samples ever offered (retained or not).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Current decimation stride (1 while the budget has never filled).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The configured budget.
    pub fn budget(&self) -> TraceBudget {
        self.budget
    }

    /// The retained samples, in offer order.
    pub fn as_slice(&self) -> &[T] {
        &self.samples
    }
}

impl<T> Default for DecimatedTrace<T> {
    fn default() -> Self {
        DecimatedTrace::with_budget(TraceBudget::UNBOUNDED)
    }
}

/// An unbounded trace pre-populated with `samples` (test convenience; the
/// offer counter matches the sample count).
impl<T> From<Vec<T>> for DecimatedTrace<T> {
    fn from(samples: Vec<T>) -> Self {
        DecimatedTrace {
            offered: samples.len() as u64,
            samples,
            budget: TraceBudget::UNBOUNDED,
            stride: 1,
        }
    }
}

impl<T> Deref for DecimatedTrace<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.samples
    }
}

impl<'a, T> IntoIterator for &'a DecimatedTrace<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_trace_retains_everything() {
        let mut t = DecimatedTrace::default();
        for i in 0..10_000u64 {
            t.push(i);
        }
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.offered(), 10_000);
        assert_eq!(t.stride(), 1);
        assert_eq!(t[4321], 4321);
    }

    #[test]
    fn bounded_trace_never_exceeds_its_budget() {
        let mut t = DecimatedTrace::with_budget(TraceBudget::bounded(64));
        for i in 0..100_000u64 {
            t.push(i);
            assert!(t.len() <= 64, "len {} at offer {i}", t.len());
        }
        assert_eq!(t.offered(), 100_000);
        assert!(t.stride() >= 100_000 / 64);
    }

    #[test]
    fn retained_samples_are_stride_multiples_in_order() {
        let mut t = DecimatedTrace::with_budget(TraceBudget::bounded(16));
        for i in 0..10_000u64 {
            t.push(i);
        }
        let stride = t.stride();
        assert_eq!(t.first(), Some(&0), "the first offer always survives");
        for window in t.windows(2) {
            assert!(window[0] < window[1], "order preserved");
        }
        for &sample in &t {
            assert_eq!(sample % stride, 0, "sample {sample} vs stride {stride}");
        }
    }

    #[test]
    fn decimation_is_deterministic() {
        let run = || {
            let mut t = DecimatedTrace::with_budget(TraceBudget::bounded(32));
            for i in 0..5_000u64 {
                t.push(i * 3);
            }
            (t.as_slice().to_vec(), t.stride(), t.offered())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn from_vec_matches_pushing() {
        let mut pushed = DecimatedTrace::default();
        for i in 0..5 {
            pushed.push(i);
        }
        let converted = DecimatedTrace::from((0..5).collect::<Vec<_>>());
        assert_eq!(pushed, converted);
    }

    #[test]
    #[should_panic(expected = "at least 2 samples")]
    fn tiny_budgets_are_rejected() {
        let _ = TraceBudget::bounded(1);
    }

    #[test]
    #[should_panic(expected = "before the first sample")]
    fn rebudgeting_a_populated_trace_panics() {
        let mut t = DecimatedTrace::default();
        t.push(1);
        t.set_budget(TraceBudget::bounded(8));
    }
}
