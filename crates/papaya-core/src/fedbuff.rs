//! Buffered asynchronous aggregation (FedBuff) as deployed by PAPAYA.
//!
//! Clients upload updates whenever they finish; the aggregator folds each
//! accepted update into a buffer, weighting it by the client's example count
//! and a staleness factor.  Once `K` (the *aggregation goal*) updates have
//! been buffered, the weighted average is released and the server model takes
//! a step.  Updates staler than the configured maximum are rejected
//! (the system aborts such clients, Appendix E.1/E.2).
//!
//! `FedBuffAggregator` implements the [`Aggregator`] protocol; drivers hold
//! it as `Box<dyn Aggregator>` next to the synchronous and hybrid
//! strategies.

pub use crate::aggregator::AccumulateOutcome;
use crate::aggregator::{Aggregator, AggregatorStats, WeightedBuffer};
use crate::client::ClientUpdate;
use crate::staleness::StalenessWeighting;
use papaya_nn::params::ParamVec;

/// The FedBuff buffered aggregator.
#[derive(Clone, Debug)]
pub struct FedBuffAggregator {
    aggregation_goal: usize,
    staleness_weighting: StalenessWeighting,
    max_staleness: Option<u64>,
    weight_by_examples: bool,
    buffer: WeightedBuffer,
    stats: AggregatorStats,
}

impl FedBuffAggregator {
    /// Creates an aggregator with aggregation goal `K`.
    ///
    /// `max_staleness = None` disables the staleness bound.
    ///
    /// # Panics
    ///
    /// Panics if `aggregation_goal == 0`.
    pub fn new(
        aggregation_goal: usize,
        staleness_weighting: StalenessWeighting,
        max_staleness: Option<u64>,
    ) -> Self {
        assert!(aggregation_goal > 0, "aggregation goal must be positive");
        FedBuffAggregator {
            aggregation_goal,
            staleness_weighting,
            max_staleness,
            weight_by_examples: true,
            buffer: WeightedBuffer::default(),
            stats: AggregatorStats::default(),
        }
    }

    /// Disables (or re-enables) weighting by example count.
    pub fn with_example_weighting(mut self, enabled: bool) -> Self {
        self.weight_by_examples = enabled;
        self
    }
}

// papaya-lint: allow(decorator-conformance) -- base strategy, no inner aggregator to forward to; the trait defaults are the correct behavior
impl Aggregator for FedBuffAggregator {
    /// Offers an update to the buffer; `current_version` is the server model
    /// version at upload time (used to compute staleness).  Virtual time is
    /// ignored — FedBuff releases purely by count.
    fn accumulate(
        &mut self,
        update: ClientUpdate,
        current_version: u64,
        _now_s: f64,
    ) -> AccumulateOutcome {
        let staleness = update.staleness(current_version);
        if let Some(max) = self.max_staleness {
            if staleness > max {
                self.stats.record_rejected_stale();
                return AccumulateOutcome::RejectedStale {
                    staleness,
                    max_staleness: max,
                };
            }
        }
        let weight = self.update_weight(update.num_examples, staleness);
        self.buffer.fold(&update.delta, weight);
        self.stats.record_accepted(staleness);
        AccumulateOutcome::Accepted { staleness }
    }

    fn is_ready(&self, _now_s: f64) -> bool {
        self.buffer.len() >= self.aggregation_goal
    }

    fn take(&mut self, now_s: f64) -> Option<ParamVec> {
        if !self.is_ready(now_s) {
            return None;
        }
        self.buffer.release()
    }

    fn reset(&mut self) -> usize {
        self.buffer.clear()
    }

    fn goal(&self) -> usize {
        self.aggregation_goal
    }

    fn buffered(&self) -> usize {
        self.buffer.len()
    }

    fn stats(&self) -> &AggregatorStats {
        &self.stats
    }

    fn max_staleness(&self) -> Option<u64> {
        self.max_staleness
    }

    /// Example weight (a client that trained on zero examples carries zero
    /// weight: it still counts toward the aggregation goal but contributes
    /// nothing) times the staleness down-weight.
    fn update_weight(&self, num_examples: usize, staleness: u64) -> f64 {
        let example_weight = if self.weight_by_examples {
            num_examples as f64
        } else {
            1.0
        };
        example_weight * self.staleness_weighting.weight(staleness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::Aggregator;

    fn update(id: usize, delta: Vec<f32>, examples: usize, start_version: u64) -> ClientUpdate {
        ClientUpdate {
            client_id: id,
            delta: ParamVec::from_vec(delta),
            num_examples: examples,
            start_version,
            train_loss: 0.0,
        }
    }

    #[test]
    fn equal_weights_give_plain_average() {
        let mut agg = FedBuffAggregator::new(2, StalenessWeighting::Constant, None);
        agg.accumulate(update(0, vec![2.0, 0.0], 10, 0), 0, 0.0);
        agg.accumulate(update(1, vec![0.0, 4.0], 10, 0), 0, 0.0);
        let out = agg.take(0.0).unwrap();
        assert_eq!(out.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn example_weighting_biases_towards_larger_clients() {
        let mut agg = FedBuffAggregator::new(2, StalenessWeighting::Constant, None);
        agg.accumulate(update(0, vec![0.0], 30, 0), 0, 0.0);
        agg.accumulate(update(1, vec![4.0], 10, 0), 0, 0.0);
        let out = agg.take(0.0).unwrap();
        assert!((out.as_slice()[0] - 1.0).abs() < 1e-6); // 4 * 10/40
    }

    #[test]
    fn example_weighting_can_be_disabled() {
        let mut agg = FedBuffAggregator::new(2, StalenessWeighting::Constant, None)
            .with_example_weighting(false);
        agg.accumulate(update(0, vec![0.0], 30, 0), 0, 0.0);
        agg.accumulate(update(1, vec![4.0], 10, 0), 0, 0.0);
        let out = agg.take(0.0).unwrap();
        assert!((out.as_slice()[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn stale_updates_are_down_weighted() {
        let mut agg = FedBuffAggregator::new(2, StalenessWeighting::PolynomialHalf, None);
        // Fresh update of 0.0 and an update of 1.0 with staleness 3 (weight 1/2).
        agg.accumulate(update(0, vec![0.0], 10, 5), 5, 0.0);
        agg.accumulate(update(1, vec![1.0], 10, 2), 5, 0.0);
        let out = agg.take(0.0).unwrap();
        // Weighted average: (0*1 + 1*0.5) / 1.5 = 1/3.
        assert!((out.as_slice()[0] - 1.0 / 3.0).abs() < 1e-6);
        assert!((agg.stats().mean_staleness() - 1.5).abs() < 1e-9);
        assert_eq!(agg.stats().max_observed_staleness, 3);
    }

    #[test]
    fn overly_stale_updates_are_rejected() {
        let mut agg = FedBuffAggregator::new(1, StalenessWeighting::PolynomialHalf, Some(5));
        let outcome = agg.accumulate(update(0, vec![1.0], 10, 0), 10, 0.0);
        assert_eq!(
            outcome,
            AccumulateOutcome::RejectedStale {
                staleness: 10,
                max_staleness: 5
            }
        );
        assert!(!agg.is_ready(0.0));
        assert_eq!(agg.stats().rejected_stale, 1);
        // A fresh update still works.
        assert!(agg
            .accumulate(update(1, vec![1.0], 10, 10), 10, 0.0)
            .accepted());
        assert!(agg.is_ready(0.0));
    }

    #[test]
    fn take_before_goal_returns_none() {
        let mut agg = FedBuffAggregator::new(3, StalenessWeighting::Constant, None);
        agg.accumulate(update(0, vec![1.0], 1, 0), 0, 0.0);
        assert!(agg.take(0.0).is_none());
        assert_eq!(agg.buffered(), 1);
    }

    #[test]
    fn buffer_resets_after_take() {
        let mut agg = FedBuffAggregator::new(1, StalenessWeighting::Constant, None);
        agg.accumulate(update(0, vec![2.0], 1, 0), 0, 0.0);
        assert_eq!(agg.take(0.0).unwrap().as_slice(), &[2.0]);
        assert_eq!(agg.buffered(), 0);
        agg.accumulate(update(1, vec![6.0], 1, 0), 0, 0.0);
        assert_eq!(agg.take(0.0).unwrap().as_slice(), &[6.0]);
        assert_eq!(agg.stats().accepted, 2);
    }

    #[test]
    fn goal_of_one_matches_pure_async() {
        let mut agg = FedBuffAggregator::new(1, StalenessWeighting::Constant, None);
        for i in 0..5 {
            agg.accumulate(update(i, vec![i as f32], 1, 0), 0, 0.0);
            assert!(agg.is_ready(0.0));
            assert_eq!(agg.take(0.0).unwrap().as_slice(), &[i as f32]);
        }
    }

    #[test]
    fn all_zero_weight_buffer_releases_zero_delta() {
        // Two zero-example clients fill the buffer; with example weighting
        // their combined weight is 0, so the release must be a zero delta,
        // not the unscaled raw sum.
        let mut agg = FedBuffAggregator::new(2, StalenessWeighting::Constant, None);
        agg.accumulate(update(0, vec![3.0, -1.0], 0, 0), 0, 0.0);
        agg.accumulate(update(1, vec![5.0, 2.0], 0, 0), 0, 0.0);
        assert!(agg.is_ready(0.0));
        let out = agg.take(0.0).unwrap();
        assert_eq!(out.as_slice(), &[0.0, 0.0]);
        // The aggregator is reusable afterwards.
        agg.accumulate(update(2, vec![4.0, 4.0], 10, 0), 0, 0.0);
        agg.accumulate(update(3, vec![0.0, 0.0], 10, 0), 0, 0.0);
        assert_eq!(agg.take(0.0).unwrap().as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn zero_example_update_contributes_nothing() {
        let mut agg = FedBuffAggregator::new(2, StalenessWeighting::Constant, None);
        agg.accumulate(update(0, vec![100.0], 0, 0), 0, 0.0);
        agg.accumulate(update(1, vec![4.0], 10, 0), 0, 0.0);
        assert_eq!(agg.take(0.0).unwrap().as_slice(), &[4.0]);
    }

    #[test]
    fn reset_drops_buffered_updates() {
        let mut agg = FedBuffAggregator::new(3, StalenessWeighting::Constant, None);
        agg.accumulate(update(0, vec![1.0], 5, 0), 0, 0.0);
        agg.accumulate(update(1, vec![2.0], 5, 0), 0, 0.0);
        assert_eq!(agg.reset(), 2);
        assert_eq!(agg.buffered(), 0);
        assert!(agg.take(0.0).is_none());
        // Lifetime counters survive the reset.
        assert_eq!(agg.stats().accepted, 2);
        // The next goal starts from an empty buffer.
        agg.accumulate(update(2, vec![9.0], 5, 0), 0, 0.0);
        agg.accumulate(update(3, vec![9.0], 5, 0), 0, 0.0);
        agg.accumulate(update(4, vec![9.0], 5, 0), 0, 0.0);
        assert_eq!(agg.take(0.0).unwrap().as_slice(), &[9.0]);
    }

    #[test]
    #[should_panic(expected = "aggregation goal must be positive")]
    fn zero_goal_rejected() {
        let _ = FedBuffAggregator::new(0, StalenessWeighting::Constant, None);
    }

    #[test]
    #[should_panic(expected = "dimensionality changed")]
    fn mismatched_dimensions_panic() {
        let mut agg = FedBuffAggregator::new(2, StalenessWeighting::Constant, None);
        agg.accumulate(update(0, vec![1.0, 2.0], 1, 0), 0, 0.0);
        agg.accumulate(update(1, vec![1.0], 1, 0), 0, 0.0);
    }
}
