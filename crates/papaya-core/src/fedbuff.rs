//! Buffered asynchronous aggregation (FedBuff) as deployed by PAPAYA.
//!
//! Clients upload updates whenever they finish; the aggregator folds each
//! accepted update into a buffer, weighting it by the client's example count
//! and a staleness factor.  Once `K` (the *aggregation goal*) updates have
//! been buffered, the weighted average is released and the server model takes
//! a step.  Updates staler than the configured maximum are rejected
//! (the system aborts such clients, Appendix E.1/E.2).

use crate::client::ClientUpdate;
use crate::staleness::StalenessWeighting;
use papaya_nn::params::ParamVec;

/// The outcome of offering one update to the aggregator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccumulateOutcome {
    /// The update was folded into the buffer.
    Accepted {
        /// Staleness of the accepted update.
        staleness: u64,
    },
    /// The update exceeded the maximum allowed staleness and was discarded.
    RejectedStale {
        /// Staleness of the rejected update.
        staleness: u64,
        /// The configured bound it exceeded.
        max_staleness: u64,
    },
}

impl AccumulateOutcome {
    /// Returns true if the update was accepted.
    pub fn accepted(&self) -> bool {
        matches!(self, AccumulateOutcome::Accepted { .. })
    }
}

/// The FedBuff buffered aggregator.
#[derive(Clone, Debug)]
pub struct FedBuffAggregator {
    aggregation_goal: usize,
    staleness_weighting: StalenessWeighting,
    max_staleness: Option<u64>,
    weight_by_examples: bool,
    buffer: Option<ParamVec>,
    weight_sum: f64,
    buffered: usize,
    total_accepted: u64,
    total_rejected_stale: u64,
    staleness_sum: u64,
    max_observed_staleness: u64,
}

impl FedBuffAggregator {
    /// Creates an aggregator with aggregation goal `K`.
    ///
    /// `max_staleness = None` disables the staleness bound.
    ///
    /// # Panics
    ///
    /// Panics if `aggregation_goal == 0`.
    pub fn new(
        aggregation_goal: usize,
        staleness_weighting: StalenessWeighting,
        max_staleness: Option<u64>,
    ) -> Self {
        assert!(aggregation_goal > 0, "aggregation goal must be positive");
        FedBuffAggregator {
            aggregation_goal,
            staleness_weighting,
            max_staleness,
            weight_by_examples: true,
            buffer: None,
            weight_sum: 0.0,
            buffered: 0,
            total_accepted: 0,
            total_rejected_stale: 0,
            staleness_sum: 0,
            max_observed_staleness: 0,
        }
    }

    /// Disables (or re-enables) weighting by example count.
    pub fn with_example_weighting(mut self, enabled: bool) -> Self {
        self.weight_by_examples = enabled;
        self
    }

    /// The configured aggregation goal `K`.
    pub fn aggregation_goal(&self) -> usize {
        self.aggregation_goal
    }

    /// Number of updates currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Total updates ever accepted.
    pub fn total_accepted(&self) -> u64 {
        self.total_accepted
    }

    /// Total updates rejected for excessive staleness.
    pub fn total_rejected_stale(&self) -> u64 {
        self.total_rejected_stale
    }

    /// Mean staleness of accepted updates.
    pub fn mean_staleness(&self) -> f64 {
        if self.total_accepted == 0 {
            0.0
        } else {
            self.staleness_sum as f64 / self.total_accepted as f64
        }
    }

    /// Largest staleness observed among accepted updates.
    pub fn max_observed_staleness(&self) -> u64 {
        self.max_observed_staleness
    }

    /// Offers an update to the buffer; `current_version` is the server model
    /// version at upload time (used to compute staleness).
    pub fn accumulate(&mut self, update: ClientUpdate, current_version: u64) -> AccumulateOutcome {
        let staleness = update.staleness(current_version);
        if let Some(max) = self.max_staleness {
            if staleness > max {
                self.total_rejected_stale += 1;
                return AccumulateOutcome::RejectedStale {
                    staleness,
                    max_staleness: max,
                };
            }
        }
        // A client that trained on zero examples carries zero weight: it
        // still counts toward the aggregation goal but contributes nothing.
        let example_weight = if self.weight_by_examples {
            update.num_examples as f64
        } else {
            1.0
        };
        let weight = example_weight * self.staleness_weighting.weight(staleness);

        let buffer = self
            .buffer
            .get_or_insert_with(|| ParamVec::zeros(update.delta.len()));
        assert_eq!(
            buffer.len(),
            update.delta.len(),
            "update dimensionality changed mid-training"
        );
        buffer.add_scaled(&update.delta, weight as f32);
        self.weight_sum += weight;
        self.buffered += 1;
        self.total_accepted += 1;
        self.staleness_sum += staleness;
        self.max_observed_staleness = self.max_observed_staleness.max(staleness);
        AccumulateOutcome::Accepted { staleness }
    }

    /// Returns true once the aggregation goal has been reached.
    pub fn is_ready(&self) -> bool {
        self.buffered >= self.aggregation_goal
    }

    /// Releases the aggregated (weighted-average) update and clears the
    /// buffer, or returns `None` if the goal has not been reached.
    ///
    /// If every buffered update carried zero weight the release is a zero
    /// delta (a no-op server step) rather than the unscaled raw sum.
    pub fn take(&mut self) -> Option<ParamVec> {
        if !self.is_ready() {
            return None;
        }
        let mut buffer = self.buffer.take()?;
        if self.weight_sum > 0.0 {
            buffer.scale((1.0 / self.weight_sum) as f32);
        } else {
            buffer = ParamVec::zeros(buffer.len());
        }
        self.weight_sum = 0.0;
        self.buffered = 0;
        Some(buffer)
    }

    /// Discards all buffered updates without releasing them — the Aggregator
    /// holding this buffer died and its in-memory state is lost.  Returns how
    /// many buffered updates were dropped.  Lifetime counters
    /// ([`total_accepted`](Self::total_accepted) etc.) are preserved.
    pub fn reset(&mut self) -> usize {
        let dropped = self.buffered;
        self.buffer = None;
        self.weight_sum = 0.0;
        self.buffered = 0;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(id: usize, delta: Vec<f32>, examples: usize, start_version: u64) -> ClientUpdate {
        ClientUpdate {
            client_id: id,
            delta: ParamVec::from_vec(delta),
            num_examples: examples,
            start_version,
            train_loss: 0.0,
        }
    }

    #[test]
    fn equal_weights_give_plain_average() {
        let mut agg = FedBuffAggregator::new(2, StalenessWeighting::Constant, None);
        agg.accumulate(update(0, vec![2.0, 0.0], 10, 0), 0);
        agg.accumulate(update(1, vec![0.0, 4.0], 10, 0), 0);
        let out = agg.take().unwrap();
        assert_eq!(out.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn example_weighting_biases_towards_larger_clients() {
        let mut agg = FedBuffAggregator::new(2, StalenessWeighting::Constant, None);
        agg.accumulate(update(0, vec![0.0], 30, 0), 0);
        agg.accumulate(update(1, vec![4.0], 10, 0), 0);
        let out = agg.take().unwrap();
        assert!((out.as_slice()[0] - 1.0).abs() < 1e-6); // 4 * 10/40
    }

    #[test]
    fn example_weighting_can_be_disabled() {
        let mut agg = FedBuffAggregator::new(2, StalenessWeighting::Constant, None)
            .with_example_weighting(false);
        agg.accumulate(update(0, vec![0.0], 30, 0), 0);
        agg.accumulate(update(1, vec![4.0], 10, 0), 0);
        let out = agg.take().unwrap();
        assert!((out.as_slice()[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn stale_updates_are_down_weighted() {
        let mut agg = FedBuffAggregator::new(2, StalenessWeighting::PolynomialHalf, None);
        // Fresh update of 0.0 and an update of 1.0 with staleness 3 (weight 1/2).
        agg.accumulate(update(0, vec![0.0], 10, 5), 5);
        agg.accumulate(update(1, vec![1.0], 10, 2), 5);
        let out = agg.take().unwrap();
        // Weighted average: (0*1 + 1*0.5) / 1.5 = 1/3.
        assert!((out.as_slice()[0] - 1.0 / 3.0).abs() < 1e-6);
        assert!((agg.mean_staleness() - 1.5).abs() < 1e-9);
        assert_eq!(agg.max_observed_staleness(), 3);
    }

    #[test]
    fn overly_stale_updates_are_rejected() {
        let mut agg = FedBuffAggregator::new(1, StalenessWeighting::PolynomialHalf, Some(5));
        let outcome = agg.accumulate(update(0, vec![1.0], 10, 0), 10);
        assert_eq!(
            outcome,
            AccumulateOutcome::RejectedStale {
                staleness: 10,
                max_staleness: 5
            }
        );
        assert!(!agg.is_ready());
        assert_eq!(agg.total_rejected_stale(), 1);
        // A fresh update still works.
        assert!(agg.accumulate(update(1, vec![1.0], 10, 10), 10).accepted());
        assert!(agg.is_ready());
    }

    #[test]
    fn take_before_goal_returns_none() {
        let mut agg = FedBuffAggregator::new(3, StalenessWeighting::Constant, None);
        agg.accumulate(update(0, vec![1.0], 1, 0), 0);
        assert!(agg.take().is_none());
        assert_eq!(agg.buffered(), 1);
    }

    #[test]
    fn buffer_resets_after_take() {
        let mut agg = FedBuffAggregator::new(1, StalenessWeighting::Constant, None);
        agg.accumulate(update(0, vec![2.0], 1, 0), 0);
        assert_eq!(agg.take().unwrap().as_slice(), &[2.0]);
        assert_eq!(agg.buffered(), 0);
        agg.accumulate(update(1, vec![6.0], 1, 0), 0);
        assert_eq!(agg.take().unwrap().as_slice(), &[6.0]);
        assert_eq!(agg.total_accepted(), 2);
    }

    #[test]
    fn goal_of_one_matches_pure_async() {
        let mut agg = FedBuffAggregator::new(1, StalenessWeighting::Constant, None);
        for i in 0..5 {
            agg.accumulate(update(i, vec![i as f32], 1, 0), 0);
            assert!(agg.is_ready());
            assert_eq!(agg.take().unwrap().as_slice(), &[i as f32]);
        }
    }

    #[test]
    fn all_zero_weight_buffer_releases_zero_delta() {
        // Two zero-example clients fill the buffer; with example weighting
        // their combined weight is 0, so the release must be a zero delta,
        // not the unscaled raw sum.
        let mut agg = FedBuffAggregator::new(2, StalenessWeighting::Constant, None);
        agg.accumulate(update(0, vec![3.0, -1.0], 0, 0), 0);
        agg.accumulate(update(1, vec![5.0, 2.0], 0, 0), 0);
        assert!(agg.is_ready());
        let out = agg.take().unwrap();
        assert_eq!(out.as_slice(), &[0.0, 0.0]);
        // The aggregator is reusable afterwards.
        agg.accumulate(update(2, vec![4.0, 4.0], 10, 0), 0);
        agg.accumulate(update(3, vec![0.0, 0.0], 10, 0), 0);
        assert_eq!(agg.take().unwrap().as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn zero_example_update_contributes_nothing() {
        let mut agg = FedBuffAggregator::new(2, StalenessWeighting::Constant, None);
        agg.accumulate(update(0, vec![100.0], 0, 0), 0);
        agg.accumulate(update(1, vec![4.0], 10, 0), 0);
        assert_eq!(agg.take().unwrap().as_slice(), &[4.0]);
    }

    #[test]
    fn reset_drops_buffered_updates() {
        let mut agg = FedBuffAggregator::new(3, StalenessWeighting::Constant, None);
        agg.accumulate(update(0, vec![1.0], 5, 0), 0);
        agg.accumulate(update(1, vec![2.0], 5, 0), 0);
        assert_eq!(agg.reset(), 2);
        assert_eq!(agg.buffered(), 0);
        assert!(agg.take().is_none());
        // Lifetime counters survive the reset.
        assert_eq!(agg.total_accepted(), 2);
        // The next goal starts from an empty buffer.
        agg.accumulate(update(2, vec![9.0], 5, 0), 0);
        agg.accumulate(update(3, vec![9.0], 5, 0), 0);
        agg.accumulate(update(4, vec![9.0], 5, 0), 0);
        assert_eq!(agg.take().unwrap().as_slice(), &[9.0]);
    }

    #[test]
    #[should_panic(expected = "aggregation goal must be positive")]
    fn zero_goal_rejected() {
        let _ = FedBuffAggregator::new(0, StalenessWeighting::Constant, None);
    }

    #[test]
    #[should_panic(expected = "dimensionality changed")]
    fn mismatched_dimensions_panic() {
        let mut agg = FedBuffAggregator::new(2, StalenessWeighting::Constant, None);
        agg.accumulate(update(0, vec![1.0, 2.0], 1, 0), 0);
        agg.accumulate(update(1, vec![1.0], 1, 0), 0);
    }
}
