//! A fast surrogate federated objective for large-scale simulations.
//!
//! Training the real LSTM for every client update is affordable only for
//! small experiments; the concurrency sweeps in Figures 3 and 9 simulate
//! hundreds of thousands of client updates.  For those, this module provides
//! a heterogeneous quadratic objective whose optimization dynamics exhibit
//! the phenomena the paper measures:
//!
//! * each client `i` has its own optimum `w*_i = w* + heterogeneity · ξ_i +
//!   volume_bias · p_i · u`, where `p_i` is the client's data-volume
//!   percentile and `u` a fixed direction — so heavy-data (slow) clients pull
//!   the model somewhere specific, and excluding them (over-selection)
//!   produces a measurably biased model;
//! * local training is mini-batch SGD with gradient noise, so larger
//!   aggregation goals behave like larger batches (the diminishing-returns
//!   effect of Figure 3);
//! * stale deltas are computed against old server parameters, so staleness
//!   damping matters (Figure 10).

use crate::client::{ClientTrainer, LocalTrainResult};
use papaya_data::population::Population;
use papaya_nn::params::ParamVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the surrogate objective.
#[derive(Clone, Debug, PartialEq)]
pub struct SurrogateConfig {
    /// Model dimensionality.
    pub dim: usize,
    /// Standard deviation of per-client optimum noise.
    pub heterogeneity: f32,
    /// Magnitude of the systematic shift applied to heavy-data clients'
    /// optima (drives the over-selection bias experiments).
    pub volume_bias: f32,
    /// Client-side SGD learning rate.
    pub local_learning_rate: f32,
    /// Mini-batch size used to derive the number of local steps.
    pub batch_size: usize,
    /// Cap on the number of local SGD steps per participation.
    pub max_local_steps: usize,
    /// Standard deviation of per-step gradient noise.
    pub gradient_noise: f32,
    /// Distance of the initial model from the population optimum.
    pub init_distance: f32,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        SurrogateConfig {
            dim: 32,
            heterogeneity: 0.5,
            volume_bias: 2.0,
            local_learning_rate: 0.1,
            batch_size: 32,
            max_local_steps: 20,
            gradient_noise: 0.3,
            init_distance: 10.0,
        }
    }
}

/// The surrogate federated objective (implements [`ClientTrainer`]).
#[derive(Clone, Debug)]
pub struct SurrogateObjective {
    config: SurrogateConfig,
    client_optima: Vec<Vec<f32>>,
    num_examples: Vec<usize>,
    initial: ParamVec,
}

fn standard_normal(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    papaya_data::stats::standard_normal_pair(u1, u2).0 as f32
}

impl SurrogateObjective {
    /// Builds the objective for a device population.
    pub fn new(population: &Population, config: SurrogateConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = config.dim;
        // Population-level optimum and the bias direction for heavy clients.
        let global_optimum: Vec<f32> = (0..dim).map(|_| standard_normal(&mut rng)).collect();
        let mut bias_direction: Vec<f32> = (0..dim).map(|_| standard_normal(&mut rng)).collect();
        let norm = bias_direction
            .iter()
            .map(|x| x * x)
            .sum::<f32>()
            .sqrt()
            .max(1e-6);
        for b in bias_direction.iter_mut() {
            *b /= norm;
        }
        let max_examples = population
            .iter()
            .map(|d| d.num_examples)
            .max()
            .unwrap_or(1)
            .max(1) as f32;

        let mut client_optima = Vec::with_capacity(population.len());
        let mut num_examples = Vec::with_capacity(population.len());
        for device in population.iter() {
            let volume_percentile = device.num_examples as f32 / max_examples;
            let optimum: Vec<f32> = (0..dim)
                .map(|j| {
                    global_optimum[j]
                        + config.heterogeneity * standard_normal(&mut rng)
                        + config.volume_bias * volume_percentile * bias_direction[j]
                })
                .collect();
            client_optima.push(optimum);
            num_examples.push(device.num_examples);
        }

        // Initial model: global optimum displaced by init_distance along a
        // random direction, so there is something to learn.
        let init_dir: Vec<f32> = (0..dim).map(|_| standard_normal(&mut rng)).collect();
        let norm = init_dir.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
        let initial: Vec<f32> = (0..dim)
            .map(|j| global_optimum[j] + config.init_distance * init_dir[j] / norm)
            .collect();

        SurrogateObjective {
            config,
            client_optima,
            num_examples,
            initial: ParamVec::from_vec(initial),
        }
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.client_optima.len()
    }

    /// The configuration used to build the objective.
    pub fn config(&self) -> &SurrogateConfig {
        &self.config
    }

    /// The population optimum: the unweighted mean of all client optima.
    /// Evaluating at this point gives the (approximate) lowest achievable
    /// population loss, useful for setting relative loss targets.
    pub fn population_optimum(&self) -> ParamVec {
        let mut mean = vec![0.0f32; self.config.dim];
        for optimum in &self.client_optima {
            for (m, o) in mean.iter_mut().zip(optimum.iter()) {
                *m += o;
            }
        }
        for m in mean.iter_mut() {
            *m /= self.client_optima.len().max(1) as f32;
        }
        ParamVec::from_vec(mean)
    }

    /// Loss of `params` for a single client.
    pub fn client_loss(&self, params: &ParamVec, client_id: usize) -> f64 {
        let optimum = &self.client_optima[client_id];
        params
            .as_slice()
            .iter()
            .zip(optimum.iter())
            .map(|(w, o)| 0.5 * ((w - o) as f64).powi(2))
            .sum::<f64>()
            / self.config.dim as f64
    }
}

/// The surrogate objective with O(bytes) per-client state: client optima
/// are *derived on demand* from `(seed, client_id)` instead of being
/// materialized up front.
///
/// [`SurrogateObjective`] stores `dim` floats per client (512 MB for a
/// million clients at `dim = 128`), which caps how large a population fits
/// in memory.  This variant stores only the population-level state (global
/// optimum, bias direction, initial model — all O(dim)) plus a packed
/// 4-byte example count per client, and re-derives a client's optimum from
/// a per-client seeded RNG each time that client trains or is evaluated.
/// Same statistical family as [`SurrogateObjective`] (per-client optimum =
/// global + heterogeneity noise + volume-biased shift), but the two are
/// *not* draw-for-draw identical: this one seeds per client rather than
/// consuming one sequential RNG stream, precisely so that idle clients
/// cost nothing.
///
/// This is the trainer behind the `fedbuff-1m` perf scenario
/// (`docs/SCALING.md`): a million idle clients cost 4 MB here instead of
/// half a gigabyte.
#[derive(Clone, Debug)]
pub struct ProceduralSurrogate {
    config: SurrogateConfig,
    global_optimum: Vec<f32>,
    bias_direction: Vec<f32>,
    initial: ParamVec,
    /// The only per-client state: packed example counts (4 B/client).
    num_examples: Vec<u32>,
    max_examples: f32,
    seed: u64,
}

impl ProceduralSurrogate {
    /// Builds the objective for a device population.
    pub fn new(population: &Population, config: SurrogateConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = config.dim;
        let global_optimum: Vec<f32> = (0..dim).map(|_| standard_normal(&mut rng)).collect();
        let mut bias_direction: Vec<f32> = (0..dim).map(|_| standard_normal(&mut rng)).collect();
        let norm = bias_direction
            .iter()
            .map(|x| x * x)
            .sum::<f32>()
            .sqrt()
            .max(1e-6);
        for b in bias_direction.iter_mut() {
            *b /= norm;
        }
        let num_examples: Vec<u32> = population.iter().map(|d| d.num_examples as u32).collect();
        let max_examples = num_examples.iter().copied().max().unwrap_or(1).max(1) as f32;
        let init_dir: Vec<f32> = (0..dim).map(|_| standard_normal(&mut rng)).collect();
        let norm = init_dir.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
        let initial: Vec<f32> = (0..dim)
            .map(|j| global_optimum[j] + config.init_distance * init_dir[j] / norm)
            .collect();
        ProceduralSurrogate {
            config,
            global_optimum,
            bias_direction,
            initial: ParamVec::from_vec(initial),
            num_examples,
            max_examples,
            seed,
        }
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.num_examples.len()
    }

    /// Derives client `client_id`'s optimum from its seeded RNG (no stored
    /// per-client state).  Deterministic: the same client always gets the
    /// same optimum.
    fn client_optimum(&self, client_id: usize) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (client_id as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let volume_percentile = self.num_examples[client_id] as f32 / self.max_examples;
        (0..self.config.dim)
            .map(|j| {
                self.global_optimum[j]
                    + self.config.heterogeneity * standard_normal(&mut rng)
                    + self.config.volume_bias * volume_percentile * self.bias_direction[j]
            })
            .collect()
    }

    /// Loss of `params` for a single client.
    pub fn client_loss(&self, params: &ParamVec, client_id: usize) -> f64 {
        let optimum = self.client_optimum(client_id);
        params
            .as_slice()
            .iter()
            .zip(optimum.iter())
            .map(|(w, o)| 0.5 * ((w - o) as f64).powi(2))
            .sum::<f64>()
            / self.config.dim as f64
    }
}

impl ClientTrainer for ProceduralSurrogate {
    fn parameter_count(&self) -> usize {
        self.config.dim
    }

    fn initial_parameters(&self) -> ParamVec {
        self.initial.clone()
    }

    fn train(&self, client_id: usize, global: &ParamVec, seed: u64) -> LocalTrainResult {
        assert!(client_id < self.num_clients(), "unknown client {client_id}");
        assert_eq!(global.len(), self.config.dim, "parameter length mismatch");
        let mut rng = StdRng::seed_from_u64(seed ^ (client_id as u64).wrapping_mul(0x9e37_79b9));
        let optimum = self.client_optimum(client_id);
        let examples = self.num_examples[client_id] as usize;
        let steps =
            (examples.div_ceil(self.config.batch_size)).clamp(1, self.config.max_local_steps);
        let noise_scale = self.config.gradient_noise
            / (self.config.batch_size.min(examples).max(1) as f32).sqrt();

        let mut w: Vec<f32> = global.as_slice().to_vec();
        for _ in 0..steps {
            for j in 0..self.config.dim {
                let grad = (w[j] - optimum[j]) + noise_scale * standard_normal(&mut rng);
                w[j] -= self.config.local_learning_rate * grad;
            }
        }
        let trained = ParamVec::from_vec(w);
        let train_loss = self.client_loss(&trained, client_id) as f32;
        LocalTrainResult {
            delta: trained.sub(global),
            num_examples: examples,
            train_loss,
        }
    }

    fn evaluate(&self, params: &ParamVec, client_ids: &[usize]) -> f64 {
        assert!(!client_ids.is_empty(), "evaluate needs at least one client");
        client_ids
            .iter()
            .map(|&id| self.client_loss(params, id))
            .sum::<f64>()
            / client_ids.len() as f64
    }
}

impl ClientTrainer for SurrogateObjective {
    fn parameter_count(&self) -> usize {
        self.config.dim
    }

    fn initial_parameters(&self) -> ParamVec {
        self.initial.clone()
    }

    fn train(&self, client_id: usize, global: &ParamVec, seed: u64) -> LocalTrainResult {
        assert!(client_id < self.num_clients(), "unknown client {client_id}");
        assert_eq!(global.len(), self.config.dim, "parameter length mismatch");
        let mut rng = StdRng::seed_from_u64(seed ^ (client_id as u64).wrapping_mul(0x9e37_79b9));
        let optimum = &self.client_optima[client_id];
        let examples = self.num_examples[client_id];
        let steps =
            (examples.div_ceil(self.config.batch_size)).clamp(1, self.config.max_local_steps);
        // Gradient noise shrinks with the batch size actually used.
        let noise_scale = self.config.gradient_noise
            / (self.config.batch_size.min(examples).max(1) as f32).sqrt();

        let mut w: Vec<f32> = global.as_slice().to_vec();
        for _ in 0..steps {
            for j in 0..self.config.dim {
                let grad = (w[j] - optimum[j]) + noise_scale * standard_normal(&mut rng);
                w[j] -= self.config.local_learning_rate * grad;
            }
        }
        let trained = ParamVec::from_vec(w);
        let train_loss = self.client_loss(&trained, client_id) as f32;
        LocalTrainResult {
            delta: trained.sub(global),
            num_examples: examples,
            train_loss,
        }
    }

    fn evaluate(&self, params: &ParamVec, client_ids: &[usize]) -> f64 {
        assert!(!client_ids.is_empty(), "evaluate needs at least one client");
        client_ids
            .iter()
            .map(|&id| self.client_loss(params, id))
            .sum::<f64>()
            / client_ids.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::Aggregator;
    use crate::client::ClientUpdate;
    use crate::fedbuff::FedBuffAggregator;
    use crate::model::ServerModel;
    use crate::server_opt::FedAvg;
    use crate::staleness::StalenessWeighting;
    use papaya_data::population::{Population, PopulationConfig};

    fn objective(n: usize) -> SurrogateObjective {
        let pop = Population::generate(&PopulationConfig::default().with_size(n), 5);
        SurrogateObjective::new(&pop, SurrogateConfig::default(), 5)
    }

    #[test]
    fn procedural_surrogate_is_deterministic_and_trains() {
        let pop = Population::generate(&PopulationConfig::default().with_size(300), 5);
        let obj = ProceduralSurrogate::new(&pop, SurrogateConfig::default(), 5);
        let global = obj.initial_parameters();
        // Deterministic per (client, seed) — optima are re-derived, never stored.
        assert_eq!(obj.train(7, &global, 42), obj.train(7, &global, 42));
        assert_ne!(
            obj.train(7, &global, 42).delta,
            obj.train(8, &global, 42).delta
        );
        // A local step moves towards the client's optimum.
        let before = obj.client_loss(&global, 7);
        let result = obj.train(7, &global, 1);
        let after = obj.client_loss(&global.add(&result.delta), 7);
        assert!(after < before, "{after} vs {before}");
    }

    #[test]
    fn procedural_surrogate_per_client_state_is_bytes_not_dim() {
        // The scale claim: per-client cost is one packed u32, independent of
        // the model dimension (SurrogateObjective stores dim floats/client).
        let pop = Population::generate(&PopulationConfig::default().with_size(1000), 5);
        let obj = ProceduralSurrogate::new(&pop, SurrogateConfig::default(), 5);
        assert_eq!(obj.num_clients(), 1000);
        assert_eq!(
            std::mem::size_of_val(&obj.num_examples[..]) / obj.num_clients(),
            4
        );
    }

    #[test]
    fn initial_loss_is_high_training_reduces_it() {
        let obj = objective(200);
        let all: Vec<usize> = (0..obj.num_clients()).collect();
        let mut model = ServerModel::new(obj.initial_parameters());
        let initial_loss = obj.evaluate(model.params(), &all);

        // Run 30 FedAvg rounds of 20 clients each.
        let mut opt = FedAvg;
        let mut agg = FedBuffAggregator::new(20, StalenessWeighting::Constant, None);
        for round in 0..30u64 {
            for c in 0..20usize {
                let client = (round as usize * 20 + c) % obj.num_clients();
                let result = obj.train(client, model.params(), round * 1000 + c as u64);
                agg.accumulate(
                    ClientUpdate::from_result(client, model.version(), result),
                    model.version(),
                    0.0,
                );
            }
            let delta = agg.take(0.0).expect("goal reached");
            model.apply_update(&mut opt, &delta);
        }
        let final_loss = obj.evaluate(model.params(), &all);
        assert!(
            final_loss < initial_loss * 0.2,
            "loss did not drop enough: {initial_loss} -> {final_loss}"
        );
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let obj = objective(50);
        let global = obj.initial_parameters();
        let a = obj.train(3, &global, 42);
        let b = obj.train(3, &global, 42);
        assert_eq!(a, b);
        let c = obj.train(3, &global, 43);
        assert_ne!(a.delta, c.delta);
    }

    #[test]
    fn delta_moves_towards_client_optimum() {
        let obj = objective(50);
        let global = obj.initial_parameters();
        let before = obj.client_loss(&global, 7);
        let result = obj.train(7, &global, 1);
        let after = obj.client_loss(&global.add(&result.delta), 7);
        assert!(after < before, "{after} vs {before}");
    }

    #[test]
    fn heavy_clients_have_systematically_different_optima() {
        let pop = Population::generate(&PopulationConfig::default().with_size(2000), 9);
        let obj = SurrogateObjective::new(&pop, SurrogateConfig::default(), 9);
        // A model fit only to the light half of clients is worse for the
        // heaviest 1% than a model fit to everyone (bias direction matters).
        let heavy = pop.ids_above_example_percentile(99.0);
        let light: Vec<usize> = pop
            .iter()
            .filter(|d| !heavy.contains(&d.id))
            .map(|d| d.id)
            .collect();
        // Means of optima as quick stand-ins for the models fit to each group.
        let mean_of = |ids: &[usize]| {
            let mut acc = vec![0.0f32; obj.config().dim];
            for &id in ids {
                for (a, o) in acc.iter_mut().zip(obj.client_optima[id].iter()) {
                    *a += o;
                }
            }
            for a in acc.iter_mut() {
                *a /= ids.len() as f32;
            }
            ParamVec::from_vec(acc)
        };
        let all_ids: Vec<usize> = (0..obj.num_clients()).collect();
        let fit_light = mean_of(&light);
        let fit_all = mean_of(&all_ids);
        assert!(obj.evaluate(&fit_light, &heavy) > obj.evaluate(&fit_all, &heavy));
    }

    #[test]
    fn evaluate_on_subsets_differs_from_population() {
        let pop = Population::generate(&PopulationConfig::default().with_size(500), 2);
        let obj = SurrogateObjective::new(&pop, SurrogateConfig::default(), 2);
        let params = obj.initial_parameters();
        let all: Vec<usize> = (0..obj.num_clients()).collect();
        let heavy = pop.ids_above_example_percentile(75.0);
        // Both are positive losses; they should not be identical.
        let a = obj.evaluate(&params, &all);
        let b = obj.evaluate(&params, &heavy);
        assert!(a > 0.0 && b > 0.0);
        assert!((a - b).abs() > 1e-9);
    }

    #[test]
    fn number_of_local_steps_is_capped() {
        // A client with thousands of examples must not take unbounded time.
        let pop = Population::generate(
            &PopulationConfig {
                min_examples: 5000,
                max_examples: 5000,
                ..PopulationConfig::default().with_size(3)
            },
            1,
        );
        let obj = SurrogateObjective::new(&pop, SurrogateConfig::default(), 1);
        let result = obj.train(0, &obj.initial_parameters(), 0);
        assert_eq!(result.num_examples, 5000);
        // The delta norm stays bounded because steps are capped.
        assert!(result.delta.norm() < 100.0);
    }

    #[test]
    #[should_panic(expected = "unknown client")]
    fn unknown_client_panics() {
        let obj = objective(5);
        let _ = obj.train(99, &obj.initial_parameters(), 0);
    }
}
