//! The versioned server model (Appendix E.2).
//!
//! The server model is identified by a *model version* — a counter
//! incremented every time a new server model is generated.  Clients download
//! a specific version; the difference between the version at download and
//! the version at upload is the update's staleness.

use crate::server_opt::ServerOptimizer;
use papaya_nn::params::ParamVec;

/// The server's global model: parameters plus a monotonically increasing
/// version number.
#[derive(Clone, Debug, PartialEq)]
pub struct ServerModel {
    version: u64,
    params: ParamVec,
}

impl ServerModel {
    /// Creates a model at version 0 with the given initial parameters.
    pub fn new(params: ParamVec) -> Self {
        ServerModel { version: 0, params }
    }

    /// Current model version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Current parameters.
    pub fn params(&self) -> &ParamVec {
        &self.params
    }

    /// Snapshot of the parameters (what a client downloads).
    pub fn snapshot(&self) -> ParamVec {
        self.params.clone()
    }

    /// Applies an aggregated delta through the given server optimizer and
    /// bumps the version.
    pub fn apply_update(&mut self, optimizer: &mut dyn ServerOptimizer, delta: &ParamVec) {
        optimizer.apply(&mut self.params, delta);
        self.version += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server_opt::FedAvg;

    #[test]
    fn version_increments_on_update() {
        let mut model = ServerModel::new(ParamVec::zeros(2));
        assert_eq!(model.version(), 0);
        let mut opt = FedAvg;
        model.apply_update(&mut opt, &ParamVec::from_vec(vec![1.0, 1.0]));
        assert_eq!(model.version(), 1);
        model.apply_update(&mut opt, &ParamVec::from_vec(vec![1.0, 1.0]));
        assert_eq!(model.version(), 2);
        assert_eq!(model.params().as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn snapshot_is_independent_of_later_updates() {
        let mut model = ServerModel::new(ParamVec::zeros(1));
        let snap = model.snapshot();
        let mut opt = FedAvg;
        model.apply_update(&mut opt, &ParamVec::from_vec(vec![5.0]));
        assert_eq!(snap.as_slice(), &[0.0]);
        assert_eq!(model.params().as_slice(), &[5.0]);
    }
}
