//! Core federated-learning algorithms for PAPAYA.
//!
//! This crate is the paper's primary algorithmic contribution in library
//! form, independent of the system simulation:
//!
//! * [`config`] — task configuration: training mode (synchronous with
//!   over-selection, asynchronous FedBuff, or the timed hybrid),
//!   concurrency, aggregation goal, staleness limits, timeouts;
//! * [`staleness`] — the staleness down-weighting schemes (the paper uses
//!   `1/sqrt(1 + s)`);
//! * [`aggregator`] — the [`Aggregator`] trait every aggregation strategy
//!   implements, shared lifetime counters, and the
//!   [`aggregator::for_task`] factory mapping a task's mode to a strategy;
//! * [`fedbuff`] — buffered asynchronous aggregation (Nguyen et al., 2021 as
//!   deployed by PAPAYA, Section 3.1 / Appendix E.2);
//! * [`sync_agg`] — synchronous round aggregation with over-selection and
//!   mid-round replacement;
//! * [`timed_hybrid`] — a FedBuff buffer with a sync-style round deadline
//!   that force-releases on timeout (bounded straggler tail);
//! * [`secure`] — the [`secure::SecureAggregator`] decorator running any
//!   strategy through the TEE-based asynchronous secure-aggregation
//!   protocol (masking on accumulate, per-buffer TSA key release on take);
//! * [`dp`] — the [`dp::DpAggregator`] decorator adding user-level
//!   differential privacy to any strategy (per-update L2 clipping, seeded
//!   Gaussian release noise, and an RDP [`dp::PrivacyAccountant`]);
//! * [`adversary`] — typed Byzantine client behaviors (sign-flip, scaled
//!   boosting, colluding cohorts, staleness liars, SecAgg protocol
//!   deviations) with deterministic per-client membership;
//! * [`robust`] — the [`robust::RobustAggregator`] decorator defending any
//!   strategy against those behaviors (L2 norm filtering, coordinate-wise
//!   trimmed mean and median), stacking outermost as
//!   `robust(dp(secure(strategy)))`;
//! * [`server_opt`] — server optimizers applied to aggregated deltas
//!   (FedAvg/FedSGD/FedAdam, Reddi et al., 2020);
//! * [`trace`] — bounded metric traces ([`trace::DecimatedTrace`] under a
//!   [`trace::TraceBudget`], deterministic stride decimation) backing the
//!   simulator's metrics layer at million-client scale;
//! * [`model`] — the versioned server model;
//! * [`client`] — the client-trainer abstraction (local SGD producing a
//!   weighted delta) shared by the real LSTM trainer (`papaya-lm`) and the
//!   fast surrogate objective in [`surrogate`].
//!
//! # Example: one FedBuff buffer behind the [`Aggregator`] trait
//!
//! ```
//! use papaya_core::aggregator::Aggregator;
//! use papaya_core::fedbuff::FedBuffAggregator;
//! use papaya_core::client::ClientUpdate;
//! use papaya_core::staleness::StalenessWeighting;
//! use papaya_nn::params::ParamVec;
//!
//! let mut agg = FedBuffAggregator::new(2, StalenessWeighting::PolynomialHalf, None);
//! let update = |id, delta: Vec<f32>| ClientUpdate {
//!     client_id: id,
//!     delta: ParamVec::from_vec(delta),
//!     num_examples: 10,
//!     start_version: 0,
//!     train_loss: 0.0,
//! };
//! assert!(agg.accumulate(update(0, vec![1.0, 0.0]), 0, 0.0).accepted());
//! assert!(agg.accumulate(update(1, vec![0.0, 1.0]), 0, 1.0).accepted());
//! assert!(agg.is_ready(1.0));
//! let aggregated = agg.take(1.0).unwrap();
//! assert_eq!(aggregated.as_slice(), &[0.5, 0.5]);
//! ```

pub mod adversary;
pub mod aggregator;
pub mod client;
pub mod config;
pub mod dp;
pub mod fedbuff;
pub mod model;
pub mod robust;
pub mod secure;
pub mod server_opt;
pub mod staleness;
pub mod surrogate;
pub mod sync_agg;
pub mod timed_hybrid;
pub mod trace;

pub use adversary::{AdversarySpec, DeviationKind, Malice};
pub use aggregator::{AccumulateOutcome, Aggregator, AggregatorStats};
pub use client::{ClientTrainer, ClientUpdate, LocalTrainResult};
pub use config::{SecAggMode, TaskConfig, TrainingMode};
pub use dp::{DpAggregator, DpConfig, DpTelemetry, PrivacyAccountant};
pub use fedbuff::FedBuffAggregator;
pub use model::ServerModel;
pub use robust::{RobustAggregator, RobustConfig, RobustDefense, RobustTelemetry};
pub use secure::{SecureAggregator, SecureTelemetry};
pub use server_opt::{FedAdam, FedAvg, FedSgd, ServerOptimizer};
pub use staleness::StalenessWeighting;
pub use surrogate::{ProceduralSurrogate, SurrogateObjective};
pub use sync_agg::SyncRoundAggregator;
pub use timed_hybrid::TimedHybridAggregator;
pub use trace::{DecimatedTrace, TraceBudget};
