//! Cryptographic primitives used by PAPAYA's asynchronous secure aggregation.
//!
//! The PAPAYA paper (Appendices A–C) relies on a handful of standard
//! primitives: a Diffie–Hellman key exchange to establish a secure virtual
//! channel between each client and the Trusted Secure Aggregator (TSA), a
//! cryptographically secure PRNG to expand a 16-byte seed into an
//! as-large-as-the-model additive one-time pad, a MAC'd symmetric encryption
//! of the seed, and a Merkle-tree *verifiable log* used to audit updates to
//! the trusted binary.
//!
//! Everything in this crate is implemented from scratch on top of the Rust
//! standard library (plus `rand` for entropy) so that the reproduction has no
//! external cryptography dependencies.  The implementations follow the
//! published specifications (FIPS 180-4 for SHA-256, RFC 2104 for HMAC,
//! RFC 8439 for ChaCha20, RFC 3526 for the MODP Diffie–Hellman group) and are
//! validated against published test vectors in the unit tests.
//!
//! **Scope note:** these primitives are written for protocol correctness and
//! reproducibility of the paper's experiments, not as hardened production
//! cryptography (no constant-time guarantees, no side-channel hardening).
//!
//! # Example
//!
//! ```
//! use papaya_crypto::dh::{DhGroup, DhPrivateKey};
//! use papaya_crypto::chacha20::ChaCha20Rng;
//!
//! // Two parties agree on a shared secret over an untrusted channel.
//! let group = DhGroup::rfc3526_2048();
//! let mut rng = ChaCha20Rng::from_seed([7u8; 32]);
//! let alice = DhPrivateKey::generate(&group, &mut rng);
//! let bob = DhPrivateKey::generate(&group, &mut rng);
//! let s1 = alice.shared_secret(&bob.public_key());
//! let s2 = bob.shared_secret(&alice.public_key());
//! assert_eq!(s1, s2);
//! ```

pub mod aead;
pub mod bignum;
pub mod chacha20;
pub mod dh;
pub mod hmac;
pub mod merkle;
pub mod sha256;

pub use aead::{open, seal, AeadError, AeadKey};
pub use bignum::U2048;
pub use chacha20::{ChaCha20, ChaCha20Rng};
pub use dh::{DhGroup, DhPrivateKey, DhPublicKey, SharedSecret};
pub use hmac::hmac_sha256;
pub use merkle::{ConsistencyProof, InclusionProof, MerkleLog};
pub use sha256::{sha256, Sha256};
