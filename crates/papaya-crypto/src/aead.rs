//! Authenticated encryption (encrypt-then-MAC: ChaCha20 + HMAC-SHA-256).
//!
//! Step 4 of the PAPAYA secure-aggregation protocol (Figure 16) requires the
//! client to send `Enc_k(seed)` to the TSA where `Enc` "employs standard
//! techniques like MAC and sequential number to detect any tampered
//! encryption".  [`seal`]/[`open`] implement exactly that: the message is
//! encrypted with ChaCha20 under a key derived from the shared secret and a
//! per-message nonce, and authenticated (together with the nonce and an
//! associated-data transcript) by HMAC-SHA-256.

use crate::chacha20::ChaCha20;
use crate::hmac::{derive_key, hmac_sha256, verify_tag};

/// A 32-byte symmetric key for the AEAD, typically a DH shared secret.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AeadKey {
    enc_key: [u8; 32],
    mac_key: [u8; 32],
}

/// Errors returned when opening a sealed message fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AeadError {
    /// The ciphertext is too short to contain a nonce and tag.
    Truncated,
    /// The authentication tag did not verify; the message was tampered with
    /// or the key is wrong.
    TagMismatch,
}

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AeadError::Truncated => write!(f, "ciphertext shorter than nonce and tag"),
            AeadError::TagMismatch => write!(f, "authentication tag mismatch"),
        }
    }
}

impl std::error::Error for AeadError {}

const NONCE_LEN: usize = 12;
const TAG_LEN: usize = 32;

impl AeadKey {
    /// Derives an AEAD key pair (encryption + MAC subkeys) from a master
    /// secret such as a Diffie–Hellman shared secret.
    pub fn from_shared_secret(secret: &[u8; 32]) -> Self {
        AeadKey {
            enc_key: derive_key(secret, b"papaya/aead/enc"),
            mac_key: derive_key(secret, b"papaya/aead/mac"),
        }
    }
}

/// Encrypts and authenticates `plaintext`.
///
/// `nonce` must be unique per key (the secure-aggregation protocol uses the
/// client's message sequence number).  `associated_data` is authenticated but
/// not encrypted.  Returns `nonce || ciphertext || tag`.
pub fn seal(
    key: &AeadKey,
    nonce: &[u8; NONCE_LEN],
    associated_data: &[u8],
    plaintext: &[u8],
) -> Vec<u8> {
    let mut ciphertext = plaintext.to_vec();
    let cipher = ChaCha20::new(&key.enc_key, nonce, 1);
    cipher.apply_keystream(&mut ciphertext);

    let mut out = Vec::with_capacity(NONCE_LEN + ciphertext.len() + TAG_LEN);
    out.extend_from_slice(nonce);
    out.extend_from_slice(&ciphertext);

    let tag = compute_tag(key, nonce, associated_data, &ciphertext);
    out.extend_from_slice(&tag);
    out
}

/// Verifies and decrypts a message produced by [`seal`].
///
/// # Errors
///
/// Returns [`AeadError::Truncated`] if the buffer is too small and
/// [`AeadError::TagMismatch`] if authentication fails (wrong key, wrong
/// associated data, or tampering).
pub fn open(key: &AeadKey, associated_data: &[u8], sealed: &[u8]) -> Result<Vec<u8>, AeadError> {
    if sealed.len() < NONCE_LEN + TAG_LEN {
        return Err(AeadError::Truncated);
    }
    let (nonce_bytes, rest) = sealed.split_at(NONCE_LEN);
    let (ciphertext, tag_bytes) = rest.split_at(rest.len() - TAG_LEN);
    let mut nonce = [0u8; NONCE_LEN];
    nonce.copy_from_slice(nonce_bytes);
    let mut tag = [0u8; TAG_LEN];
    tag.copy_from_slice(tag_bytes);

    let expected = compute_tag(key, &nonce, associated_data, ciphertext);
    if !verify_tag(&expected, &tag) {
        return Err(AeadError::TagMismatch);
    }
    let mut plaintext = ciphertext.to_vec();
    let cipher = ChaCha20::new(&key.enc_key, &nonce, 1);
    cipher.apply_keystream(&mut plaintext);
    Ok(plaintext)
}

fn compute_tag(
    key: &AeadKey,
    nonce: &[u8; NONCE_LEN],
    associated_data: &[u8],
    ciphertext: &[u8],
) -> [u8; TAG_LEN] {
    // Unambiguous transcript: len(ad) || ad || nonce || ciphertext.
    let mut transcript =
        Vec::with_capacity(8 + associated_data.len() + NONCE_LEN + ciphertext.len());
    transcript.extend_from_slice(&(associated_data.len() as u64).to_be_bytes());
    transcript.extend_from_slice(associated_data);
    transcript.extend_from_slice(nonce);
    transcript.extend_from_slice(ciphertext);
    hmac_sha256(&key.mac_key, &transcript)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> AeadKey {
        AeadKey::from_shared_secret(&[7u8; 32])
    }

    #[test]
    fn seal_open_roundtrip() {
        let k = key();
        let sealed = seal(&k, &[1u8; 12], b"ad", b"the seed");
        let opened = open(&k, b"ad", &sealed).unwrap();
        assert_eq!(opened, b"the seed");
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let k = key();
        let sealed = seal(&k, &[0u8; 12], b"", b"");
        assert_eq!(open(&k, b"", &sealed).unwrap(), b"");
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let k = key();
        let mut sealed = seal(&k, &[1u8; 12], b"", b"secret seed material");
        sealed[NONCE_LEN + 2] ^= 0x01;
        assert_eq!(open(&k, b"", &sealed), Err(AeadError::TagMismatch));
    }

    #[test]
    fn tampered_nonce_rejected() {
        let k = key();
        let mut sealed = seal(&k, &[1u8; 12], b"", b"secret");
        sealed[0] ^= 0x80;
        assert_eq!(open(&k, b"", &sealed), Err(AeadError::TagMismatch));
    }

    #[test]
    fn wrong_associated_data_rejected() {
        let k = key();
        let sealed = seal(&k, &[1u8; 12], b"client-7", b"secret");
        assert_eq!(open(&k, b"client-8", &sealed), Err(AeadError::TagMismatch));
    }

    #[test]
    fn wrong_key_rejected() {
        let k = key();
        let other = AeadKey::from_shared_secret(&[8u8; 32]);
        let sealed = seal(&k, &[1u8; 12], b"", b"secret");
        assert_eq!(open(&other, b"", &sealed), Err(AeadError::TagMismatch));
    }

    #[test]
    fn truncated_rejected() {
        let k = key();
        assert_eq!(open(&k, b"", &[0u8; 10]), Err(AeadError::Truncated));
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let k = key();
        let sealed = seal(&k, &[9u8; 12], b"", b"aaaaaaaaaaaaaaaa");
        assert_ne!(&sealed[NONCE_LEN..NONCE_LEN + 16], b"aaaaaaaaaaaaaaaa");
    }
}
