//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! Used to authenticate encrypted seeds sent to the Trusted Secure Aggregator
//! and to produce simulated attestation signatures (the "hardware key" of the
//! simulated enclave signs quotes with HMAC).

use crate::sha256::Sha256;

const BLOCK_SIZE: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the SHA-256 block size are first hashed, per RFC 2104.
///
/// # Example
///
/// ```
/// let tag = papaya_crypto::hmac::hmac_sha256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; BLOCK_SIZE];
    if key.len() > BLOCK_SIZE {
        let digest = crate::sha256::sha256(key);
        key_block[..32].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_SIZE];
    let mut opad = [0x5cu8; BLOCK_SIZE];
    for i in 0..BLOCK_SIZE {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-shape comparison of two MAC tags.
///
/// Returns `true` when the tags are equal.  The comparison always inspects
/// every byte so the timing does not reveal the first mismatching position.
pub fn verify_tag(expected: &[u8; 32], actual: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for i in 0..32 {
        diff |= expected[i] ^ actual[i];
    }
    diff == 0
}

/// HKDF-style key derivation: `derive_key(secret, info)` returns a 32-byte
/// key bound to the given context string.
///
/// This is HKDF-Expand with a single output block, using the secret directly
/// as the PRK (the secrets we derive from are already uniform DH outputs run
/// through SHA-256).
pub fn derive_key(secret: &[u8], info: &[u8]) -> [u8; 32] {
    let mut message = Vec::with_capacity(info.len() + 1);
    message.extend_from_slice(info);
    message.push(0x01);
    hmac_sha256(secret, &message)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_tag_rejects_mismatch() {
        let a = hmac_sha256(b"k", b"m");
        let mut b = a;
        b[31] ^= 1;
        assert!(verify_tag(&a, &a));
        assert!(!verify_tag(&a, &b));
    }

    #[test]
    fn derive_key_is_context_separated() {
        let secret = [9u8; 32];
        let k1 = derive_key(&secret, b"papaya/seed-encryption");
        let k2 = derive_key(&secret, b"papaya/attestation");
        assert_ne!(k1, k2);
        // Deterministic.
        assert_eq!(k1, derive_key(&secret, b"papaya/seed-encryption"));
    }
}
