//! Append-only verifiable log backed by a Merkle tree (Appendix C.2).
//!
//! PAPAYA records every released trusted binary (the code that runs inside
//! the enclave) in a verifiable log so that clients can check an *inclusion
//! proof* for the binary they are attesting, and auditors can check
//! *consistency proofs* between snapshots to make sure the log is
//! append-only.  This module implements the RFC 6962 (Certificate
//! Transparency) Merkle-tree construction: leaf hashes are
//! `SHA-256(0x00 || leaf)` and interior nodes are
//! `SHA-256(0x01 || left || right)`.

use crate::sha256::Sha256;

/// A Merkle tree hash (root, node, or leaf hash).
pub type Hash = [u8; 32];

/// An append-only Merkle log of binary records.
///
/// # Example
///
/// ```
/// use papaya_crypto::merkle::MerkleLog;
/// let mut log = MerkleLog::new();
/// log.append(b"trusted-binary-v1".to_vec());
/// log.append(b"trusted-binary-v2".to_vec());
/// let root = log.root();
/// let proof = log.inclusion_proof(1).unwrap();
/// assert!(proof.verify(&root, b"trusted-binary-v2", 1, log.len()));
/// ```
#[derive(Clone, Debug, Default)]
pub struct MerkleLog {
    leaves: Vec<Vec<u8>>,
    leaf_hashes: Vec<Hash>,
}

/// Proof that a record is included in a log snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InclusionProof {
    /// Sibling hashes from the leaf to the root.
    pub path: Vec<Hash>,
}

/// Proof that one log snapshot is a prefix of a later snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsistencyProof {
    /// Intermediate node hashes per RFC 6962 section 2.1.2.
    pub path: Vec<Hash>,
}

fn leaf_hash(data: &[u8]) -> Hash {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(data);
    h.finalize()
}

fn node_hash(left: &Hash, right: &Hash) -> Hash {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left);
    h.update(right);
    h.finalize()
}

/// Computes the Merkle tree hash of a slice of leaf hashes (RFC 6962 MTH).
fn subtree_root(hashes: &[Hash]) -> Hash {
    match hashes.len() {
        0 => Sha256::new().finalize(),
        1 => hashes[0],
        n => {
            let split = largest_power_of_two_below(n);
            let left = subtree_root(&hashes[..split]);
            let right = subtree_root(&hashes[split..]);
            node_hash(&left, &right)
        }
    }
}

/// Largest power of two strictly less than `n` (n >= 2).
fn largest_power_of_two_below(n: usize) -> usize {
    debug_assert!(n >= 2);
    let mut k = 1usize;
    while k * 2 < n {
        k *= 2;
    }
    k
}

impl MerkleLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records in the log.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Returns true when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Appends a record and returns its index.
    pub fn append(&mut self, record: Vec<u8>) -> usize {
        self.leaf_hashes.push(leaf_hash(&record));
        self.leaves.push(record);
        self.leaves.len() - 1
    }

    /// Returns the record at `index`, if present.
    pub fn get(&self, index: usize) -> Option<&[u8]> {
        self.leaves.get(index).map(|v| v.as_slice())
    }

    /// The current root hash (the "snapshot" clients and auditors compare).
    pub fn root(&self) -> Hash {
        subtree_root(&self.leaf_hashes)
    }

    /// The root hash of the first `size` records.
    ///
    /// Returns `None` if `size` exceeds the log length.
    pub fn root_at(&self, size: usize) -> Option<Hash> {
        if size > self.leaf_hashes.len() {
            return None;
        }
        Some(subtree_root(&self.leaf_hashes[..size]))
    }

    /// Builds an inclusion proof for record `index` in the current snapshot.
    pub fn inclusion_proof(&self, index: usize) -> Option<InclusionProof> {
        self.inclusion_proof_at(index, self.len())
    }

    /// Builds an inclusion proof for record `index` against the snapshot of
    /// the first `size` records.
    pub fn inclusion_proof_at(&self, index: usize, size: usize) -> Option<InclusionProof> {
        if index >= size || size > self.len() {
            return None;
        }
        let mut path = Vec::new();
        collect_inclusion_path(&self.leaf_hashes[..size], index, &mut path);
        Some(InclusionProof { path })
    }

    /// Builds a consistency proof between the snapshot of size `old_size` and
    /// the current snapshot.
    pub fn consistency_proof(&self, old_size: usize) -> Option<ConsistencyProof> {
        if old_size == 0 || old_size > self.len() {
            return None;
        }
        let mut path = Vec::new();
        collect_consistency_path(&self.leaf_hashes, old_size, true, &mut path);
        Some(ConsistencyProof { path })
    }
}

fn collect_inclusion_path(hashes: &[Hash], index: usize, out: &mut Vec<Hash>) {
    let n = hashes.len();
    if n <= 1 {
        return;
    }
    let split = largest_power_of_two_below(n);
    if index < split {
        collect_inclusion_path(&hashes[..split], index, out);
        out.push(subtree_root(&hashes[split..]));
    } else {
        collect_inclusion_path(&hashes[split..], index - split, out);
        out.push(subtree_root(&hashes[..split]));
    }
}

fn collect_consistency_path(hashes: &[Hash], old_size: usize, complete: bool, out: &mut Vec<Hash>) {
    // RFC 6962 SUBPROOF.
    let n = hashes.len();
    if old_size == n {
        if !complete {
            out.push(subtree_root(hashes));
        }
        return;
    }
    let split = largest_power_of_two_below(n);
    if old_size <= split {
        collect_consistency_path(&hashes[..split], old_size, complete, out);
        out.push(subtree_root(&hashes[split..]));
    } else {
        collect_consistency_path(&hashes[split..], old_size - split, false, out);
        out.push(subtree_root(&hashes[..split]));
    }
}

impl InclusionProof {
    /// Verifies that `record` is the `index`-th of `tree_size` records in a
    /// log whose root is `root` (RFC 9162 section 2.1.3.2).
    pub fn verify(&self, root: &Hash, record: &[u8], index: usize, tree_size: usize) -> bool {
        if index >= tree_size {
            return false;
        }
        let mut fn_ = index;
        let mut sn = tree_size - 1;
        let mut r = leaf_hash(record);
        for p in &self.path {
            if sn == 0 {
                return false;
            }
            if fn_ & 1 == 1 || fn_ == sn {
                r = node_hash(p, &r);
                if fn_ & 1 == 0 {
                    // fn == sn with fn even: skip the levels where this node
                    // has no right sibling.
                    while fn_ != 0 && fn_ & 1 == 0 {
                        fn_ >>= 1;
                        sn >>= 1;
                    }
                }
            } else {
                r = node_hash(&r, p);
            }
            fn_ >>= 1;
            sn >>= 1;
        }
        sn == 0 && &r == root
    }
}

impl ConsistencyProof {
    /// Verifies that the log with root `old_root` and `old_size` records is a
    /// prefix of the log with root `new_root` and `new_size` records
    /// (RFC 9162 section 2.1.4.2).
    pub fn verify(
        &self,
        old_root: &Hash,
        old_size: usize,
        new_root: &Hash,
        new_size: usize,
    ) -> bool {
        if old_size == 0 || old_size > new_size {
            return false;
        }
        if old_size == new_size {
            return self.path.is_empty() && old_root == new_root;
        }
        // If old_size is an exact power of two the proof omits the old root;
        // prepend it.
        let mut path: Vec<Hash> = Vec::with_capacity(self.path.len() + 1);
        if old_size.is_power_of_two() {
            path.push(*old_root);
        }
        path.extend_from_slice(&self.path);
        if path.is_empty() {
            return false;
        }

        let mut fn_ = old_size - 1;
        let mut sn = new_size - 1;
        while fn_ & 1 == 1 {
            fn_ >>= 1;
            sn >>= 1;
        }
        let mut iter = path.into_iter();
        // papaya-lint: allow(panic-hygiene) -- the empty-path case returned early above; a missing head here is an internal invariant breach
        let first = iter.next().expect("path is non-empty");
        let mut fr = first;
        let mut sr = first;
        for c in iter {
            if sn == 0 {
                return false;
            }
            if fn_ & 1 == 1 || fn_ == sn {
                fr = node_hash(&c, &fr);
                sr = node_hash(&c, &sr);
                if fn_ & 1 == 0 {
                    while fn_ != 0 && fn_ & 1 == 0 {
                        fn_ >>= 1;
                        sn >>= 1;
                    }
                }
            } else {
                sr = node_hash(&sr, &c);
            }
            fn_ >>= 1;
            sn >>= 1;
        }
        sn == 0 && &fr == old_root && &sr == new_root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: usize) -> Vec<u8> {
        format!("trusted-binary-v{i}").into_bytes()
    }

    fn build(n: usize) -> MerkleLog {
        let mut log = MerkleLog::new();
        for i in 0..n {
            log.append(record(i));
        }
        log
    }

    #[test]
    fn empty_log_root_is_hash_of_empty() {
        let log = MerkleLog::new();
        assert_eq!(log.root(), crate::sha256::sha256(b""));
    }

    #[test]
    fn root_changes_on_append() {
        let mut log = MerkleLog::new();
        log.append(record(0));
        let r1 = log.root();
        log.append(record(1));
        assert_ne!(r1, log.root());
    }

    #[test]
    fn inclusion_proofs_verify_for_all_sizes() {
        for n in 1..=20usize {
            let log = build(n);
            let root = log.root();
            for i in 0..n {
                let proof = log.inclusion_proof(i).unwrap();
                assert!(
                    proof.verify(&root, &record(i), i, n),
                    "inclusion proof failed for leaf {i} of {n}"
                );
            }
        }
    }

    #[test]
    fn inclusion_proof_rejects_wrong_record() {
        let log = build(8);
        let root = log.root();
        let proof = log.inclusion_proof(3).unwrap();
        assert!(!proof.verify(&root, b"not the record", 3, 8));
    }

    #[test]
    fn inclusion_proof_rejects_wrong_index() {
        let log = build(8);
        let root = log.root();
        let proof = log.inclusion_proof(3).unwrap();
        assert!(!proof.verify(&root, &record(3), 4, 8));
    }

    #[test]
    fn inclusion_proof_rejects_wrong_root() {
        let log = build(9);
        let proof = log.inclusion_proof(2).unwrap();
        let wrong_root = [0u8; 32];
        assert!(!proof.verify(&wrong_root, &record(2), 2, 9));
    }

    #[test]
    fn inclusion_proof_out_of_range_is_none() {
        let log = build(4);
        assert!(log.inclusion_proof(4).is_none());
        assert!(log.inclusion_proof_at(1, 10).is_none());
    }

    #[test]
    fn consistency_proofs_verify_for_all_prefix_pairs() {
        let max = 16usize;
        let log = build(max);
        for old in 1..=max {
            for new in old..=max {
                let sub = build(new);
                let proof = sub.consistency_proof(old).unwrap();
                let old_root = log.root_at(old).unwrap();
                let new_root = log.root_at(new).unwrap();
                assert!(
                    proof.verify(&old_root, old, &new_root, new),
                    "consistency proof failed for {old} -> {new}"
                );
            }
        }
    }

    #[test]
    fn consistency_proof_detects_rewritten_history() {
        let log = build(8);
        let old_root = log.root_at(4).unwrap();
        // A tampered log rewrites record 2 after the snapshot was published.
        let mut tampered = MerkleLog::new();
        for i in 0..8 {
            if i == 2 {
                tampered.append(b"malicious binary".to_vec());
            } else {
                tampered.append(record(i));
            }
        }
        let proof = tampered.consistency_proof(4).unwrap();
        assert!(!proof.verify(&old_root, 4, &tampered.root(), 8));
    }

    #[test]
    fn get_returns_appended_records() {
        let log = build(3);
        assert_eq!(log.get(0), Some(record(0).as_slice()));
        assert_eq!(log.get(2), Some(record(2).as_slice()));
        assert_eq!(log.get(3), None);
    }
}
