//! Fixed-width big unsigned integers with Montgomery modular arithmetic.
//!
//! The Diffie–Hellman exchange between clients and the Trusted Secure
//! Aggregator (Appendix A.1 of the PAPAYA paper) needs modular exponentiation
//! over a large prime group.  This module provides a small, from-scratch,
//! constant-width big-integer type [`Uint`] and a [`Montgomery`] context that
//! performs efficient `a^e mod n` for odd moduli.
//!
//! Widths are expressed in 64-bit limbs via const generics; [`U2048`]
//! (32 limbs) is the width used by the RFC 3526 group 14 modulus, and
//! [`U256`] (4 limbs) is used by the fast test group.

use std::cmp::Ordering;
use std::fmt;

/// Fixed-width little-endian (limb order) unsigned integer with `N` 64-bit limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Uint<const N: usize> {
    /// Limbs in little-endian order: `limbs[0]` is the least significant.
    limbs: [u64; N],
}

/// 2048-bit unsigned integer (32 limbs).
pub type U2048 = Uint<32>;
/// 256-bit unsigned integer (4 limbs).
pub type U256 = Uint<4>;

impl<const N: usize> fmt::Debug for Uint<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        let mut started = false;
        for limb in self.limbs.iter().rev() {
            if started {
                write!(f, "{limb:016x}")?;
            } else if *limb != 0 {
                write!(f, "{limb:x}")?;
                started = true;
            }
        }
        if !started {
            write!(f, "0")?;
        }
        Ok(())
    }
}

impl<const N: usize> fmt::Display for Uint<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<const N: usize> Default for Uint<N> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const N: usize> Uint<N> {
    /// The value 0.
    pub const ZERO: Self = Uint { limbs: [0u64; N] };

    /// The value 1.
    pub fn one() -> Self {
        let mut limbs = [0u64; N];
        limbs[0] = 1;
        Uint { limbs }
    }

    /// Constructs from little-endian limbs.
    pub fn from_limbs(limbs: [u64; N]) -> Self {
        Uint { limbs }
    }

    /// Returns the little-endian limbs.
    pub fn limbs(&self) -> &[u64; N] {
        &self.limbs
    }

    /// Constructs from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut limbs = [0u64; N];
        limbs[0] = v;
        Uint { limbs }
    }

    /// Parses a big-endian byte slice.  Bytes beyond the width are an error.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() > N * 8`.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        assert!(
            bytes.len() <= N * 8,
            "byte slice of length {} does not fit in {} limbs",
            bytes.len(),
            N
        );
        let mut limbs = [0u64; N];
        for (i, b) in bytes.iter().rev().enumerate() {
            limbs[i / 8] |= (*b as u64) << ((i % 8) * 8);
        }
        Uint { limbs }
    }

    /// Serializes to big-endian bytes (`N * 8` bytes, zero padded).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; N * 8];
        for (i, limb) in self.limbs.iter().enumerate() {
            let bytes = limb.to_be_bytes();
            let start = N * 8 - (i + 1) * 8;
            out[start..start + 8].copy_from_slice(&bytes);
        }
        out
    }

    /// Parses a hexadecimal string (no `0x` prefix, whitespace ignored).
    ///
    /// # Panics
    ///
    /// Panics on non-hex characters or if the value does not fit.
    pub fn from_hex(s: &str) -> Self {
        let cleaned: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        assert!(cleaned.len() <= N * 16, "hex string too long for width");
        let mut bytes = Vec::with_capacity(cleaned.len().div_ceil(2));
        let padded = if cleaned.len() % 2 == 1 {
            format!("0{cleaned}")
        } else {
            cleaned
        };
        for i in (0..padded.len()).step_by(2) {
            bytes.push(u8::from_str_radix(&padded[i..i + 2], 16).expect("invalid hex digit"));
        }
        Self::from_be_bytes(&bytes)
    }

    /// Returns true if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Returns true if the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs[0] & 1 == 1
    }

    /// Returns the index of the highest set bit, or `None` for zero.
    pub fn highest_bit(&self) -> Option<usize> {
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if *limb != 0 {
                return Some(i * 64 + 63 - limb.leading_zeros() as usize);
            }
        }
        None
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        if i >= N * 64 {
            return false;
        }
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Compares two values.
    pub fn cmp_value(&self, other: &Self) -> Ordering {
        for i in (0..N).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Adds, returning the result and the carry-out.
    // Index style keeps the carry chain legible across the three arrays.
    #[allow(clippy::needless_range_loop)]
    pub fn overflowing_add(&self, other: &Self) -> (Self, bool) {
        let mut out = [0u64; N];
        let mut carry = 0u64;
        for i in 0..N {
            let (s1, c1) = self.limbs[i].overflowing_add(other.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        (Uint { limbs: out }, carry != 0)
    }

    /// Subtracts, returning the result and the borrow-out.
    // Index style keeps the borrow chain legible across the three arrays.
    #[allow(clippy::needless_range_loop)]
    pub fn overflowing_sub(&self, other: &Self) -> (Self, bool) {
        let mut out = [0u64; N];
        let mut borrow = 0u64;
        for i in 0..N {
            let (d1, b1) = self.limbs[i].overflowing_sub(other.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        (Uint { limbs: out }, borrow != 0)
    }

    /// Modular addition `(self + other) mod modulus`, assuming both operands
    /// are already reduced.
    pub fn add_mod(&self, other: &Self, modulus: &Self) -> Self {
        let (sum, carry) = self.overflowing_add(other);
        if carry || sum.cmp_value(modulus) != Ordering::Less {
            sum.overflowing_sub(modulus).0
        } else {
            sum
        }
    }

    /// Modular doubling.
    pub fn double_mod(&self, modulus: &Self) -> Self {
        self.add_mod(self, modulus)
    }

    /// Reduces `self` modulo `modulus` (general, bit-by-bit; used only at
    /// setup time, not in hot loops).
    pub fn reduce(&self, modulus: &Self) -> Self {
        assert!(!modulus.is_zero(), "modulus must be non-zero");
        if self.cmp_value(modulus) == Ordering::Less {
            return *self;
        }
        let mut result = Self::ZERO;
        let highest = match self.highest_bit() {
            Some(h) => h,
            None => return Self::ZERO,
        };
        for i in (0..=highest).rev() {
            result = result.double_mod(modulus);
            if self.bit(i) {
                result = result.add_mod(&Self::one(), modulus);
            }
        }
        result
    }
}

impl<const N: usize> PartialOrd for Uint<N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const N: usize> Ord for Uint<N> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_value(other)
    }
}

/// Montgomery-form modular arithmetic context for an odd modulus.
///
/// Supports modular multiplication and exponentiation in `O(N^2)` limb
/// operations per multiplication using the CIOS method.
#[derive(Clone, Debug)]
pub struct Montgomery<const N: usize> {
    modulus: Uint<N>,
    /// `-modulus^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R^2 mod modulus` where `R = 2^(64 N)`.
    r2: Uint<N>,
    /// `R mod modulus` (the Montgomery form of 1).
    r1: Uint<N>,
}

impl<const N: usize> Montgomery<N> {
    /// Creates a context for the given odd modulus.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is even or zero.
    pub fn new(modulus: Uint<N>) -> Self {
        assert!(
            modulus.is_odd(),
            "Montgomery arithmetic requires an odd modulus"
        );
        let n0_inv = inv_mod_2_64(modulus.limbs[0]).wrapping_neg();

        // r1 = 2^(64N) mod modulus, computed by repeated modular doubling of 1.
        let mut r1 = Uint::<N>::one().reduce(&modulus);
        for _ in 0..(64 * N) {
            r1 = r1.double_mod(&modulus);
        }
        // r2 = 2^(128N) mod modulus = r1 doubled 64N more times.
        let mut r2 = r1;
        for _ in 0..(64 * N) {
            r2 = r2.double_mod(&modulus);
        }
        Montgomery {
            modulus,
            n0_inv,
            r2,
            r1,
        }
    }

    /// Returns the modulus.
    pub fn modulus(&self) -> &Uint<N> {
        &self.modulus
    }

    /// Converts into Montgomery form.
    pub fn to_mont(&self, a: &Uint<N>) -> Uint<N> {
        self.mont_mul(a, &self.r2)
    }

    /// Converts out of Montgomery form.
    pub fn from_mont(&self, a: &Uint<N>) -> Uint<N> {
        self.mont_mul(a, &Uint::one())
    }

    /// Montgomery multiplication: returns `a * b * R^{-1} mod modulus`.
    // Index style keeps the CIOS carry chains legible across `t`, `a`, `b`.
    #[allow(clippy::needless_range_loop)]
    pub fn mont_mul(&self, a: &Uint<N>, b: &Uint<N>) -> Uint<N> {
        // CIOS (coarsely integrated operand scanning).
        let n = &self.modulus.limbs;
        let mut t = vec![0u64; N + 2];
        for i in 0..N {
            // t += a[i] * b
            let mut carry = 0u128;
            for j in 0..N {
                let sum = t[j] as u128 + (a.limbs[i] as u128) * (b.limbs[j] as u128) + carry;
                t[j] = sum as u64;
                carry = sum >> 64;
            }
            let sum = t[N] as u128 + carry;
            t[N] = sum as u64;
            t[N + 1] = (sum >> 64) as u64;

            // m = t[0] * n0_inv mod 2^64
            let m = t[0].wrapping_mul(self.n0_inv);
            // t += m * n; then shift right one limb.
            let sum = t[0] as u128 + (m as u128) * (n[0] as u128);
            let mut carry = sum >> 64;
            for j in 1..N {
                let sum = t[j] as u128 + (m as u128) * (n[j] as u128) + carry;
                t[j - 1] = sum as u64;
                carry = sum >> 64;
            }
            let sum = t[N] as u128 + carry;
            t[N - 1] = sum as u64;
            t[N] = t[N + 1] + ((sum >> 64) as u64);
            t[N + 1] = 0;
        }
        let mut out = [0u64; N];
        out.copy_from_slice(&t[..N]);
        let result = Uint { limbs: out };
        if t[N] != 0 || result.cmp_value(&self.modulus) != Ordering::Less {
            result.overflowing_sub(&self.modulus).0
        } else {
            result
        }
    }

    /// Modular multiplication `a * b mod modulus` for ordinary (non-Montgomery)
    /// operands.
    pub fn mul_mod(&self, a: &Uint<N>, b: &Uint<N>) -> Uint<N> {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// Modular exponentiation `base^exponent mod modulus` using left-to-right
    /// square-and-multiply over Montgomery form.
    pub fn pow_mod<const E: usize>(&self, base: &Uint<N>, exponent: &Uint<E>) -> Uint<N> {
        let base_m = self.to_mont(&base.reduce(&self.modulus));
        let mut acc = self.r1; // Montgomery form of 1.
        let highest = match exponent.highest_bit() {
            Some(h) => h,
            None => return Uint::one().reduce(&self.modulus),
        };
        for i in (0..=highest).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exponent.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
            }
        }
        self.from_mont(&acc)
    }
}

/// Computes the inverse of `a` modulo `2^64` for odd `a` (Newton iteration).
fn inv_mod_2_64(a: u64) -> u64 {
    debug_assert!(a & 1 == 1);
    let mut x = a; // correct to 3 bits
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
    }
    debug_assert_eq!(a.wrapping_mul(x), 1);
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bytes() {
        let v = U256::from_hex("deadbeef00112233445566778899aabbccddeeff0102030405060708090a0b0c");
        let bytes = v.to_be_bytes();
        assert_eq!(U256::from_be_bytes(&bytes), v);
    }

    #[test]
    fn add_sub_inverse() {
        let a = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff00");
        let b = U256::from_u64(0x12);
        let (sum, carry) = a.overflowing_add(&b);
        assert!(!carry);
        let (diff, borrow) = sum.overflowing_sub(&b);
        assert!(!borrow);
        assert_eq!(diff, a);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = U256::from_hex("ffffffffffffffff");
        let b = U256::from_u64(1);
        let (sum, carry) = a.overflowing_add(&b);
        assert!(!carry);
        assert_eq!(sum, U256::from_hex("10000000000000000"));
    }

    #[test]
    fn overflow_detected() {
        let max = U256::from_limbs([u64::MAX; 4]);
        let (_, carry) = max.overflowing_add(&U256::one());
        assert!(carry);
        let (_, borrow) = U256::ZERO.overflowing_sub(&U256::one());
        assert!(borrow);
    }

    #[test]
    fn reduce_small_modulus() {
        // 1000 mod 7 = 6
        let a = U256::from_u64(1000);
        let m = U256::from_u64(7);
        assert_eq!(a.reduce(&m), U256::from_u64(6));
    }

    #[test]
    fn inv_mod_2_64_works() {
        for a in [1u64, 3, 5, 0xffff_ffff_ffff_fff1, 0x1234_5679] {
            let inv = inv_mod_2_64(a);
            assert_eq!(a.wrapping_mul(inv), 1, "a = {a}");
        }
    }

    #[test]
    fn montgomery_small_prime() {
        // p = 101 (prime). Check multiplication table entries.
        let p = U256::from_u64(101);
        let ctx = Montgomery::new(p);
        for a in [0u64, 1, 2, 50, 100] {
            for b in [0u64, 1, 3, 99, 100] {
                let res = ctx.mul_mod(&U256::from_u64(a), &U256::from_u64(b));
                assert_eq!(res, U256::from_u64((a * b) % 101), "{a} * {b} mod 101");
            }
        }
    }

    #[test]
    fn montgomery_pow_matches_naive() {
        let p = U256::from_u64(1_000_000_007);
        let ctx = Montgomery::new(p);
        let base = U256::from_u64(123_456_789);
        let result = ctx.pow_mod(&base, &U256::from_u64(65_537));
        // Naive computation with u128 arithmetic.
        let mut acc: u128 = 1;
        let b: u128 = 123_456_789;
        let m: u128 = 1_000_000_007;
        let mut e = 65_537u32;
        let mut cur = b % m;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * cur % m;
            }
            cur = cur * cur % m;
            e >>= 1;
        }
        assert_eq!(result, U256::from_u64(acc as u64));
    }

    #[test]
    fn fermat_little_theorem_256bit() {
        // secp256k1 field prime: a^(p-1) = 1 mod p for a not divisible by p.
        let p = U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
        let ctx = Montgomery::new(p);
        let p_minus_1 = p.overflowing_sub(&U256::one()).0;
        for a in [2u64, 3, 65_537, 0xdeadbeef] {
            let r = ctx.pow_mod(&U256::from_u64(a), &p_minus_1);
            assert_eq!(r, U256::one(), "a = {a}");
        }
    }

    #[test]
    fn pow_zero_exponent_is_one() {
        let p = U256::from_u64(97);
        let ctx = Montgomery::new(p);
        assert_eq!(ctx.pow_mod(&U256::from_u64(5), &U256::ZERO), U256::one());
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_rejected() {
        let _ = Montgomery::new(U256::from_u64(100));
    }
}
