//! Fixed-width big unsigned integers with Montgomery modular arithmetic.
//!
//! The Diffie–Hellman exchange between clients and the Trusted Secure
//! Aggregator (Appendix A.1 of the PAPAYA paper) needs modular exponentiation
//! over a large prime group.  This module provides a small, from-scratch,
//! constant-width big-integer type [`Uint`] and a [`Montgomery`] context that
//! performs efficient `a^e mod n` for odd moduli.
//!
//! Widths are expressed in 64-bit limbs via const generics; [`U2048`]
//! (32 limbs) is the width used by the RFC 3526 group 14 modulus, and
//! [`U256`] (4 limbs) is used by the fast test group.

use std::cmp::Ordering;
use std::fmt;

/// Fixed-width little-endian (limb order) unsigned integer with `N` 64-bit limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Uint<const N: usize> {
    /// Limbs in little-endian order: `limbs[0]` is the least significant.
    limbs: [u64; N],
}

/// 2048-bit unsigned integer (32 limbs).
pub type U2048 = Uint<32>;
/// 256-bit unsigned integer (4 limbs).
pub type U256 = Uint<4>;

impl<const N: usize> fmt::Debug for Uint<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        let mut started = false;
        for limb in self.limbs.iter().rev() {
            if started {
                write!(f, "{limb:016x}")?;
            } else if *limb != 0 {
                write!(f, "{limb:x}")?;
                started = true;
            }
        }
        if !started {
            write!(f, "0")?;
        }
        Ok(())
    }
}

impl<const N: usize> fmt::Display for Uint<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<const N: usize> Default for Uint<N> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const N: usize> Uint<N> {
    /// The value 0.
    pub const ZERO: Self = Uint { limbs: [0u64; N] };

    /// The value 1.
    pub fn one() -> Self {
        let mut limbs = [0u64; N];
        limbs[0] = 1;
        Uint { limbs }
    }

    /// Constructs from little-endian limbs.
    pub fn from_limbs(limbs: [u64; N]) -> Self {
        Uint { limbs }
    }

    /// Returns the little-endian limbs.
    pub fn limbs(&self) -> &[u64; N] {
        &self.limbs
    }

    /// Constructs from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut limbs = [0u64; N];
        limbs[0] = v;
        Uint { limbs }
    }

    /// Parses a big-endian byte slice.  Bytes beyond the width are an error.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() > N * 8`.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        assert!(
            bytes.len() <= N * 8,
            "byte slice of length {} does not fit in {} limbs",
            bytes.len(),
            N
        );
        let mut limbs = [0u64; N];
        for (i, b) in bytes.iter().rev().enumerate() {
            limbs[i / 8] |= (*b as u64) << ((i % 8) * 8);
        }
        Uint { limbs }
    }

    /// Serializes to big-endian bytes (`N * 8` bytes, zero padded).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; N * 8];
        for (i, limb) in self.limbs.iter().enumerate() {
            let bytes = limb.to_be_bytes();
            let start = N * 8 - (i + 1) * 8;
            out[start..start + 8].copy_from_slice(&bytes);
        }
        out
    }

    /// Parses a hexadecimal string (no `0x` prefix, whitespace ignored).
    ///
    /// # Panics
    ///
    /// Panics on non-hex characters or if the value does not fit.
    pub fn from_hex(s: &str) -> Self {
        let cleaned: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        assert!(cleaned.len() <= N * 16, "hex string too long for width");
        let mut bytes = Vec::with_capacity(cleaned.len().div_ceil(2));
        let padded = if cleaned.len() % 2 == 1 {
            format!("0{cleaned}")
        } else {
            cleaned
        };
        for i in (0..padded.len()).step_by(2) {
            // papaya-lint: allow(panic-hygiene) -- documented panic: from_hex is a test/constant helper whose contract rejects non-hex input
            bytes.push(u8::from_str_radix(&padded[i..i + 2], 16).expect("invalid hex digit"));
        }
        Self::from_be_bytes(&bytes)
    }

    /// Returns true if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Returns true if the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs[0] & 1 == 1
    }

    /// Returns the index of the highest set bit, or `None` for zero.
    pub fn highest_bit(&self) -> Option<usize> {
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if *limb != 0 {
                return Some(i * 64 + 63 - limb.leading_zeros() as usize);
            }
        }
        None
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        if i >= N * 64 {
            return false;
        }
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Returns 4-bit window `w` (bits `4w..4w+4`; windows never straddle a
    /// limb boundary since 64 is a multiple of 4).
    #[inline]
    pub fn window4(&self, w: usize) -> u64 {
        let bit = w * 4;
        if bit >= N * 64 {
            return 0;
        }
        (self.limbs[bit / 64] >> (bit % 64)) & 0xf
    }

    /// Compares two values.
    pub fn cmp_value(&self, other: &Self) -> Ordering {
        for i in (0..N).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Adds, returning the result and the carry-out.
    // Index style keeps the carry chain legible across the three arrays.
    #[allow(clippy::needless_range_loop)]
    pub fn overflowing_add(&self, other: &Self) -> (Self, bool) {
        let mut out = [0u64; N];
        let mut carry = 0u64;
        for i in 0..N {
            let (s1, c1) = self.limbs[i].overflowing_add(other.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        (Uint { limbs: out }, carry != 0)
    }

    /// Subtracts, returning the result and the borrow-out.
    // Index style keeps the borrow chain legible across the three arrays.
    #[allow(clippy::needless_range_loop)]
    pub fn overflowing_sub(&self, other: &Self) -> (Self, bool) {
        let mut out = [0u64; N];
        let mut borrow = 0u64;
        for i in 0..N {
            let (d1, b1) = self.limbs[i].overflowing_sub(other.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        (Uint { limbs: out }, borrow != 0)
    }

    /// Modular addition `(self + other) mod modulus`, assuming both operands
    /// are already reduced.
    pub fn add_mod(&self, other: &Self, modulus: &Self) -> Self {
        let (sum, carry) = self.overflowing_add(other);
        if carry || sum.cmp_value(modulus) != Ordering::Less {
            sum.overflowing_sub(modulus).0
        } else {
            sum
        }
    }

    /// Modular doubling.
    pub fn double_mod(&self, modulus: &Self) -> Self {
        self.add_mod(self, modulus)
    }

    /// Reduces `self` modulo `modulus` (general, bit-by-bit; used only at
    /// setup time, not in hot loops).
    pub fn reduce(&self, modulus: &Self) -> Self {
        assert!(!modulus.is_zero(), "modulus must be non-zero");
        if self.cmp_value(modulus) == Ordering::Less {
            return *self;
        }
        let mut result = Self::ZERO;
        let highest = match self.highest_bit() {
            Some(h) => h,
            None => return Self::ZERO,
        };
        for i in (0..=highest).rev() {
            result = result.double_mod(modulus);
            if self.bit(i) {
                result = result.add_mod(&Self::one(), modulus);
            }
        }
        result
    }
}

impl<const N: usize> PartialOrd for Uint<N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const N: usize> Ord for Uint<N> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_value(other)
    }
}

/// Montgomery-form modular arithmetic context for an odd modulus.
///
/// Supports modular multiplication and exponentiation in `O(w^2)` limb
/// operations per multiplication using the CIOS method, where `w ≤ N` is the
/// number of limbs the modulus actually occupies.  Arithmetic runs at the
/// modulus's *active* width, so a 256-bit group embedded in a `Uint<32>`
/// costs 4-limb multiplications, not 32-limb ones.
#[derive(Clone, Debug)]
pub struct Montgomery<const N: usize> {
    modulus: Uint<N>,
    /// Number of significant limbs of the modulus; all arithmetic and the
    /// Montgomery radix use this width.
    active: usize,
    /// `-modulus^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R^2 mod modulus` where `R = 2^(64 w)` and `w` is the active width.
    r2: Uint<N>,
    /// `R mod modulus` (the Montgomery form of 1).
    r1: Uint<N>,
}

impl<const N: usize> Montgomery<N> {
    /// Creates a context for the given odd modulus.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is even or zero.
    pub fn new(modulus: Uint<N>) -> Self {
        assert!(
            modulus.is_odd(),
            "Montgomery arithmetic requires an odd modulus"
        );
        // papaya-lint: allow(panic-hygiene) -- documented panic: Montgomery construction requires a non-zero odd modulus (asserted above)
        let active = modulus.highest_bit().expect("modulus must be non-zero") / 64 + 1;
        let n0_inv = inv_mod_2_64(modulus.limbs[0]).wrapping_neg();

        // r1 = 2^(64 w) mod modulus, computed by repeated modular doubling
        // of 1.  The radix must match the active width mont_mul runs at, or
        // every conversion in and out of Montgomery form would be off by a
        // power of two.
        let mut r1 = Uint::<N>::one().reduce(&modulus);
        for _ in 0..(64 * active) {
            r1 = r1.double_mod(&modulus);
        }
        // r2 = 2^(128 w) mod modulus = r1 doubled 64 w more times.
        let mut r2 = r1;
        for _ in 0..(64 * active) {
            r2 = r2.double_mod(&modulus);
        }
        Montgomery {
            modulus,
            active,
            n0_inv,
            r2,
            r1,
        }
    }

    /// Returns the modulus.
    pub fn modulus(&self) -> &Uint<N> {
        &self.modulus
    }

    /// Converts into Montgomery form.  Operands at or above the modulus are
    /// reduced first: active-width multiplication requires both inputs'
    /// limbs beyond the modulus width to be zero.
    pub fn to_mont(&self, a: &Uint<N>) -> Uint<N> {
        if a.cmp_value(&self.modulus) == Ordering::Less {
            self.mont_mul(a, &self.r2)
        } else {
            self.mont_mul(&a.reduce(&self.modulus), &self.r2)
        }
    }

    /// Converts out of Montgomery form.
    pub fn from_mont(&self, a: &Uint<N>) -> Uint<N> {
        self.mont_mul(a, &Uint::one())
    }

    /// Montgomery multiplication: returns `a * b * R^{-1} mod modulus`.
    ///
    /// Both operands must be reduced (below the modulus); every caller in
    /// this module guarantees it.  Runs at the modulus's active width `w`:
    /// only the low `w` limbs participate, with the two CIOS overflow limbs
    /// held in scalars, and the accumulator lives on the stack.
    // Index style keeps the CIOS carry chains legible across `t`, `a`, `b`.
    #[allow(clippy::needless_range_loop)]
    pub fn mont_mul(&self, a: &Uint<N>, b: &Uint<N>) -> Uint<N> {
        // CIOS (coarsely integrated operand scanning).
        let w = self.active;
        let n = &self.modulus.limbs;
        let mut t = [0u64; N];
        let mut t_hi = 0u64; // t[w]
        let mut t_hi2; // t[w + 1]; assigned each iteration before use
        for i in 0..w {
            // t += a[i] * b
            let mut carry = 0u128;
            for j in 0..w {
                let sum = t[j] as u128 + (a.limbs[i] as u128) * (b.limbs[j] as u128) + carry;
                t[j] = sum as u64;
                carry = sum >> 64;
            }
            let sum = t_hi as u128 + carry;
            t_hi = sum as u64;
            t_hi2 = (sum >> 64) as u64;

            // m = t[0] * n0_inv mod 2^64
            let m = t[0].wrapping_mul(self.n0_inv);
            // t += m * n; then shift right one limb.
            let sum = t[0] as u128 + (m as u128) * (n[0] as u128);
            let mut carry = sum >> 64;
            for j in 1..w {
                let sum = t[j] as u128 + (m as u128) * (n[j] as u128) + carry;
                t[j - 1] = sum as u64;
                carry = sum >> 64;
            }
            let sum = t_hi as u128 + carry;
            t[w - 1] = sum as u64;
            t_hi = t_hi2 + ((sum >> 64) as u64);
        }
        let result = Uint { limbs: t };
        if t_hi != 0 || result.cmp_value(&self.modulus) != Ordering::Less {
            result.overflowing_sub(&self.modulus).0
        } else {
            result
        }
    }

    /// Modular multiplication `a * b mod modulus` for ordinary (non-Montgomery)
    /// operands.
    pub fn mul_mod(&self, a: &Uint<N>, b: &Uint<N>) -> Uint<N> {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// Modular exponentiation `base^exponent mod modulus` using a fixed
    /// 4-bit window over Montgomery form (left-to-right): ~w/4 windowed
    /// multiplies instead of one per set bit, on top of the w squarings.
    pub fn pow_mod<const E: usize>(&self, base: &Uint<N>, exponent: &Uint<E>) -> Uint<N> {
        let highest = match exponent.highest_bit() {
            Some(h) => h,
            None => return Uint::one().reduce(&self.modulus),
        };
        // odd_powers[d - 1] = base^d in Montgomery form, d = 1..=15.
        let base_m = self.to_mont(&base.reduce(&self.modulus));
        let mut powers = [base_m; 15];
        for d in 1..15 {
            powers[d] = self.mont_mul(&powers[d - 1], &base_m);
        }
        let mut acc = self.r1; // Montgomery form of 1.
        let top_window = highest / 4;
        for w in (0..=top_window).rev() {
            if w != top_window {
                for _ in 0..4 {
                    acc = self.mont_mul(&acc, &acc);
                }
            }
            let digit = exponent.window4(w);
            if digit != 0 {
                acc = self.mont_mul(&acc, &powers[digit as usize - 1]);
            }
        }
        self.from_mont(&acc)
    }

    /// Builds a fixed-base window table for repeated exponentiations of the
    /// same `base` with exponents up to `exp_bits` bits.  Costs ~18 modular
    /// multiplications per 4-bit window to build; each subsequent
    /// [`pow_mod_fixed`](Montgomery::pow_mod_fixed) then needs at most one
    /// multiplication per window and **no squarings** — ~6x cheaper than
    /// [`pow_mod`](Montgomery::pow_mod) for 256-bit exponents.  Worth it
    /// from roughly four exponentiations on the same base.
    pub fn precompute_base(&self, base: &Uint<N>, exp_bits: usize) -> FixedBase<N> {
        let windows = exp_bits.div_ceil(4);
        let mut table = Vec::with_capacity(windows * 15);
        // window_base = base^(16^i) in Montgomery form.
        let mut window_base = self.to_mont(&base.reduce(&self.modulus));
        for i in 0..windows {
            if i > 0 {
                for _ in 0..4 {
                    window_base = self.mont_mul(&window_base, &window_base);
                }
            }
            // table[i * 15 + (d - 1)] = base^(d * 16^i), d = 1..=15.
            let mut acc = window_base;
            table.push(acc);
            for _ in 1..15 {
                acc = self.mont_mul(&acc, &window_base);
                table.push(acc);
            }
        }
        FixedBase { table, windows }
    }

    /// Fixed-base exponentiation against a table from
    /// [`precompute_base`](Montgomery::precompute_base).  Bit-identical to
    /// [`pow_mod`](Montgomery::pow_mod) on the same base.
    ///
    /// # Panics
    ///
    /// Panics if the exponent has set bits beyond the table's `exp_bits`.
    pub fn pow_mod_fixed<const E: usize>(
        &self,
        base: &FixedBase<N>,
        exponent: &Uint<E>,
    ) -> Uint<N> {
        assert!(
            exponent.highest_bit().map_or(0, |h| h / 4 + 1) <= base.windows,
            "exponent exceeds the precomputed window count"
        );
        let mut acc = self.r1; // Montgomery form of 1.
        for w in 0..base.windows {
            let digit = exponent.window4(w);
            if digit != 0 {
                acc = self.mont_mul(&acc, &base.table[w * 15 + digit as usize - 1]);
            }
        }
        self.from_mont(&acc)
    }
}

/// A precomputed 4-bit fixed-base window table: Montgomery-form powers
/// `base^(d * 16^i)` for every window `i` and nonzero digit `d`, built by
/// [`Montgomery::precompute_base`].  Exponentiation against it
/// ([`Montgomery::pow_mod_fixed`]) needs no squarings at all, which is what
/// makes per-epoch bases (a group generator, a TSA epoch key) cheap to
/// exponentiate thousands of times.
#[derive(Clone, Debug)]
pub struct FixedBase<const N: usize> {
    /// `table[i * 15 + (d - 1)] = base^(d * 16^i)` in Montgomery form.
    table: Vec<Uint<N>>,
    /// Number of 4-bit exponent windows covered.
    windows: usize,
}

/// Computes the inverse of `a` modulo `2^64` for odd `a` (Newton iteration).
fn inv_mod_2_64(a: u64) -> u64 {
    debug_assert!(a & 1 == 1);
    let mut x = a; // correct to 3 bits
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
    }
    debug_assert_eq!(a.wrapping_mul(x), 1);
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bytes() {
        let v = U256::from_hex("deadbeef00112233445566778899aabbccddeeff0102030405060708090a0b0c");
        let bytes = v.to_be_bytes();
        assert_eq!(U256::from_be_bytes(&bytes), v);
    }

    #[test]
    fn add_sub_inverse() {
        let a = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff00");
        let b = U256::from_u64(0x12);
        let (sum, carry) = a.overflowing_add(&b);
        assert!(!carry);
        let (diff, borrow) = sum.overflowing_sub(&b);
        assert!(!borrow);
        assert_eq!(diff, a);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = U256::from_hex("ffffffffffffffff");
        let b = U256::from_u64(1);
        let (sum, carry) = a.overflowing_add(&b);
        assert!(!carry);
        assert_eq!(sum, U256::from_hex("10000000000000000"));
    }

    #[test]
    fn overflow_detected() {
        let max = U256::from_limbs([u64::MAX; 4]);
        let (_, carry) = max.overflowing_add(&U256::one());
        assert!(carry);
        let (_, borrow) = U256::ZERO.overflowing_sub(&U256::one());
        assert!(borrow);
    }

    #[test]
    fn reduce_small_modulus() {
        // 1000 mod 7 = 6
        let a = U256::from_u64(1000);
        let m = U256::from_u64(7);
        assert_eq!(a.reduce(&m), U256::from_u64(6));
    }

    #[test]
    fn inv_mod_2_64_works() {
        for a in [1u64, 3, 5, 0xffff_ffff_ffff_fff1, 0x1234_5679] {
            let inv = inv_mod_2_64(a);
            assert_eq!(a.wrapping_mul(inv), 1, "a = {a}");
        }
    }

    #[test]
    fn montgomery_small_prime() {
        // p = 101 (prime). Check multiplication table entries.
        let p = U256::from_u64(101);
        let ctx = Montgomery::new(p);
        for a in [0u64, 1, 2, 50, 100] {
            for b in [0u64, 1, 3, 99, 100] {
                let res = ctx.mul_mod(&U256::from_u64(a), &U256::from_u64(b));
                assert_eq!(res, U256::from_u64((a * b) % 101), "{a} * {b} mod 101");
            }
        }
    }

    #[test]
    fn montgomery_pow_matches_naive() {
        let p = U256::from_u64(1_000_000_007);
        let ctx = Montgomery::new(p);
        let base = U256::from_u64(123_456_789);
        let result = ctx.pow_mod(&base, &U256::from_u64(65_537));
        // Naive computation with u128 arithmetic.
        let mut acc: u128 = 1;
        let b: u128 = 123_456_789;
        let m: u128 = 1_000_000_007;
        let mut e = 65_537u32;
        let mut cur = b % m;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * cur % m;
            }
            cur = cur * cur % m;
            e >>= 1;
        }
        assert_eq!(result, U256::from_u64(acc as u64));
    }

    #[test]
    fn fermat_little_theorem_256bit() {
        // secp256k1 field prime: a^(p-1) = 1 mod p for a not divisible by p.
        let p = U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
        let ctx = Montgomery::new(p);
        let p_minus_1 = p.overflowing_sub(&U256::one()).0;
        for a in [2u64, 3, 65_537, 0xdeadbeef] {
            let r = ctx.pow_mod(&U256::from_u64(a), &p_minus_1);
            assert_eq!(r, U256::one(), "a = {a}");
        }
    }

    #[test]
    fn pow_zero_exponent_is_one() {
        let p = U256::from_u64(97);
        let ctx = Montgomery::new(p);
        assert_eq!(ctx.pow_mod(&U256::from_u64(5), &U256::ZERO), U256::one());
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_rejected() {
        let _ = Montgomery::new(U256::from_u64(100));
    }

    #[test]
    fn narrow_modulus_in_wide_type_matches_narrow_type() {
        // The DH module embeds the 256-bit test group in a Uint<32>; the
        // active-width fast path must agree with a natively 4-limb context.
        let hex = "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f";
        let wide = Montgomery::new(U2048::from_hex(hex));
        let narrow = Montgomery::new(U256::from_hex(hex));
        for (a, e) in [(2u64, 65_537u64), (0xdeadbeef, 12_345), (3, u64::MAX)] {
            let rw = wide.pow_mod(&U2048::from_u64(a), &U2048::from_u64(e));
            let rn = narrow.pow_mod(&U256::from_u64(a), &U256::from_u64(e));
            assert_eq!(rw.to_be_bytes()[32 * 8 - 32..], rn.to_be_bytes()[..]);
        }
    }

    #[test]
    fn fixed_base_matches_pow_mod() {
        // The no-squaring fixed-base path must agree bit-for-bit with plain
        // square-and-multiply across exponent shapes (sparse, dense, tiny,
        // full-width) — the session handshake depends on the two paths being
        // interchangeable.
        let p = U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
        let ctx = Montgomery::new(p);
        let base = U256::from_u64(5);
        let table = ctx.precompute_base(&base, 256);
        let exponents = [
            U256::ZERO,
            U256::one(),
            U256::from_u64(2),
            U256::from_u64(0xdead_beef),
            U256::from_u64(1 << 63),
            U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"),
            U256::from_hex("8000000000000000000000000000000000000000000000000000000000000001"),
            U256::from_hex("123456789abcdef0fedcba9876543210aa55aa55aa55aa550123456789abcdef"),
        ];
        for e in exponents {
            assert_eq!(
                ctx.pow_mod_fixed(&table, &e),
                ctx.pow_mod(&base, &e),
                "e = {e}"
            );
        }
    }

    #[test]
    fn fixed_base_works_at_full_width() {
        let p = U2048::from_u64(1_000_000_007);
        let ctx = Montgomery::new(p);
        let base = U2048::from_u64(123_456_789);
        let table = ctx.precompute_base(&base, 64);
        let e = U2048::from_u64(65_537);
        assert_eq!(ctx.pow_mod_fixed(&table, &e), ctx.pow_mod(&base, &e));
    }

    #[test]
    #[should_panic(expected = "exceeds the precomputed window count")]
    fn fixed_base_rejects_oversized_exponents() {
        let p = U256::from_u64(97);
        let ctx = Montgomery::new(p);
        let table = ctx.precompute_base(&U256::from_u64(5), 8);
        let _ = ctx.pow_mod_fixed(&table, &U256::from_u64(1 << 9));
    }

    #[test]
    fn window4_extracts_nibbles() {
        let v = U256::from_hex("a1b2c3d4");
        assert_eq!(v.window4(0), 0x4);
        assert_eq!(v.window4(1), 0xd);
        assert_eq!(v.window4(6), 0x1);
        assert_eq!(v.window4(7), 0xa);
        assert_eq!(v.window4(8), 0);
        assert_eq!(v.window4(10_000), 0);
    }

    #[test]
    fn to_mont_reduces_oversized_operands() {
        // mul_mod feeds raw (possibly unreduced) operands through to_mont;
        // values at or above the modulus must be reduced before the
        // active-width multiply sees them.
        let p = U2048::from_u64(1_000_000_007);
        let ctx = Montgomery::new(p);
        let big = U2048::from_hex("ffffffffffffffffffffffffffffffff"); // 128 bits
        let expected = big.reduce(&p);
        let r = ctx.mul_mod(&big, &U2048::from_u64(1));
        assert_eq!(r, expected);
        let reduced: u128 = big
            .to_be_bytes()
            .iter()
            .fold(0u128, |acc, &b| (acc * 256 + b as u128) % 1_000_000_007);
        let r2 = ctx.mul_mod(&big, &big);
        assert_eq!(
            r2,
            U2048::from_u64((reduced * reduced % 1_000_000_007) as u64)
        );
    }

    #[test]
    fn fermat_little_theorem_2048bit_group() {
        // RFC 3526 group 14 modulus at full 32-limb width: the w == N case
        // must be untouched by the active-width path.  A short exponent
        // keeps the test fast.
        let p = U2048::from_hex(
            "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
             020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
             4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
             EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
             98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
             9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B\
             E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718\
             3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
        );
        let ctx = Montgomery::new(p);
        // g^(2^20) via pow_mod against 20 iterated mul_mod squarings.
        let g = U2048::from_u64(2);
        let mut by_mul = g.reduce(&p);
        for _ in 0..20 {
            by_mul = ctx.mul_mod(&by_mul, &by_mul);
        }
        // Exponent 2^20: bit 20 set.
        let e = U2048::from_u64(1 << 20);
        assert_eq!(ctx.pow_mod(&g, &e), by_mul);
    }
}
