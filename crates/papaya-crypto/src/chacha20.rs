//! ChaCha20 stream cipher and deterministic CSPRNG (RFC 8439).
//!
//! PAPAYA's asynchronous secure aggregation expands a small per-client random
//! seed into an additive one-time pad "as large as the model" (Section 5,
//! Appendix A.2).  The expansion must be a cryptographically secure PRNG and
//! must be *identically reproducible* on the client (to mask) and inside the
//! TSA (to regenerate the aggregated unmask).  [`ChaCha20Rng`] provides that
//! deterministic keystream; [`ChaCha20`] provides the raw cipher used by the
//! seed-encryption AEAD.

/// The ChaCha20 block function / stream cipher.
#[derive(Clone, Debug)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
    counter: u32,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] ^= state[a];
    state[d] = state[d].rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] ^= state[c];
    state[b] = state[b].rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] ^= state[a];
    state[d] = state[d].rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] ^= state[c];
    state[b] = state[b].rotate_left(7);
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl ChaCha20 {
    /// Creates a cipher instance with a 256-bit key and 96-bit nonce,
    /// starting at block `counter`.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut k = [0u32; 8];
        for i in 0..8 {
            k[i] = u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        let mut n = [0u32; 3];
        for i in 0..3 {
            n[i] = u32::from_le_bytes([
                nonce[4 * i],
                nonce[4 * i + 1],
                nonce[4 * i + 2],
                nonce[4 * i + 3],
            ]);
        }
        ChaCha20 {
            key: k,
            nonce: n,
            counter,
        }
    }

    /// Produces the 64-byte keystream block for the given block index.
    pub fn block(&self, block_counter: u32) -> [u8; 64] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = block_counter;
        state[13..16].copy_from_slice(&self.nonce);

        let mut working = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Encrypts or decrypts `data` in place (XOR with the keystream starting
    /// at the cipher's initial counter).
    pub fn apply_keystream(&self, data: &mut [u8]) {
        for (block_idx, chunk) in data.chunks_mut(64).enumerate() {
            let ks = self.block(self.counter.wrapping_add(block_idx as u32));
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }
}

/// Deterministic cryptographically secure random number generator backed by
/// the ChaCha20 keystream.
///
/// This is the PRNG used to expand per-client 16/32-byte seeds into
/// model-sized one-time pads.  Both the client and the TSA construct the same
/// `ChaCha20Rng` from the shared seed, so the masks cancel exactly.
///
/// # Example
///
/// ```
/// use papaya_crypto::chacha20::ChaCha20Rng;
/// let mut a = ChaCha20Rng::from_seed([1u8; 32]);
/// let mut b = ChaCha20Rng::from_seed([1u8; 32]);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct ChaCha20Rng {
    cipher: ChaCha20,
    block: [u8; 64],
    block_idx: u32,
    offset: usize,
}

impl ChaCha20Rng {
    /// Creates a generator from a 256-bit seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let cipher = ChaCha20::new(&seed, &[0u8; 12], 0);
        let block = cipher.block(0);
        ChaCha20Rng {
            cipher,
            block,
            block_idx: 0,
            offset: 0,
        }
    }

    /// Creates a generator from a 16-byte seed (the paper's seed size) by
    /// expanding it with SHA-256.
    pub fn from_seed16(seed: [u8; 16]) -> Self {
        let digest = crate::sha256::sha256(&seed);
        Self::from_seed(digest)
    }

    /// Returns the next byte of keystream.
    #[inline]
    pub fn next_byte(&mut self) -> u8 {
        if self.offset == 64 {
            self.block_idx = self.block_idx.wrapping_add(1);
            self.block = self.cipher.block(self.block_idx);
            self.offset = 0;
        }
        let b = self.block[self.offset];
        self.offset += 1;
        b
    }

    /// Returns the next 32 bits of keystream.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let mut bytes = [0u8; 4];
        for b in bytes.iter_mut() {
            *b = self.next_byte();
        }
        u32::from_le_bytes(bytes)
    }

    /// Returns the next 64 bits of keystream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Fills `dest` with keystream bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for b in dest.iter_mut() {
            *b = self.next_byte();
        }
    }

    /// Returns a uniformly random `u64` below `bound` (rejection sampling).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

impl rand::RngCore for ChaCha20Rng {
    fn next_u32(&mut self) -> u32 {
        ChaCha20Rng::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        ChaCha20Rng::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        ChaCha20Rng::fill_bytes(self, dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        ChaCha20Rng::fill_bytes(self, dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 section 2.3.2 test vector.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let cipher = ChaCha20::new(&key, &nonce, 1);
        let block = cipher.block(1);
        assert_eq!(
            hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 section 2.4.2.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        let cipher = ChaCha20::new(&key, &nonce, 1);
        cipher.apply_keystream(&mut data);
        assert_eq!(hex(&data[..16]), "6e2e359a2568f98041ba0728dd0d6981");
        // Decryption round-trips.
        cipher.apply_keystream(&mut data);
        assert_eq!(&data, plaintext);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = ChaCha20Rng::from_seed([42u8; 32]);
        let mut b = ChaCha20Rng::from_seed([42u8; 32]);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha20Rng::from_seed([1u8; 32]);
        let mut b = ChaCha20Rng::from_seed([2u8; 32]);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn seed16_expansion_deterministic() {
        let mut a = ChaCha20Rng::from_seed16([7u8; 16]);
        let mut b = ChaCha20Rng::from_seed16([7u8; 16]);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_uniform_range() {
        let mut rng = ChaCha20Rng::from_seed([3u8; 32]);
        for bound in [1u64, 2, 7, 100, 1 << 40] {
            for _ in 0..100 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn fill_bytes_spans_blocks() {
        let mut rng = ChaCha20Rng::from_seed([5u8; 32]);
        let mut big = vec![0u8; 300];
        rng.fill_bytes(&mut big);
        // Same output as drawing byte by byte.
        let mut rng2 = ChaCha20Rng::from_seed([5u8; 32]);
        let singles: Vec<u8> = (0..300).map(|_| rng2.next_byte()).collect();
        assert_eq!(big, singles);
    }

    #[test]
    fn rand_rngcore_impl_usable() {
        use rand::Rng;
        let mut rng = ChaCha20Rng::from_seed([9u8; 32]);
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
    }
}
