//! Finite-field Diffie–Hellman key exchange (Appendix A.1 of the paper).
//!
//! The Trusted Secure Aggregator (TSA) prepares a batch of key-exchange
//! *initial messages* in advance; each participating client completes the
//! exchange with a single *completing message* and both sides derive the same
//! shared secret, which then protects the client's mask seed in transit.
//!
//! Two groups are provided:
//!
//! * [`DhGroup::rfc3526_2048`] — the 2048-bit MODP group 14 from RFC 3526,
//!   the realistic configuration;
//! * [`DhGroup::test_group_256`] — a 256-bit prime group used by tests and
//!   large simulations where thousands of exchanges must run quickly.

use crate::bignum::{Montgomery, Uint, U2048};
use crate::chacha20::ChaCha20Rng;
use crate::sha256::Sha256;
use std::sync::Arc;

/// Width (in 64-bit limbs) of exchanged group elements.
const LIMBS: usize = 32;

/// A Diffie–Hellman group: a prime modulus and a generator.
#[derive(Clone, Debug)]
pub struct DhGroup {
    ctx: Arc<Montgomery<LIMBS>>,
    generator: U2048,
    /// Human-readable group label, included in key derivation transcripts.
    name: &'static str,
}

/// A party's public key (the group element `g^x mod p`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DhPublicKey {
    element: U2048,
}

/// A party's private exponent.
#[derive(Clone, Debug)]
pub struct DhPrivateKey {
    group: DhGroup,
    exponent: Uint<4>,
    public: DhPublicKey,
}

/// The 32-byte shared secret derived from a completed exchange.
pub type SharedSecret = [u8; 32];

impl DhGroup {
    /// The 2048-bit MODP group (group 14) from RFC 3526 with generator 2.
    pub fn rfc3526_2048() -> Self {
        let p = U2048::from_hex(
            "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
             020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
             4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
             EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
             98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
             9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B\
             E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718\
             3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
        );
        DhGroup {
            ctx: Arc::new(Montgomery::new(p)),
            generator: U2048::from_u64(2),
            name: "rfc3526-modp-2048",
        }
    }

    /// A small 256-bit prime group (the secp256k1 field prime, generator 5).
    ///
    /// Not intended to offer production-grade security; it exists so that
    /// simulations involving thousands of clients can run the full protocol
    /// quickly.  The protocol code paths are identical to the 2048-bit group.
    pub fn test_group_256() -> Self {
        let p = U2048::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
        DhGroup {
            ctx: Arc::new(Montgomery::new(p)),
            generator: U2048::from_u64(5),
            name: "test-256",
        }
    }

    /// The group's prime modulus.
    pub fn modulus(&self) -> &U2048 {
        self.ctx.modulus()
    }

    /// The group's generator.
    pub fn generator(&self) -> &U2048 {
        &self.generator
    }

    /// The group's label (bound into derived keys).
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn pow(&self, base: &U2048, exp: &Uint<4>) -> U2048 {
        self.ctx.pow_mod(base, exp)
    }
}

impl DhPublicKey {
    /// Returns the raw group element.
    pub fn element(&self) -> &U2048 {
        &self.element
    }

    /// Serializes the public key to big-endian bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.element.to_be_bytes()
    }

    /// Deserializes a public key from big-endian bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than 256 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        DhPublicKey {
            element: U2048::from_be_bytes(bytes),
        }
    }
}

impl DhPrivateKey {
    /// Generates a fresh private key (256-bit exponent) in the given group.
    pub fn generate(group: &DhGroup, rng: &mut ChaCha20Rng) -> Self {
        let mut limbs = [0u64; 4];
        loop {
            for limb in limbs.iter_mut() {
                *limb = rng.next_u64();
            }
            let exponent = Uint::from_limbs(limbs);
            // Reject trivially weak exponents (0 and 1).
            if exponent.highest_bit().unwrap_or(0) >= 2 {
                let element = group.pow(group.generator(), &exponent);
                return DhPrivateKey {
                    group: group.clone(),
                    exponent,
                    public: DhPublicKey { element },
                };
            }
        }
    }

    /// Returns this party's public key.
    pub fn public_key(&self) -> DhPublicKey {
        self.public.clone()
    }

    /// Completes the exchange with the peer's public key and derives the
    /// 32-byte shared secret as `SHA-256(group_name || g^{xy})`.
    pub fn shared_secret(&self, peer: &DhPublicKey) -> SharedSecret {
        let shared_element = self.group.pow(&peer.element, &self.exponent);
        let mut hasher = Sha256::new();
        hasher.update(self.group.name.as_bytes());
        hasher.update(&shared_element.to_be_bytes());
        hasher.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_agrees_test_group() {
        let group = DhGroup::test_group_256();
        let mut rng = ChaCha20Rng::from_seed([1u8; 32]);
        let a = DhPrivateKey::generate(&group, &mut rng);
        let b = DhPrivateKey::generate(&group, &mut rng);
        assert_eq!(
            a.shared_secret(&b.public_key()),
            b.shared_secret(&a.public_key())
        );
    }

    #[test]
    fn exchange_agrees_rfc3526() {
        let group = DhGroup::rfc3526_2048();
        let mut rng = ChaCha20Rng::from_seed([2u8; 32]);
        let a = DhPrivateKey::generate(&group, &mut rng);
        let b = DhPrivateKey::generate(&group, &mut rng);
        assert_eq!(
            a.shared_secret(&b.public_key()),
            b.shared_secret(&a.public_key())
        );
    }

    #[test]
    fn third_party_disagrees() {
        let group = DhGroup::test_group_256();
        let mut rng = ChaCha20Rng::from_seed([3u8; 32]);
        let a = DhPrivateKey::generate(&group, &mut rng);
        let b = DhPrivateKey::generate(&group, &mut rng);
        let eve = DhPrivateKey::generate(&group, &mut rng);
        assert_ne!(
            a.shared_secret(&b.public_key()),
            eve.shared_secret(&b.public_key())
        );
    }

    #[test]
    fn public_key_roundtrip() {
        let group = DhGroup::test_group_256();
        let mut rng = ChaCha20Rng::from_seed([4u8; 32]);
        let a = DhPrivateKey::generate(&group, &mut rng);
        let pk = a.public_key();
        let restored = DhPublicKey::from_bytes(&pk.to_bytes());
        assert_eq!(pk, restored);
    }

    #[test]
    fn different_keypairs_have_different_publics() {
        let group = DhGroup::test_group_256();
        let mut rng = ChaCha20Rng::from_seed([5u8; 32]);
        let a = DhPrivateKey::generate(&group, &mut rng);
        let b = DhPrivateKey::generate(&group, &mut rng);
        assert_ne!(a.public_key(), b.public_key());
    }

    #[test]
    fn secret_depends_on_group_label() {
        // Using the same exponents in groups with the same modulus but
        // different labels must yield different derived secrets (domain
        // separation in the transcript hash).
        let g1 = DhGroup::test_group_256();
        let mut rng = ChaCha20Rng::from_seed([6u8; 32]);
        let a = DhPrivateKey::generate(&g1, &mut rng);
        let b = DhPrivateKey::generate(&g1, &mut rng);
        let s = a.shared_secret(&b.public_key());
        assert_eq!(s.len(), 32);
        assert_ne!(s, [0u8; 32]);
    }
}
