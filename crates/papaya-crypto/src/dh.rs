//! Finite-field Diffie–Hellman key exchange (Appendix A.1 of the paper).
//!
//! The Trusted Secure Aggregator (TSA) prepares a batch of key-exchange
//! *initial messages* in advance; each participating client completes the
//! exchange with a single *completing message* and both sides derive the same
//! shared secret, which then protects the client's mask seed in transit.
//!
//! Two groups are provided:
//!
//! * [`DhGroup::rfc3526_2048`] — the 2048-bit MODP group 14 from RFC 3526,
//!   the realistic configuration;
//! * [`DhGroup::test_group_256`] — a 256-bit prime group used by tests and
//!   large simulations where thousands of exchanges must run quickly.

use crate::bignum::{FixedBase, Montgomery, Uint, U2048};
use crate::chacha20::ChaCha20Rng;
use crate::sha256::Sha256;
use std::sync::Arc;

/// Width (in 64-bit limbs) of exchanged group elements.
const LIMBS: usize = 32;

/// Private exponents are 256-bit (see [`DhPrivateKey::generate`]); fixed-base
/// tables are sized to cover them.
const EXPONENT_BITS: usize = 256;

/// A Diffie–Hellman group: a prime modulus and a generator.
///
/// Carries a fixed-base window table for the generator (shared across
/// clones), so key generation — always an exponentiation of the same base —
/// skips every squaring.
#[derive(Clone, Debug)]
pub struct DhGroup {
    ctx: Arc<Montgomery<LIMBS>>,
    generator: U2048,
    /// Fixed-base table for the generator, used by every key generation.
    gen_table: Arc<FixedBase<LIMBS>>,
    /// Human-readable group label, included in key derivation transcripts.
    name: &'static str,
}

/// A party's public key (the group element `g^x mod p`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DhPublicKey {
    element: U2048,
}

/// A party's private exponent.
#[derive(Clone, Debug)]
pub struct DhPrivateKey {
    group: DhGroup,
    exponent: Uint<4>,
    public: DhPublicKey,
}

/// The 32-byte shared secret derived from a completed exchange.
pub type SharedSecret = [u8; 32];

impl DhGroup {
    /// The 2048-bit MODP group (group 14) from RFC 3526 with generator 2.
    pub fn rfc3526_2048() -> Self {
        let p = U2048::from_hex(
            "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
             020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
             4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
             EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
             98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
             9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B\
             E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718\
             3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
        );
        Self::new(p, U2048::from_u64(2), "rfc3526-modp-2048")
    }

    /// A small 256-bit prime group (the secp256k1 field prime, generator 5).
    ///
    /// Not intended to offer production-grade security; it exists so that
    /// simulations involving thousands of clients can run the full protocol
    /// quickly.  The protocol code paths are identical to the 2048-bit group.
    pub fn test_group_256() -> Self {
        let p = U2048::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
        Self::new(p, U2048::from_u64(5), "test-256")
    }

    fn new(p: U2048, generator: U2048, name: &'static str) -> Self {
        let ctx = Arc::new(Montgomery::new(p));
        let gen_table = Arc::new(ctx.precompute_base(&generator, EXPONENT_BITS));
        DhGroup {
            ctx,
            generator,
            gen_table,
            name,
        }
    }

    /// The group's prime modulus.
    pub fn modulus(&self) -> &U2048 {
        self.ctx.modulus()
    }

    /// The group's generator.
    pub fn generator(&self) -> &U2048 {
        &self.generator
    }

    /// The group's label (bound into derived keys).
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn pow(&self, base: &U2048, exp: &Uint<4>) -> U2048 {
        self.ctx.pow_mod(base, exp)
    }

    /// Builds a fixed-base window table for `key`, for a party that will
    /// complete many exchanges against the same peer key (every client of a
    /// TSA epoch completes against the one epoch key).  Pays for itself
    /// after a handful of [`DhPrivateKey::shared_secret_precomputed`] calls.
    pub fn precompute_public(&self, key: &DhPublicKey) -> DhPrecomputedPublic {
        DhPrecomputedPublic {
            element: key.element,
            table: Arc::new(self.ctx.precompute_base(&key.element, EXPONENT_BITS)),
        }
    }
}

/// A peer public key with a fixed-base window table attached; see
/// [`DhGroup::precompute_public`].
#[derive(Clone, Debug)]
pub struct DhPrecomputedPublic {
    element: U2048,
    table: Arc<FixedBase<LIMBS>>,
}

impl DhPrecomputedPublic {
    /// The public key this table was built from.
    pub fn public_key(&self) -> DhPublicKey {
        DhPublicKey {
            element: self.element,
        }
    }
}

impl DhPublicKey {
    /// Returns the raw group element.
    pub fn element(&self) -> &U2048 {
        &self.element
    }

    /// Serializes the public key to big-endian bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.element.to_be_bytes()
    }

    /// Deserializes a public key from big-endian bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than 256 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        DhPublicKey {
            element: U2048::from_be_bytes(bytes),
        }
    }
}

impl DhPrivateKey {
    /// Generates a fresh private key (256-bit exponent) in the given group.
    pub fn generate(group: &DhGroup, rng: &mut ChaCha20Rng) -> Self {
        let mut limbs = [0u64; 4];
        loop {
            for limb in limbs.iter_mut() {
                *limb = rng.next_u64();
            }
            let exponent = Uint::from_limbs(limbs);
            // Reject trivially weak exponents (0 and 1).
            if exponent.highest_bit().unwrap_or(0) >= 2 {
                // Fixed-base exponentiation: bit-identical to pow(generator,
                // exponent), minus all the squarings.
                let element = group.ctx.pow_mod_fixed(&group.gen_table, &exponent);
                return DhPrivateKey {
                    group: group.clone(),
                    exponent,
                    public: DhPublicKey { element },
                };
            }
        }
    }

    /// Returns this party's public key.
    pub fn public_key(&self) -> DhPublicKey {
        self.public.clone()
    }

    /// Completes the exchange with the peer's public key and derives the
    /// 32-byte shared secret as `SHA-256(group_name || g^{xy})`.
    pub fn shared_secret(&self, peer: &DhPublicKey) -> SharedSecret {
        let shared_element = self.group.pow(&peer.element, &self.exponent);
        self.derive_secret(&shared_element)
    }

    /// Like [`shared_secret`](DhPrivateKey::shared_secret) but against a
    /// peer key with a precomputed fixed-base table — bit-identical output,
    /// no squarings.
    pub fn shared_secret_precomputed(&self, peer: &DhPrecomputedPublic) -> SharedSecret {
        let shared_element = self.group.ctx.pow_mod_fixed(&peer.table, &self.exponent);
        self.derive_secret(&shared_element)
    }

    fn derive_secret(&self, shared_element: &U2048) -> SharedSecret {
        let mut hasher = Sha256::new();
        hasher.update(self.group.name.as_bytes());
        hasher.update(&shared_element.to_be_bytes());
        hasher.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_agrees_test_group() {
        let group = DhGroup::test_group_256();
        let mut rng = ChaCha20Rng::from_seed([1u8; 32]);
        let a = DhPrivateKey::generate(&group, &mut rng);
        let b = DhPrivateKey::generate(&group, &mut rng);
        assert_eq!(
            a.shared_secret(&b.public_key()),
            b.shared_secret(&a.public_key())
        );
    }

    #[test]
    fn exchange_agrees_rfc3526() {
        let group = DhGroup::rfc3526_2048();
        let mut rng = ChaCha20Rng::from_seed([2u8; 32]);
        let a = DhPrivateKey::generate(&group, &mut rng);
        let b = DhPrivateKey::generate(&group, &mut rng);
        assert_eq!(
            a.shared_secret(&b.public_key()),
            b.shared_secret(&a.public_key())
        );
    }

    #[test]
    fn third_party_disagrees() {
        let group = DhGroup::test_group_256();
        let mut rng = ChaCha20Rng::from_seed([3u8; 32]);
        let a = DhPrivateKey::generate(&group, &mut rng);
        let b = DhPrivateKey::generate(&group, &mut rng);
        let eve = DhPrivateKey::generate(&group, &mut rng);
        assert_ne!(
            a.shared_secret(&b.public_key()),
            eve.shared_secret(&b.public_key())
        );
    }

    #[test]
    fn precomputed_shared_secret_matches_plain() {
        for group in [DhGroup::test_group_256(), DhGroup::rfc3526_2048()] {
            let mut rng = ChaCha20Rng::from_seed([7u8; 32]);
            let tsa = DhPrivateKey::generate(&group, &mut rng);
            let tsa_pre = group.precompute_public(&tsa.public_key());
            assert_eq!(tsa_pre.public_key(), tsa.public_key());
            for _ in 0..3 {
                let client = DhPrivateKey::generate(&group, &mut rng);
                assert_eq!(
                    client.shared_secret_precomputed(&tsa_pre),
                    client.shared_secret(&tsa.public_key()),
                    "{}",
                    group.name()
                );
            }
        }
    }

    #[test]
    fn public_key_roundtrip() {
        let group = DhGroup::test_group_256();
        let mut rng = ChaCha20Rng::from_seed([4u8; 32]);
        let a = DhPrivateKey::generate(&group, &mut rng);
        let pk = a.public_key();
        let restored = DhPublicKey::from_bytes(&pk.to_bytes());
        assert_eq!(pk, restored);
    }

    #[test]
    fn different_keypairs_have_different_publics() {
        let group = DhGroup::test_group_256();
        let mut rng = ChaCha20Rng::from_seed([5u8; 32]);
        let a = DhPrivateKey::generate(&group, &mut rng);
        let b = DhPrivateKey::generate(&group, &mut rng);
        assert_ne!(a.public_key(), b.public_key());
    }

    #[test]
    fn secret_depends_on_group_label() {
        // Using the same exponents in groups with the same modulus but
        // different labels must yield different derived secrets (domain
        // separation in the transcript hash).
        let g1 = DhGroup::test_group_256();
        let mut rng = ChaCha20Rng::from_seed([6u8; 32]);
        let a = DhPrivateKey::generate(&g1, &mut rng);
        let b = DhPrivateKey::generate(&g1, &mut rng);
        let s = a.shared_secret(&b.public_key());
        assert_eq!(s.len(), 32);
        assert_ne!(s, [0u8; 32]);
    }
}
