//! Property-based tests for the cryptographic substrate.

use papaya_crypto::aead::{open, seal, AeadKey};
use papaya_crypto::bignum::{Montgomery, U256};
use papaya_crypto::chacha20::ChaCha20Rng;
use papaya_crypto::dh::{DhGroup, DhPrivateKey};
use papaya_crypto::hmac::hmac_sha256;
use proptest::prelude::*;

proptest! {
    /// Addition and subtraction are exact inverses whenever no overflow
    /// occurs (checked against 128-bit reference arithmetic).
    #[test]
    fn bignum_add_sub_match_u128(a in any::<u64>(), b in any::<u64>(), c in any::<u64>(), d in any::<u64>()) {
        let x = U256::from_limbs([a, b, 0, 0]);
        let y = U256::from_limbs([c, d, 0, 0]);
        let (sum, carry) = x.overflowing_add(&y);
        prop_assert!(!carry);
        let (back, borrow) = sum.overflowing_sub(&y);
        prop_assert!(!borrow);
        prop_assert_eq!(back, x);
        // Low 128 bits agree with native arithmetic.
        let x128 = (b as u128) << 64 | a as u128;
        let y128 = (d as u128) << 64 | c as u128;
        let (expected, _) = x128.overflowing_add(y128);
        let lo = sum.limbs()[0] as u128 | (sum.limbs()[1] as u128) << 64;
        prop_assert_eq!(lo, expected);
    }

    /// Montgomery modular multiplication agrees with 128-bit reference
    /// arithmetic for random odd 64-bit moduli.
    #[test]
    fn montgomery_mul_matches_reference(a in any::<u64>(), b in any::<u64>(), m in 3u64..u64::MAX) {
        let modulus = m | 1; // force odd
        let ctx = Montgomery::new(U256::from_u64(modulus));
        let got = ctx.mul_mod(&U256::from_u64(a % modulus), &U256::from_u64(b % modulus));
        let expected = ((a % modulus) as u128 * (b % modulus) as u128 % modulus as u128) as u64;
        prop_assert_eq!(got, U256::from_u64(expected));
    }

    /// Modular exponentiation satisfies the homomorphism
    /// `g^(x) * g^(y) = g^(x+y) (mod p)` for a prime modulus.
    #[test]
    fn pow_mod_is_homomorphic(x in 0u64..1_000_000, y in 0u64..1_000_000) {
        let p = U256::from_u64(1_000_000_007);
        let ctx = Montgomery::new(p);
        let g = U256::from_u64(5);
        let gx = ctx.pow_mod(&g, &U256::from_u64(x));
        let gy = ctx.pow_mod(&g, &U256::from_u64(y));
        let gxy = ctx.pow_mod(&g, &U256::from_u64(x + y));
        prop_assert_eq!(ctx.mul_mod(&gx, &gy), gxy);
    }

    /// Big-endian byte serialization of bignums round-trips.
    #[test]
    fn bignum_byte_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 1..32)) {
        let v = U256::from_be_bytes(&bytes);
        let full = v.to_be_bytes();
        prop_assert_eq!(U256::from_be_bytes(&full), v);
    }

    /// AEAD seal/open round-trips and rejects any single-byte tampering.
    #[test]
    fn aead_roundtrip_and_tamper_detection(
        secret in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        ad in proptest::collection::vec(any::<u8>(), 0..32),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        flip in any::<(usize, u8)>(),
    ) {
        let key = AeadKey::from_shared_secret(&secret);
        let sealed = seal(&key, &nonce, &ad, &payload);
        prop_assert_eq!(open(&key, &ad, &sealed).unwrap(), payload);
        let mut tampered = sealed.clone();
        let idx = flip.0 % tampered.len();
        let mask = if flip.1 == 0 { 1 } else { flip.1 };
        tampered[idx] ^= mask;
        prop_assert!(open(&key, &ad, &tampered).is_err());
    }

    /// HMAC is deterministic and key-separated.
    #[test]
    fn hmac_deterministic_and_key_separated(k1 in any::<[u8; 16]>(), k2 in any::<[u8; 16]>(), msg in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(hmac_sha256(&k1, &msg), hmac_sha256(&k1, &msg));
        prop_assume!(k1 != k2);
        prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
    }

    /// ChaCha20 keystreams from different seeds differ, and `next_below`
    /// respects its bound.
    #[test]
    fn chacha_streams_and_bounds(seed in any::<[u8; 32]>(), bound in 1u64..1_000_000) {
        let mut rng = ChaCha20Rng::from_seed(seed);
        for _ in 0..32 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Diffie–Hellman key agreement holds for arbitrary RNG seeds in the
    /// fast test group.
    #[test]
    fn dh_agreement_for_random_keys(seed in any::<[u8; 32]>()) {
        let group = DhGroup::test_group_256();
        let mut rng = ChaCha20Rng::from_seed(seed);
        let a = DhPrivateKey::generate(&group, &mut rng);
        let b = DhPrivateKey::generate(&group, &mut rng);
        prop_assert_eq!(a.shared_secret(&b.public_key()), b.shared_secret(&a.public_key()));
    }
}
