//! Rule-level integration tests: one fires / does-not-fire fixture pair per
//! rule, plus seeded-violation tests that mutate the *real* workspace
//! sources (new config field, new event variant, new metrics counter) and
//! prove the lint catches the omission.

use papaya_lint::report::Finding;
use papaya_lint::{analyze, Workspace};
use std::fs;
use std::path::{Path, PathBuf};

fn ws(files: &[(&str, &str)]) -> Workspace {
    Workspace::from_sources(
        files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect(),
    )
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

fn fired(findings: &[Finding], rule: &str) -> bool {
    findings.iter().any(|f| f.rule == rule)
}

fn assert_clean(findings: &[Finding]) {
    assert!(
        findings.is_empty(),
        "expected no findings, got: {:?}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>()
    );
}

// ---------------------------------------------------------------------------
// unordered-collections
// ---------------------------------------------------------------------------

#[test]
fn unordered_collections_fires_in_fingerprint_crate() {
    let w = ws(&[(
        "crates/papaya-sim/src/x.rs",
        "use std::collections::HashMap;\npub struct S { m: HashMap<u32, u32> }\n",
    )]);
    let findings = analyze(&w);
    assert!(
        fired(&findings, "unordered-collections"),
        "{:?}",
        rules_of(&findings)
    );
    // One finding per token occurrence: the import and the field type.
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == "unordered-collections")
            .count(),
        2
    );
}

#[test]
fn unordered_collections_ignores_out_of_scope_crates_btrees_and_tests() {
    let w = ws(&[
        // papaya-data does not feed the fingerprint.
        (
            "crates/papaya-data/src/x.rs",
            "use std::collections::HashMap;\n",
        ),
        // BTreeMap is the sanctioned replacement.
        (
            "crates/papaya-sim/src/y.rs",
            "use std::collections::BTreeMap;\npub struct S { m: BTreeMap<u32, u32> }\n",
        ),
        // Test code may hash freely.
        (
            "crates/papaya-sim/src/z.rs",
            "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n",
        ),
    ]);
    assert_clean(&analyze(&w));
}

// ---------------------------------------------------------------------------
// wall-clock
// ---------------------------------------------------------------------------

#[test]
fn wall_clock_fires_on_instant_now_and_system_time() {
    let w = ws(&[(
        "crates/papaya-sim/src/x.rs",
        "use std::time::{Instant, SystemTime};\n\
         pub fn f() -> u64 { let _t = Instant::now(); 0 }\n\
         pub fn g() -> SystemTime { SystemTime::now() }\n",
    )]);
    let findings = analyze(&w);
    // `Instant::now()` in f, plus the `SystemTime` import/return/call tokens.
    assert!(fired(&findings, "wall-clock"), "{:?}", rules_of(&findings));
    assert!(findings.iter().any(|f| f.message.contains("Instant::now")));
}

#[test]
fn wall_clock_does_not_fire_on_virtual_time_or_tests() {
    let w = ws(&[(
        "crates/papaya-sim/src/x.rs",
        "pub fn f(now_s: f64) -> f64 { now_s + 1.0 }\n\
         #[cfg(test)]\nmod tests {\n    use std::time::Instant;\n    fn t() { let _ = Instant::now(); }\n}\n",
    )]);
    assert_clean(&analyze(&w));
}

#[test]
fn wall_clock_is_suppressed_by_justified_allow() {
    let w = ws(&[(
        "crates/papaya-sim/src/x.rs",
        "// papaya-lint: allow(wall-clock) -- profiling only, never fingerprinted\n\
         pub fn f() { let _t = std::time::Instant::now(); }\n",
    )]);
    assert_clean(&analyze(&w));
}

// ---------------------------------------------------------------------------
// entropy
// ---------------------------------------------------------------------------

#[test]
fn entropy_fires_on_ambient_sources() {
    let w = ws(&[(
        "crates/papaya-core/src/x.rs",
        "pub fn f() { let mut r = thread_rng(); }\n\
         pub fn g() { let s = RandomState::new(); }\n",
    )]);
    let findings = analyze(&w);
    assert_eq!(
        findings.iter().filter(|f| f.rule == "entropy").count(),
        2,
        "{:?}",
        rules_of(&findings)
    );
}

#[test]
fn entropy_does_not_fire_on_seed_derived_streams() {
    let w = ws(&[(
        "crates/papaya-core/src/x.rs",
        "pub fn f(seed: u64) -> Rng { Rng::seed_from_u64(seed) }\n",
    )]);
    assert_clean(&analyze(&w));
}

// ---------------------------------------------------------------------------
// config-validate
// ---------------------------------------------------------------------------

const DP_FIXTURE_OK: &str = "pub struct DpConfig { pub clip: f64, pub noise: f64 }\n\
     impl DpConfig {\n\
         pub fn validate(&self) {\n\
             let DpConfig { clip, noise } = *self;\n\
             assert!(clip > 0.0, \"clip\");\n\
             assert!(noise >= 0.0, \"noise\");\n\
         }\n\
     }\n";

#[test]
fn config_validate_passes_on_exhaustive_destructure() {
    let w = ws(&[("crates/papaya-core/src/dp.rs", DP_FIXTURE_OK)]);
    assert_clean(&analyze(&w));
}

#[test]
fn config_validate_fires_on_missing_field() {
    let src = DP_FIXTURE_OK.replace("let DpConfig { clip, noise }", "let DpConfig { clip }");
    let w = ws(&[("crates/papaya-core/src/dp.rs", src.as_str())]);
    let findings = analyze(&w);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "config-validate" && f.message.contains("`noise`")),
        "{:?}",
        findings
    );
}

#[test]
fn config_validate_fires_on_rest_pattern() {
    let src = DP_FIXTURE_OK.replace("let DpConfig { clip, noise }", "let DpConfig { clip, .. }");
    let w = ws(&[("crates/papaya-core/src/dp.rs", src.as_str())]);
    let findings = analyze(&w);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "config-validate" && f.message.contains("rest")),
        "{:?}",
        findings
    );
}

#[test]
fn config_validate_fires_on_missing_destructure() {
    let src = "pub struct DpConfig { pub clip: f64 }\n\
         impl DpConfig {\n\
             pub fn validate(&self) {\n\
                 assert!(self.clip > 0.0, \"clip\");\n\
             }\n\
         }\n";
    let w = ws(&[("crates/papaya-core/src/dp.rs", src)]);
    let findings = analyze(&w);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "config-validate" && f.message.contains("destructure")),
        "{:?}",
        findings
    );
}

#[test]
fn config_validate_accepts_explicit_field_ignore() {
    let src = DP_FIXTURE_OK.replace(
        "let DpConfig { clip, noise }",
        "let DpConfig { clip, noise: _ }",
    );
    let src = src.replace("assert!(noise >= 0.0, \"noise\");\n", "");
    let w = ws(&[("crates/papaya-core/src/dp.rs", src.as_str())]);
    assert_clean(&analyze(&w));
}

// ---------------------------------------------------------------------------
// event-dispatch
// ---------------------------------------------------------------------------

const EVENTS_FIXTURE: &str = "pub enum EventKind { Alpha, Beta { id: u64 } }\n";

fn dispatch_fixture(arms: &str) -> String {
    // Two run loops, as in the real scenario file.
    format!(
        "pub fn run_direct(event: Event) {{\n    match event.kind {{ {arms} }}\n}}\n\
         pub fn run_fleet(event: Event) {{\n    match event.kind {{ {arms} }}\n}}\n"
    )
}

#[test]
fn event_dispatch_passes_when_both_matches_name_every_variant() {
    let arms = "EventKind::Alpha => {} EventKind::Beta { .. } => {}";
    let w = ws(&[
        ("crates/papaya-sim/src/events.rs", EVENTS_FIXTURE),
        ("crates/papaya-sim/src/scenario.rs", &dispatch_fixture(arms)),
    ]);
    assert_clean(&analyze(&w));
}

#[test]
fn event_dispatch_fires_on_unhandled_variant() {
    let arms = "EventKind::Alpha => {}";
    let w = ws(&[
        ("crates/papaya-sim/src/events.rs", EVENTS_FIXTURE),
        ("crates/papaya-sim/src/scenario.rs", &dispatch_fixture(arms)),
    ]);
    let findings = analyze(&w);
    // Both dispatch sites miss `Beta`.
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == "event-dispatch" && f.message.contains("EventKind::Beta"))
            .count(),
        2,
        "{:?}",
        findings
    );
}

#[test]
fn event_dispatch_fires_on_wildcard_arm() {
    let arms = "EventKind::Alpha => {} EventKind::Beta { .. } => {} _ => {}";
    let w = ws(&[
        ("crates/papaya-sim/src/events.rs", EVENTS_FIXTURE),
        ("crates/papaya-sim/src/scenario.rs", &dispatch_fixture(arms)),
    ]);
    let findings = analyze(&w);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "event-dispatch" && f.message.contains("wildcard")),
        "{:?}",
        findings
    );
}

#[test]
fn event_dispatch_fires_when_a_run_loop_is_missing() {
    let w = ws(&[
        ("crates/papaya-sim/src/events.rs", EVENTS_FIXTURE),
        (
            "crates/papaya-sim/src/scenario.rs",
            "pub fn run(event: Event) { match event.kind { EventKind::Alpha => {} EventKind::Beta { .. } => {} } }\n",
        ),
    ]);
    let findings = analyze(&w);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "event-dispatch" && f.message.contains("need at least 2")),
        "{:?}",
        findings
    );
}

// ---------------------------------------------------------------------------
// metrics-fingerprint
// ---------------------------------------------------------------------------

const METRICS_FIXTURE: &str =
    "pub struct MetricsCollector {\n    pub rounds: u64,\n    pub final_loss: f64,\n}\n";

fn fingerprint_fixture(body: &str) -> String {
    format!(
        "impl Report {{\n    pub fn fingerprint(&self) -> String {{\n        {body}\n    }}\n}}\n"
    )
}

#[test]
fn metrics_fingerprint_passes_when_all_fields_hashed() {
    let w = ws(&[
        ("crates/papaya-sim/src/metrics.rs", METRICS_FIXTURE),
        (
            "crates/papaya-sim/src/scenario.rs",
            &fingerprint_fixture("format!(\"{}/{}\", self.rounds, self.final_loss)"),
        ),
    ]);
    assert_clean(&analyze(&w));
}

#[test]
fn metrics_fingerprint_fires_on_unhashed_field() {
    let w = ws(&[
        ("crates/papaya-sim/src/metrics.rs", METRICS_FIXTURE),
        (
            "crates/papaya-sim/src/scenario.rs",
            &fingerprint_fixture("format!(\"{}\", self.rounds)"),
        ),
    ]);
    let findings = analyze(&w);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "metrics-fingerprint" && f.message.contains("`final_loss`")),
        "{:?}",
        findings
    );
}

#[test]
fn metrics_fingerprint_exemption_via_allow_on_declaration() {
    let metrics = "pub struct MetricsCollector {\n\
             pub rounds: u64,\n\
             // papaya-lint: allow(metrics-fingerprint) -- machine-dependent profiling, exempt by design\n\
             pub wall_ms: u64,\n\
         }\n";
    let w = ws(&[
        ("crates/papaya-sim/src/metrics.rs", metrics),
        (
            "crates/papaya-sim/src/scenario.rs",
            &fingerprint_fixture("format!(\"{}\", self.rounds)"),
        ),
    ]);
    assert_clean(&analyze(&w));
}

// ---------------------------------------------------------------------------
// panic-hygiene
// ---------------------------------------------------------------------------

#[test]
fn panic_hygiene_fires_on_unwrap_and_expect() {
    let w = ws(&[(
        "crates/papaya-core/src/x.rs",
        "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n\
         pub fn g(o: Option<u32>) -> u32 { o.expect(\"present\") }\n",
    )]);
    let findings = analyze(&w);
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == "panic-hygiene")
            .count(),
        2,
        "{:?}",
        rules_of(&findings)
    );
}

#[test]
fn panic_hygiene_ignores_adapters_tests_and_justified_allows() {
    let w = ws(&[(
        "crates/papaya-core/src/x.rs",
        "pub fn f(o: Option<u32>) -> u32 { o.unwrap_or_else(|| 0) }\n\
         pub fn g(o: Option<u32>) -> u32 {\n\
             // papaya-lint: allow(panic-hygiene) -- caller contract guarantees presence\n\
             o.expect(\"present by contract\")\n\
         }\n\
         #[cfg(test)]\nmod tests {\n    fn t(o: Option<u32>) -> u32 { o.unwrap() }\n}\n",
    )]);
    assert_clean(&analyze(&w));
}

// ---------------------------------------------------------------------------
// decorator-conformance
// ---------------------------------------------------------------------------

const HOOKS: &str = "fn update_weight(&self) -> f64 { self.inner.update_weight() }\n\
     fn secure_telemetry(&self) -> Option<u64> { self.inner.secure_telemetry() }\n\
     fn dp_telemetry(&self) -> Option<u64> { self.inner.dp_telemetry() }\n\
     fn robust_telemetry(&self) -> Option<u64> { self.inner.robust_telemetry() }\n";

#[test]
fn decorator_conformance_passes_when_hooks_forwarded() {
    let src = format!("impl Aggregator for Wrapper {{\n    fn ingest(&mut self) {{}}\n{HOOKS}}}\n");
    let w = ws(&[("crates/papaya-core/src/x.rs", src.as_str())]);
    assert_clean(&analyze(&w));
}

#[test]
fn decorator_conformance_fires_on_missing_hook() {
    let w = ws(&[(
        "crates/papaya-core/src/x.rs",
        "impl Aggregator for Wrapper {\n    fn ingest(&mut self) {}\n    fn update_weight(&self) -> f64 { 1.0 }\n}\n",
    )]);
    let findings = analyze(&w);
    assert!(
        findings.iter().any(|f| f.rule == "decorator-conformance"
            && f.message.contains("`secure_telemetry`")
            && f.message.contains("`dp_telemetry`")),
        "{:?}",
        findings
    );
}

#[test]
fn decorator_conformance_fires_on_missing_robust_telemetry() {
    // A decorator written before the robust layer existed forwards the
    // three older hooks but not `robust_telemetry` — the conformance rule
    // must name exactly the new hook.
    let src = "impl Aggregator for Wrapper {\n    fn ingest(&mut self) {}\n\
         fn update_weight(&self) -> f64 { self.inner.update_weight() }\n\
         fn secure_telemetry(&self) -> Option<u64> { self.inner.secure_telemetry() }\n\
         fn dp_telemetry(&self) -> Option<u64> { self.inner.dp_telemetry() }\n}\n";
    let w = ws(&[("crates/papaya-core/src/x.rs", src)]);
    let findings = analyze(&w);
    assert!(
        findings.iter().any(|f| f.rule == "decorator-conformance"
            && f.message.contains("`robust_telemetry`")
            && !f.message.contains("`dp_telemetry`")),
        "{:?}",
        findings
    );
}

#[test]
fn decorator_conformance_base_strategy_opts_out_with_allow() {
    let w = ws(&[(
        "crates/papaya-core/src/x.rs",
        "// papaya-lint: allow(decorator-conformance) -- base strategy, trait defaults are correct\n\
         impl Aggregator for Base {\n    fn ingest(&mut self) {}\n}\n",
    )]);
    assert_clean(&analyze(&w));
}

#[test]
fn decorator_conformance_handles_generic_impls() {
    let src = format!(
        "impl<A: Aggregator> Aggregator for Wrapper<A> {{\n    fn ingest(&mut self) {{}}\n{HOOKS}}}\n"
    );
    let w = ws(&[("crates/papaya-core/src/x.rs", src.as_str())]);
    assert_clean(&analyze(&w));
}

// ---------------------------------------------------------------------------
// Seeded violations against the real workspace sources
// ---------------------------------------------------------------------------

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn real(rel: &str) -> (String, String) {
    let text =
        fs::read_to_string(repo_root().join(rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"));
    (rel.to_string(), text)
}

/// The real workspace must lint clean: the CI gate runs `--deny-all`, and
/// this test keeps `cargo test` equivalent to it.
#[test]
fn real_workspace_is_clean() {
    let w = Workspace::from_disk(&repo_root()).expect("workspace root");
    assert!(
        w.files.len() > 30,
        "walk found only {} files",
        w.files.len()
    );
    assert_clean(&analyze(&w));
}

/// Adding a `TaskConfig` field without touching the validator must fail the
/// lint: the destructure in `validate_task_config` no longer covers it.
#[test]
fn seeded_task_config_field_fails_lint() {
    let (cpath, config) = real("crates/papaya-core/src/config.rs");
    let seeded = config.replace(
        "pub struct TaskConfig {",
        "pub struct TaskConfig {\n    pub seeded_new_knob: u64,",
    );
    assert_ne!(
        seeded, config,
        "TaskConfig declaration moved; update the test"
    );
    let scenario = real("crates/papaya-sim/src/scenario.rs");
    let w = Workspace::from_sources(vec![(cpath, seeded), scenario]);
    let findings = analyze(&w);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "config-validate" && f.message.contains("seeded_new_knob")),
        "lint did not catch the seeded TaskConfig field: {:?}",
        findings
            .iter()
            .filter(|f| f.rule == "config-validate")
            .collect::<Vec<_>>()
    );
}

/// Adding an `EventKind` variant must fail the lint in both run loops.
#[test]
fn seeded_event_variant_fails_lint() {
    let (epath, events) = real("crates/papaya-sim/src/events.rs");
    let seeded = events.replace(
        "pub enum EventKind {",
        "pub enum EventKind {\n    SeededNewEvent,",
    );
    assert_ne!(
        seeded, events,
        "EventKind declaration moved; update the test"
    );
    let scenario = real("crates/papaya-sim/src/scenario.rs");
    let w = Workspace::from_sources(vec![(epath, seeded), scenario]);
    let findings = analyze(&w);
    assert_eq!(
        findings
            .iter()
            .filter(
                |f| f.rule == "event-dispatch" && f.message.contains("EventKind::SeededNewEvent")
            )
            .count(),
        2,
        "both dispatch paths must flag the seeded variant: {:?}",
        findings
            .iter()
            .filter(|f| f.rule == "event-dispatch")
            .collect::<Vec<_>>()
    );
}

/// Adding a `MetricsCollector` field that `Report::fingerprint()` does not
/// hash must fail the lint.
#[test]
fn seeded_metrics_field_fails_lint() {
    let (mpath, metrics) = real("crates/papaya-sim/src/metrics.rs");
    let seeded = metrics.replace(
        "pub struct MetricsCollector {",
        "pub struct MetricsCollector {\n    pub seeded_counter: u64,",
    );
    assert_ne!(
        seeded, metrics,
        "MetricsCollector declaration moved; update the test"
    );
    let scenario = real("crates/papaya-sim/src/scenario.rs");
    let w = Workspace::from_sources(vec![(mpath, seeded), scenario]);
    let findings = analyze(&w);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "metrics-fingerprint" && f.message.contains("seeded_counter")),
        "lint did not catch the seeded metrics field: {:?}",
        findings
            .iter()
            .filter(|f| f.rule == "metrics-fingerprint")
            .collect::<Vec<_>>()
    );
}

/// Adding a `RobustConfig` knob without touching `RobustConfig::validate`
/// must fail the lint, exactly like the other config structs.
#[test]
fn seeded_robust_config_field_fails_lint() {
    let (rpath, robust) = real("crates/papaya-core/src/robust.rs");
    let seeded = robust.replace(
        "pub struct RobustConfig {",
        "pub struct RobustConfig {\n    pub seeded_new_knob: u64,",
    );
    assert_ne!(
        seeded, robust,
        "RobustConfig declaration moved; update the test"
    );
    let w = Workspace::from_sources(vec![(rpath, seeded)]);
    let findings = analyze(&w);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "config-validate" && f.message.contains("seeded_new_knob")),
        "lint did not catch the seeded RobustConfig field: {:?}",
        findings
            .iter()
            .filter(|f| f.rule == "config-validate")
            .collect::<Vec<_>>()
    );
}

/// Adding a `RobustTelemetry` field that `Report::fingerprint()` does not
/// hash must fail the lint — robustness counters are part of the
/// determinism pin like every other telemetry stream.
#[test]
fn seeded_robust_telemetry_field_fails_lint() {
    let (rpath, robust) = real("crates/papaya-core/src/robust.rs");
    let seeded = robust.replace(
        "pub struct RobustTelemetry {",
        "pub struct RobustTelemetry {\n    pub seeded_counter: u64,",
    );
    assert_ne!(
        seeded, robust,
        "RobustTelemetry declaration moved; update the test"
    );
    let scenario = real("crates/papaya-sim/src/scenario.rs");
    let w = Workspace::from_sources(vec![(rpath, seeded), scenario]);
    let findings = analyze(&w);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "metrics-fingerprint" && f.message.contains("seeded_counter")),
        "lint did not catch the seeded RobustTelemetry field: {:?}",
        findings
            .iter()
            .filter(|f| f.rule == "metrics-fingerprint")
            .collect::<Vec<_>>()
    );
}

/// Removing a justified allow must resurface the original finding —
/// exemptions cannot silently rot into unconditional suppressions.
#[test]
fn seeded_allow_removal_resurfaces_finding() {
    let (spath, secure) = real("crates/papaya-core/src/secure.rs");
    let marker = "// papaya-lint: allow(wall-clock)";
    let at = secure
        .find(marker)
        .expect("secure.rs has a wall-clock allow");
    let line_end = secure[at..]
        .find('\n')
        .map(|n| at + n + 1)
        .unwrap_or(secure.len());
    let seeded = format!("{}{}", &secure[..at], &secure[line_end..]);
    let w = Workspace::from_sources(vec![(spath, seeded)]);
    let findings = analyze(&w);
    assert!(
        fired(&findings, "wall-clock"),
        "removing the allow must resurface the wall-clock finding: {:?}",
        rules_of(&findings)
    );
}

/// Adding a `ControlEvent` variant without teaching the control-plane apply
/// dispatcher about it must fail the lint — the log-then-apply choke point
/// is only a replay guarantee while it stays exhaustive.
#[test]
fn seeded_control_event_variant_fails_lint() {
    let (epath, events) = real("crates/papaya-sim/src/control_plane/event_log.rs");
    let seeded = events.replace(
        "pub enum ControlEvent {",
        "pub enum ControlEvent {\n    SeededNewEvent,",
    );
    assert_ne!(
        seeded, events,
        "ControlEvent declaration moved; update the test"
    );
    let service = real("crates/papaya-sim/src/control_plane/service.rs");
    let w = Workspace::from_sources(vec![(epath, seeded), service]);
    let findings = analyze(&w);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "event-dispatch"
                && f.message.contains("ControlEvent::SeededNewEvent")),
        "the apply dispatcher must flag the seeded ControlEvent variant: {:?}",
        findings
            .iter()
            .filter(|f| f.rule == "event-dispatch")
            .collect::<Vec<_>>()
    );
}

/// Adding a `ControlPlaneStats` counter that `Report::fingerprint()` does
/// not hash (and that carries no justified exemption) must fail the lint —
/// control-plane counters are part of the determinism pin too.
#[test]
fn seeded_control_plane_stats_field_fails_lint() {
    let (mpath, metrics) = real("crates/papaya-sim/src/metrics.rs");
    let seeded = metrics.replace(
        "pub struct ControlPlaneStats {",
        "pub struct ControlPlaneStats {\n    pub seeded_cp_counter: u64,",
    );
    assert_ne!(
        seeded, metrics,
        "ControlPlaneStats declaration moved; update the test"
    );
    let scenario = real("crates/papaya-sim/src/scenario.rs");
    let w = Workspace::from_sources(vec![(mpath, seeded), scenario]);
    let findings = analyze(&w);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "metrics-fingerprint" && f.message.contains("seeded_cp_counter")),
        "lint did not catch the seeded ControlPlaneStats field: {:?}",
        findings
            .iter()
            .filter(|f| f.rule == "metrics-fingerprint")
            .collect::<Vec<_>>()
    );
}
