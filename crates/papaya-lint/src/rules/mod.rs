//! The invariant rules.  Each rule walks the [`Workspace`] token streams and
//! reports [`Finding`]s; suppression via allow directives happens in
//! [`crate::analyze`], not in the rules themselves.

use crate::report::Finding;
use crate::Workspace;

mod decorator;
mod determinism;
mod exhaustive;
mod panic_hygiene;

pub use decorator::DecoratorConformance;
pub use determinism::{Entropy, UnorderedCollections, WallClock};
pub use exhaustive::{ConfigValidate, EventDispatch, MetricsFingerprint};
pub use panic_hygiene::PanicHygiene;

/// One invariant rule.
pub trait Rule {
    /// Stable rule name, used in diagnostics and allow directives.
    fn name(&self) -> &'static str;
    /// One-line description for `--list`-style output and RULES.md parity.
    fn description(&self) -> &'static str;
    /// Appends findings for the whole workspace.
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>);
}

/// Every shipped rule, in diagnostic order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(UnorderedCollections),
        Box::new(WallClock),
        Box::new(Entropy),
        Box::new(ConfigValidate),
        Box::new(EventDispatch),
        Box::new(MetricsFingerprint),
        Box::new(PanicHygiene),
        Box::new(DecoratorConformance),
    ]
}

/// Rule names a directive may reference (includes the meta rules so an
/// allow-of-an-allow is at least *recognized*, then reported as unusable).
pub fn known_rule_names() -> Vec<&'static str> {
    all_rules().iter().map(|r| r.name()).collect()
}

/// Whether `path` (workspace-relative, forward slashes) is library source of
/// the given crate — `crates/<krate>/src/…`.
pub(crate) fn in_crate_src(path: &str, krate: &str) -> bool {
    let needle = format!("crates/{krate}/src/");
    path.starts_with(&needle) || path.contains(&format!("/{needle}"))
}

/// Whether `path` ends with the given workspace-relative suffix (fixtures
/// mimic real paths, so rules locate files by suffix, not equality).
pub(crate) fn path_ends_with(path: &str, suffix: &str) -> bool {
    path == suffix || path.ends_with(&format!("/{suffix}"))
}
