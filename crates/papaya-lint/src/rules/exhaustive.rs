//! Exhaustiveness rules: cross-file checks that configuration structs,
//! event dispatch, and metrics stay fully wired as they grow.  These
//! generalize PR 4's "exhaustive destructure choke point" from a convention
//! into a machine-checked invariant.

use super::{path_ends_with, Rule};
use crate::report::Finding;
use crate::scan::{
    enum_variants, find_destructure, find_seq, fn_body, matching, struct_fields, SourceFile,
};
use crate::Workspace;

fn find_file<'a>(ws: &'a Workspace, suffix: &str) -> Option<&'a SourceFile> {
    ws.files.iter().find(|f| path_ends_with(&f.path, suffix))
}

/// `(struct, struct file, validator fn, validator file)` — every field of
/// the struct must be named in the validator's destructuring pattern, so
/// adding a knob without deciding how runs honor it fails the lint (and,
/// for the destructure itself, the build).
const CONFIG_CHECKS: &[(&str, &str, &str, &str)] = &[
    (
        "TaskConfig",
        "papaya-core/src/config.rs",
        "validate_task_config",
        "papaya-sim/src/scenario.rs",
    ),
    (
        "DpConfig",
        "papaya-core/src/dp.rs",
        "validate",
        "papaya-core/src/dp.rs",
    ),
    (
        "RunLimits",
        "papaya-sim/src/scenario.rs",
        "validate_run_limits",
        "papaya-sim/src/scenario.rs",
    ),
    (
        "RobustConfig",
        "papaya-core/src/robust.rs",
        "validate",
        "papaya-core/src/robust.rs",
    ),
    (
        "AdversarySpec",
        "papaya-core/src/adversary.rs",
        "validate",
        "papaya-core/src/adversary.rs",
    ),
];

/// Every config-struct field must appear in its validator's exhaustive
/// destructure, and the destructure must not use a `..` rest pattern.
pub struct ConfigValidate;

impl Rule for ConfigValidate {
    fn name(&self) -> &'static str {
        "config-validate"
    }

    fn description(&self) -> &'static str {
        "every TaskConfig/DpConfig/RunLimits/RobustConfig/AdversarySpec field must be destructured in its validator (no `..` rest patterns)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for &(struct_name, struct_file, fn_name, fn_file) in CONFIG_CHECKS {
            let sfile = match find_file(ws, struct_file) {
                Some(f) => f,
                None => continue, // struct not in this (fixture) workspace
            };
            let fields = match struct_fields(sfile, struct_name) {
                Some(f) => f,
                None => continue,
            };
            let vfile = match find_file(ws, fn_file) {
                Some(f) => f,
                None => {
                    out.push(Finding::new(
                        &sfile.path,
                        1,
                        self.name(),
                        format!(
                            "struct `{struct_name}` has no reachable validator: expected \
                             `{fn_name}` in `{fn_file}`"
                        ),
                    ));
                    continue;
                }
            };
            let body = fn_body(vfile, fn_name, 0);
            let destructure = body.and_then(|(start, end, _)| {
                find_destructure(&vfile.tokens, (start, end), struct_name)
            });
            let d = match destructure {
                Some(d) => d,
                None => {
                    out.push(Finding::new(
                        &vfile.path,
                        body.map(|(_, _, line)| line).unwrap_or(1),
                        self.name(),
                        format!(
                            "validator `{fn_name}` must exhaustively destructure \
                             `{struct_name}` so new fields cannot be silently ignored"
                        ),
                    ));
                    continue;
                }
            };
            if d.has_rest {
                out.push(Finding::new(
                    &vfile.path,
                    d.line,
                    self.name(),
                    format!(
                        "`{struct_name}` destructure in `{fn_name}` uses a `..` rest \
                         pattern, which silently absorbs new fields"
                    ),
                ));
            }
            for field in &fields {
                if !d.fields.iter().any(|f| f.name == field.name) {
                    out.push(Finding::new(
                        &vfile.path,
                        d.line,
                        self.name(),
                        format!(
                            "field `{}` of `{struct_name}` is not destructured in \
                             `{fn_name}`; decide how runs honor it (or ignore it \
                             explicitly with `{}: _`)",
                            field.name, field.name
                        ),
                    ));
                }
            }
        }
    }
}

/// One event-dispatch invariant: every variant of `enum_name` (declared in
/// `events_file`) must be named in each `match` on `scrutinee` inside
/// `dispatch_file`, there must be at least `min_sites` such matches, and no
/// match may hide behind a depth-0 `_` wildcard arm.
struct DispatchCheck {
    enum_name: &'static str,
    events_file: &'static str,
    dispatch_file: &'static str,
    /// Consecutive scrutinee tokens identifying the dispatch match, e.g.
    /// `["event", ".", "kind"]` or `["control_event"]`.
    scrutinee: &'static [&'static str],
    min_sites: usize,
    /// Human description of where the dispatch lives, for messages.
    sites_label: &'static str,
}

const DISPATCH_CHECKS: &[DispatchCheck] = &[
    DispatchCheck {
        enum_name: "EventKind",
        events_file: "papaya-sim/src/events.rs",
        dispatch_file: "papaya-sim/src/scenario.rs",
        scrutinee: &["event", ".", "kind"],
        min_sites: 2,
        sites_label: "both scenario run loops",
    },
    DispatchCheck {
        enum_name: "ControlEvent",
        events_file: "papaya-sim/src/control_plane/event_log.rs",
        dispatch_file: "papaya-sim/src/control_plane/service.rs",
        scrutinee: &["control_event"],
        min_sites: 1,
        sites_label: "the control-plane apply dispatcher",
    },
];

/// Every event enum must be exhaustively dispatched: the scenario run loops
/// must name every `EventKind` variant, and the control plane's single
/// apply dispatcher must name every `ControlEvent` variant — with no `_`
/// wildcard arm in either.
pub struct EventDispatch;

impl Rule for EventDispatch {
    fn name(&self) -> &'static str {
        "event-dispatch"
    }

    fn description(&self) -> &'static str {
        "every EventKind variant must be named in both scenario dispatch matches and every ControlEvent variant in the control-plane apply dispatcher, with no `_` wildcard arm"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for check in DISPATCH_CHECKS {
            let events = match find_file(ws, check.events_file) {
                Some(f) => f,
                None => continue,
            };
            let variants = match enum_variants(events, check.enum_name) {
                Some(v) => v,
                None => continue,
            };
            let scrutinee = check.scrutinee.join("");
            let dispatch = match find_file(ws, check.dispatch_file) {
                Some(f) => f,
                None => {
                    out.push(Finding::new(
                        &events.path,
                        1,
                        self.name(),
                        format!(
                            "`{}` has no reachable dispatch file `{}`",
                            check.enum_name, check.dispatch_file
                        ),
                    ));
                    continue;
                }
            };
            let matches = scrutinee_matches(dispatch, check.scrutinee);
            if matches.len() < check.min_sites {
                out.push(Finding::new(
                    &dispatch.path,
                    1,
                    self.name(),
                    format!(
                        "expected {} to dispatch on `{scrutinee}` (found {} \
                         `match {scrutinee}` site(s), need at least {})",
                        check.sites_label,
                        matches.len(),
                        check.min_sites
                    ),
                ));
            }
            for (open, close, line) in matches {
                let body = &dispatch.tokens[open + 1..close];
                for variant in &variants {
                    if find_seq(body, 0, &[check.enum_name, "::", &variant.name]).is_none() {
                        out.push(Finding::new(
                            &dispatch.path,
                            line,
                            self.name(),
                            format!(
                                "dispatch `match {scrutinee}` does not handle \
                                 `{}::{}`; every variant must be named in {}",
                                check.enum_name, variant.name, check.sites_label
                            ),
                        ));
                    }
                }
                // A `_ =>` arm directly inside the match body defeats the
                // compiler's exhaustiveness check for future variants.
                let mut depth = 0usize;
                for (i, tok) in body.iter().enumerate() {
                    match tok.text.as_str() {
                        "{" | "(" | "[" => depth += 1,
                        "}" | ")" | "]" => depth = depth.saturating_sub(1),
                        "_" if depth == 0
                            && body.get(i + 1).map(|t| t.text.as_str()) == Some("=>") =>
                        {
                            out.push(Finding::new(
                                &dispatch.path,
                                tok.line,
                                self.name(),
                                format!(
                                    "dispatch `match {scrutinee}` has a `_` wildcard arm; \
                                     list foreign variants explicitly so a new \
                                     `{}` variant is a compile error here, not a \
                                     silent fallthrough",
                                    check.enum_name
                                ),
                            ));
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

/// All `match` sites in `file` whose scrutinee tokens contain the
/// consecutive token sequence `scrutinee`:
/// `(body_open, body_close, match_line)`.
fn scrutinee_matches(file: &SourceFile, scrutinee: &[&str]) -> Vec<(usize, usize, u32)> {
    let toks = &file.tokens;
    let mut sites = Vec::new();
    let mut i = 0usize;
    while let Some(at) = find_seq(toks, i, &["match"]) {
        i = at + 1;
        // Scrutinee runs to the first `{` (no struct expressions appear in
        // these scrutinees).
        let mut j = at + 1;
        let mut found = false;
        while j < toks.len() && toks[j].text != "{" {
            if toks[j].text == scrutinee[0]
                && scrutinee[1..]
                    .iter()
                    .enumerate()
                    .all(|(k, want)| toks.get(j + 1 + k).map(|t| t.text.as_str()) == Some(*want))
            {
                found = true;
            }
            j += 1;
        }
        if !found || j >= toks.len() {
            continue;
        }
        if let Some(close) = matching(toks, j, "{", "}") {
            sites.push((j, close, toks[at].line));
            i = close;
        }
    }
    sites
}

const METRICS_FILE: &str = "papaya-sim/src/metrics.rs";
const SECURE_FILE: &str = "papaya-core/src/secure.rs";
const DP_FILE: &str = "papaya-core/src/dp.rs";
const ROBUST_FILE: &str = "papaya-core/src/robust.rs";
const FINGERPRINT_FILE: &str = "papaya-sim/src/scenario.rs";

/// `(struct, file)` pairs whose fields must be hashed in
/// `Report::fingerprint()` or carry an explicit exemption.
const METRIC_STRUCTS: &[(&str, &str)] = &[
    ("MetricsCollector", METRICS_FILE),
    ("SecureTelemetry", SECURE_FILE),
    ("DpTelemetry", DP_FILE),
    ("RobustTelemetry", ROBUST_FILE),
    ("ControlPlaneStats", METRICS_FILE),
];

/// Every metrics/telemetry field is either referenced inside
/// `Report::fingerprint()` or carries an allow exemption on its declaration
/// line — so a new counter cannot silently escape the determinism pin.
pub struct MetricsFingerprint;

impl Rule for MetricsFingerprint {
    fn name(&self) -> &'static str {
        "metrics-fingerprint"
    }

    fn description(&self) -> &'static str {
        "every MetricsCollector/SecureTelemetry/DpTelemetry/RobustTelemetry/ControlPlaneStats field must be hashed in Report::fingerprint() or carry an explicit exemption"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let hashed: Option<Vec<&str>> = find_file(ws, FINGERPRINT_FILE)
            .and_then(|f| fn_body(f, "fingerprint", 0).map(|(s, e, _)| (f, s, e)))
            .map(|(f, s, e)| f.tokens[s..e].iter().map(|t| t.text.as_str()).collect());
        for &(struct_name, struct_file) in METRIC_STRUCTS {
            let sfile = match find_file(ws, struct_file) {
                Some(f) => f,
                None => continue,
            };
            let fields = match struct_fields(sfile, struct_name) {
                Some(f) => f,
                None => continue,
            };
            let hashed = match &hashed {
                Some(h) => h,
                None => {
                    out.push(Finding::new(
                        &sfile.path,
                        1,
                        self.name(),
                        format!(
                            "`{struct_name}` fields must be pinned by `fn fingerprint` \
                             in `{FINGERPRINT_FILE}`, which was not found"
                        ),
                    ));
                    continue;
                }
            };
            for field in &fields {
                if !hashed.contains(&field.name.as_str()) {
                    out.push(Finding::new(
                        &sfile.path,
                        field.line,
                        self.name(),
                        format!(
                            "field `{}` of `{struct_name}` is not hashed in \
                             `Report::fingerprint()`; hash it or exempt it with a \
                             justified allow on its declaration",
                            field.name
                        ),
                    ));
                }
            }
        }
    }
}
