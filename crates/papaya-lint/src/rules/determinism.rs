//! Determinism rules: the repo's headline guarantee is a bit-identical
//! `Report::fingerprint()` at any thread count, which dies the moment
//! anything observable depends on unordered-map iteration order, wall-clock
//! time, or ambient entropy.

use super::{in_crate_src, Rule};
use crate::report::Finding;
use crate::scan::SourceFile;
use crate::Workspace;

/// Crates whose state feeds `Report::fingerprint()`; everything they keep
/// must iterate in a deterministic order.
const FINGERPRINT_CRATES: &[&str] = &["papaya-core", "papaya-secagg", "papaya-sim"];

/// Forbids `HashMap`/`HashSet` in fingerprint-feeding crates.  `std`'s
/// hasher is randomly seeded per instance, so *any* observable iteration
/// order is nondeterministic across runs; `BTreeMap`/`BTreeSet` iterate
/// sorted at equivalent cost for the simulator's map sizes.
pub struct UnorderedCollections;

impl Rule for UnorderedCollections {
    fn name(&self) -> &'static str {
        "unordered-collections"
    }

    fn description(&self) -> &'static str {
        "HashMap/HashSet are banned in fingerprint-feeding crates (papaya-core, papaya-secagg, papaya-sim); use BTreeMap/BTreeSet"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if !FINGERPRINT_CRATES
                .iter()
                .any(|c| in_crate_src(&file.path, c))
            {
                continue;
            }
            for tok in &file.tokens {
                if (tok.text == "HashMap" || tok.text == "HashSet") && !file.is_test_line(tok.line)
                {
                    out.push(Finding::new(
                        &file.path,
                        tok.line,
                        self.name(),
                        format!(
                            "`{}` iterates in a randomly seeded order; fingerprint-feeding \
                             crates must use `BTree{}` (or collect and sort before iterating)",
                            tok.text,
                            &tok.text[4..]
                        ),
                    ));
                }
            }
        }
    }
}

/// Forbids wall-clock reads (`Instant::now`, `SystemTime`) outside
/// explicitly allowed profiling sites: virtual time is the only clock the
/// simulation may observe.
pub struct WallClock;

impl Rule for WallClock {
    fn name(&self) -> &'static str {
        "wall-clock"
    }

    fn description(&self) -> &'static str {
        "Instant::now/SystemTime are banned outside justified profiling sites; simulations observe virtual time only"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            scan_wall_clock(file, self.name(), out);
        }
    }
}

fn scan_wall_clock(file: &SourceFile, rule: &str, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.is_test_line(toks[i].line) {
            continue;
        }
        if toks[i].text == "Instant"
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("::")
            && toks.get(i + 2).map(|t| t.text.as_str()) == Some("now")
        {
            out.push(Finding::new(
                &file.path,
                toks[i].line,
                rule,
                "`Instant::now()` reads the machine clock; simulation results must be a \
                 function of the seed (justify profiling-only uses with an allow)",
            ));
        }
        if toks[i].text == "SystemTime" {
            out.push(Finding::new(
                &file.path,
                toks[i].line,
                rule,
                "`SystemTime` reads the machine clock; simulation results must be a \
                 function of the seed",
            ));
        }
    }
}

/// Forbids ambient entropy sources: every random stream must be derived
/// from the scenario seed.
pub struct Entropy;

/// Identifiers that smuggle ambient randomness into a run.
const ENTROPY_IDENTS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "OsRng",
    "RandomState",
    "getrandom",
];

impl Rule for Entropy {
    fn name(&self) -> &'static str {
        "entropy"
    }

    fn description(&self) -> &'static str {
        "ambient entropy (thread_rng, from_entropy, OsRng, RandomState, getrandom) is banned; derive every stream from the scenario seed"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            for tok in &file.tokens {
                if ENTROPY_IDENTS.contains(&tok.text.as_str()) && !file.is_test_line(tok.line) {
                    out.push(Finding::new(
                        &file.path,
                        tok.line,
                        self.name(),
                        format!(
                            "`{}` draws ambient entropy; every random stream must be \
                             derived from the scenario seed",
                            tok.text
                        ),
                    ));
                }
            }
        }
    }
}
