//! Decorator conformance: the aggregation stack composes as
//! `robust(dp(secure(strategy)))`, so any `Aggregator` impl that wraps
//! another must forward the pass-through hooks — a decorator that forgets
//! one silently severs telemetry (or weighting) for every layer beneath it.

use super::Rule;
use crate::report::Finding;
use crate::scan::{find_seq, matching};
use crate::Workspace;

/// Hooks with trait-provided defaults that decorators must forward.  Base
/// strategies (no inner aggregator) opt out with a justified allow.
const FORWARDED_HOOKS: &[&str] = &[
    "update_weight",
    "secure_telemetry",
    "dp_telemetry",
    "robust_telemetry",
];

/// Every `impl Aggregator for …` block defines all pass-through hooks or
/// carries an explicit opt-out allow.
pub struct DecoratorConformance;

impl Rule for DecoratorConformance {
    fn name(&self) -> &'static str {
        "decorator-conformance"
    }

    fn description(&self) -> &'static str {
        "every Aggregator impl forwards update_weight/secure_telemetry/dp_telemetry/robust_telemetry or opts out with a justified allow"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            let toks = &file.tokens;
            let mut i = 0usize;
            while let Some(at) = find_seq(toks, i, &["impl"]) {
                i = at + 1;
                if file.is_test_line(toks[at].line) {
                    continue;
                }
                // Skip `impl<…>` generics, then require `Aggregator for`.
                let mut j = at + 1;
                if toks.get(j).map(|t| t.text.as_str()) == Some("<") {
                    let mut depth = 0usize;
                    while let Some(t) = toks.get(j) {
                        match t.text.as_str() {
                            "<" => depth += 1,
                            ">" => {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
                if toks.get(j).map(|t| t.text.as_str()) != Some("Aggregator")
                    || toks.get(j + 1).map(|t| t.text.as_str()) != Some("for")
                {
                    continue;
                }
                // Find the impl body.
                let mut k = j + 2;
                while k < toks.len() && toks[k].text != "{" {
                    k += 1;
                }
                if k >= toks.len() {
                    continue;
                }
                let close = match matching(toks, k, "{", "}") {
                    Some(c) => c,
                    None => continue,
                };
                let body = &toks[k + 1..close];
                let missing: Vec<&str> = FORWARDED_HOOKS
                    .iter()
                    .copied()
                    .filter(|hook| find_seq(body, 0, &["fn", hook]).is_none())
                    .collect();
                if !missing.is_empty() {
                    out.push(Finding::new(
                        &file.path,
                        toks[at].line,
                        self.name(),
                        format!(
                            "`Aggregator` impl does not define {}; decorators must \
                             forward these hooks to their inner layer (base strategies \
                             opt out with a justified allow)",
                            missing
                                .iter()
                                .map(|m| format!("`{m}`"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    ));
                }
                i = close;
            }
        }
    }
}
