//! Panic hygiene: `unwrap()`/`expect()` in non-test library code either
//! becomes a typed error or carries a justified allow explaining why the
//! panic is an invariant violation rather than a reachable failure.

use super::Rule;
use crate::report::Finding;
use crate::Workspace;

/// Flags `.unwrap(` and `.expect(` in non-test code.  Adapters like
/// `unwrap_or_else` are distinct identifiers and never fire.
pub struct PanicHygiene;

impl Rule for PanicHygiene {
    fn name(&self) -> &'static str {
        "panic-hygiene"
    }

    fn description(&self) -> &'static str {
        "no unwrap()/expect() in non-test library code without a justified allow (typed errors preferred)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            let toks = &file.tokens;
            for i in 0..toks.len() {
                if toks[i].text != "." {
                    continue;
                }
                let name = match toks.get(i + 1) {
                    Some(t) if t.text == "unwrap" || t.text == "expect" => t.text.as_str(),
                    _ => continue,
                };
                if toks.get(i + 2).map(|t| t.text.as_str()) != Some("(") {
                    continue;
                }
                let line = toks[i + 1].line;
                if file.is_test_line(line) {
                    continue;
                }
                out.push(Finding::new(
                    &file.path,
                    line,
                    self.name(),
                    format!(
                        "`.{name}()` can panic in library code; return a typed error, or \
                         justify the invariant with an allow"
                    ),
                ));
            }
        }
    }
}
