//! A hand-rolled Rust lexer, just deep enough for invariant linting.
//!
//! The analyzer never parses Rust properly — it scans token streams — so the
//! lexer's only job is to never *mis*-tokenize: a `HashMap` inside a string
//! literal or a comment must not look like an identifier, a lifetime must
//! not swallow the rest of the file as an unterminated char literal, and a
//! nested block comment must not leak code back in.  Everything subtle in
//! Rust lexing lives here: raw strings (`r#"…"#`), byte and raw-byte
//! strings, raw identifiers (`r#fn`), nested `/* /* */ */` comments,
//! lifetimes vs. char literals, and doc comments.

/// What a token is; the scanner mostly matches on `Ident` and `Punct` text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are not distinguished).
    Ident,
    /// A lifetime such as `'a` or `'static` (without loop labels the
    /// distinction does not matter for linting).
    Lifetime,
    /// Character or byte literal, quotes included.
    CharLit,
    /// String literal of any flavor (plain, raw, byte), delimiters included.
    StrLit,
    /// Numeric literal.
    NumLit,
    /// Punctuation. Multi-character operators are emitted as single tokens
    /// only for `::`, `=>`, and `->`; everything else is one char per token.
    Punct,
}

/// One lexed token with its 1-indexed source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Token text. Raw identifiers are normalized (`r#fn` becomes `fn`);
    /// literals keep their delimiters.
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

/// One comment (line or block) with the line it starts on.  Allow directives
/// are parsed out of these; code rules never see comment text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// Comment body without the `//` / `/*` delimiters.
    pub text: String,
    /// 1-indexed line the comment starts on.
    pub line: u32,
}

/// The lexer's output: code tokens and comments, separately.
#[derive(Clone, Debug, Default)]
pub struct LexOutput {
    /// All code tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. Unterminated literals or comments do not abort the
/// scan: the remainder of the file is consumed as the open token, which is
/// the most conservative recovery for a linter.
pub fn lex(src: &str) -> LexOutput {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: LexOutput::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: LexOutput,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> LexOutput {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(line),
                'r' if matches!(self.peek(1), Some('"' | '#')) => self.raw_prefixed(line),
                'b' if matches!(self.peek(1), Some('\'' | '"' | 'r')) => self.byte_prefixed(line),
                _ if is_ident_start(c) => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => self.punct(line),
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { text, line });
    }

    /// Block comments nest in Rust: `/* /* */ */` is one comment.
    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push_str("/*");
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.out.comments.push(Comment { text, line });
    }

    /// Plain `"…"` strings (escapes honored so `"\""` does not end early).
    fn string(&mut self, line: u32) {
        let mut text = String::new();
        text.push('"');
        self.bump();
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::StrLit, text, line);
    }

    /// `r"…"` / `r#"…"#` raw strings and `r#ident` raw identifiers share the
    /// `r` prefix; a quote after the hashes means string, otherwise ident.
    fn raw_prefixed(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(1 + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(1 + hashes) == Some('"') {
            self.bump(); // r
            for _ in 0..hashes {
                self.bump();
            }
            self.raw_string_body(hashes, line);
        } else if hashes == 1 && self.peek(2).is_some_and(is_ident_start) {
            // Raw identifier: emit the bare name so `r#type` scans as `type`.
            self.bump(); // r
            self.bump(); // #
            self.ident(line);
        } else {
            self.ident(line);
        }
    }

    /// After the opening `r##…` prefix: consume `"…"##` with matching hashes.
    fn raw_string_body(&mut self, hashes: usize, line: u32) {
        let mut text = String::from("\"");
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' && (0..hashes).all(|i| self.peek(i) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokenKind::StrLit, text, line);
    }

    /// `b'x'`, `b"…"`, and `br#"…"#` byte-flavored literals.
    fn byte_prefixed(&mut self, line: u32) {
        match self.peek(1) {
            Some('\'') => {
                self.bump(); // b
                self.char_literal(line);
            }
            Some('"') => {
                self.bump(); // b
                self.string(line);
            }
            Some('r') => {
                let mut hashes = 0usize;
                while self.peek(2 + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(2 + hashes) == Some('"') {
                    self.bump(); // b
                    self.bump(); // r
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.raw_string_body(hashes, line);
                } else {
                    self.ident(line);
                }
            }
            _ => self.ident(line),
        }
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime): a backslash after
    /// the quote is always a char; otherwise it is a char only when a
    /// closing quote follows the single content character.
    fn char_or_lifetime(&mut self, line: u32) {
        let next = self.peek(1);
        let is_char = match next {
            Some('\\') => true,
            Some(c) if is_ident_start(c) => self.peek(2) == Some('\''),
            Some(_) => true, // e.g. '+' or ' '
            None => true,
        };
        if is_char {
            self.char_literal(line);
        } else {
            let mut text = String::from("'");
            self.bump();
            while let Some(c) = self.peek(0) {
                if is_ident_continue(c) {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line);
        }
    }

    fn char_literal(&mut self, line: u32) {
        let mut text = String::from("'");
        self.bump();
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokenKind::CharLit, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }

    /// Numbers only need to be consumed coherently (their value is never
    /// inspected): digits, then `.` only when followed by another digit so
    /// ranges like `0..n` and method calls like `1.max(x)` do not glue, with
    /// exponent signs (`1e-6`) folded in.
    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let fractional_dot =
                c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) && !text.contains('.');
            let exponent_sign =
                (c == '+' || c == '-') && matches!(text.chars().next_back(), Some('e' | 'E'));
            if c.is_ascii_alphanumeric() || c == '_' || fractional_dot || exponent_sign {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::NumLit, text, line);
    }

    fn punct(&mut self, line: u32) {
        let c = match self.bump() {
            Some(c) => c,
            None => return,
        };
        let joined = match (c, self.peek(0)) {
            (':', Some(':')) => Some("::"),
            ('=', Some('>')) => Some("=>"),
            ('-', Some('>')) => Some("->"),
            _ => None,
        };
        if let Some(op) = joined {
            self.bump();
            self.push(TokenKind::Punct, op.to_string(), line);
        } else {
            self.push(TokenKind::Punct, c.to_string(), line);
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn plain_tokens_carry_lines() {
        let out = lex("let x = 1;\nlet y = x;\n");
        let x = out
            .tokens
            .iter()
            .filter(|t| t.text == "x")
            .collect::<Vec<_>>();
        assert_eq!(x.len(), 2);
        assert_eq!(x[0].line, 1);
        assert_eq!(x[1].line, 2);
    }

    #[test]
    fn string_contents_are_not_idents() {
        assert_eq!(idents(r#"let s = "HashMap inside";"#), vec!["let", "s"]);
    }

    #[test]
    fn raw_strings_with_hashes_and_inner_quotes() {
        let out = lex(r###"let s = r#"quote " and HashMap"# ;"###);
        assert_eq!(
            out.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::StrLit)
                .count(),
            1
        );
        assert_eq!(
            idents(r###"let s = r#"quote " and HashMap"# ;"###),
            vec!["let", "s"]
        );
        // A raw string whose body contains a lone `"#`-like sequence only
        // closes on the matching number of hashes.
        let out = lex(r####"r##"inner "# still open"## x"####);
        assert_eq!(out.tokens.len(), 2);
        assert_eq!(out.tokens[1].text, "x");
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        assert_eq!(
            idents(r#"let b = b"HashMap"; let c = b'x';"#),
            vec!["let", "b", "let", "c"]
        );
        assert_eq!(idents(r##"let b = br#"HashMap"#;"##), vec!["let", "b"]);
    }

    #[test]
    fn raw_identifiers_normalize() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("a /* outer /* inner */ still comment */ b");
        assert_eq!(
            idents("a /* outer /* inner */ still comment */ b"),
            vec!["a", "b"]
        );
        assert_eq!(out.comments.len(), 1);
        assert!(out.comments[0].text.contains("inner"));
    }

    #[test]
    fn line_and_doc_comments_are_captured() {
        let out = lex("/// doc HashMap\n//! inner doc\n// plain\nfn f() {}\n");
        assert_eq!(out.comments.len(), 3);
        assert_eq!(out.comments[0].text, "/ doc HashMap");
        assert_eq!(out.comments[1].line, 2);
        assert!(!out.tokens.iter().any(|t| t.text == "HashMap"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let out = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::CharLit)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, vec!["'x'", "'\\n'"]);
        // 'static is a lifetime even though it is long.
        let out = lex("&'static str");
        assert!(out
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'static"));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let texts: Vec<String> = lex("0..n 1.5e-6 1_000u64 0xff 2.0f64")
            .tokens
            .into_iter()
            .map(|t| t.text)
            .collect();
        assert_eq!(
            texts,
            vec!["0", ".", ".", "n", "1.5e-6", "1_000u64", "0xff", "2.0f64"]
        );
    }

    #[test]
    fn joined_operators() {
        let texts: Vec<String> = lex("a::b => c -> d == e")
            .tokens
            .into_iter()
            .map(|t| t.text)
            .collect();
        assert_eq!(
            texts,
            vec!["a", "::", "b", "=>", "c", "->", "d", "=", "=", "e"]
        );
    }

    #[test]
    fn unterminated_literals_consume_to_eof_without_panicking() {
        assert_eq!(idents("let s = \"open"), vec!["let", "s"]);
        assert_eq!(idents("a /* open"), vec!["a"]);
        assert_eq!(idents("let c = 'open"), vec!["let", "c"]);
    }
}
