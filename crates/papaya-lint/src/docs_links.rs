//! Dead-link checker for the documentation set (the `--docs-links` mode).
//!
//! The docs book (`docs/*.md`, cross-linked from `README.md` and
//! `crates/papaya-lint/RULES.md`) is held to the same standard as the code:
//! CI fails when a relative link points at a file that does not exist.
//! Hand-rolled like everything else in this crate — no markdown parser
//! dependency, just the inline-link syntax the repo actually uses.
//!
//! What counts as a checkable link: an inline `[text](target)` whose target
//! is not an absolute URL (`http://`, `https://`, `mailto:`) and not a
//! pure in-page anchor (`#section`).  A `#anchor` suffix on a file target
//! is stripped before the existence check (anchor validity is out of
//! scope; file existence is the invariant).  Targets resolve relative to
//! the *linking file's* directory, exactly as a reader clicking through a
//! checkout (or the GitHub UI) would resolve them.

use crate::report::Finding;
use std::io;
use std::path::{Path, PathBuf};

/// Extracts `(line, target)` pairs for every inline markdown link in
/// `content` that warrants an existence check (relative file targets
/// only; absolute URLs and pure anchors are skipped, anchors stripped).
pub fn extract_relative_links(content: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let mut in_code_block = false;
    for (idx, line) in content.lines().enumerate() {
        // Fenced code blocks show link syntax without meaning it.
        if line.trim_start().starts_with("```") {
            in_code_block = !in_code_block;
            continue;
        }
        if in_code_block {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            let after = &rest[open + 2..];
            let Some(close) = after.find(')') else { break };
            let target = after[..close].trim();
            rest = &after[close + 1..];
            if target.is_empty()
                || target.starts_with('#')
                || target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            // Strip a #anchor suffix; the file part is what must exist.
            let file_part = target.split('#').next().unwrap_or(target);
            if file_part.is_empty() {
                continue;
            }
            out.push((idx as u32 + 1, file_part.to_string()));
        }
    }
    out
}

/// The markdown files whose links the checker owns: the repo-root
/// `README.md`, everything under `docs/`, and the lint rulebook.
fn doc_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let readme = root.join("README.md");
    if readme.is_file() {
        files.push(readme);
    }
    let rules = root.join("crates/papaya-lint/RULES.md");
    if rules.is_file() {
        files.push(rules);
    }
    let docs = root.join("docs");
    if docs.is_dir() {
        let mut stack = vec![docs];
        while let Some(dir) = stack.pop() {
            for entry in std::fs::read_dir(&dir)? {
                let path = entry?.path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_some_and(|e| e == "md") {
                    files.push(path);
                }
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Checks every documentation file under `root` and returns one finding
/// per dead relative link (empty when the docs are sound).
pub fn check_docs_links(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for file in doc_files(root)? {
        let content = std::fs::read_to_string(&file)?;
        let dir = file.parent().unwrap_or(root);
        for (line, target) in extract_relative_links(&content) {
            if !dir.join(&target).exists() {
                let rel = file.strip_prefix(root).unwrap_or(&file);
                findings.push(Finding::new(
                    rel.to_string_lossy(),
                    line,
                    "dead-doc-link",
                    format!("link target `{target}` does not exist"),
                ));
            }
        }
    }
    findings.sort();
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_relative_links_and_strips_anchors() {
        let md = "See [arch](docs/ARCHITECTURE.md) and \
                  [rules](crates/papaya-lint/RULES.md#baselines).\n\
                  External: [paper](https://example.com/x) and \
                  [mail](mailto:a@b.c); in-page: [here](#section).\n";
        let links = extract_relative_links(md);
        assert_eq!(
            links,
            vec![
                (1, "docs/ARCHITECTURE.md".to_string()),
                (1, "crates/papaya-lint/RULES.md".to_string()),
            ]
        );
    }

    #[test]
    fn code_blocks_and_multiple_links_per_line_are_handled() {
        let md = "[a](x.md) then [b](y.md)\n```\n[not a link](nope.md)\n```\n[c](z.md)\n";
        let links = extract_relative_links(md);
        assert_eq!(
            links.iter().map(|(_, t)| t.as_str()).collect::<Vec<_>>(),
            vec!["x.md", "y.md", "z.md"]
        );
        assert_eq!(links[2].0, 5, "line numbers survive the skipped fence");
    }

    #[test]
    fn dead_links_are_found_on_disk() {
        let root =
            std::env::temp_dir().join(format!("papaya-lint-docs-test-{}", std::process::id()));
        let docs = root.join("docs");
        std::fs::create_dir_all(&docs).expect("mkdir");
        std::fs::write(
            root.join("README.md"),
            "[ok](docs/REAL.md) [bad](docs/GONE.md)\n",
        )
        .expect("write");
        std::fs::write(
            docs.join("REAL.md"),
            "[up](../README.md) [broken](./missing/child.md#frag)\n",
        )
        .expect("write");
        let findings = check_docs_links(&root).expect("check");
        std::fs::remove_dir_all(&root).ok();
        let targets: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(findings.len(), 2, "{targets:?}");
        assert!(findings.iter().all(|f| f.rule == "dead-doc-link"));
        assert!(targets.iter().any(|m| m.contains("docs/GONE.md")));
        assert!(targets.iter().any(|m| m.contains("./missing/child.md")));
    }
}
