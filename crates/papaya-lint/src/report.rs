//! Findings, the machine-readable JSON report, and the baseline format.

use std::fmt;

/// One diagnostic: a rule violation at a file and line.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// The rule that fired (its `Rule::name`).
    pub rule: String,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// Creates a finding.
    pub fn new(
        path: impl Into<String>,
        line: u32,
        rule: impl Into<String>,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            path: path.into(),
            line,
            rule: rule.into(),
            message: message.into(),
        }
    }

    /// Line-independent identity used by the baseline: a finding survives
    /// unrelated edits shifting it up or down the file.
    pub fn baseline_key(&self) -> String {
        format!("{}\t{}\t{}", self.rule, self.path, self.message)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Renders findings as a JSON document (hand-rolled: the workspace builds
/// with no registry access, so no serde).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape(&f.rule),
            escape(&f.path),
            f.line,
            escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"total\": {}\n}}\n", findings.len()));
    out
}

/// Serializes findings as a baseline: one tab-separated
/// `rule\tfile\tmessage` line each, sorted — trivially diffable and
/// parseable without a JSON reader.
pub fn to_baseline(findings: &[Finding]) -> String {
    let mut keys: Vec<String> = findings.iter().map(Finding::baseline_key).collect();
    keys.sort();
    keys.dedup();
    let mut out = keys.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

/// Parses a baseline file's keys (blank lines and `#` comments ignored).
pub fn parse_baseline(content: &str) -> Vec<String> {
    content
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let findings = vec![Finding::new(
            "a.rs",
            3,
            "rule-x",
            "uses \"quotes\"\nand newline",
        )];
        let json = to_json(&findings);
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"total\": 1"));
    }

    #[test]
    fn empty_report_is_valid() {
        let json = to_json(&[]);
        assert!(json.contains("\"findings\": []"));
        assert!(json.contains("\"total\": 0"));
    }

    #[test]
    fn baseline_round_trips() {
        let findings = vec![
            Finding::new("b.rs", 9, "r2", "msg two"),
            Finding::new("a.rs", 3, "r1", "msg one"),
        ];
        let text = to_baseline(&findings);
        let keys = parse_baseline(&text);
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&findings[0].baseline_key()));
        assert!(keys.contains(&findings[1].baseline_key()));
        // Sorted output: r1 before r2.
        assert!(text.find("r1").unwrap_or(usize::MAX) < text.find("r2").unwrap_or(0));
    }
}
