//! The `papaya-lint` command-line front end.
//!
//! ```text
//! papaya-lint [--root DIR] [--deny-all] [--json PATH]
//!             [--baseline PATH] [--write-baseline PATH] [--quiet]
//! papaya-lint --docs-links [--root DIR]
//! ```
//!
//! Exit codes: `0` clean (or advisory mode), `1` findings under
//! `--deny-all` (dead links always fail in `--docs-links` mode),
//! `2` usage or I/O error.

use papaya_lint::docs_links::check_docs_links;
use papaya_lint::report::{parse_baseline, to_baseline, to_json, Finding};
use papaya_lint::rules::all_rules;
use papaya_lint::{analyze, Workspace};
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    deny_all: bool,
    json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    quiet: bool,
    docs_links: bool,
}

fn usage() -> String {
    let mut out = String::from(
        "papaya-lint: workspace invariant analyzer\n\n\
         USAGE: papaya-lint [--root DIR] [--deny-all] [--json PATH]\n\
         \x20                [--baseline PATH] [--write-baseline PATH] [--quiet]\n\
         \x20      papaya-lint --docs-links [--root DIR]\n\n\
         --root DIR            workspace root (default: current directory)\n\
         --deny-all            exit nonzero on any finding (the CI mode)\n\
         --json PATH           write the machine-readable JSON report\n\
         --baseline PATH       suppress findings listed in a baseline file\n\
         --write-baseline PATH write the current findings as a baseline\n\
         --quiet               print only the summary line\n\
         --docs-links          check README.md/docs/**.md for dead relative\n\
         \x20                      links instead of analyzing sources; any\n\
         \x20                      dead link fails the run\n\nRULES:\n",
    );
    for rule in all_rules() {
        out.push_str(&format!("  {:22} {}\n", rule.name(), rule.description()));
    }
    out
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        deny_all: false,
        json: None,
        baseline: None,
        write_baseline: None,
        quiet: false,
        docs_links: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut path_arg = |name: &str| {
            args.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{name} requires a path argument"))
        };
        match arg.as_str() {
            "--root" => opts.root = path_arg("--root")?,
            "--deny-all" => opts.deny_all = true,
            "--json" => opts.json = Some(path_arg("--json")?),
            "--baseline" => opts.baseline = Some(path_arg("--baseline")?),
            "--write-baseline" => opts.write_baseline = Some(path_arg("--write-baseline")?),
            "--quiet" => opts.quiet = true,
            "--docs-links" => opts.docs_links = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n\n{}", usage())),
        }
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<Vec<Finding>, String> {
    let ws = Workspace::from_disk(&opts.root).map_err(|e| e.to_string())?;
    let mut findings = analyze(&ws);

    if let Some(path) = &opts.write_baseline {
        fs::write(path, to_baseline(&findings))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!(
            "papaya-lint: wrote baseline with {} finding(s) to {}",
            findings.len(),
            path.display()
        );
    }

    if let Some(path) = &opts.baseline {
        let content =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let keys = parse_baseline(&content);
        let before = findings.len();
        findings.retain(|f| !keys.contains(&f.baseline_key()));
        if !opts.quiet {
            eprintln!(
                "papaya-lint: baseline {} suppressed {} pre-existing finding(s)",
                path.display(),
                before - findings.len()
            );
        }
    }

    if let Some(path) = &opts.json {
        fs::write(path, to_json(&findings))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }

    if !opts.quiet {
        for f in &findings {
            println!("{f}");
        }
    }
    let n_files = ws.files.len();
    let n_rules = all_rules().len();
    if findings.is_empty() {
        eprintln!("papaya-lint: clean — {n_files} files, {n_rules} rules, 0 findings");
    } else {
        eprintln!(
            "papaya-lint: {} finding(s) across {n_files} files ({n_rules} rules)",
            findings.len()
        );
    }
    Ok(findings)
}

/// The `--docs-links` mode: dead relative links in the documentation set
/// are always hard failures — there is no advisory variant of a 404.
fn run_docs_links(opts: &Options) -> ExitCode {
    match check_docs_links(&opts.root) {
        Ok(findings) if findings.is_empty() => {
            eprintln!("papaya-lint: docs links clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("papaya-lint: {} dead doc link(s)", findings.len());
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("papaya-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if opts.docs_links {
        return run_docs_links(&opts);
    }
    match run(&opts) {
        Ok(findings) => {
            if opts.deny_all && !findings.is_empty() {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("papaya-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}
