//! papaya-lint: a workspace invariant analyzer for the PAPAYA reproduction.
//!
//! The repo's headline guarantee — a bit-identical `Report::fingerprint()`
//! at any thread count, under `dp(secure(strategy))` stacking and crash
//! injection — rests on structural conventions: no unordered-map iteration
//! in fingerprint-feeding paths, every config field acknowledged by a
//! validator, every event variant dispatched, every metrics field hashed or
//! exempted, no stray panics in library code, decorators forwarding their
//! hooks.  This crate machine-checks those conventions with a hand-rolled
//! lexer and a token-stream scanner (no `syn`; the build box has no
//! registry access), so they survive growth instead of relying on reviewer
//! vigilance.
//!
//! Run it over the workspace:
//!
//! ```text
//! cargo run -p papaya-lint -- --deny-all
//! ```
//!
//! Suppress a finding only with an inline justification:
//!
//! ```text
//! // papaya-lint: allow(wall-clock) -- profiling-only; never fingerprinted
//! ```
//!
//! Unjustified, unknown, or unused allow directives are findings
//! themselves.  See `RULES.md` for the catalog.

pub mod docs_links;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;

use report::Finding;
use rules::{all_rules, known_rule_names};
use scan::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The analyzed source set.
#[derive(Clone, Debug)]
pub struct Workspace {
    /// Parsed files, sorted by path for deterministic diagnostics.
    pub files: Vec<SourceFile>,
}

/// Directory names under `crates/` that are exempt from analysis: vendored
/// stand-ins (`compat`) and the benchmark harness (`bench`), which measures
/// wall-clock time by design.
const EXEMPT_CRATE_DIRS: &[&str] = &["compat", "bench"];

impl Workspace {
    /// Builds a workspace from in-memory sources (fixtures and tests).
    /// Paths should mimic real workspace-relative layout
    /// (`crates/<crate>/src/<file>.rs`) so rule scoping applies.
    pub fn from_sources(sources: Vec<(String, String)>) -> Workspace {
        let mut files: Vec<SourceFile> = sources
            .into_iter()
            .map(|(path, src)| SourceFile::parse(path, &src))
            .collect();
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Workspace { files }
    }

    /// Walks `<root>/crates/*/src/**/*.rs` (excluding the vendored `compat`
    /// stand-ins and the `bench` harness) and parses every library source
    /// file.  Integration tests, examples, and benches are out of scope by
    /// construction: only `src/` trees are analyzed.
    pub fn from_disk(root: &Path) -> io::Result<Workspace> {
        let crates_dir = root.join("crates");
        if !crates_dir.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "{} has no crates/ directory; pass the workspace root via --root",
                    root.display()
                ),
            ));
        }
        let mut sources = Vec::new();
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            let name = crate_dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if EXEMPT_CRATE_DIRS.contains(&name.as_str()) {
                continue;
            }
            let src = crate_dir.join("src");
            if src.is_dir() {
                collect_rs(&src, root, &mut sources)?;
            }
        }
        Ok(Workspace::from_sources(sources))
    }
}

/// Recursively collects `.rs` files under `dir` as `(relative path, text)`.
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// A parsed `// papaya-lint: allow(<rule>) -- <justification>` directive.
#[derive(Clone, Debug)]
struct AllowDirective {
    rule: String,
    /// Line of the comment itself.
    line: u32,
    /// Line of code the directive covers: its own line for a trailing
    /// comment, the next code line for a standalone comment.
    covered_line: Option<u32>,
    justified: bool,
    used: bool,
}

const DIRECTIVE_PREFIX: &str = "papaya-lint:";

fn parse_directives(file: &SourceFile) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for comment in &file.comments {
        // Plain `//` comments only: a doc comment's text starts with `/` or
        // `!`, so directive examples inside docs never parse as directives.
        let text = comment.text.trim();
        let rest = match text.strip_prefix(DIRECTIVE_PREFIX) {
            Some(r) => r.trim_start(),
            None => continue,
        };
        let inner = rest.strip_prefix("allow(").and_then(|r| r.split_once(')'));
        let (rule, tail) = match inner {
            Some((rule, tail)) => (rule.trim().to_string(), tail.trim()),
            None => {
                // Malformed directive: surface it as unknown rather than
                // silently ignoring a typo like `papaya-lint: alow(...)`.
                out.push(AllowDirective {
                    rule: String::new(),
                    line: comment.line,
                    covered_line: covered_line(file, comment.line),
                    justified: false,
                    used: false,
                });
                continue;
            }
        };
        let justification = tail.strip_prefix("--").map(str::trim).unwrap_or("");
        out.push(AllowDirective {
            rule,
            line: comment.line,
            covered_line: covered_line(file, comment.line),
            justified: !justification.is_empty(),
            used: false,
        });
    }
    out
}

fn covered_line(file: &SourceFile, directive_line: u32) -> Option<u32> {
    if file.has_code_on(directive_line) {
        Some(directive_line)
    } else {
        file.next_code_line(directive_line + 1)
    }
}

/// Runs every rule over the workspace, applies allow directives, and
/// appends the meta findings (`unjustified-allow`, `unknown-rule`,
/// `unused-allow`).  The returned list is sorted by path, line, rule.
pub fn analyze(ws: &Workspace) -> Vec<Finding> {
    let mut raw = Vec::new();
    for rule in all_rules() {
        rule.check(ws, &mut raw);
    }
    let known = known_rule_names();

    // Per-file directive tables.
    let mut directives: Vec<(String, Vec<AllowDirective>)> = ws
        .files
        .iter()
        .map(|f| (f.path.clone(), parse_directives(f)))
        .collect();

    let mut findings = Vec::new();
    for finding in raw {
        let table = directives
            .iter_mut()
            .find(|(path, _)| *path == finding.path)
            .map(|(_, d)| d);
        let mut suppressed = false;
        if let Some(table) = table {
            for d in table.iter_mut() {
                if d.rule == finding.rule && d.covered_line == Some(finding.line) {
                    d.used = true;
                    // Only a *justified* allow suppresses; an unjustified
                    // one keeps the original finding and adds its own.
                    if d.justified {
                        suppressed = true;
                    }
                }
            }
        }
        if !suppressed {
            findings.push(finding);
        }
    }

    for (path, table) in &directives {
        for d in table {
            if d.rule.is_empty() {
                findings.push(Finding::new(
                    path,
                    d.line,
                    "unknown-rule",
                    "malformed papaya-lint directive; expected \
                     `papaya-lint: allow(<rule>) -- <justification>`",
                ));
                continue;
            }
            if !known.contains(&d.rule.as_str()) {
                findings.push(Finding::new(
                    path,
                    d.line,
                    "unknown-rule",
                    format!("allow names unknown rule `{}`", d.rule),
                ));
                continue;
            }
            if !d.justified {
                findings.push(Finding::new(
                    path,
                    d.line,
                    "unjustified-allow",
                    format!(
                        "allow({}) has no justification; append ` -- <why this is sound>` \
                         (the determinism rationale lives in docs/DETERMINISM.md)",
                        d.rule
                    ),
                ));
                continue;
            }
            if !d.used {
                findings.push(Finding::new(
                    path,
                    d.line,
                    "unused-allow",
                    format!(
                        "allow({}) suppresses nothing on line {:?}; remove it so stale \
                         exemptions cannot mask future findings",
                        d.rule, d.covered_line
                    ),
                ));
            }
        }
    }

    findings.sort();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            files
                .iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect(),
        )
    }

    #[test]
    fn justified_allow_suppresses_and_is_used() {
        let w = ws(&[(
            "crates/papaya-core/src/x.rs",
            "use std::collections::HashMap; // papaya-lint: allow(unordered-collections) -- demo\n",
        )]);
        assert!(analyze(&w).is_empty());
    }

    #[test]
    fn standalone_allow_covers_next_code_line() {
        let w = ws(&[(
            "crates/papaya-core/src/x.rs",
            "// papaya-lint: allow(unordered-collections) -- demo\n\nuse std::collections::HashMap;\n",
        )]);
        assert!(analyze(&w).is_empty());
    }

    #[test]
    fn unjustified_allow_keeps_finding_and_reports_itself() {
        let w = ws(&[(
            "crates/papaya-core/src/x.rs",
            "use std::collections::HashMap; // papaya-lint: allow(unordered-collections)\n",
        )]);
        let findings = analyze(&w);
        assert!(findings.iter().any(|f| f.rule == "unordered-collections"));
        // The meta finding points the author at the written-down rationale,
        // not just the syntax to silence it.
        let meta = findings
            .iter()
            .find(|f| f.rule == "unjustified-allow")
            .expect("unjustified-allow reported");
        assert!(
            meta.message.contains("docs/DETERMINISM.md"),
            "message should cite the determinism doc: {}",
            meta.message
        );
    }

    #[test]
    fn unknown_rule_and_unused_allow_are_findings() {
        let w = ws(&[(
            "crates/papaya-core/src/x.rs",
            "// papaya-lint: allow(no-such-rule) -- why\nfn f() {}\n\
             // papaya-lint: allow(wall-clock) -- nothing here\nfn g() {}\n",
        )]);
        let findings = analyze(&w);
        assert!(findings.iter().any(|f| f.rule == "unknown-rule"));
        assert!(findings.iter().any(|f| f.rule == "unused-allow"));
    }

    #[test]
    fn malformed_directive_is_reported() {
        let w = ws(&[(
            "crates/papaya-core/src/x.rs",
            "// papaya-lint: alow(wall-clock) -- typo\nfn f() {}\n",
        )]);
        let findings = analyze(&w);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unknown-rule");
    }
}
