//! Token-stream scanning: one parsed source file plus the shared helpers
//! rules are written against — `#[cfg(test)]` region exclusion, allow
//! directives, balanced-delimiter matching, and struct/enum/destructure
//! field extraction.

use crate::lexer::{lex, Comment, Token, TokenKind};

/// One lexed workspace file with the derived facts every rule needs.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes
    /// (`crates/papaya-core/src/config.rs`).
    pub path: String,
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
    /// 1-indexed line → the line is inside a `#[test]`/`#[cfg(test)]` item.
    test_lines: Vec<bool>,
    /// Sorted, deduplicated lines that carry at least one code token.
    code_lines: Vec<u32>,
}

impl SourceFile {
    /// Lexes `src` and computes test regions and code-line positions.
    pub fn parse(path: impl Into<String>, src: &str) -> SourceFile {
        let out = lex(src);
        let max_line = src.lines().count().max(1) as u32;
        let test_lines = test_line_map(&out.tokens, max_line);
        let mut code_lines: Vec<u32> = out.tokens.iter().map(|t| t.line).collect();
        code_lines.dedup();
        SourceFile {
            path: path.into(),
            tokens: out.tokens,
            comments: out.comments,
            test_lines,
            code_lines,
        }
    }

    /// Whether the 1-indexed line sits inside a test item (a `#[test]` fn or
    /// a `#[cfg(test)]` module): production rules skip those regions.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.get(line as usize).copied().unwrap_or(false)
    }

    /// The first line at or after `line` that carries code, if any — the
    /// line a standalone allow comment covers.
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        let idx = self.code_lines.partition_point(|&l| l < line);
        self.code_lines.get(idx).copied()
    }

    /// Whether `line` carries at least one code token.
    pub fn has_code_on(&self, line: u32) -> bool {
        self.code_lines.binary_search(&line).is_ok()
    }
}

/// Marks every line covered by a test-gated item.  An attribute whose
/// bracket contents mention both `cfg` and `test` (or bare `test`) gates the
/// item that follows: the region runs to the item's closing brace, or to the
/// terminating `;` for brace-less items.
fn test_line_map(tokens: &[Token], max_line: u32) -> Vec<bool> {
    let mut map = vec![false; max_line as usize + 2];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text != "#" || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        let close = match matching(tokens, i + 1, "[", "]") {
            Some(c) => c,
            None => break,
        };
        let body = &tokens[i + 2..close];
        let mentions = |name: &str| {
            body.iter()
                .any(|t| t.kind == TokenKind::Ident && t.text == name)
        };
        // `not(test)` gates *production* code; only positive test cfgs count.
        let is_test_attr =
            mentions("test") && !mentions("not") && (mentions("cfg") || body.len() == 1);
        if !is_test_attr {
            i = close + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut j = close + 1;
        while tokens.get(j).map(|t| t.text.as_str()) == Some("#")
            && tokens.get(j + 1).map(|t| t.text.as_str()) == Some("[")
        {
            match matching(tokens, j + 1, "[", "]") {
                Some(c) => j = c + 1,
                None => return map,
            }
        }
        // Find the item's extent: the first top-level `{ … }`, or a `;`.
        let mut end = None;
        let mut k = j;
        while let Some(tok) = tokens.get(k) {
            match tok.text.as_str() {
                ";" => {
                    end = Some(k);
                    break;
                }
                "{" => {
                    end = matching(tokens, k, "{", "}");
                    break;
                }
                _ => k += 1,
            }
        }
        let end = match end {
            Some(e) => e,
            None => tokens.len() - 1,
        };
        let from = tokens[i].line as usize;
        let to = tokens[end].line as usize;
        for line in from..=to.min(map.len() - 1) {
            map[line] = true;
        }
        i = end + 1;
    }
    map
}

/// Index of the delimiter closing `tokens[open]` (which must equal `open_d`),
/// honoring nesting.  `None` when unbalanced.
pub fn matching(tokens: &[Token], open: usize, open_d: &str, close_d: &str) -> Option<usize> {
    debug_assert_eq!(tokens[open].text, open_d);
    let mut depth = 0usize;
    for (i, tok) in tokens.iter().enumerate().skip(open) {
        if tok.kind == TokenKind::Punct {
            if tok.text == open_d {
                depth += 1;
            } else if tok.text == close_d {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
        }
    }
    None
}

/// First index at or after `start` where the token texts match `pattern`
/// exactly, with every `pattern` entry matched against consecutive tokens.
pub fn find_seq(tokens: &[Token], start: usize, pattern: &[&str]) -> Option<usize> {
    if pattern.is_empty() || tokens.len() < pattern.len() {
        return None;
    }
    (start..=tokens.len() - pattern.len()).find(|&i| {
        pattern
            .iter()
            .enumerate()
            .all(|(j, p)| tokens[i + j].text == *p)
    })
}

/// A struct field or enum variant name with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NamedItem {
    /// Field or variant identifier.
    pub name: String,
    /// 1-indexed line of the identifier.
    pub line: u32,
}

/// The named fields of `struct name { … }`, or `None` when the struct (or
/// its brace body) is not found.  Attributes on fields are skipped; tuple
/// structs yield an empty list.
pub fn struct_fields(file: &SourceFile, name: &str) -> Option<Vec<NamedItem>> {
    fields_of(&file.tokens, "struct", name)
}

/// The variants of `enum name { … }`, or `None` when not found.
pub fn enum_variants(file: &SourceFile, name: &str) -> Option<Vec<NamedItem>> {
    fields_of(&file.tokens, "enum", name)
}

fn fields_of(tokens: &[Token], keyword: &str, name: &str) -> Option<Vec<NamedItem>> {
    let at = find_seq(tokens, 0, &[keyword, name])?;
    // Skip generics, then expect the brace body.
    let mut i = at + 2;
    if tokens.get(i).map(|t| t.text.as_str()) == Some("<") {
        i = skip_angles(tokens, i)?;
    }
    if tokens.get(i).map(|t| t.text.as_str()) != Some("{") {
        return None; // tuple struct / unit struct / `enum X;`
    }
    let close = matching(tokens, i, "{", "}")?;
    let mut items = Vec::new();
    let mut j = i + 1;
    while j < close {
        // Skip attributes on the field/variant.
        while tokens[j].text == "#" && tokens.get(j + 1).map(|t| t.text.as_str()) == Some("[") {
            j = matching(tokens, j + 1, "[", "]")? + 1;
        }
        // Skip visibility.
        if tokens[j].text == "pub" {
            j += 1;
            if tokens.get(j).map(|t| t.text.as_str()) == Some("(") {
                j = matching(tokens, j, "(", ")")? + 1;
            }
        }
        if j >= close {
            break;
        }
        if tokens[j].kind == TokenKind::Ident {
            items.push(NamedItem {
                name: tokens[j].text.clone(),
                line: tokens[j].line,
            });
        }
        // Advance to the comma ending this field/variant, skipping nested
        // delimiters (variant payloads, generic field types, defaults).
        j += 1;
        let mut depth = 0usize;
        while j < close {
            match tokens[j].text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth = depth.saturating_sub(1),
                "," if depth == 0 => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
    Some(items)
}

/// Skips a balanced `< … >` starting at `open`; returns the index after the
/// closing `>`.  Good enough for declaration generics (no shift operators).
fn skip_angles(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, tok) in tokens.iter().enumerate().skip(open) {
        match tok.text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// The token range (exclusive of braces) of the body of `fn name`, searched
/// from `start`.  Returns `(body_start, body_end, fn_line)`.
pub fn fn_body(file: &SourceFile, name: &str, start: usize) -> Option<(usize, usize, u32)> {
    let at = find_seq(&file.tokens, start, &["fn", name])?;
    let line = file.tokens[at].line;
    let mut i = at + 2;
    while i < file.tokens.len() && file.tokens[i].text != "{" {
        if file.tokens[i].text == ";" {
            return None; // trait method signature without a body
        }
        i += 1;
    }
    if i >= file.tokens.len() {
        return None;
    }
    let close = matching(&file.tokens, i, "{", "}")?;
    Some((i + 1, close, line))
}

/// A struct destructuring pattern `Name { a, b: _, … }` found inside a token
/// range: the bound field names plus whether a `..` rest pattern appears.
#[derive(Clone, Debug, Default)]
pub struct Destructure {
    /// Field names bound (or explicitly ignored with `field: _`).
    pub fields: Vec<NamedItem>,
    /// Whether the pattern uses `..` (which silently absorbs new fields).
    pub has_rest: bool,
    /// Line the pattern starts on.
    pub line: u32,
}

/// Finds the first `name { … }` destructure inside `tokens[range]`.
pub fn find_destructure(
    tokens: &[Token],
    range: (usize, usize),
    name: &str,
) -> Option<Destructure> {
    let (start, end) = range;
    let at = find_seq(&tokens[..end], start, &[name, "{"])?;
    let open = at + 1;
    let close = matching(tokens, open, "{", "}")?;
    let mut out = Destructure {
        line: tokens[at].line,
        ..Destructure::default()
    };
    let mut j = open + 1;
    while j < close {
        if tokens[j].text == "." && tokens.get(j + 1).map(|t| t.text.as_str()) == Some(".") {
            out.has_rest = true;
            j += 2;
            continue;
        }
        if tokens[j].kind == TokenKind::Ident && tokens[j].text != "ref" && tokens[j].text != "mut"
        {
            out.fields.push(NamedItem {
                name: tokens[j].text.clone(),
                line: tokens[j].line,
            });
        }
        // Skip to the comma ending this binding (`field: pattern` included).
        j += 1;
        let mut depth = 0usize;
        while j < close {
            match tokens[j].text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth = depth.saturating_sub(1),
                "," if depth == 0 => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("crates/demo/src/lib.rs", src)
    }

    #[test]
    fn cfg_test_module_lines_are_test_lines() {
        let f = file("fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn prod2() {}\n");
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn test_attribute_fn_is_excluded() {
        let f = file("#[test]\nfn check() {\n    body();\n}\nfn prod() {}\n");
        assert!(f.is_test_line(3));
        assert!(!f.is_test_line(5));
    }

    #[test]
    fn cfg_all_test_is_recognized() {
        let f = file("#[cfg(all(test, feature = \"x\"))]\nmod t {\n    fn a() {}\n}\n");
        assert!(f.is_test_line(3));
    }

    #[test]
    fn struct_fields_with_attrs_and_pub() {
        let f = file(
            "pub struct S {\n    pub a: u64,\n    #[allow(dead_code)]\n    b: Vec<(f64, u64)>,\n    pub(crate) c: Option<f64>,\n}\n",
        );
        let fields = struct_fields(&f, "S").expect("struct found");
        let names: Vec<_> = fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(fields[1].line, 4);
    }

    #[test]
    fn enum_variants_with_payloads() {
        let f = file(
            "pub enum E {\n    Plain,\n    Tuple(u64, f64),\n    Struct { x: u64, y: u64 },\n}\n",
        );
        let names: Vec<_> = enum_variants(&f, "E")
            .expect("enum found")
            .into_iter()
            .map(|v| v.name)
            .collect();
        assert_eq!(names, vec!["Plain", "Tuple", "Struct"]);
    }

    #[test]
    fn destructure_fields_and_rest() {
        let f = file("fn v(c: &C) {\n    let C { a, b: _, .. } = c;\n}\n");
        let (s, e, _) = fn_body(&f, "v", 0).expect("fn found");
        let d = find_destructure(&f.tokens, (s, e), "C").expect("destructure found");
        let names: Vec<_> = d.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(d.has_rest);
    }

    #[test]
    fn next_code_line_skips_blanks_and_comments() {
        let f = file("fn a() {}\n\n// comment\nfn b() {}\n");
        assert_eq!(f.next_code_line(2), Some(4));
        assert!(f.has_code_on(1));
        assert!(!f.has_code_on(3));
    }
}
