//! The character-level LSTM language model.

use papaya_nn::embedding::Embedding;
use papaya_nn::linear::Linear;
use papaya_nn::loss::softmax_cross_entropy;
use papaya_nn::lstm::{LstmCell, LstmState};
use papaya_nn::params::ParamVec;
use papaya_nn::tensor::Matrix;

/// Architecture hyperparameters of the language model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LmConfig {
    /// Vocabulary size (number of distinct character tokens).
    pub vocab_size: usize,
    /// Embedding dimensionality.
    pub embedding_dim: usize,
    /// LSTM hidden width.
    pub hidden_size: usize,
}

impl LmConfig {
    /// The configuration used by the experiments: 28-character vocabulary,
    /// 12-dimensional embeddings, 24 hidden units (~5k parameters) — small
    /// enough to train per-client inside the simulator.
    pub fn tiny() -> Self {
        LmConfig {
            vocab_size: papaya_data::text::vocab_size(),
            embedding_dim: 12,
            hidden_size: 24,
        }
    }
}

/// A next-character prediction model: embedding → LSTM → linear → softmax.
#[derive(Clone, Debug)]
pub struct CharLstm {
    config: LmConfig,
    embedding: Embedding,
    lstm: LstmCell,
    output: Linear,
}

impl CharLstm {
    /// Creates a model with freshly initialized weights.
    pub fn new(config: LmConfig, seed: u64) -> Self {
        CharLstm {
            config,
            embedding: Embedding::new(config.vocab_size, config.embedding_dim, seed),
            lstm: LstmCell::new(
                config.embedding_dim,
                config.hidden_size,
                seed.wrapping_add(1),
            ),
            output: Linear::new(config.hidden_size, config.vocab_size, seed.wrapping_add(2)),
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> LmConfig {
        self.config
    }

    /// Shapes of all parameter matrices, in the flattening order used by
    /// [`CharLstm::param_vector`].
    pub fn parameter_shapes(&self) -> Vec<(usize, usize)> {
        self.parameter_matrices()
            .iter()
            .map(|m| m.shape())
            .collect()
    }

    fn parameter_matrices(&self) -> Vec<&Matrix> {
        let mut out = self.embedding.parameter_matrices();
        out.extend(self.lstm.parameter_matrices());
        out.extend(self.output.parameter_matrices());
        out
    }

    /// Total number of scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.parameter_matrices()
            .iter()
            .map(|m| m.rows() * m.cols())
            .sum()
    }

    /// Flattens all parameters into a single vector.
    pub fn param_vector(&self) -> ParamVec {
        ParamVec::from_matrices(self.parameter_matrices())
    }

    /// Loads parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match [`CharLstm::parameter_count`].
    pub fn set_param_vector(&mut self, params: &ParamVec) {
        let shapes = self.parameter_shapes();
        let matrices = params.to_matrices(&shapes);
        self.embedding.set_parameter_matrices(&matrices[0..1]);
        self.lstm.set_parameter_matrices(&matrices[1..4]);
        self.output.set_parameter_matrices(&matrices[4..6]);
    }

    /// Evaluates the mean per-token cross-entropy of one token sequence
    /// (next-character prediction), without updating any state.
    ///
    /// Returns `None` for sequences shorter than two tokens.
    pub fn sequence_loss(&self, tokens: &[usize]) -> Option<f32> {
        if tokens.len() < 2 {
            return None;
        }
        let mut state = LstmState::zeros(1, self.config.hidden_size);
        let mut total = 0.0f32;
        let steps = tokens.len() - 1;
        for t in 0..steps {
            let embedded = self.embedding.forward_inference(&tokens[t..t + 1]);
            state = self.lstm.step_inference(&embedded, &state);
            let logits = self.output.forward_inference(&state.h);
            let (loss, _) = softmax_cross_entropy(&logits, &tokens[t + 1..t + 2]);
            total += loss;
        }
        Some(total / steps as f32)
    }

    /// Runs one SGD pass over a token sequence (forward, backprop through
    /// time, and an in-place SGD step with the given learning rate).
    /// Returns the mean per-token loss before the update, or `None` for
    /// sequences shorter than two tokens.
    pub fn train_sequence(&mut self, tokens: &[usize], learning_rate: f32) -> Option<f32> {
        if tokens.len() < 2 {
            return None;
        }
        let hidden = self.config.hidden_size;
        let steps = tokens.len() - 1;

        self.embedding.zero_grad();
        self.lstm.zero_grad();
        self.output.zero_grad();
        self.lstm.clear_cache();

        // Forward pass, retaining per-step caches for BPTT.
        let mut state = LstmState::zeros(1, hidden);
        let mut total_loss = 0.0f32;
        let mut logit_grads: Vec<Matrix> = Vec::with_capacity(steps);
        let mut embedded_inputs: Vec<Vec<usize>> = Vec::with_capacity(steps);
        // Separate output layers per step would double-count cached input, so
        // collect logits gradients and replay the output layer backward with
        // per-step forward caches: run output.forward for each step right
        // before its backward in reverse order below.  To keep the math
        // simple we recompute the output-layer forward in the backward loop.
        let mut hidden_states: Vec<Matrix> = Vec::with_capacity(steps);
        for t in 0..steps {
            let ids = vec![tokens[t]];
            let embedded = self.embedding.forward_inference(&ids);
            state = self.lstm.step(&embedded, &state);
            let logits = self.output.forward_inference(&state.h);
            let (loss, grad_logits) = softmax_cross_entropy(&logits, &tokens[t + 1..t + 2]);
            total_loss += loss;
            logit_grads.push(grad_logits);
            embedded_inputs.push(ids);
            hidden_states.push(state.h.clone());
        }

        // Backward pass (reverse time).
        let mut grad_h_next = Matrix::zeros(1, hidden);
        let mut grad_c_next = Matrix::zeros(1, hidden);
        for t in (0..steps).rev() {
            // Output layer gradient for this step.
            let _ = self.output.forward(&hidden_states[t]);
            let grad_h_from_output = self.output.backward(&logit_grads[t]);
            let grad_h = grad_h_from_output.add(&grad_h_next);
            let (grad_embedded, grad_h_prev, grad_c_prev) =
                self.lstm.backward_step(&grad_h, &grad_c_next);
            let _ = self.embedding.forward(&embedded_inputs[t]);
            self.embedding.backward(&grad_embedded);
            grad_h_next = grad_h_prev;
            grad_c_next = grad_c_prev;
        }

        // SGD step over all parameters.
        let mut params = self.embedding.parameters_mut();
        params.extend(self.lstm.parameters_mut());
        params.extend(self.output.parameters_mut());
        for p in params.iter_mut() {
            let grads = p.grad.data().to_vec();
            for (value, grad) in p.value.data_mut().iter_mut().zip(grads.iter()) {
                *value -= learning_rate * grad / steps as f32;
            }
        }
        Some(total_loss / steps as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papaya_data::text::{char_to_id, TextGenerator};

    fn tokens(text: &str) -> Vec<usize> {
        text.chars().map(char_to_id).collect()
    }

    #[test]
    fn parameter_roundtrip() {
        let model = CharLstm::new(LmConfig::tiny(), 1);
        let params = model.param_vector();
        assert_eq!(params.len(), model.parameter_count());
        let mut other = CharLstm::new(LmConfig::tiny(), 99);
        assert_ne!(other.param_vector(), params);
        other.set_param_vector(&params);
        assert_eq!(other.param_vector(), params);
    }

    #[test]
    fn initial_loss_is_near_uniform() {
        let model = CharLstm::new(LmConfig::tiny(), 2);
        let loss = model.sequence_loss(&tokens("hello world.")).unwrap();
        let uniform = (LmConfig::tiny().vocab_size as f32).ln();
        assert!(
            (loss - uniform).abs() < 0.7,
            "loss {loss} vs uniform {uniform}"
        );
    }

    #[test]
    fn training_on_one_sequence_reduces_its_loss() {
        let mut model = CharLstm::new(LmConfig::tiny(), 3);
        let seq = tokens("the quick brown fox jumps.");
        let before = model.sequence_loss(&seq).unwrap();
        for _ in 0..200 {
            model.train_sequence(&seq, 1.0);
        }
        let after = model.sequence_loss(&seq).unwrap();
        assert!(after < 0.6 * before, "loss {before} -> {after}");
    }

    #[test]
    fn training_generalizes_to_same_distribution() {
        // Train on sentences from one client generator and check loss drops
        // on fresh sentences from the same generator.
        let mut generator = TextGenerator::for_client(1, 0.2, 7);
        let train: Vec<Vec<usize>> = (0..30).map(|_| generator.sentence(4)).collect();
        let test: Vec<Vec<usize>> = (0..10).map(|_| generator.sentence(4)).collect();
        let mut model = CharLstm::new(LmConfig::tiny(), 5);
        let eval = |m: &CharLstm| -> f32 {
            let losses: Vec<f32> = test.iter().filter_map(|s| m.sequence_loss(s)).collect();
            losses.iter().sum::<f32>() / losses.len() as f32
        };
        let before = eval(&model);
        for _ in 0..3 {
            for seq in &train {
                model.train_sequence(seq, 0.3);
            }
        }
        let after = eval(&model);
        assert!(after < before, "test loss {before} -> {after}");
    }

    #[test]
    fn short_sequences_are_skipped() {
        let mut model = CharLstm::new(LmConfig::tiny(), 1);
        assert!(model.sequence_loss(&[0]).is_none());
        assert!(model.train_sequence(&[0], 0.1).is_none());
        assert!(model.sequence_loss(&[]).is_none());
    }

    #[test]
    fn train_sequence_returns_pre_update_loss() {
        let mut model = CharLstm::new(LmConfig::tiny(), 4);
        let seq = tokens("abcabcabc.");
        let reported = model.train_sequence(&seq, 0.1).unwrap();
        let uniform = (LmConfig::tiny().vocab_size as f32).ln();
        assert!((reported - uniform).abs() < 1.0);
    }
}
