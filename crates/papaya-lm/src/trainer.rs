//! The federated client trainer for the language model.

use crate::model::{CharLstm, LmConfig};
use papaya_core::client::{ClientTrainer, LocalTrainResult};
use papaya_data::dataset::FederatedTextDataset;
use papaya_nn::params::ParamVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Trains the character LSTM on each client's local data and evaluates
/// held-out perplexity.
///
/// Matches the paper's client procedure (Section 7.1): SGD on the client,
/// one local epoch, data split into train/val/test per client.
#[derive(Clone, Debug)]
pub struct LmClientTrainer {
    dataset: Arc<FederatedTextDataset>,
    config: LmConfig,
    /// Client-side SGD learning rate.
    pub client_learning_rate: f32,
    /// Number of local epochs (paper: 1).
    pub local_epochs: usize,
    /// Cap on training sequences consumed per participation (stands in for
    /// the 4-minute client timeout).
    pub max_sequences_per_round: usize,
    init_seed: u64,
}

impl LmClientTrainer {
    /// Creates a trainer over the given federated dataset.
    pub fn new(dataset: Arc<FederatedTextDataset>, config: LmConfig) -> Self {
        LmClientTrainer {
            dataset,
            config,
            client_learning_rate: 0.5,
            local_epochs: 1,
            max_sequences_per_round: 64,
            init_seed: 7,
        }
    }

    /// Sets the client learning rate.
    pub fn with_learning_rate(mut self, lr: f32) -> Self {
        self.client_learning_rate = lr;
        self
    }

    /// Sets the per-participation sequence cap.
    pub fn with_max_sequences(mut self, max: usize) -> Self {
        self.max_sequences_per_round = max;
        self
    }

    /// Mean test-set perplexity of `params` over the given clients
    /// (`exp` of the mean per-token cross-entropy) — the Table 1 metric.
    pub fn perplexity(&self, params: &ParamVec, client_ids: &[usize]) -> f64 {
        self.evaluate(params, client_ids).exp()
    }

    fn build_model(&self, params: &ParamVec) -> CharLstm {
        let mut model = CharLstm::new(self.config, self.init_seed);
        model.set_param_vector(params);
        model
    }
}

impl ClientTrainer for LmClientTrainer {
    fn parameter_count(&self) -> usize {
        CharLstm::new(self.config, self.init_seed).parameter_count()
    }

    fn initial_parameters(&self) -> ParamVec {
        CharLstm::new(self.config, self.init_seed).param_vector()
    }

    fn train(&self, client_id: usize, global: &ParamVec, seed: u64) -> LocalTrainResult {
        let client = self.dataset.client(client_id);
        let mut model = self.build_model(global);
        let mut rng = StdRng::seed_from_u64(seed);

        // Visit training sequences in a random order, up to the cap.
        let mut order: Vec<usize> = (0..client.train.len()).collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        order.truncate(self.max_sequences_per_round);

        let mut loss_sum = 0.0f32;
        let mut loss_count = 0usize;
        for _ in 0..self.local_epochs.max(1) {
            for &idx in &order {
                if let Some(loss) =
                    model.train_sequence(&client.train[idx], self.client_learning_rate)
                {
                    loss_sum += loss;
                    loss_count += 1;
                }
            }
        }
        let trained = model.param_vector();
        LocalTrainResult {
            delta: trained.sub(global),
            num_examples: client.num_train(),
            train_loss: if loss_count > 0 {
                loss_sum / loss_count as f32
            } else {
                0.0
            },
        }
    }

    fn evaluate(&self, params: &ParamVec, client_ids: &[usize]) -> f64 {
        assert!(!client_ids.is_empty(), "evaluate needs at least one client");
        let model = self.build_model(params);
        let mut total = 0.0f64;
        let mut count = 0usize;
        for &id in client_ids {
            let client = self.dataset.client(id);
            // Use the test split; fall back to train data for clients whose
            // split is empty so every client contributes.
            let eval_set: &[Vec<usize>] = if client.test.is_empty() {
                &client.train
            } else {
                &client.test
            };
            for seq in eval_set.iter().take(8) {
                if let Some(loss) = model.sequence_loss(seq) {
                    total += loss as f64;
                    count += 1;
                }
            }
        }
        if count == 0 {
            return f64::INFINITY;
        }
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papaya_data::population::{Population, PopulationConfig};

    fn trainer(clients: usize) -> LmClientTrainer {
        let pop = Population::generate(&PopulationConfig::default().with_size(clients), 13);
        let data = Arc::new(FederatedTextDataset::generate(&pop, 3, 13));
        LmClientTrainer::new(data, LmConfig::tiny())
    }

    #[test]
    fn delta_has_model_dimension() {
        let t = trainer(5);
        let global = t.initial_parameters();
        let result = t.train(0, &global, 1);
        assert_eq!(result.delta.len(), t.parameter_count());
        assert!(result.num_examples > 0);
        assert!(result.delta.norm() > 0.0);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let t = trainer(5);
        let global = t.initial_parameters();
        assert_eq!(t.train(1, &global, 5), t.train(1, &global, 5));
    }

    #[test]
    fn trainer_is_shareable_across_training_threads() {
        // The parallel executor in papaya-sim hands one Arc'd trainer to a
        // worker pool; the LSTM trainer must be Send + Sync and produce
        // bit-identical results when trained concurrently.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LmClientTrainer>();

        let t = Arc::new(trainer(5));
        let global = Arc::new(t.initial_parameters());
        let expected = t.train(2, &global, 9);
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                let global = Arc::clone(&global);
                std::thread::spawn(move || t.train(2, &global, 9))
            })
            .collect();
        for worker in workers {
            assert_eq!(worker.join().expect("worker panicked"), expected);
        }
    }

    #[test]
    fn federated_rounds_reduce_population_perplexity() {
        let t = trainer(20);
        let mut params = t.initial_parameters();
        let all: Vec<usize> = (0..20).collect();
        let before = t.perplexity(&params, &all);
        // 5 rounds of simple FedAvg over 8 clients each.
        for round in 0..5u64 {
            let mut aggregate = ParamVec::zeros(params.len());
            let mut weight = 0.0f32;
            for c in 0..8usize {
                let client = ((round as usize * 8) + c) % 20;
                let result = t.train(client, &params, round * 100 + c as u64);
                aggregate.add_scaled(&result.delta, result.num_examples as f32);
                weight += result.num_examples as f32;
            }
            aggregate.scale(1.0 / weight);
            params = params.add(&aggregate);
        }
        let after = t.perplexity(&params, &all);
        assert!(
            after < before * 0.9,
            "perplexity did not improve: {before} -> {after}"
        );
        // Perplexity starts near the uniform bound (vocab size).
        assert!(before < 1.5 * papaya_data::text::vocab_size() as f64);
    }

    #[test]
    fn evaluate_uses_held_out_data() {
        let t = trainer(5);
        let params = t.initial_parameters();
        let loss = t.evaluate(&params, &[0, 1, 2]);
        assert!(loss.is_finite());
        assert!(loss > 0.0);
    }

    #[test]
    fn sequence_cap_bounds_work_per_round() {
        let t = trainer(5).with_max_sequences(2);
        let global = t.initial_parameters();
        // Even for the largest client, only two sequences are used, so the
        // delta should be small but non-zero.
        let result = t.train(0, &global, 3);
        assert!(result.delta.norm() > 0.0);
    }

    #[test]
    fn perplexity_is_exp_of_loss() {
        let t = trainer(3);
        let params = t.initial_parameters();
        let loss = t.evaluate(&params, &[0]);
        let ppl = t.perplexity(&params, &[0]);
        assert!((ppl - loss.exp()).abs() < 1e-9);
    }
}
