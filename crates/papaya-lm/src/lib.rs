//! Character-level LSTM language model for federated training.
//!
//! The paper's production workload is an LSTM next-word-prediction model
//! (Kim et al., 2015) trained with local SGD on client devices.  This crate
//! provides the reproduction's stand-in: a small character-level LSTM
//! ([`model::CharLstm`]) built on `papaya-nn`, plus
//! [`trainer::LmClientTrainer`], a [`papaya_core::client::ClientTrainer`]
//! implementation that trains the model on each client's local synthetic
//! text and evaluates held-out perplexity — the metric reported in Table 1.
//!
//! # Example
//!
//! ```
//! use papaya_data::population::{Population, PopulationConfig};
//! use papaya_data::dataset::FederatedTextDataset;
//! use papaya_lm::{CharLstm, LmClientTrainer, LmConfig};
//! use papaya_core::client::ClientTrainer;
//! use std::sync::Arc;
//!
//! let pop = Population::generate(&PopulationConfig::default().with_size(10), 3);
//! let data = Arc::new(FederatedTextDataset::generate(&pop, 3, 3));
//! let trainer = LmClientTrainer::new(data, LmConfig::tiny());
//! let global = trainer.initial_parameters();
//! let result = trainer.train(0, &global, 1);
//! assert_eq!(result.delta.len(), global.len());
//! ```

pub mod model;
pub mod trainer;

pub use model::{CharLstm, LmConfig};
pub use trainer::LmClientTrainer;
