//! Figure 11 / Section 7.4: sampling bias from over-selection.

use bench::experiments::systems;
use bench::parse_args;
use papaya_data::stats::mean;

fn main() {
    let args = parse_args();
    let result = systems::fig11(args.scale, args.seed);
    println!("# Figure 11: participating-client distributions");
    println!(
        "mean exec time of aggregated clients:   ground truth = {:7.1} s, sync w/ OS = {:7.1} s",
        mean(&result.ground_truth_exec_times),
        mean(&result.sync_os_exec_times)
    );
    println!(
        "mean examples of aggregated clients:    ground truth = {:7.1},   sync w/ OS = {:7.1},   async = {:7.1}",
        mean(&result.ground_truth_examples),
        mean(&result.sync_os_examples),
        mean(&result.async_examples)
    );
    println!();
    println!("two-sample KS test vs ground truth (SyncFL w/o over-selection):");
    println!(
        "  AsyncFL      : D = {:.4}  p = {:.3}   (paper: D = 8.8e-4, p = 0.98)",
        result.ks_async.d_statistic, result.ks_async.p_value
    );
    println!(
        "  SyncFL w/ OS : D = {:.4}  p = {:.3}   (paper: D = 6.6e-2, p = 0.00)",
        result.ks_sync_os.d_statistic, result.ks_sync_os.p_value
    );
}
