//! Table 1: test perplexity by data-volume percentile after a fixed budget
//! of client updates, for the three FL configurations.

use bench::experiments::lm_exp;
use bench::parse_args;

fn main() {
    let args = parse_args();
    let rows = lm_exp::table1(args.scale, args.seed);
    println!("# Table 1: test perplexity (lower is better)");
    lm_exp::print_table1(&rows);
}
