//! Prints the canonical scenarios' `Report::fingerprint()` values.
//!
//! The workspace's headline guarantee is that scenario fingerprints are a
//! pure function of the scenario definition and seed — invariant across
//! thread counts, sampling-pool shard layouts, and internal refactors.
//! This binary makes that pin auditable across commits: run it before and
//! after a change that must not move fingerprints (see
//! `docs/DETERMINISM.md`) and diff the output.
//!
//! ```bash
//! cargo run --release -p bench --bin fingerprints            # quick sizes
//! cargo run --release -p bench --bin fingerprints -- --full
//! ```

use bench::perf::{build_scenario, SCENARIO_NAMES};
use papaya_sim::Parallelism;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let seed = 42;
    println!(
        "# scenario fingerprints ({} sizes, seed {seed})",
        if full { "full" } else { "quick" }
    );
    for name in SCENARIO_NAMES {
        let report = build_scenario(name, !full, Parallelism::sequential(), seed).run();
        println!("{name}\t{}", report.fingerprint());
    }
}
