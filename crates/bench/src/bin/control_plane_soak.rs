//! Control-plane soak: checkpoint a turbulent fleet run mid-flight, restore
//! the control plane from (checkpoint + log suffix), and prove the restored
//! run's `Report::fingerprint` is bit-identical to the uninterrupted run —
//! sequentially and at 4 worker threads.
//!
//! ```bash
//! cargo run -p bench --release --bin control_plane_soak -- --quick
//! cargo run -p bench --release --bin control_plane_soak -- --full --seed 3
//! ```
//!
//! Exits non-zero on any fingerprint mismatch, so CI can gate on it.  The
//! scenario is deliberately nasty: a partial Aggregator failure, then total
//! loss (orphaning every task), then a recovery whose heartbeat triggers the
//! reconcile pass — and the restore lands inside the dead window.

use bench::{parse_args, Scale};
use papaya_core::TaskConfig;
use papaya_data::population::{Population, PopulationConfig};
use papaya_sim::scenario::{EvalPolicy, FleetSpec, Report, RunLimits, Scenario};
use papaya_sim::Parallelism;
use std::process::ExitCode;

fn soak_run(scale: Scale, seed: u64, restore_at: Option<f64>, parallelism: Parallelism) -> Report {
    let (population_size, hours) = match scale {
        Scale::Quick => (1_500, 1.5),
        Scale::Full => (10_000, 4.0),
    };
    let population = Population::generate(
        &PopulationConfig::default().with_size(population_size),
        seed,
    );
    let mut builder = Scenario::builder()
        .population(population)
        .task(TaskConfig::async_task("keyboard-lm", 48, 12))
        .task(TaskConfig::async_task("smart-reply", 24, 8))
        .task(TaskConfig::sync_task("photo-ranker", 30, 0.3))
        .fleet(FleetSpec::new(2, 3))
        .limits(RunLimits::default().with_max_virtual_time_hours(hours))
        .eval(EvalPolicy::default().with_interval_s(300.0))
        .parallelism(parallelism)
        .crash_at(1200.0, 0)
        .crash_at(1800.0, 1)
        .recover_at(2700.0, 0)
        .seed(seed);
    if let Some(time_s) = restore_at {
        builder = builder.restore_control_plane_at(time_s);
    }
    builder.build().run()
}

fn main() -> ExitCode {
    let args = parse_args();
    // Mid dead-window: after total loss, before the recovery heartbeat.
    let restore_s = 2_000.0;

    println!(
        "# control_plane_soak: partial failure -> total loss -> restore at \
         t={restore_s:.0}s -> recovery, seed {}",
        args.seed
    );

    let reference = soak_run(args.scale, args.seed, None, Parallelism::sequential());
    let expected = reference.fingerprint();
    println!("uninterrupted (sequential): {expected}");

    let mut failures = 0u32;
    let runs = [
        (
            "restored (sequential)",
            Some(restore_s),
            Parallelism::sequential(),
        ),
        ("uninterrupted (4 threads)", None, Parallelism(4)),
        ("restored (4 threads)", Some(restore_s), Parallelism(4)),
    ];
    for (label, restore, parallelism) in runs {
        let report = soak_run(args.scale, args.seed, restore, parallelism);
        let fingerprint = report.fingerprint();
        let verdict = if fingerprint == expected {
            "identical"
        } else {
            failures += 1;
            "MISMATCH"
        };
        println!("{label:<26}: {fingerprint}  [{verdict}]");
    }

    let cp = &reference.fleet.control_plane;
    println!(
        "\norphaned {} / reconciled {} / recoveries {} / log events {} / checkpoints {}",
        cp.tasks_orphaned,
        cp.tasks_reconciled,
        cp.aggregator_recoveries,
        cp.control_log_events,
        cp.checkpoints_taken
    );
    println!("\n# Control-plane metrics (Prometheus text format)");
    print!("{}", cp.prometheus_text());

    if failures > 0 {
        eprintln!("control_plane_soak: {failures} fingerprint mismatch(es)");
        return ExitCode::FAILURE;
    }
    println!("\ncontrol_plane_soak: checkpoint/restore is fingerprint-invisible");
    ExitCode::SUCCESS
}
