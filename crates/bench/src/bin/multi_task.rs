//! Multi-tenant fleet driver: N concurrent tasks on M Aggregators over one
//! shared population, with injectable Aggregator failures.
//!
//! ```bash
//! cargo run -p bench --release --bin multi_task -- --quick
//! cargo run -p bench --release --bin multi_task -- --full --seed 3
//! ```
//!
//! Composed through the unified [`Scenario`] API: the fleet mixes all three
//! aggregation strategies (FedBuff, synchronous rounds, and the timed
//! hybrid) behind the same control plane.  Prints a per-task table
//! (placement moves, convergence, communication, staleness) and the
//! fleet/control-plane roll-up — the multi-tenant behavior of Sections 4
//! and 6.2–6.3 that no single-task figure exercises.

use bench::parse_args;
use bench::Scale;
use papaya_core::TaskConfig;
use papaya_data::population::{Population, PopulationConfig};
use papaya_sim::scenario::{EvalPolicy, FleetSpec, RunLimits, Scenario};

fn fleet_tasks(scale: Scale) -> Vec<TaskConfig> {
    let unit = match scale {
        Scale::Quick => 1,
        Scale::Full => 4,
    };
    vec![
        TaskConfig::async_task("keyboard-lm", 64 * unit, 16 * unit),
        TaskConfig::async_task("speech-kws", 32 * unit, 8 * unit).with_min_capability_tier(1),
        TaskConfig::sync_task("photo-ranker", 40 * unit, 0.3),
        TaskConfig::async_task("smart-reply", 24 * unit, 8 * unit).with_min_capability_tier(2),
        TaskConfig::async_task("translation", 48 * unit, 12 * unit).with_min_capability_tier(1),
        TaskConfig::sync_task("face-cluster", 30 * unit, 0.0),
        // The third aggregation strategy: a FedBuff buffer whose round
        // deadline bounds the straggler tail.
        TaskConfig::timed_hybrid_task("health-study", 20 * unit, 40 * unit, 600.0),
    ]
}

fn main() {
    let args = parse_args();
    let population_size = match args.scale {
        Scale::Quick => 3_000,
        Scale::Full => 20_000,
    };
    let hours = match args.scale {
        Scale::Quick => 2.0,
        Scale::Full => 6.0,
    };
    let tasks = fleet_tasks(args.scale);
    let num_tasks = tasks.len();
    let crash_time = hours * 3600.0 * 0.25;

    let population = Population::generate(
        &PopulationConfig::default().with_size(population_size),
        args.seed,
    );

    let mut builder = Scenario::builder()
        .population(population)
        .fleet(FleetSpec::new(3, 4))
        .limits(RunLimits::default().with_max_virtual_time_hours(hours))
        .eval(EvalPolicy::default().with_interval_s(300.0))
        .crash_at(crash_time, 0)
        .seed(args.seed);
    for task in tasks {
        builder = builder.task(task);
    }
    let scenario = builder.build();

    println!(
        "# Multi-tenant fleet: {num_tasks} tasks, {population_size} shared devices, \
         3 aggregators, aggregator 0 crashes at t={:.0}s",
        crash_time
    );
    let report = scenario.run();

    println!(
        "{:<14} {:>6} {:>10} {:>10} {:>9} {:>9} {:>10} {:>9}",
        "task", "moved", "init loss", "final", "trips", "upd/h", "staleness", "lost buf"
    );
    for task in &report.tasks {
        println!(
            "{:<14} {:>6} {:>10.4} {:>10.4} {:>9} {:>9.1} {:>10.2} {:>9}",
            task.name,
            task.reassignments,
            task.initial_loss,
            task.final_loss,
            task.comm_trips(),
            task.summary.server_updates_per_hour,
            task.summary.mean_staleness,
            task.lost_buffered_updates,
        );
    }

    let cp = &report.fleet.control_plane;
    println!(
        "\n# Fleet roll-up over {:.1} virtual hours (stopped: {})",
        report.virtual_hours, report.stop_reason
    );
    println!(
        "total comm trips:        {:>9}",
        report.fleet.total_comm_trips
    );
    println!(
        "total server updates:    {:>9}",
        report.fleet.total_server_updates
    );
    println!(
        "failed participations:   {:>9}",
        report.fleet.total_failed_participations
    );
    println!(
        "mean active clients:     {:>9.1}",
        report.fleet.mean_active_clients
    );
    println!("aggregator failures:     {:>9}", cp.aggregator_failures);
    println!("task reassignments:      {:>9}", cp.task_reassignments);
    println!("stale-route refusals:    {:>9}", cp.stale_route_refusals);
    println!("updates lost in transit: {:>9}", cp.lost_in_transit_updates);
    println!(
        "buffered updates lost:   {:>9}",
        report.fleet.total_lost_buffered_updates
    );
    println!("final map sequence:      {:>9}", cp.final_map_sequence);
    println!("control log events:      {:>9}", cp.control_log_events);
    println!("checkpoints taken:       {:>9}", cp.checkpoints_taken);

    // The same counters in Prometheus text exposition format, so a scrape
    // wrapper (or a human with grep) can consume the run like a service.
    println!("\n# Control-plane metrics (Prometheus text format)");
    print!("{}", cp.prometheus_text());
}
