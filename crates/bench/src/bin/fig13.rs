//! Figure 13: hours to reach the target loss for the four configurations.

use bench::experiments::convergence;
use bench::parse_args;

fn main() {
    let args = parse_args();
    convergence::print_target_context(args.scale, args.seed);
    let results = convergence::fig12(args.scale, args.seed);
    println!("# Figure 13: hours to target loss");
    println!("{:<28} | hours to target", "configuration");
    for config in &results {
        println!(
            "{:<28} | {}",
            config.label,
            bench::experiments::common::fmt_hours(config.result.hours_to_target)
        );
    }
}
