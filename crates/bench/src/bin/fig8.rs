//! Figure 8: server model updates per hour vs concurrency.

use bench::experiments::systems;
use bench::parse_args;

fn main() {
    let args = parse_args();
    let rows = systems::fig8(args.scale, args.seed);
    println!("# Figure 8: server model updates per hour (AsyncFL K fixed)");
    println!("concurrency | sync updates/hr | async updates/hr | ratio");
    for (concurrency, sync_rate, async_rate) in rows {
        println!(
            "{:11} | {:15.1} | {:16.1} | {:5.1}x",
            concurrency,
            sync_rate,
            async_rate,
            async_rate / sync_rate.max(1e-9)
        );
    }
}
