//! Performance suite and CI regression gate.
//!
//! Measure mode — runs the canonical scenarios sequentially and on an
//! N-thread training pool, prints a table, and writes `BENCH_<label>.json`:
//!
//! ```bash
//! cargo run -p bench --release --bin perf_suite -- --quick --threads 4 --label ci
//! cargo run -p bench --release --bin perf_suite -- --full --label full
//! # One scenario only (repeatable), e.g. the million-client memory gate:
//! cargo run -p bench --release --bin perf_suite -- --quick --scenario fedbuff-1m
//! # Acceptance check on a >=4-core box: fail unless every scenario
//! # reaches the required sequential/parallel speedup.
//! cargo run -p bench --release --bin perf_suite -- --full --threads 4 --min-speedup 1.8
//! ```
//!
//! Compare mode — the CI gate; exits non-zero when wall-clock regresses
//! beyond the factor (default 2x) against a baseline, when scenario sizes
//! are not comparable, or when any parallel run lost bit-identity:
//!
//! ```bash
//! cargo run -p bench --release --bin perf_suite -- --compare BENCH_baseline.json BENCH_ci.json
//! ```
//!
//! `--profile <path>` additionally writes a JSON breakdown of where the
//! secure pipeline's on-loop time went (DH handshakes vs mask expansion vs
//! fixed-point encode vs release unmasking) — CI uploads it as an artifact
//! so an overhead-gate failure comes with its own triage data.

use bench::perf::{compare, run_suite, run_suite_scenarios, SuiteResult, SCENARIO_NAMES};
use std::fmt::Write as _;
use std::process::ExitCode;

struct Args {
    quick: bool,
    threads: usize,
    label: String,
    seed: u64,
    out: Option<String>,
    compare: Option<(String, String)>,
    factor: f64,
    /// Fail unless every scenario reaches this sequential/parallel speedup.
    /// Only meaningful on hardware with spare cores, so it is opt-in — the
    /// acceptance check is `--full --threads 4 --min-speedup 1.8` on a
    /// >=4-core box.
    min_speedup: Option<f64>,
    /// Write the secure-pipeline timing breakdown to this path.
    profile: Option<String>,
    /// Run only these scenarios (`--scenario`, repeatable); empty = all.
    scenarios: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().collect();
    let mut args = Args {
        quick: true,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(2),
        label: "local".to_string(),
        seed: 42,
        out: None,
        compare: None,
        factor: 2.0,
        min_speedup: None,
        profile: None,
        scenarios: Vec::new(),
    };
    let mut i = 1;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => args.quick = true,
            "--full" => args.quick = false,
            "--threads" => {
                args.threads = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--label" => args.label = value(&mut i)?,
            "--seed" => args.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => args.out = Some(value(&mut i)?),
            "--factor" => {
                args.factor = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--factor: {e}"))?
            }
            "--min-speedup" => {
                args.min_speedup = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--min-speedup: {e}"))?,
                )
            }
            "--profile" => args.profile = Some(value(&mut i)?),
            "--scenario" => {
                let name = value(&mut i)?;
                if !SCENARIO_NAMES.contains(&name.as_str()) {
                    return Err(format!(
                        "--scenario {name:?} is not canonical; known: {SCENARIO_NAMES:?}"
                    ));
                }
                args.scenarios.push(name);
            }
            "--compare" => {
                let baseline = value(&mut i)?;
                let current = value(&mut i)?;
                args.compare = Some((baseline, current));
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if args.threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    Ok(args)
}

fn run_compare(baseline_path: &str, current_path: &str, factor: f64) -> ExitCode {
    let load = |path: &str| -> Result<SuiteResult, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        SuiteResult::from_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("perf gate error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("# Perf gate: {current_path} vs baseline {baseline_path} (limit {factor:.1}x)");
    match compare(&baseline, &current, factor) {
        Ok(lines) => {
            for line in lines {
                println!("  {line}");
            }
            println!("perf gate PASSED");
            ExitCode::SUCCESS
        }
        Err(failures) => {
            eprintln!("perf gate FAILED:\n{failures}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("perf_suite: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some((baseline, current)) = &args.compare {
        return run_compare(baseline, current, args.factor);
    }

    let mode = if args.quick { "quick" } else { "full" };
    println!(
        "# perf_suite: {mode} scenarios, sequential vs {} worker threads, seed {}",
        args.threads, args.seed
    );
    let suite = if args.scenarios.is_empty() {
        run_suite(&args.label, args.quick, args.threads, args.seed)
    } else {
        let names: Vec<&str> = args.scenarios.iter().map(String::as_str).collect();
        run_suite_scenarios(&args.label, args.quick, args.threads, args.seed, &names)
    };

    println!(
        "{:<14} {:>9} {:>9} {:>10} {:>10} {:>12} {:>12} {:>8} {:>9} {:>10}",
        "scenario",
        "seq (s)",
        "par (s)",
        "events",
        "updates",
        "ev/s seq",
        "ev/s par",
        "speedup",
        "rss MiB",
        "identical"
    );
    let mut all_identical = true;
    for s in &suite.scenarios {
        all_identical &= s.identical;
        let rss = s
            .peak_rss_bytes
            .map(|b| format!("{:.0}", b as f64 / (1 << 20) as f64))
            .unwrap_or_else(|| "n/a".to_string());
        println!(
            "{:<14} {:>9.3} {:>9.3} {:>10} {:>10} {:>12.0} {:>12.0} {:>7.2}x {:>9} {:>10}",
            s.name,
            s.wall_s_sequential,
            s.wall_s_parallel,
            s.events,
            s.client_updates,
            s.events_per_sec_sequential,
            s.events_per_sec_parallel,
            s.speedup,
            rss,
            s.identical,
        );
    }
    for s in &suite.scenarios {
        if let Some(factor) = s.secagg_overhead_factor {
            println!(
                "\n{}: secagg overhead {factor:.2}x over clear (per-event)",
                s.name
            );
        }
    }

    if let Some(profile_path) = &args.profile {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"label\": \"{}\",", suite.label);
        let _ = writeln!(out, "  \"scenarios\": [");
        let secure: Vec<_> = suite
            .scenarios
            .iter()
            .filter(|s| {
                s.secure_handshake_s + s.secure_mask_s + s.secure_encode_s + s.secure_unmask_s > 0.0
            })
            .collect();
        for (i, s) in secure.iter().enumerate() {
            let comma = if i + 1 < secure.len() { "," } else { "" };
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"name\": \"{}\",", s.name);
            let _ = writeln!(out, "      \"handshake_s\": {:.6},", s.secure_handshake_s);
            let _ = writeln!(out, "      \"mask_s\": {:.6},", s.secure_mask_s);
            let _ = writeln!(out, "      \"encode_s\": {:.6},", s.secure_encode_s);
            let _ = writeln!(out, "      \"unmask_s\": {:.6}", s.secure_unmask_s);
            let _ = writeln!(out, "    }}{comma}");
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        if let Err(e) = std::fs::write(profile_path, out) {
            eprintln!("perf_suite: cannot write {profile_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote secure-pipeline profile to {profile_path}");
    }

    let path = args
        .out
        .unwrap_or_else(|| format!("BENCH_{}.json", suite.label));
    if let Err(e) = std::fs::write(&path, suite.to_json()) {
        eprintln!("perf_suite: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {path}");

    if !all_identical {
        eprintln!("perf_suite: a parallel run was NOT bit-identical to the sequential run");
        return ExitCode::FAILURE;
    }
    if let Some(min) = args.min_speedup {
        let laggards: Vec<String> = suite
            .scenarios
            .iter()
            .filter(|s| s.speedup < min)
            .map(|s| format!("{} ({:.2}x)", s.name, s.speedup))
            .collect();
        if !laggards.is_empty() {
            eprintln!(
                "perf_suite: speedup below the required {min:.2}x: {}",
                laggards.join(", ")
            );
            return ExitCode::FAILURE;
        }
        println!("all scenarios reached the required {min:.2}x speedup");
    }
    ExitCode::SUCCESS
}
