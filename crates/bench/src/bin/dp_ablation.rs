//! Privacy-utility ablation: the DP convergence gap across a noise
//! multiplier sweep, with the accountant's cumulative (ε, δ) per point.

use bench::experiments::dp_exp;
use bench::parse_args;

fn main() {
    let args = parse_args();
    let rows = dp_exp::dp_ablation(args.scale, args.seed);
    println!(
        "# DP privacy-utility ablation (delta = {:.0e}, clip C = 2, uniform weighting)",
        dp_exp::ABLATION_DELTA
    );
    dp_exp::print_dp_ablation(&rows);
}
