//! Figure 9: time to target loss, AsyncFL speedup, and communication trips.

use bench::experiments::convergence;
use bench::parse_args;

fn main() {
    let args = parse_args();
    convergence::print_target_context(args.scale, args.seed);
    let rows = convergence::fig9(args.scale, args.seed);
    println!("# Figure 9: SyncFL (30% OS) vs AsyncFL (fixed K)");
    convergence::print_fig9(&rows);
}
