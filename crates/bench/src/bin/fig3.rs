//! Figure 3: SyncFL training time and communication trips vs concurrency.

use bench::experiments::convergence;
use bench::parse_args;

fn main() {
    let args = parse_args();
    convergence::print_target_context(args.scale, args.seed);
    let rows = convergence::fig3(args.scale, args.seed);
    println!("# Figure 3: SyncFL (30% over-selection) scaling");
    println!("concurrency | hours to target | communication trips (thousands)");
    for (concurrency, result) in &rows {
        println!(
            "{:11} | {:>15} | {:10.1}",
            concurrency,
            bench::experiments::common::fmt_hours(result.hours_to_target),
            result.comm_trips() as f64 / 1000.0
        );
    }
}
