//! Figure 10: effect of the aggregation goal K at fixed concurrency.

use bench::experiments::convergence;
use bench::parse_args;

fn main() {
    let args = parse_args();
    convergence::print_target_context(args.scale, args.seed);
    let rows = convergence::fig10(args.scale, args.seed);
    println!("# Figure 10: AsyncFL at fixed concurrency, varying aggregation goal K");
    println!("K | hours to target | server updates/hr");
    for (k, result) in rows {
        println!(
            "{:5} | {:>15} | {:12.1}",
            k,
            bench::experiments::common::fmt_hours(result.hours_to_target),
            result.summary.server_updates_per_hour
        );
    }
}
