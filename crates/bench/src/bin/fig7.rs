//! Figure 7: number of active clients over time, SyncFL vs AsyncFL.

use bench::experiments::systems;
use bench::parse_args;

fn main() {
    let args = parse_args();
    let (sync, async_fl) = systems::fig7(args.scale, args.seed);
    println!("# Figure 7: active clients over time (max concurrency shared by both)");
    println!("time_s | sync_active | async_active");
    // Downsample the utilization traces onto a common 60 s grid.
    let grid: Vec<f64> = (0..120).map(|i| i as f64 * 60.0).collect();
    let sample = |trace: &[(f64, usize)], t: f64| -> usize {
        trace
            .iter()
            .take_while(|&&(time, _)| time <= t)
            .last()
            .map(|&(_, active)| active)
            .unwrap_or(0)
    };
    for &t in &grid {
        println!(
            "{:6.0} | {:11} | {:12}",
            t,
            sample(&sync.metrics.utilization_trace, t),
            sample(&async_fl.metrics.utilization_trace, t)
        );
    }
    println!();
    println!(
        "mean active clients: sync = {:.0}, async = {:.0}",
        sync.summary.mean_active_clients, async_fl.summary.mean_active_clients
    );
}
