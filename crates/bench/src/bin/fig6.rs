//! Figure 6: host->TEE data-transfer time vs aggregation goal for the naive
//! design and AsyncSecAgg (20 MB model).

use bench::experiments::secagg_exp;

fn main() {
    println!("# Figure 6: TEE boundary transfer time, 20 MB model");
    println!("aggregation goal K | naive TSA (ms) | AsyncSecAgg (ms)");
    for row in secagg_exp::fig6() {
        println!(
            "{:18} | {:14.1} | {:16.1}",
            row.aggregation_goal, row.naive_ms, row.async_secagg_ms
        );
    }
    println!();
    println!(
        "measured host->TEE bytes per client (real protocol, 1k-element vs 16k-element model): {:.0} vs {:.0}",
        secagg_exp::measured_boundary_bytes_per_client(4, 1000),
        secagg_exp::measured_boundary_bytes_per_client(4, 16_000)
    );
}
