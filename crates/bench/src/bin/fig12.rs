//! Figure 12: training curves for the four FL configurations.

use bench::experiments::convergence;
use bench::parse_args;

fn main() {
    let args = parse_args();
    convergence::print_target_context(args.scale, args.seed);
    let results = convergence::fig12(args.scale, args.seed);
    println!("# Figure 12: training loss vs virtual hours");
    for config in &results {
        println!("\n## {}", config.label);
        println!("hours | loss");
        for (hours, loss) in config
            .result
            .metrics
            .loss_curve
            .iter()
            .step_by(1 + config.result.metrics.loss_curve.len() / 40)
        {
            println!("{:6.2} | {:.4}", hours, loss);
        }
    }
}
