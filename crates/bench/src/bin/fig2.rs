//! Figure 2: client execution-time histogram and the round-duration to
//! client-time ratio.

use bench::experiments::systems;
use bench::parse_args;

fn main() {
    let args = parse_args();
    let result = systems::fig2(args.scale, args.seed);
    println!("# Figure 2: client execution time distribution (log-spaced bins)");
    println!("bin_low_s | bin_high_s | density");
    let densities = result.histogram.densities();
    for (i, d) in densities.iter().enumerate() {
        println!(
            "{:9.2} | {:10.2} | {:.4}",
            result.histogram.edges[i],
            result.histogram.edges[i + 1],
            d
        );
    }
    println!();
    println!(
        "mean client execution time : {:8.1} s",
        result.mean_client_time_s
    );
    println!(
        "mean SyncFL round duration  : {:8.1} s",
        result.mean_round_duration_s
    );
    println!(
        "round/client ratio          : {:8.1}x (paper: ~21x)",
        result.ratio()
    );
}
