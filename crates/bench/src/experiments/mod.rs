//! Experiment implementations, one module per group of figures.

pub mod common;
pub mod convergence;
pub mod dp_exp;
pub mod lm_exp;
pub mod secagg_exp;
pub mod systems;
