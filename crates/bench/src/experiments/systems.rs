//! System-behaviour experiments: Figures 2, 7, 8, and 11.

use crate::experiments::common::{population, surrogate, Scale};
use papaya_core::surrogate::SurrogateObjective;
use papaya_core::TaskConfig;
use papaya_data::population::Population;
use papaya_data::stats::{mean, Histogram, KsTestResult};
use papaya_sim::scenario::{EvalPolicy, RunLimits, Scenario, TaskReport};
use std::sync::Arc;

/// Runs one task through the unified [`Scenario`] entrypoint with the
/// coarse-eval settings the system-behaviour figures share.
fn run_system_task(
    task: TaskConfig,
    pop: &Population,
    trainer: &Arc<SurrogateObjective>,
    hours: f64,
    seed: u64,
) -> TaskReport {
    Scenario::builder()
        .population(pop.clone())
        .task_with_trainer(task, trainer.clone())
        .limits(RunLimits::default().with_max_virtual_time_hours(hours))
        .eval(EvalPolicy::default().with_interval_s(3600.0))
        .seed(seed)
        .build()
        .run()
        .into_single()
}

/// Figure 2: the client execution-time distribution and the ratio of the
/// mean SyncFL round duration (concurrency = aggregation goal = 1000) to the
/// mean client execution time.
#[derive(Clone, Debug)]
pub struct Fig2Result {
    /// Log-spaced histogram of client execution times.
    pub histogram: Histogram,
    /// Mean client execution time in seconds.
    pub mean_client_time_s: f64,
    /// Mean SyncFL round duration in seconds.
    pub mean_round_duration_s: f64,
}

impl Fig2Result {
    /// Round-duration to client-time ratio (the paper reports 21×).
    pub fn ratio(&self) -> f64 {
        self.mean_round_duration_s / self.mean_client_time_s
    }
}

/// Runs the Figure 2 experiment.
pub fn fig2(scale: Scale, seed: u64) -> Fig2Result {
    let pop = population(scale.population_size(), seed);
    let times = pop.execution_times();
    let histogram = Histogram::log_spaced(&times, 30);
    let mean_client_time_s = mean(&times);

    // A SyncFL task with concurrency = aggregation goal (no over-selection);
    // the mean round duration is dominated by stragglers.
    let cohort = match scale {
        Scale::Quick => 250,
        Scale::Full => 1000,
    };
    let trainer = surrogate(&pop, seed);
    let result = run_system_task(
        TaskConfig::sync_task("fig2", cohort, 0.0),
        &pop,
        &trainer,
        6.0,
        seed,
    );
    Fig2Result {
        histogram,
        mean_client_time_s,
        mean_round_duration_s: result.metrics.mean_round_duration_s(),
    }
}

/// Figure 7: number of active clients over time for SyncFL (30 %
/// over-selection) and AsyncFL at the same max concurrency.
pub fn fig7(scale: Scale, seed: u64) -> (TaskReport, TaskReport) {
    let pop = population(scale.population_size(), seed);
    let trainer = surrogate(&pop, seed);
    let concurrency = scale.reference_concurrency();
    let hours = 2.0;
    let sync = run_system_task(
        TaskConfig::sync_task("fig7-sync", concurrency, 0.3),
        &pop,
        &trainer,
        hours,
        seed,
    );
    let async_fl = run_system_task(
        TaskConfig::async_task(
            "fig7-async",
            concurrency,
            scale.reference_aggregation_goal(),
        ),
        &pop,
        &trainer,
        hours,
        seed,
    );
    (sync, async_fl)
}

/// Figure 8: server model updates per hour as concurrency grows, for SyncFL
/// (30 % over-selection) and AsyncFL (fixed K).
pub fn fig8(scale: Scale, seed: u64) -> Vec<(usize, f64, f64)> {
    let pop = population(scale.population_size(), seed);
    let trainer = surrogate(&pop, seed);
    let goal = scale.reference_aggregation_goal();
    let hours = 2.0;
    scale
        .concurrencies()
        .into_iter()
        .map(|concurrency| {
            let sync = run_system_task(
                TaskConfig::sync_task("fig8-sync", concurrency, 0.3),
                &pop,
                &trainer,
                hours,
                seed,
            );
            let async_fl = run_system_task(
                TaskConfig::async_task("fig8-async", concurrency, goal),
                &pop,
                &trainer,
                hours,
                seed,
            );
            (
                concurrency,
                sync.summary.server_updates_per_hour,
                async_fl.summary.server_updates_per_hour,
            )
        })
        .collect()
}

/// Figure 11 / Section 7.4: participation distributions and KS statistics.
#[derive(Clone, Debug)]
pub struct Fig11Result {
    /// Example counts of clients aggregated by SyncFL *without*
    /// over-selection (the ground-truth participation distribution).
    pub ground_truth_examples: Vec<f64>,
    /// Example counts aggregated by SyncFL *with* over-selection.
    pub sync_os_examples: Vec<f64>,
    /// Example counts aggregated by AsyncFL.
    pub async_examples: Vec<f64>,
    /// Execution times aggregated by SyncFL with over-selection.
    pub sync_os_exec_times: Vec<f64>,
    /// Execution times of the ground truth.
    pub ground_truth_exec_times: Vec<f64>,
    /// KS test: AsyncFL vs ground truth (paper: D = 8.8e-4, p = 0.98).
    pub ks_async: KsTestResult,
    /// KS test: SyncFL w/ OS vs ground truth (paper: D = 6.6e-2, p = 0.0).
    pub ks_sync_os: KsTestResult,
}

/// Runs the Figure 11 experiment.
pub fn fig11(scale: Scale, seed: u64) -> Fig11Result {
    let pop = population(scale.population_size(), seed);
    let trainer = surrogate(&pop, seed);
    let concurrency = scale.reference_concurrency();
    let hours = match scale {
        Scale::Quick => 4.0,
        Scale::Full => 6.0,
    };
    let run =
        |task: TaskConfig| -> TaskReport { run_system_task(task, &pop, &trainer, hours, seed) };
    let goal = (concurrency as f64 / 1.3).round() as usize;
    let ground_truth = run(TaskConfig::sync_task("no-os", goal, 0.0));
    let sync_os = run(TaskConfig::sync_task("os", concurrency, 0.3));
    let async_fl = run(TaskConfig::async_task(
        "async",
        concurrency,
        scale.reference_aggregation_goal(),
    ));

    let ground_truth_examples = ground_truth.metrics.aggregated_example_counts();
    let sync_os_examples = sync_os.metrics.aggregated_example_counts();
    let async_examples = async_fl.metrics.aggregated_example_counts();
    let ks_async = async_fl.metrics.ks_against(&ground_truth_examples);
    let ks_sync_os = sync_os.metrics.ks_against(&ground_truth_examples);
    Fig11Result {
        ground_truth_exec_times: ground_truth.metrics.aggregated_execution_times(),
        sync_os_exec_times: sync_os.metrics.aggregated_execution_times(),
        ground_truth_examples,
        sync_os_examples,
        async_examples,
        ks_async,
        ks_sync_os,
    }
}
