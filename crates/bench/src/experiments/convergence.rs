//! Convergence-time experiments: Figures 3, 9, 10, 12, and 13.

use crate::experiments::common::{
    fmt_hours, initial_loss, population, surrogate, target_loss, Scale,
};
use papaya_core::TaskConfig;
use papaya_sim::scenario::TaskReport;

/// One row of a concurrency sweep.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Concurrency of the configuration.
    pub concurrency: usize,
    /// SyncFL (30 % over-selection) report.
    pub sync: TaskReport,
    /// AsyncFL (K = reference aggregation goal) report.
    pub async_fl: TaskReport,
}

impl SweepRow {
    /// AsyncFL speedup over SyncFL in wall-clock time to target
    /// (`None` when either configuration missed the target).
    pub fn speedup(&self) -> Option<f64> {
        Some(self.sync.hours_to_target? / self.async_fl.hours_to_target?)
    }

    /// Communication-efficiency gain: SyncFL trips / AsyncFL trips.
    pub fn comm_gain(&self) -> f64 {
        self.sync.comm_trips() as f64 / self.async_fl.comm_trips().max(1) as f64
    }
}

/// Runs the SyncFL-only sweep of Figure 3 (time-to-target and communication
/// trips as concurrency grows).
pub fn fig3(scale: Scale, seed: u64) -> Vec<(usize, TaskReport)> {
    let pop = population(scale.population_size(), seed);
    let trainer = surrogate(&pop, seed);
    let target = target_loss(&trainer);
    scale
        .concurrencies()
        .into_iter()
        .map(|concurrency| {
            let task = TaskConfig::sync_task(format!("sync-{concurrency}"), concurrency, 0.3);
            let result = crate::experiments::common::run_to_target(
                task, &pop, &trainer, target, 150.0, seed,
            );
            (concurrency, result)
        })
        .collect()
}

/// Runs the Sync-vs-Async sweep of Figure 9 (and the server-update counts
/// behind Figure 8).
pub fn fig9(scale: Scale, seed: u64) -> Vec<SweepRow> {
    let pop = population(scale.population_size(), seed);
    let trainer = surrogate(&pop, seed);
    let target = target_loss(&trainer);
    let goal = scale.reference_aggregation_goal();
    scale
        .concurrencies()
        .into_iter()
        .map(|concurrency| {
            let sync = crate::experiments::common::run_to_target(
                TaskConfig::sync_task(format!("sync-{concurrency}"), concurrency, 0.3),
                &pop,
                &trainer,
                target,
                150.0,
                seed,
            );
            let async_fl = crate::experiments::common::run_to_target(
                TaskConfig::async_task(format!("async-{concurrency}"), concurrency, goal),
                &pop,
                &trainer,
                target,
                150.0,
                seed,
            );
            SweepRow {
                concurrency,
                sync,
                async_fl,
            }
        })
        .collect()
}

/// Runs the aggregation-goal sweep of Figure 10 at the reference
/// concurrency: hours to target and server updates per hour for varying `K`.
pub fn fig10(scale: Scale, seed: u64) -> Vec<(usize, TaskReport)> {
    let pop = population(scale.population_size(), seed);
    let trainer = surrogate(&pop, seed);
    let target = target_loss(&trainer);
    let concurrency = scale.reference_concurrency();
    let goals: Vec<usize> = match scale {
        Scale::Quick => vec![25, 80, 160, 325],
        Scale::Full => vec![100, 300, 650, 1000, 1300],
    };
    goals
        .into_iter()
        .map(|k| {
            let task = TaskConfig::async_task(format!("async-k{k}"), concurrency, k);
            let result = crate::experiments::common::run_to_target(
                task, &pop, &trainer, target, 150.0, seed,
            );
            (k, result)
        })
        .collect()
}

/// The four configurations of Figures 12 and 13.
#[derive(Clone, Debug)]
pub struct FourConfigResult {
    /// Configuration label.
    pub label: &'static str,
    /// Scenario outcome for the configuration (loss curve, hours to
    /// target, ...).
    pub result: TaskReport,
}

/// Runs the four-configuration comparison of Figures 12/13: SyncFL without
/// over-selection, SyncFL with over-selection, AsyncFL with K equal to the
/// SyncFL goal, and AsyncFL with the small reference K.
pub fn fig12(scale: Scale, seed: u64) -> Vec<FourConfigResult> {
    let pop = population(scale.population_size(), seed);
    let trainer = surrogate(&pop, seed);
    let target = target_loss(&trainer);
    let concurrency = scale.reference_concurrency();
    let large_k = (concurrency as f64 / 1.3).round() as usize;
    let small_k = scale.reference_aggregation_goal();

    let configs: Vec<(&'static str, TaskConfig)> = vec![
        (
            "SyncFL w/o over-selection",
            TaskConfig::sync_task("sync-noos", large_k, 0.0),
        ),
        (
            "SyncFL w/ over-selection",
            TaskConfig::sync_task("sync-os", concurrency, 0.3),
        ),
        (
            "AsyncFL K=large",
            TaskConfig::async_task("async-large-k", concurrency, large_k),
        ),
        (
            "AsyncFL K=small",
            TaskConfig::async_task("async-small-k", concurrency, small_k),
        ),
    ];
    configs
        .into_iter()
        .map(|(label, task)| FourConfigResult {
            label,
            result: crate::experiments::common::run_to_target(
                task, &pop, &trainer, target, 250.0, seed,
            ),
        })
        .collect()
}

/// Prints a Figure 9 style table.
pub fn print_fig9(rows: &[SweepRow]) {
    println!(
        "concurrency | sync hours | async hours | speedup | sync trips | async trips | comm gain"
    );
    for row in rows {
        println!(
            "{:11} | {} | {} | {:7.2} | {:10} | {:11} | {:9.2}",
            row.concurrency,
            fmt_hours(row.sync.hours_to_target),
            fmt_hours(row.async_fl.hours_to_target),
            row.speedup().unwrap_or(f64::NAN),
            row.sync.comm_trips(),
            row.async_fl.comm_trips(),
            row.comm_gain(),
        );
    }
}

/// Prints the initial-loss / target context line used by several binaries.
pub fn print_target_context(scale: Scale, seed: u64) {
    let pop = population(scale.population_size(), seed);
    let trainer = surrogate(&pop, seed);
    println!(
        "# population = {} devices, initial loss = {:.4}, target loss = {:.4}",
        pop.len(),
        initial_loss(&trainer),
        target_loss(&trainer)
    );
}
