//! Secure-aggregation cost experiment: Figure 6, plus a measured end-to-end
//! run of the protocol used by the Criterion bench.

use papaya_crypto::chacha20::ChaCha20Rng;
use papaya_secagg::cost::TeeBoundaryCostModel;
use papaya_secagg::{SecAggClient, SecAggConfig, Tsa, UntrustedAggregator};

/// One row of Figure 6: data-transfer time across the TEE boundary for the
/// naive design and AsyncSecAgg, for a 20 MB model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig6Row {
    /// Aggregation goal `K`.
    pub aggregation_goal: usize,
    /// Naive TSA transfer time in milliseconds.
    pub naive_ms: f64,
    /// AsyncSecAgg transfer time in milliseconds.
    pub async_secagg_ms: f64,
}

/// Computes Figure 6 for the paper's K values and a 20 MB model.
pub fn fig6() -> Vec<Fig6Row> {
    let model_bytes = 20_000_000u64;
    let cost = TeeBoundaryCostModel::default();
    [10usize, 50, 100, 500, 1000]
        .into_iter()
        .map(|k| Fig6Row {
            aggregation_goal: k,
            naive_ms: cost.naive_time_s(k, model_bytes) * 1e3,
            async_secagg_ms: cost.async_secagg_time_s(k, model_bytes) * 1e3,
        })
        .collect()
}

/// Runs the real protocol end-to-end for `clients` clients over vectors of
/// `vector_len` elements and returns the measured host→TEE boundary bytes
/// per client (which Figure 6 asserts is constant in the model size).
pub fn measured_boundary_bytes_per_client(clients: usize, vector_len: usize) -> f64 {
    let config = SecAggConfig::insecure_fast(vector_len, clients);
    let mut tsa = Tsa::new(&config, [0x42u8; 32]);
    let publication = tsa.publication();
    let mut rng = ChaCha20Rng::from_seed([1u8; 32]);
    let initial = tsa.prepare_initial_messages(clients, &mut rng);
    let mut aggregator = UntrustedAggregator::new(&config);
    let update = vec![0.01f32; vector_len];
    for init in &initial {
        let msg = SecAggClient::participate(&update, init, &publication, &config, &mut rng)
            .expect("attestation verifies");
        aggregator.submit(msg, &mut tsa).expect("accepted");
    }
    let _ = aggregator.finalize(&mut tsa).expect("threshold met");
    tsa.boundary_stats().bytes_in as f64 / clients as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shapes_match_paper() {
        let rows = fig6();
        // Naive grows linearly with K; AsyncSecAgg is nearly flat.
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(last.naive_ms / first.naive_ms > 50.0);
        assert!(last.async_secagg_ms / first.async_secagg_ms < 3.0);
        // At K = 1000, the naive design takes seconds (paper: ~6500 ms).
        assert!(last.naive_ms > 4000.0);
        assert!(last.async_secagg_ms < 300.0);
    }

    #[test]
    fn measured_boundary_bytes_are_independent_of_model_size() {
        let small = measured_boundary_bytes_per_client(4, 64);
        let large = measured_boundary_bytes_per_client(4, 4096);
        assert!((small - large).abs() < 1.0, "{small} vs {large}");
    }
}
