//! Privacy-utility ablation: the DP-vs-clear convergence gap as a function
//! of the noise multiplier.
//!
//! The paper's privacy story pairs secure aggregation with user-level DP;
//! the cost of the DP half is a convergence gap that grows with the noise
//! multiplier `z`.  This experiment runs the *same* FedBuff scenario across
//! a `z` sweep (`0` is the clear-equivalent baseline — bit-exact by the
//! `dp_equivalence` suite) and reports, per multiplier: the final evaluated
//! loss, the remaining-loss fraction relative to the clear run, the clip
//! fraction, the per-release noise std, and the cumulative `(ε, δ)` the
//! accountant certifies.  Uniform (non-example) weighting keeps the
//! per-release noise std at `C·z/K`, so the multiplier sweep maps directly
//! onto a signal-to-noise sweep.

use crate::experiments::common::population;
use papaya_core::surrogate::SurrogateObjective;
use papaya_core::{DpConfig, TaskConfig};
use papaya_sim::scenario::{EvalPolicy, RunLimits, Scenario, TaskReport};
use std::sync::Arc;

use super::common::{experiment_surrogate_config, Scale};

/// The noise multipliers swept (0 = clear-equivalent baseline).
pub const NOISE_MULTIPLIERS: [f64; 5] = [0.0, 0.25, 0.5, 1.0, 2.0];

/// One row of the privacy-utility ablation.
#[derive(Clone, Debug)]
pub struct DpAblationRow {
    /// Noise multiplier `z` of this run.
    pub noise_multiplier: f64,
    /// Final evaluated population loss.
    pub final_loss: f64,
    /// `final_loss / clear_final_loss` — 1.0 for the baseline, growing
    /// with `z` (the convergence gap).
    pub loss_vs_clear: f64,
    /// Server updates (all of them accounted DP releases).
    pub releases: u64,
    /// Lifetime fraction of accepted updates that were clipped.
    pub clip_fraction: f64,
    /// Noise std of the last release (`C·z / weight_total`).
    pub noise_std: f64,
    /// Cumulative `epsilon(target_delta)` after the last release
    /// (`∞` at `z = 0`).
    pub epsilon: f64,
}

/// The `δ` the sweep reports ε at.
pub const ABLATION_DELTA: f64 = 1e-6;

fn run_once(scale: Scale, seed: u64, noise_multiplier: f64) -> TaskReport {
    let size = match scale {
        Scale::Quick => 1_000,
        Scale::Full => 8_000,
    };
    let hours = match scale {
        Scale::Quick => 1.0,
        Scale::Full => 4.0,
    };
    let pop = population(size, seed);
    let trainer = Arc::new(SurrogateObjective::new(
        &pop,
        experiment_surrogate_config(),
        seed,
    ));
    let dp = DpConfig::new(2.0, noise_multiplier)
        // K-of-population per release, claimed conservatively.
        .with_sampling_rate((32.0 / size as f64).min(1.0))
        .with_target_delta(ABLATION_DELTA);
    Scenario::builder()
        .population(pop)
        .task_with_trainer(
            TaskConfig::async_task("dp-ablation", 64, 32)
                .with_example_weighting(false)
                .with_dp(dp),
            trainer,
        )
        .limits(RunLimits::default().with_max_virtual_time_hours(hours))
        .eval(EvalPolicy::default().with_interval_s(600.0))
        .seed(seed)
        .build()
        .run()
        .into_single()
}

/// Runs the noise-multiplier sweep.
pub fn dp_ablation(scale: Scale, seed: u64) -> Vec<DpAblationRow> {
    let reports: Vec<TaskReport> = NOISE_MULTIPLIERS
        .iter()
        .map(|&z| run_once(scale, seed, z))
        .collect();
    let clear_loss = reports[0].final_loss;
    NOISE_MULTIPLIERS
        .iter()
        .zip(&reports)
        .map(|(&z, report)| {
            let dp = &report.metrics.dp;
            DpAblationRow {
                noise_multiplier: z,
                final_loss: report.final_loss,
                loss_vs_clear: report.final_loss / clear_loss,
                releases: dp.releases,
                clip_fraction: dp.clip_fraction(),
                noise_std: dp.release_trace.last().map_or(0.0, |r| r.noise_std),
                epsilon: dp.cumulative_epsilon,
            }
        })
        .collect()
}

/// Prints the ablation table.
pub fn print_dp_ablation(rows: &[DpAblationRow]) {
    println!(
        "{:>6} {:>12} {:>10} {:>9} {:>8} {:>10} {:>14}",
        "z", "final_loss", "vs_clear", "releases", "clip%", "noise_std", "epsilon"
    );
    for row in rows {
        let epsilon = if row.epsilon.is_finite() {
            format!("{:.3}", row.epsilon)
        } else {
            "inf (no noise)".to_string()
        };
        println!(
            "{:>6.2} {:>12.5} {:>10.3} {:>9} {:>8.1} {:>10.5} {:>14}",
            row.noise_multiplier,
            row.final_loss,
            row.loss_vs_clear,
            row.releases,
            100.0 * row.clip_fraction,
            row.noise_std,
            epsilon,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_shapes_match_the_privacy_utility_trade_off() {
        let rows = dp_ablation(Scale::Quick, 7);
        assert_eq!(rows.len(), NOISE_MULTIPLIERS.len());
        // The clear-equivalent baseline: no privacy claimed, no noise.
        assert_eq!(rows[0].loss_vs_clear, 1.0);
        assert_eq!(rows[0].epsilon, f64::INFINITY);
        assert_eq!(rows[0].noise_std, 0.0);
        for row in &rows {
            assert!(row.releases > 10, "z={}: barely ran", row.noise_multiplier);
        }
        // Convergence gap: the heaviest noise is clearly worse than clear,
        // and the sweep's extremes order correctly (middle points may jitter
        // within simulation noise; the equivalence suite pins a strict
        // ordering on widely spaced multipliers).
        let last = rows.last().unwrap();
        assert!(
            last.loss_vs_clear > 1.02,
            "no convergence gap at z=2: {}",
            last.loss_vs_clear
        );
        // ε decreases as z rises over the noised rows.
        for pair in rows[1..].windows(2) {
            assert!(pair[0].epsilon.is_finite());
            assert!(
                pair[1].epsilon <= pair[0].epsilon,
                "epsilon rose with noise: {pair:?}"
            );
        }
        // Noise std rises linearly with z at a fixed clip bound and goal.
        for pair in rows[1..].windows(2) {
            assert!(pair[1].noise_std > pair[0].noise_std);
        }
    }
}
