//! The language-model quality experiment behind Table 1.
//!
//! The paper trains the production LSTM for one million client updates and
//! reports test perplexity for all clients and for the clients in the 75th
//! and 99th data-volume percentiles, under three configurations: SyncFL
//! without over-selection, SyncFL with over-selection, and AsyncFL.  The
//! reproduction runs the same three configurations on the synthetic
//! federated text corpus with a scaled-down update budget.

use crate::experiments::common::Scale;
use papaya_core::TaskConfig;
use papaya_data::dataset::FederatedTextDataset;
use papaya_data::population::{Population, PopulationConfig};
use papaya_lm::{LmClientTrainer, LmConfig};
use papaya_sim::scenario::{EvalPolicy, RunLimits, Scenario};
use papaya_sim::ServerOptimizerKind;
use std::sync::Arc;

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Configuration label.
    pub method: &'static str,
    /// Test perplexity over all clients.
    pub all: f64,
    /// Test perplexity over clients at or above the 75th data-volume
    /// percentile.
    pub p75: f64,
    /// Test perplexity over clients at or above the 99th data-volume
    /// percentile.
    pub p99: f64,
    /// Virtual hours the configuration ran for.
    pub hours: f64,
    /// Client updates received.
    pub client_updates: u64,
}

/// Scale parameters for the Table 1 run.
struct LmScale {
    population: usize,
    concurrency: usize,
    aggregation_goal: usize,
    client_update_budget: u64,
}

fn lm_scale(scale: Scale) -> LmScale {
    match scale {
        Scale::Quick => LmScale {
            population: 150,
            concurrency: 24,
            aggregation_goal: 6,
            client_update_budget: 600,
        },
        Scale::Full => LmScale {
            population: 600,
            concurrency: 64,
            aggregation_goal: 16,
            client_update_budget: 4_000,
        },
    }
}

/// Runs Table 1: returns one row per configuration.
pub fn table1(scale: Scale, seed: u64) -> Vec<Table1Row> {
    let s = lm_scale(scale);
    let population =
        Population::generate(&PopulationConfig::default().with_size(s.population), seed);
    let dataset = Arc::new(FederatedTextDataset::generate(&population, 4, seed));
    let trainer = Arc::new(LmClientTrainer::new(dataset, LmConfig::tiny()).with_max_sequences(16));

    let all_ids: Vec<usize> = (0..population.len()).collect();
    let p75_ids = population.ids_above_example_percentile(75.0);
    let p99_ids = population.ids_above_example_percentile(99.0);

    let goal = s.aggregation_goal;
    let sync_goal = (s.concurrency as f64 / 1.3).round() as usize;
    let configs: Vec<(&'static str, TaskConfig)> = vec![
        (
            "SyncFL w/o OS",
            TaskConfig::sync_task("sync-noos", sync_goal, 0.0),
        ),
        (
            "SyncFL with OS",
            TaskConfig::sync_task("sync-os", s.concurrency, 0.3),
        ),
        (
            "AsyncFL",
            TaskConfig::async_task("async", s.concurrency, goal),
        ),
    ];

    configs
        .into_iter()
        .map(|(method, task)| {
            let report = Scenario::builder()
                .population(population.clone())
                .task_with_trainer(task, trainer.clone())
                .limits(
                    RunLimits::default()
                        .with_max_virtual_time_hours(500.0)
                        .with_max_client_updates(s.client_update_budget),
                )
                .eval(
                    EvalPolicy::default()
                        .with_interval_s(50_000.0)
                        .with_sample_size(32),
                )
                .server_optimizer(ServerOptimizerKind::FedAvg)
                .seed(seed)
                .build()
                .run();
            let hours = report.virtual_hours;
            let result = report.into_single();
            Table1Row {
                method,
                all: trainer.perplexity(&result.final_params, &all_ids),
                p75: trainer.perplexity(&result.final_params, &p75_ids),
                p99: trainer.perplexity(&result.final_params, &p99_ids),
                hours,
                client_updates: result.comm_trips(),
            }
        })
        .collect()
}

/// Prints Table 1 in the paper's layout.
pub fn print_table1(rows: &[Table1Row]) {
    println!(
        "{:<16} | {:>8} | {:>8} | {:>8} | {:>10} | {:>14}",
        "Method", "All", "75%", "99%", "Time (h)", "client updates"
    );
    for row in rows {
        println!(
            "{:<16} | {:8.2} | {:8.2} | {:8.2} | {:10.2} | {:14}",
            row.method, row.all, row.p75, row.p99, row.hours, row.client_updates
        );
    }
}
