//! Shared experiment plumbing: populations, trainers, convergence runs, and
//! command-line handling for the figure binaries.

use papaya_core::client::ClientTrainer;
use papaya_core::surrogate::{SurrogateConfig, SurrogateObjective};
use papaya_core::TaskConfig;
use papaya_data::population::{Population, PopulationConfig};
use papaya_sim::scenario::{EvalPolicy, RunLimits, Scenario, TaskReport};
use papaya_sim::ServerOptimizerKind;
use std::sync::Arc;

/// Experiment scale: `Quick` for CI-sized runs, `Full` for the runs recorded
/// in EXPERIMENTS.md.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small populations and concurrencies; finishes in seconds.
    Quick,
    /// The full sweep (minutes).
    Full,
}

impl Scale {
    /// Population size used for the surrogate experiments.
    pub fn population_size(&self) -> usize {
        match self {
            Scale::Quick => 4_000,
            Scale::Full => 20_000,
        }
    }

    /// Concurrency sweep (Figures 3, 8, 9).
    pub fn concurrencies(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![65, 130, 325, 650],
            Scale::Full => vec![130, 650, 1300, 2000, 2600],
        }
    }

    /// The reference concurrency used by Figures 7, 10, 12, 13 (1300 in the
    /// paper).
    pub fn reference_concurrency(&self) -> usize {
        match self {
            Scale::Quick => 325,
            Scale::Full => 1300,
        }
    }

    /// The reference aggregation goal (`K = 100` in the paper, scaled with
    /// concurrency for quick runs).
    pub fn reference_aggregation_goal(&self) -> usize {
        match self {
            Scale::Quick => 25,
            Scale::Full => 100,
        }
    }
}

/// Parsed command-line arguments shared by all figure binaries.
#[derive(Clone, Debug)]
pub struct CliArgs {
    /// Experiment scale.
    pub scale: Scale,
    /// RNG seed.
    pub seed: u64,
}

/// Parses `--quick` / `--full` / `--seed N` from `std::env::args`.
pub fn parse_args() -> CliArgs {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale::Quick;
    let mut seed = 42u64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--seed" => {
                if let Some(value) = args.get(i + 1) {
                    seed = value.parse().unwrap_or(seed);
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    CliArgs { scale, seed }
}

/// The surrogate configuration used by the convergence experiments: enough
/// gradient noise that cohort size matters, plus heavy-client bias so
/// over-selection hurts.
pub fn experiment_surrogate_config() -> SurrogateConfig {
    SurrogateConfig {
        dim: 32,
        heterogeneity: 0.8,
        volume_bias: 2.0,
        local_learning_rate: 0.05,
        batch_size: 32,
        max_local_steps: 4,
        // Large per-update gradient noise puts the experiments in the
        // noise-limited regime the paper operates in: aggregating more client
        // updates per server step improves the step's signal-to-noise ratio,
        // which is what makes cohort size / aggregation goal matter.
        gradient_noise: 60.0,
        init_distance: 8.0,
    }
}

/// Builds the default synthetic population.
pub fn population(size: usize, seed: u64) -> Population {
    Population::generate(&PopulationConfig::default().with_size(size), seed)
}

/// Builds the surrogate trainer over a population.
pub fn surrogate(population: &Population, seed: u64) -> Arc<SurrogateObjective> {
    Arc::new(SurrogateObjective::new(
        population,
        experiment_surrogate_config(),
        seed,
    ))
}

/// The initial population loss of a surrogate objective (used to set
/// relative loss targets).
pub fn initial_loss(trainer: &SurrogateObjective) -> f64 {
    let all: Vec<usize> = (0..trainer.num_clients()).collect();
    trainer.evaluate(&trainer.initial_parameters(), &all)
}

/// A target loss for convergence experiments: the achievable floor (loss at
/// the population optimum) plus 5 % of the initial-to-floor gap.
pub fn target_loss(trainer: &SurrogateObjective) -> f64 {
    let all: Vec<usize> = (0..trainer.num_clients()).collect();
    let floor = trainer.evaluate(&trainer.population_optimum(), &all);
    let initial = initial_loss(trainer);
    floor + 0.05 * (initial - floor)
}

/// Runs one task to a target loss (or the virtual-time cap) through the
/// unified [`Scenario`] entrypoint and returns the task's report.
pub fn run_to_target(
    task: TaskConfig,
    population: &Population,
    trainer: &Arc<SurrogateObjective>,
    target_loss: f64,
    max_hours: f64,
    seed: u64,
) -> TaskReport {
    Scenario::builder()
        .population(population.clone())
        .task_with_trainer(task, trainer.clone())
        .limits(
            RunLimits::default()
                .with_target_loss(target_loss)
                .with_max_virtual_time_hours(max_hours),
        )
        .eval(
            EvalPolicy::default()
                .with_interval_s(60.0)
                .with_sample_size(300),
        )
        // FedAdam on the server, as in Section 7.1.
        .server_optimizer(ServerOptimizerKind::FedAdam {
            learning_rate: 0.02,
            beta1: 0.9,
        })
        .seed(seed)
        .build()
        .run()
        .into_single()
}

/// Formats an `Option<f64>` hours value for table output.
pub fn fmt_hours(hours: Option<f64>) -> String {
    match hours {
        Some(h) => format!("{h:8.2}"),
        None => "   >cap ".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_expose_growing_sweeps() {
        assert!(Scale::Quick.population_size() < Scale::Full.population_size());
        assert!(Scale::Quick.concurrencies().len() <= Scale::Full.concurrencies().len());
        assert!(Scale::Quick.reference_concurrency() < Scale::Full.reference_concurrency());
    }

    #[test]
    fn run_to_target_converges_for_a_small_async_task() {
        let pop = population(1_500, 3);
        let trainer = surrogate(&pop, 3);
        let target = target_loss(&trainer);
        assert!(target < initial_loss(&trainer));
        let result = run_to_target(
            TaskConfig::async_task("t", 64, 16),
            &pop,
            &trainer,
            target,
            50.0,
            3,
        );
        assert!(result.hours_to_target.is_some(), "did not reach target");
    }

    #[test]
    fn fmt_hours_handles_missing() {
        assert!(fmt_hours(None).contains(">cap"));
        assert!(fmt_hours(Some(1.5)).contains("1.50"));
    }
}
