//! Hand-rolled peak-RSS measurement for the perf suite (no external crates).
//!
//! The `fedbuff-1m` scenario exists to prove the simulator's per-client
//! memory story (`docs/SCALING.md`), so the perf suite must *measure*
//! resident memory, not just wall-clock.  Linux exposes everything needed:
//!
//! * `/proc/self/status` reports `VmHWM` (peak resident set) and `VmRSS`
//!   (current resident set) in kB;
//! * writing `5` to `/proc/self/clear_refs` resets `VmHWM` to the current
//!   `VmRSS`, giving a per-measurement-window peak.
//!
//! [`PeakRssSampler`] prefers the kernel's own high-water mark (reset +
//! read, zero overhead during the run).  When `clear_refs` is not writable
//! (hardened containers mount `/proc` read-only), it degrades to a
//! background thread polling `VmRSS` every few milliseconds — an
//! underestimate bounded by the polling interval, still plenty to catch an
//! O(population) regression.  On systems without `/proc` the sampler
//! reports `None` and the RSS gate in [`crate::perf::compare`] is simply
//! skipped (the gate only fires when both suites carry a measurement).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Parses a `VmHWM:`/`VmRSS:`-style line of `/proc/self/status` to bytes.
fn parse_vm_field(status: &str, field: &str) -> Option<u64> {
    status
        .lines()
        .find_map(|line| line.strip_prefix(field))
        .and_then(|rest| {
            rest.trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok()
        })
        .map(|kb| kb * 1024)
}

fn read_vm_field(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_field(&status, field)
}

/// Current resident set size of this process, when the OS exposes it.
pub fn current_rss_bytes() -> Option<u64> {
    read_vm_field("VmRSS:")
}

/// Peak (high-water mark) resident set size since start or last reset.
pub fn peak_rss_bytes() -> Option<u64> {
    read_vm_field("VmHWM:")
}

/// One measurement window's peak-RSS recorder; see the module docs for the
/// two strategies.  `start` before the measured work, `stop` after.
pub struct PeakRssSampler {
    mode: Mode,
}

enum Mode {
    /// `clear_refs` reset succeeded: read `VmHWM` at stop.
    HighWaterMark,
    /// Reset unavailable: poll `VmRSS` on a background thread.
    Poll {
        stop: Arc<AtomicBool>,
        handle: JoinHandle<u64>,
    },
    /// No `/proc`: report nothing.
    Unavailable,
}

impl PeakRssSampler {
    /// Milliseconds between `VmRSS` polls in the fallback mode.
    const POLL_INTERVAL_MS: u64 = 2;

    /// Starts a measurement window.
    pub fn start() -> Self {
        if peak_rss_bytes().is_none() {
            return PeakRssSampler {
                mode: Mode::Unavailable,
            };
        }
        // "5" asks the kernel to reset the peak-RSS high-water mark.
        if std::fs::write("/proc/self/clear_refs", "5").is_ok() {
            return PeakRssSampler {
                mode: Mode::HighWaterMark,
            };
        }
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut peak = 0u64;
            while !stop_flag.load(Ordering::Relaxed) {
                if let Some(rss) = current_rss_bytes() {
                    peak = peak.max(rss);
                }
                std::thread::sleep(Duration::from_millis(Self::POLL_INTERVAL_MS));
            }
            if let Some(rss) = current_rss_bytes() {
                peak = peak.max(rss);
            }
            peak
        });
        PeakRssSampler {
            mode: Mode::Poll { stop, handle },
        }
    }

    /// Ends the window and returns the peak resident set in bytes observed
    /// during it (`None` when the OS exposes no measurement).
    pub fn stop(self) -> Option<u64> {
        match self.mode {
            Mode::HighWaterMark => peak_rss_bytes(),
            Mode::Poll { stop, handle } => {
                stop.store(true, Ordering::Relaxed);
                handle.join().ok().filter(|&peak| peak > 0)
            }
            Mode::Unavailable => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_field_parser_handles_proc_status_lines() {
        let status = "Name:\tperf_suite\nVmRSS:\t  123456 kB\nVmHWM:\t  654321 kB\n";
        assert_eq!(parse_vm_field(status, "VmRSS:"), Some(123_456 * 1024));
        assert_eq!(parse_vm_field(status, "VmHWM:"), Some(654_321 * 1024));
        assert_eq!(parse_vm_field(status, "VmSwap:"), None);
    }

    #[test]
    fn sampler_observes_a_large_allocation() {
        let sampler = PeakRssSampler::start();
        // Touch every page so the allocation is actually resident.
        let mut block = vec![0u8; 64 << 20];
        for page in block.chunks_mut(4096) {
            page[0] = 1;
        }
        let peak = sampler.stop();
        drop(block);
        // The window's peak must at least cover the touched block; without
        // /proc (peak == None) there is nothing to assert.
        if let Some(bytes) = peak {
            assert!(bytes >= 64 << 20, "peak {bytes} bytes");
        }
    }
}
