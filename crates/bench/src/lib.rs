//! Experiment harness regenerating the tables and figures of the PAPAYA
//! paper.
//!
//! Each figure/table has a binary under `src/bin/` (`fig2` … `fig13`,
//! `table1`) that prints the same rows/series the paper reports, and the
//! heavy lifting lives in [`experiments`] so integration tests and Criterion
//! benches can reuse it.
//!
//! Run, for example:
//!
//! ```bash
//! cargo run -p bench --release --bin fig9 -- --quick
//! cargo run -p bench --release --bin table1 -- --quick
//! ```
//!
//! `--quick` shrinks the population and concurrency sweep so a run finishes
//! in seconds; omit it for the full-scale (minutes-long) sweep recorded in
//! `EXPERIMENTS.md`.

pub mod experiments;
pub mod perf;
pub mod rss;

pub use experiments::common::{parse_args, CliArgs, Scale};
