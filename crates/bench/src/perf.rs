//! The `perf_suite` harness: canonical scenarios, wall-clock measurement,
//! `BENCH_*.json` serialization, and the CI regression gate.
//!
//! Seven canonical scenarios track the simulator's performance trajectory
//! (the MLSys systems-benchmarking practice of measuring the *system*, not
//! just the model):
//!
//! * `fedbuff-20k` — single-task FedBuff over a 20 000-device population,
//!   the paper's reference asynchronous workload;
//! * `fedbuff-20k-secagg` — the same workload through AsyncSecAgg, which
//!   tracks the secure pipeline's overhead (per-update key exchange and
//!   masking, per-buffer TSA key release);
//! * `fedbuff-20k-dp` — the same workload with user-level differential
//!   privacy (per-update L2 clipping, seeded Gaussian release noise, RDP
//!   accounting), which tracks the DP layer's overhead;
//! * `timed-hybrid` — the deadline-release strategy, which stresses the
//!   exact-deadline event path;
//! * `fleet-crash` — a 6-task multi-tenant fleet with an injected
//!   Aggregator crash, which stresses the control plane;
//! * `fedbuff-1m` — FedBuff over a **million-device** population (never
//!   shrunk by `--quick`), which gates the O(bytes)-per-idle-client memory
//!   path: sharded sampling pool, packed population, procedural trainer,
//!   bounded traces (`docs/SCALING.md`);
//! * `fleet-scale` — a 4-task fleet over 200 000 devices (50 000 quick),
//!   the control plane at fleet population scale, also trace-bounded.
//!
//! Each scenario runs twice — sequentially and on an N-thread training
//! pool — and the harness records wall-clock seconds, events/sec, peak
//! resident memory (see [`crate::rss`]), the speedup, and whether the two
//! reports were bit-identical (they must be; see [`papaya_sim::executor`]).
//! Results are written to `BENCH_<label>.json`; [`compare`] implements the
//! CI gate that fails when wall-clock, throughput, or peak RSS regresses
//! beyond a factor against a checked-in baseline.
//!
//! `--quick` shrinks every scenario for the CI smoke job; quick and full
//! results are never comparable, and [`compare`] refuses to try.

use crate::experiments::common::population;
use crate::rss::PeakRssSampler;
use papaya_core::config::SecAggMode;
use papaya_core::surrogate::{ProceduralSurrogate, SurrogateConfig, SurrogateObjective};
use papaya_core::{DpConfig, TaskConfig};
use papaya_sim::scenario::{EvalPolicy, FleetSpec, Report, RunLimits, Scenario};
use papaya_sim::Parallelism;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// A surrogate objective heavy enough that client training dominates the
/// event loop, as the real LSTM does in production.  (The figure-experiment
/// config is tuned for convergence dynamics instead and trains in ~1 µs,
/// which would benchmark the event queue rather than the training path.)
pub fn perf_surrogate_config() -> SurrogateConfig {
    SurrogateConfig {
        dim: 128,
        heterogeneity: 0.5,
        volume_bias: 2.0,
        local_learning_rate: 0.05,
        batch_size: 16,
        max_local_steps: 32,
        gradient_noise: 1.0,
        init_distance: 8.0,
    }
}

/// Builds one canonical scenario by name.
///
/// # Panics
///
/// Panics on an unknown scenario name; see [`SCENARIO_NAMES`].
pub fn build_scenario(name: &str, quick: bool, parallelism: Parallelism, seed: u64) -> Scenario {
    let scale = |full: usize, q: usize| if quick { q } else { full };
    match name {
        "fedbuff-20k" => {
            let pop = population(scale(20_000, 2_000), seed);
            let trainer = Arc::new(SurrogateObjective::new(&pop, perf_surrogate_config(), seed));
            Scenario::builder()
                .population(pop)
                .task_with_trainer(
                    TaskConfig::async_task("fedbuff-20k", scale(1024, 256), scale(128, 32)),
                    trainer,
                )
                .limits(
                    RunLimits::default()
                        .with_max_virtual_time_hours(100.0)
                        .with_max_client_updates(scale(40_000, 4_000) as u64)
                        .with_parallelism(parallelism),
                )
                .eval(
                    EvalPolicy::default()
                        .with_interval_s(1800.0)
                        .with_sample_size(100),
                )
                .seed(seed)
                .build()
        }
        "fedbuff-20k-secagg" => {
            // The fedbuff-20k workload with AsyncSecAgg in the loop: every
            // accepted update runs the client protocol (session-cached key
            // exchange, ratcheted masking) and every release is one batched
            // TSA key release, so the gate tracks the secure pipeline's
            // overhead over time — both as absolute wall-clock and as the
            // [`ScenarioPerf::secagg_overhead_factor`] ratio against the
            // clear scenario, gated at [`MAX_SECAGG_OVERHEAD_FACTOR`].  The
            // update budget predates the session cache (when per-update DH
            // dominated the wall clock) and is kept for baseline continuity.
            let pop = population(scale(20_000, 2_000), seed);
            let trainer = Arc::new(SurrogateObjective::new(&pop, perf_surrogate_config(), seed));
            Scenario::builder()
                .population(pop)
                .task_with_trainer(
                    TaskConfig::async_task("fedbuff-20k-secagg", scale(1024, 256), scale(128, 32))
                        .with_secagg(SecAggMode::AsyncSecAgg),
                    trainer,
                )
                .limits(
                    RunLimits::default()
                        .with_max_virtual_time_hours(100.0)
                        .with_max_client_updates(scale(10_000, 1_200) as u64)
                        .with_parallelism(parallelism),
                )
                .eval(
                    EvalPolicy::default()
                        .with_interval_s(1800.0)
                        .with_sample_size(100),
                )
                .seed(seed)
                .build()
        }
        "fedbuff-20k-dp" => {
            // The fedbuff-20k workload with the DP layer in the loop: every
            // accepted update is L2-clipped (a norm + scale over the model
            // dimension) and every release draws model-dimension Gaussian
            // noise and one accountant query, so the gate tracks the DP
            // pipeline's overhead over time.  Cheap enough per update that
            // the clear scenario's budget is kept.  (The concurrency-over-
            // population sampling rate models amplification for the typical
            // user; FedBuff selection is speed-biased, so it is not a
            // worst-case certificate — see papaya_core::dp.)
            let pop = population(scale(20_000, 2_000), seed);
            let trainer = Arc::new(SurrogateObjective::new(&pop, perf_surrogate_config(), seed));
            Scenario::builder()
                .population(pop)
                .task_with_trainer(
                    TaskConfig::async_task("fedbuff-20k-dp", scale(1024, 256), scale(128, 32))
                        .with_dp(DpConfig::new(2.0, 1.0).with_sampling_rate(
                            scale(1024, 256) as f64 / scale(20_000, 2_000) as f64,
                        )),
                    trainer,
                )
                .limits(
                    RunLimits::default()
                        .with_max_virtual_time_hours(100.0)
                        .with_max_client_updates(scale(40_000, 4_000) as u64)
                        .with_parallelism(parallelism),
                )
                .eval(
                    EvalPolicy::default()
                        .with_interval_s(1800.0)
                        .with_sample_size(100),
                )
                .seed(seed)
                .build()
        }
        "timed-hybrid" => {
            let pop = population(scale(6_000, 1_500), seed);
            let trainer = Arc::new(SurrogateObjective::new(&pop, perf_surrogate_config(), seed));
            Scenario::builder()
                .population(pop)
                .task_with_trainer(
                    TaskConfig::timed_hybrid_task(
                        "timed-hybrid",
                        scale(512, 128),
                        scale(128, 32),
                        if quick { 120.0 } else { 300.0 },
                    ),
                    trainer,
                )
                .limits(
                    RunLimits::default()
                        .with_max_virtual_time_hours(100.0)
                        .with_max_client_updates(scale(20_000, 2_500) as u64)
                        .with_parallelism(parallelism),
                )
                .eval(
                    EvalPolicy::default()
                        .with_interval_s(1800.0)
                        .with_sample_size(100),
                )
                .seed(seed)
                .build()
        }
        "fleet-crash" => {
            let pop = population(scale(10_000, 2_500), seed);
            let trainer = Arc::new(SurrogateObjective::new(&pop, perf_surrogate_config(), seed));
            let unit = scale(4, 1);
            let tasks = vec![
                TaskConfig::async_task("keyboard-lm", 48 * unit, 12 * unit),
                TaskConfig::async_task("speech-kws", 24 * unit, 8 * unit)
                    .with_min_capability_tier(1),
                TaskConfig::sync_task("photo-ranker", 30 * unit, 0.3),
                TaskConfig::async_task("smart-reply", 16 * unit, 4 * unit)
                    .with_min_capability_tier(2),
                TaskConfig::timed_hybrid_task("health-study", 16 * unit, 32 * unit, 600.0),
                TaskConfig::sync_task("face-cluster", 24 * unit, 0.0),
            ];
            let mut builder = Scenario::builder()
                .population(pop)
                .fleet(FleetSpec::new(3, 4))
                .crash_at(if quick { 600.0 } else { 1800.0 }, 0)
                .limits(
                    RunLimits::default()
                        .with_max_virtual_time_hours(if quick { 0.5 } else { 1.5 })
                        .with_parallelism(parallelism),
                )
                .eval(
                    EvalPolicy::default()
                        .with_interval_s(900.0)
                        .with_sample_size(100),
                )
                .seed(seed);
            for task in tasks {
                // Shares the trainer so tasks compete on timing, not setup cost.
                builder = builder.task_with_trainer(task, trainer.clone());
            }
            builder.build()
        }
        "fedbuff-1m" => {
            // A million devices even under --quick: this scenario exists to
            // gate the memory story, so the population never shrinks — only
            // the update budget and concurrency do.  The pieces that make a
            // million idle clients affordable are all on this path: the
            // packed population (12 B/device), the sharded sampling pool
            // (8 B/device), the procedural surrogate (4 B/device instead of
            // dim floats), and a bounded trace budget so metrics stay
            // O(budget) rather than O(events).
            let pop = population(1_000_000, seed);
            let trainer = Arc::new(ProceduralSurrogate::new(
                &pop,
                perf_surrogate_config(),
                seed,
            ));
            Scenario::builder()
                .population(pop)
                .task_with_trainer(
                    TaskConfig::async_task("fedbuff-1m", scale(4096, 1024), scale(256, 64)),
                    trainer,
                )
                .limits(
                    RunLimits::default()
                        .with_max_virtual_time_hours(100.0)
                        .with_max_client_updates(scale(40_000, 3_000) as u64)
                        .with_parallelism(parallelism)
                        .with_trace_budget(4096),
                )
                .eval(
                    EvalPolicy::default()
                        .with_interval_s(3600.0)
                        .with_sample_size(100),
                )
                .seed(seed)
                .build()
        }
        "fleet-scale" => {
            // The multi-tenant control plane at fleet population scale: four
            // tasks sharing 200k devices (50k quick) through three
            // aggregators and four selectors, no injected crash — this
            // measures steady-state routing/selection cost where fleet-crash
            // measures failover.  Trace-bounded like fedbuff-1m.
            let pop = population(scale(200_000, 50_000), seed);
            let trainer = Arc::new(ProceduralSurrogate::new(
                &pop,
                perf_surrogate_config(),
                seed,
            ));
            let unit = scale(4, 1);
            let tasks = vec![
                TaskConfig::async_task("assistant-lm", 256 * unit, 64 * unit),
                TaskConfig::async_task("photo-tagger", 128 * unit, 32 * unit)
                    .with_min_capability_tier(1),
                TaskConfig::timed_hybrid_task("telemetry", 64 * unit, 16 * unit, 600.0),
                TaskConfig::sync_task("ranker", 96 * unit, 0.2),
            ];
            let mut builder = Scenario::builder()
                .population(pop)
                .fleet(FleetSpec::new(3, 4))
                .limits(
                    RunLimits::default()
                        .with_max_virtual_time_hours(if quick { 0.5 } else { 2.0 })
                        .with_parallelism(parallelism)
                        .with_trace_budget(4096),
                )
                .eval(
                    EvalPolicy::default()
                        .with_interval_s(900.0)
                        .with_sample_size(100),
                )
                .seed(seed);
            for task in tasks {
                builder = builder.task_with_trainer(task, trainer.clone());
            }
            builder.build()
        }
        other => panic!("unknown perf scenario {other:?}; known: {SCENARIO_NAMES:?}"),
    }
}

/// The canonical scenario set, in run order.
pub const SCENARIO_NAMES: [&str; 7] = [
    "fedbuff-20k",
    "fedbuff-20k-secagg",
    "fedbuff-20k-dp",
    "timed-hybrid",
    "fleet-crash",
    "fedbuff-1m",
    "fleet-scale",
];

/// Measured performance of one scenario at one thread count.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioPerf {
    /// Canonical scenario name.
    pub name: String,
    /// Wall-clock seconds of the sequential (inline-training) run.
    pub wall_s_sequential: f64,
    /// Wall-clock seconds of the run with the worker pool.
    pub wall_s_parallel: f64,
    /// Discrete events processed (identical in both runs).
    pub events: u64,
    /// Client updates received (identical in both runs).
    pub client_updates: u64,
    /// `events / wall_s_sequential`.
    pub events_per_sec_sequential: f64,
    /// `events / wall_s_parallel`.
    pub events_per_sec_parallel: f64,
    /// `wall_s_sequential / wall_s_parallel`.
    pub speedup: f64,
    /// Whether the two reports were bit-identical (must be true).
    pub identical: bool,
    /// The secure pipeline's overhead tax: the clear twin's sequential
    /// events/sec divided by this scenario's (per-event rates, so the two
    /// scenarios' different update budgets cancel out — this is the paper's
    /// "170x" axis).  Only set on `fedbuff-20k-secagg` (vs `fedbuff-20k`);
    /// gated at [`MAX_SECAGG_OVERHEAD_FACTOR`] by [`compare`].
    pub secagg_overhead_factor: Option<f64>,
    /// On-loop secure-pipeline time of the sequential run, summed across
    /// tasks: DH handshakes, mask expansion, fixed-point encode, and
    /// release unmasking.  All zero for clear scenarios; machine-dependent
    /// diagnostics only — never compared against a baseline.
    pub secure_handshake_s: f64,
    /// See [`ScenarioPerf::secure_handshake_s`].
    pub secure_mask_s: f64,
    /// See [`ScenarioPerf::secure_handshake_s`].
    pub secure_encode_s: f64,
    /// See [`ScenarioPerf::secure_handshake_s`].
    pub secure_unmask_s: f64,
    /// Peak resident set (bytes) observed across both runs of this
    /// scenario, via [`crate::rss::PeakRssSampler`].  `None` when the OS
    /// exposes no measurement (no `/proc`); the RSS gate in [`compare`]
    /// only fires when both suites carry one.
    pub peak_rss_bytes: Option<u64>,
}

/// One `BENCH_*.json` payload: a labelled suite run.
#[derive(Clone, Debug, PartialEq)]
pub struct SuiteResult {
    /// Label naming the file (`BENCH_<label>.json`).
    pub label: String,
    /// Worker threads of the parallel runs.
    pub threads: usize,
    /// Whether the reduced (CI smoke) scenario sizes were used.
    pub quick: bool,
    /// RNG seed of every scenario.
    pub seed: u64,
    /// Per-scenario measurements.
    pub scenarios: Vec<ScenarioPerf>,
}

fn timed_run(scenario: &Scenario) -> (f64, Report) {
    let start = Instant::now();
    let report = scenario.run();
    (start.elapsed().as_secs_f64(), report)
}

/// Runs one canonical scenario sequentially and at `threads` workers.
pub fn measure_scenario(name: &str, quick: bool, threads: usize, seed: u64) -> ScenarioPerf {
    // One RSS window spans both runs (build + run, sequential and
    // parallel): the scenario's memory gate covers its worst case.
    let rss = PeakRssSampler::start();
    let (wall_seq, report_seq) = timed_run(&build_scenario(
        name,
        quick,
        Parallelism::sequential(),
        seed,
    ));
    let (wall_par, report_par) =
        timed_run(&build_scenario(name, quick, Parallelism(threads), seed));
    let peak_rss_bytes = rss.stop();
    let events = report_seq.events_processed;
    let mut timings = papaya_core::secure::SecureTimings::default();
    for task in &report_seq.tasks {
        timings.merge(&task.metrics.secure_timings);
    }
    ScenarioPerf {
        name: name.to_string(),
        wall_s_sequential: wall_seq,
        wall_s_parallel: wall_par,
        events,
        client_updates: report_seq.fleet.total_comm_trips,
        events_per_sec_sequential: events as f64 / wall_seq.max(1e-9),
        events_per_sec_parallel: events as f64 / wall_par.max(1e-9),
        speedup: wall_seq / wall_par.max(1e-9),
        identical: report_seq.fingerprint() == report_par.fingerprint(),
        secagg_overhead_factor: None,
        secure_handshake_s: timings.handshake_s,
        secure_mask_s: timings.mask_s,
        secure_encode_s: timings.encode_s,
        secure_unmask_s: timings.unmask_s,
        peak_rss_bytes,
    }
}

/// The secure scenario and its clear twin for the overhead-factor ratio.
const SECAGG_OVERHEAD_PAIR: (&str, &str) = ("fedbuff-20k-secagg", "fedbuff-20k");

/// Runs the whole canonical suite and fills in the secagg overhead factor
/// (secure sequential wall over clear sequential wall).
pub fn run_suite(label: &str, quick: bool, threads: usize, seed: u64) -> SuiteResult {
    run_suite_scenarios(label, quick, threads, seed, &SCENARIO_NAMES)
}

/// [`run_suite`] restricted to a subset of [`SCENARIO_NAMES`] (the
/// `perf_suite --scenario` flag).  The secagg overhead factor is only
/// filled in when both halves of the pair ran.
pub fn run_suite_scenarios(
    label: &str,
    quick: bool,
    threads: usize,
    seed: u64,
    names: &[&str],
) -> SuiteResult {
    let mut scenarios: Vec<ScenarioPerf> = names
        .iter()
        .map(|name| measure_scenario(name, quick, threads, seed))
        .collect();
    let (secure_name, clear_name) = SECAGG_OVERHEAD_PAIR;
    // Per-event rates, so the two scenarios' different update budgets
    // cancel out: the factor is "how much slower is one secure event".
    let clear_rate = scenarios
        .iter()
        .find(|s| s.name == clear_name)
        .map(|s| s.events_per_sec_sequential);
    if let (Some(clear_rate), Some(secure)) = (
        clear_rate,
        scenarios.iter_mut().find(|s| s.name == secure_name),
    ) {
        secure.secagg_overhead_factor =
            Some(clear_rate / secure.events_per_sec_sequential.max(1e-9));
    }
    SuiteResult {
        label: label.to_string(),
        threads,
        quick,
        seed,
        scenarios,
    }
}

// ---------------------------------------------------------------------------
// JSON (hand-rolled: the build environment has no serde)
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl SuiteResult {
    /// Serializes the suite to the `BENCH_*.json` format.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"label\": \"{}\",", json_escape(&self.label));
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"scenarios\": [");
        for (i, s) in self.scenarios.iter().enumerate() {
            let comma = if i + 1 < self.scenarios.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"name\": \"{}\",", json_escape(&s.name));
            let _ = writeln!(
                out,
                "      \"wall_s_sequential\": {:.6},",
                s.wall_s_sequential
            );
            let _ = writeln!(out, "      \"wall_s_parallel\": {:.6},", s.wall_s_parallel);
            let _ = writeln!(out, "      \"events\": {},", s.events);
            let _ = writeln!(out, "      \"client_updates\": {},", s.client_updates);
            let _ = writeln!(
                out,
                "      \"events_per_sec_sequential\": {:.3},",
                s.events_per_sec_sequential
            );
            let _ = writeln!(
                out,
                "      \"events_per_sec_parallel\": {:.3},",
                s.events_per_sec_parallel
            );
            let _ = writeln!(out, "      \"speedup\": {:.4},", s.speedup);
            let _ = writeln!(out, "      \"identical\": {},", s.identical);
            match s.secagg_overhead_factor {
                Some(factor) => {
                    let _ = writeln!(out, "      \"secagg_overhead_factor\": {factor:.4},");
                }
                None => {
                    let _ = writeln!(out, "      \"secagg_overhead_factor\": null,");
                }
            }
            let _ = writeln!(
                out,
                "      \"secure_handshake_s\": {:.6},",
                s.secure_handshake_s
            );
            let _ = writeln!(out, "      \"secure_mask_s\": {:.6},", s.secure_mask_s);
            let _ = writeln!(out, "      \"secure_encode_s\": {:.6},", s.secure_encode_s);
            let _ = writeln!(out, "      \"secure_unmask_s\": {:.6},", s.secure_unmask_s);
            match s.peak_rss_bytes {
                Some(bytes) => {
                    let _ = writeln!(out, "      \"peak_rss_bytes\": {bytes}");
                }
                None => {
                    let _ = writeln!(out, "      \"peak_rss_bytes\": null");
                }
            }
            let _ = writeln!(out, "    }}{comma}");
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses a suite from its `BENCH_*.json` form.
    pub fn from_json(text: &str) -> Result<SuiteResult, String> {
        let value = Json::parse(text)?;
        let obj = value.as_object("top level")?;
        let scenarios = Json::get(obj, "scenarios")?
            .as_array("scenarios")?
            .iter()
            .map(|entry| {
                let s = entry.as_object("scenario entry")?;
                // Fields introduced after the first baseline format are
                // tolerant of being absent (or null, for the Option).
                let opt_f64 = |key: &str| -> Result<Option<f64>, String> {
                    match Json::get(s, key) {
                        Err(_) | Ok(Json::Null) => Ok(None),
                        Ok(v) => Ok(Some(v.as_f64(key)?)),
                    }
                };
                let f64_or_zero =
                    |key: &str| -> Result<f64, String> { Ok(opt_f64(key)?.unwrap_or(0.0)) };
                Ok(ScenarioPerf {
                    name: Json::get(s, "name")?.as_str("name")?.to_string(),
                    wall_s_sequential: Json::get(s, "wall_s_sequential")?
                        .as_f64("wall_s_sequential")?,
                    wall_s_parallel: Json::get(s, "wall_s_parallel")?.as_f64("wall_s_parallel")?,
                    events: Json::get(s, "events")?.as_f64("events")? as u64,
                    client_updates: Json::get(s, "client_updates")?.as_f64("client_updates")?
                        as u64,
                    events_per_sec_sequential: Json::get(s, "events_per_sec_sequential")?
                        .as_f64("events_per_sec_sequential")?,
                    events_per_sec_parallel: Json::get(s, "events_per_sec_parallel")?
                        .as_f64("events_per_sec_parallel")?,
                    speedup: Json::get(s, "speedup")?.as_f64("speedup")?,
                    identical: Json::get(s, "identical")?.as_bool("identical")?,
                    secagg_overhead_factor: opt_f64("secagg_overhead_factor")?,
                    secure_handshake_s: f64_or_zero("secure_handshake_s")?,
                    secure_mask_s: f64_or_zero("secure_mask_s")?,
                    secure_encode_s: f64_or_zero("secure_encode_s")?,
                    secure_unmask_s: f64_or_zero("secure_unmask_s")?,
                    peak_rss_bytes: opt_f64("peak_rss_bytes")?.map(|b| b as u64),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(SuiteResult {
            label: Json::get(obj, "label")?.as_str("label")?.to_string(),
            threads: Json::get(obj, "threads")?.as_f64("threads")? as usize,
            quick: Json::get(obj, "quick")?.as_bool("quick")?,
            seed: Json::get(obj, "seed")?.as_f64("seed")? as u64,
            scenarios,
        })
    }
}

/// A regression is only flagged when the current wall-clock also exceeds
/// this absolute floor: sub-half-second measurements are dominated by
/// scheduler noise (cold caches, CPU steal on shared CI runners), and a
/// 2x ratio on a 50 ms run means nothing.  A real regression on the quick
/// scenarios blows past both the ratio and the floor.
pub const MIN_REGRESSION_WALL_S: f64 = 0.5;

/// The secure pipeline's overhead budget: `fedbuff-20k-secagg` may run at
/// most this many times slower per event than clear `fedbuff-20k`.  An
/// *absolute* gate (the ratio is measured within one suite run, so runner
/// speed cancels out), enforced by [`compare`] whenever the current suite
/// carries a [`ScenarioPerf::secagg_overhead_factor`].  The pre-session-
/// cache pipeline sat at ~170x; the session cache, speculative mask
/// precompute, and batched TSA releases must hold it under 5x.
pub const MAX_SECAGG_OVERHEAD_FACTOR: f64 = 5.0;

/// Peak-RSS regressions are only flagged when the current measurement also
/// exceeds this absolute floor: below it the reading is dominated by
/// allocator and runtime baseline noise, not scenario state.  A real
/// O(population) leak on `fedbuff-1m` (tens of MB per byte-per-device)
/// clears the floor immediately.
pub const MIN_RSS_GATE_BYTES: u64 = 64 << 20;

/// The CI gate: compares a current suite against a baseline.
///
/// Fails (with an explanation) when the suites are not comparable (different
/// scenario sizes), when any current scenario lost bit-identity, when a
/// baseline scenario is missing from the current run (a silently dropped
/// scenario must not pass the gate), when any current scenario's
/// [`secagg_overhead_factor`](ScenarioPerf::secagg_overhead_factor) exceeds
/// the absolute [`MAX_SECAGG_OVERHEAD_FACTOR`] budget, or when any scenario
/// present in both regressed by more than `factor` in wall-clock
/// (sequential or parallel, above [`MIN_REGRESSION_WALL_S`]), sequential
/// events/sec (same floor), or peak RSS (above [`MIN_RSS_GATE_BYTES`],
/// gated only when both suites carry a measurement).
/// Returns one human-readable line per compared scenario on success; when
/// the *baseline* records a parallel speedup below 1.0 anywhere, a single
/// note line flags it (informational — single-core runners make the
/// parallel wall-clock comparison noisy — never a failure).  When the
/// baseline never saw a parallel win at all (every speedup < 1.0, i.e. an
/// effectively single-core box), the parallel wall-clock gate is skipped
/// outright rather than treated as a regression signal.
pub fn compare(
    baseline: &SuiteResult,
    current: &SuiteResult,
    factor: f64,
) -> Result<Vec<String>, String> {
    if baseline.quick != current.quick {
        return Err(format!(
            "cannot compare: baseline quick={} vs current quick={} (scenario sizes differ)",
            baseline.quick, current.quick
        ));
    }
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    let sub_unity = baseline
        .scenarios
        .iter()
        .filter(|b| b.speedup < 1.0)
        .count();
    if sub_unity > 0 {
        lines.push(format!(
            "note: baseline parallel speedup < 1.0 on {sub_unity} scenario(s) \
             (recorded on a single-core or contended runner); parallel wall-clock \
             comparisons are noisy there"
        ));
    }
    // A baseline box that never saw a parallel win (every speedup < 1.0)
    // was effectively single-core; comparing a multi-core current run's
    // parallel wall-clock against it is pure noise, not a regression
    // signal, so the parallel gate is skipped entirely.
    let baseline_won_parallel = baseline.scenarios.iter().any(|b| b.speedup >= 1.0);
    for base in &baseline.scenarios {
        if !current.scenarios.iter().any(|c| c.name == base.name) {
            failures.push(format!(
                "{}: present in the baseline but missing from the current run",
                base.name
            ));
        }
    }
    for cur in &current.scenarios {
        if !cur.identical {
            failures.push(format!(
                "{}: parallel report was NOT bit-identical to the sequential report",
                cur.name
            ));
        }
        if let Some(factor) = cur.secagg_overhead_factor {
            if factor > MAX_SECAGG_OVERHEAD_FACTOR {
                failures.push(format!(
                    "{}: secagg overhead factor {factor:.2}x exceeds the {MAX_SECAGG_OVERHEAD_FACTOR:.1}x budget",
                    cur.name
                ));
            } else {
                lines.push(format!(
                    "{}: secagg overhead {factor:.2}x (budget {MAX_SECAGG_OVERHEAD_FACTOR:.1}x) ok",
                    cur.name
                ));
            }
        }
        let base = match baseline.scenarios.iter().find(|b| b.name == cur.name) {
            Some(base) => base,
            None => {
                lines.push(format!("{}: new scenario, no baseline", cur.name));
                continue;
            }
        };
        for (kind, b, c) in [
            ("sequential", base.wall_s_sequential, cur.wall_s_sequential),
            ("parallel", base.wall_s_parallel, cur.wall_s_parallel),
        ] {
            if kind == "parallel" && !baseline_won_parallel {
                lines.push(format!(
                    "{}: parallel wall-clock gate skipped (baseline never saw a parallel win)",
                    cur.name
                ));
                continue;
            }
            let ratio = c / b.max(1e-9);
            if ratio > factor && c > MIN_REGRESSION_WALL_S {
                failures.push(format!(
                    "{}: {kind} wall-clock regressed {ratio:.2}x ({b:.3}s -> {c:.3}s, limit {factor:.1}x)",
                    cur.name
                ));
            } else {
                lines.push(format!(
                    "{}: {kind} {c:.3}s vs baseline {b:.3}s ({ratio:.2}x, limit {factor:.1}x) ok",
                    cur.name
                ));
            }
        }
        // Throughput gate: sequential events/sec must not collapse by more
        // than the factor (same scheduler-noise floor as wall-clock; the
        // event counts may legitimately differ between suites, so this is
        // not redundant with the wall gate).
        let rate_ratio = base.events_per_sec_sequential / cur.events_per_sec_sequential.max(1e-9);
        if rate_ratio > factor && cur.wall_s_sequential > MIN_REGRESSION_WALL_S {
            failures.push(format!(
                "{}: sequential throughput regressed {rate_ratio:.2}x ({:.0} -> {:.0} events/s, limit {factor:.1}x)",
                cur.name, base.events_per_sec_sequential, cur.events_per_sec_sequential
            ));
        } else {
            lines.push(format!(
                "{}: throughput {:.0} events/s vs baseline {:.0} ({rate_ratio:.2}x, limit {factor:.1}x) ok",
                cur.name, cur.events_per_sec_sequential, base.events_per_sec_sequential
            ));
        }
        // Memory gate: peak RSS, only when both suites measured it.
        if let (Some(b), Some(c)) = (base.peak_rss_bytes, cur.peak_rss_bytes) {
            let rss_ratio = c as f64 / (b as f64).max(1.0);
            let (b_mib, c_mib) = (b as f64 / (1 << 20) as f64, c as f64 / (1 << 20) as f64);
            if rss_ratio > factor && c > MIN_RSS_GATE_BYTES {
                failures.push(format!(
                    "{}: peak RSS regressed {rss_ratio:.2}x ({b_mib:.0} MiB -> {c_mib:.0} MiB, limit {factor:.1}x)",
                    cur.name
                ));
            } else {
                lines.push(format!(
                    "{}: peak RSS {c_mib:.0} MiB vs baseline {b_mib:.0} MiB ({rss_ratio:.2}x, limit {factor:.1}x) ok",
                    cur.name
                ));
            }
        }
    }
    if failures.is_empty() {
        Ok(lines)
    } else {
        Err(failures.join("\n"))
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, numbers, booleans, null)
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key {key:?}"))
    }

    fn as_object(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(entries) => Ok(entries),
            other => Err(format!("{what}: expected object, got {other:?}")),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("{what}: expected array, got {other:?}")),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("{what}: expected string, got {other:?}")),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(format!("{what}: expected number, got {other:?}")),
        }
    }

    fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("{what}: expected bool, got {other:?}")),
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {pos}",
            c as char,
            pos = *pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| {
                                format!("invalid \\u escape at byte {pos}", pos = *pos)
                            })?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 code point verbatim.
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(entries));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_suite() -> SuiteResult {
        SuiteResult {
            label: "test".to_string(),
            threads: 4,
            quick: true,
            seed: 42,
            scenarios: vec![ScenarioPerf {
                name: "fedbuff-20k".to_string(),
                wall_s_sequential: 1.5,
                wall_s_parallel: 0.5,
                events: 1000,
                client_updates: 400,
                events_per_sec_sequential: 666.667,
                events_per_sec_parallel: 2000.0,
                speedup: 3.0,
                identical: true,
                secagg_overhead_factor: None,
                secure_handshake_s: 0.0,
                secure_mask_s: 0.0,
                secure_encode_s: 0.0,
                secure_unmask_s: 0.0,
                peak_rss_bytes: None,
            }],
        }
    }

    #[test]
    fn suite_json_round_trips() {
        let suite = sample_suite();
        let parsed = SuiteResult::from_json(&suite.to_json()).expect("parse");
        assert_eq!(parsed.label, suite.label);
        assert_eq!(parsed.threads, suite.threads);
        assert_eq!(parsed.quick, suite.quick);
        assert_eq!(parsed.seed, suite.seed);
        assert_eq!(parsed.scenarios.len(), 1);
        let (a, b) = (&parsed.scenarios[0], &suite.scenarios[0]);
        assert_eq!(a.name, b.name);
        assert_eq!(a.events, b.events);
        assert!((a.wall_s_sequential - b.wall_s_sequential).abs() < 1e-9);
        assert!((a.speedup - b.speedup).abs() < 1e-9);
        assert_eq!(a.identical, b.identical);
    }

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let parsed = Json::parse(r#"{"a": [1, -2.5e1, "x\n\"y\""], "b": {"c": null, "d": false}}"#)
            .expect("parse");
        let obj = parsed.as_object("top").unwrap();
        let arr = Json::get(obj, "a").unwrap().as_array("a").unwrap();
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1], Json::Num(-25.0));
        assert_eq!(arr[2], Json::Str("x\n\"y\"".to_string()));
        let b = Json::get(obj, "b").unwrap().as_object("b").unwrap();
        assert_eq!(*Json::get(b, "c").unwrap(), Json::Null);
        assert_eq!(*Json::get(b, "d").unwrap(), Json::Bool(false));
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn compare_passes_within_factor_and_fails_beyond() {
        let baseline = sample_suite();
        let mut current = sample_suite();
        current.scenarios[0].wall_s_sequential = 2.9; // < 2x of 1.5
        let lines = compare(&baseline, &current, 2.0).expect("within factor");
        assert!(lines.iter().any(|l| l.contains("ok")));

        current.scenarios[0].wall_s_parallel = 1.1; // > 2x of 0.5, above the floor
        let err = compare(&baseline, &current, 2.0).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
    }

    #[test]
    fn compare_ignores_ratio_blowups_below_the_absolute_floor() {
        // 40ms -> 120ms is a 3x ratio but pure scheduler noise on a shared
        // runner; the gate must not flag it.
        let mut baseline = sample_suite();
        baseline.scenarios[0].wall_s_sequential = 0.04;
        baseline.scenarios[0].wall_s_parallel = 0.04;
        let mut current = sample_suite();
        current.scenarios[0].wall_s_sequential = 0.12;
        current.scenarios[0].wall_s_parallel = 0.12;
        assert!(compare(&baseline, &current, 2.0).is_ok());
        // But a regression past both the ratio and the floor still fails.
        current.scenarios[0].wall_s_sequential = MIN_REGRESSION_WALL_S + 0.1;
        assert!(compare(&baseline, &current, 2.0).is_err());
    }

    #[test]
    fn suite_json_round_trips_the_secagg_overhead_fields() {
        let mut suite = sample_suite();
        suite.scenarios[0].secagg_overhead_factor = Some(3.25);
        suite.scenarios[0].secure_handshake_s = 0.125;
        suite.scenarios[0].secure_mask_s = 0.5;
        suite.scenarios[0].secure_encode_s = 0.0625;
        suite.scenarios[0].secure_unmask_s = 0.25;
        let parsed = SuiteResult::from_json(&suite.to_json()).expect("parse");
        assert_eq!(parsed.scenarios[0], suite.scenarios[0]);
    }

    #[test]
    fn parser_tolerates_baselines_predating_the_overhead_fields() {
        // A pre-session-cache BENCH_*.json has none of the secure fields;
        // they default rather than fail the parse.
        let mut json = sample_suite().to_json();
        for key in [
            "secagg_overhead_factor",
            "secure_handshake_s",
            "secure_mask_s",
            "secure_encode_s",
            "secure_unmask_s",
            "peak_rss_bytes",
        ] {
            json = json
                .lines()
                .filter(|l| !l.contains(key))
                .collect::<Vec<_>>()
                .join("\n");
        }
        // Removing the tail fields leaves a trailing comma on "identical".
        json = json.replace("\"identical\": true,", "\"identical\": true");
        let parsed = SuiteResult::from_json(&json).expect("parse");
        assert_eq!(parsed.scenarios[0].secagg_overhead_factor, None);
        assert_eq!(parsed.scenarios[0].secure_mask_s, 0.0);
        assert_eq!(parsed.scenarios[0].peak_rss_bytes, None);
    }

    #[test]
    fn suite_json_round_trips_peak_rss() {
        let mut suite = sample_suite();
        suite.scenarios[0].peak_rss_bytes = Some(123_456_789);
        let parsed = SuiteResult::from_json(&suite.to_json()).expect("parse");
        assert_eq!(parsed.scenarios[0].peak_rss_bytes, Some(123_456_789));
    }

    #[test]
    fn compare_gates_peak_rss_above_the_floor() {
        let mut baseline = sample_suite();
        baseline.scenarios[0].peak_rss_bytes = Some(100 << 20);
        let mut current = sample_suite();
        // 150 MiB vs 100 MiB: 1.5x, within a 2x factor.
        current.scenarios[0].peak_rss_bytes = Some(150 << 20);
        let lines = compare(&baseline, &current, 2.0).expect("within factor");
        assert!(lines.iter().any(|l| l.contains("peak RSS")), "{lines:?}");

        current.scenarios[0].peak_rss_bytes = Some(250 << 20);
        let err = compare(&baseline, &current, 2.0).unwrap_err();
        assert!(err.contains("peak RSS regressed"), "{err}");
    }

    #[test]
    fn compare_ignores_rss_blowups_below_the_absolute_floor() {
        // 10 MiB -> 40 MiB is 4x but under the 64 MiB floor: allocator
        // baseline noise, not scenario state.
        let mut baseline = sample_suite();
        baseline.scenarios[0].peak_rss_bytes = Some(10 << 20);
        let mut current = sample_suite();
        current.scenarios[0].peak_rss_bytes = Some(40 << 20);
        assert!(compare(&baseline, &current, 2.0).is_ok());
    }

    #[test]
    fn compare_skips_the_rss_gate_without_measurements() {
        // An old baseline without RSS numbers must not fail the gate.
        let baseline = sample_suite();
        let mut current = sample_suite();
        current.scenarios[0].peak_rss_bytes = Some(4 << 30);
        let lines = compare(&baseline, &current, 2.0).expect("no baseline RSS, no gate");
        assert!(!lines.iter().any(|l| l.contains("peak RSS")));
    }

    #[test]
    fn compare_gates_sequential_throughput() {
        let baseline = sample_suite();
        let mut current = sample_suite();
        // Same wall-clock, but events/sec collapsed past the factor while
        // the run is above the noise floor.
        current.scenarios[0].events_per_sec_sequential = 100.0;
        let err = compare(&baseline, &current, 2.0).unwrap_err();
        assert!(err.contains("throughput regressed"), "{err}");
    }

    #[test]
    fn compare_notes_sub_unity_baseline_speedup_without_failing() {
        let mut baseline = sample_suite();
        baseline.scenarios[0].speedup = 0.8;
        let current = sample_suite();
        let lines = compare(&baseline, &current, 2.0).expect("a note, not a failure");
        assert!(
            lines.iter().any(|l| l.contains("speedup < 1.0")),
            "{lines:?}"
        );
        // And the note is absent when the baseline parallelized fine.
        let healthy = compare(&sample_suite(), &current, 2.0).expect("ok");
        assert!(!healthy.iter().any(|l| l.contains("speedup < 1.0")));
    }

    #[test]
    fn compare_skips_the_parallel_gate_when_baseline_never_won() {
        // A committed baseline from an effectively single-core box (every
        // speedup < 1.0) must not turn a multi-core run's parallel
        // wall-clock into a regression signal.
        let mut baseline = sample_suite();
        baseline.scenarios[0].speedup = 0.8;
        let mut current = sample_suite();
        current.scenarios[0].wall_s_parallel = 50.0; // way past any factor
        let lines = compare(&baseline, &current, 2.0).expect("gate skipped");
        assert!(
            lines
                .iter()
                .any(|l| l.contains("parallel wall-clock gate skipped")),
            "{lines:?}"
        );
        assert!(
            lines.iter().any(|l| l.contains("speedup < 1.0")),
            "{lines:?}"
        );
        // The sequential gate stays live on the same baseline.
        current.scenarios[0].wall_s_sequential = 50.0;
        let err = compare(&baseline, &current, 2.0).unwrap_err();
        assert!(err.contains("sequential wall-clock regressed"), "{err}");
        // A baseline with even one parallel win keeps the parallel gate.
        let winning = sample_suite(); // speedup 3.0
        let mut regressed = sample_suite();
        regressed.scenarios[0].wall_s_parallel = 50.0;
        let err = compare(&winning, &regressed, 2.0).unwrap_err();
        assert!(err.contains("parallel wall-clock regressed"), "{err}");
    }

    #[test]
    fn compare_gates_the_secagg_overhead_factor() {
        let baseline = sample_suite();
        let mut current = sample_suite();
        current.scenarios[0].secagg_overhead_factor = Some(MAX_SECAGG_OVERHEAD_FACTOR - 0.5);
        let lines = compare(&baseline, &current, 2.0).expect("within budget");
        assert!(lines.iter().any(|l| l.contains("secagg overhead")));

        current.scenarios[0].secagg_overhead_factor = Some(MAX_SECAGG_OVERHEAD_FACTOR + 0.1);
        let err = compare(&baseline, &current, 2.0).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn compare_fails_when_a_baseline_scenario_is_dropped() {
        let baseline = sample_suite();
        let mut current = sample_suite();
        current.scenarios[0].name = "renamed".to_string();
        let err = compare(&baseline, &current, 2.0).unwrap_err();
        assert!(err.contains("missing from the current run"), "{err}");
    }

    #[test]
    fn compare_rejects_mode_mismatch_and_identity_loss() {
        let baseline = sample_suite();
        let mut full = sample_suite();
        full.quick = false;
        assert!(compare(&baseline, &full, 2.0)
            .unwrap_err()
            .contains("cannot compare"));

        let mut broken = sample_suite();
        broken.scenarios[0].identical = false;
        assert!(compare(&baseline, &broken, 2.0)
            .unwrap_err()
            .contains("bit-identical"));
    }

    #[test]
    fn canonical_scenarios_build_quick() {
        for name in SCENARIO_NAMES {
            let scenario = build_scenario(name, true, Parallelism::sequential(), 1);
            assert!(!scenario.tasks().is_empty(), "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown perf scenario")]
    fn unknown_scenario_panics() {
        let _ = build_scenario("nope", true, Parallelism::sequential(), 1);
    }
}
