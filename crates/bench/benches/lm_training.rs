//! Criterion bench: on-device LSTM training cost (the client-side workload
//! behind Table 1).

use criterion::{criterion_group, criterion_main, Criterion};
use papaya_core::client::ClientTrainer;
use papaya_data::dataset::FederatedTextDataset;
use papaya_data::population::{Population, PopulationConfig};
use papaya_lm::{LmClientTrainer, LmConfig};
use std::sync::Arc;

fn client_local_training(c: &mut Criterion) {
    let pop = Population::generate(&PopulationConfig::default().with_size(50), 3);
    let data = Arc::new(FederatedTextDataset::generate(&pop, 4, 3));
    let trainer = LmClientTrainer::new(data, LmConfig::tiny()).with_max_sequences(16);
    let global = trainer.initial_parameters();
    let mut group = c.benchmark_group("lm_client_training");
    group.sample_size(20);
    group.bench_function("one_participation", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            trainer.train(0, &global, seed)
        })
    });
    group.bench_function("evaluate_10_clients", |b| {
        let ids: Vec<usize> = (0..10).collect();
        b.iter(|| trainer.evaluate(&global, &ids))
    });
    group.finish();
}

criterion_group!(benches, client_local_training);
criterion_main!(benches);
