//! Ablation bench: staleness-weighting schemes and example weighting.
//!
//! Measures the population loss reached after a fixed number of FedBuff
//! server updates when stale updates are injected, for each weighting
//! scheme — the design choice discussed in Section 3.1 / Appendix E.2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use papaya_core::aggregator::Aggregator;
use papaya_core::client::{ClientTrainer, ClientUpdate};
use papaya_core::fedbuff::FedBuffAggregator;
use papaya_core::model::ServerModel;
use papaya_core::server_opt::FedAvg;
use papaya_core::staleness::StalenessWeighting;
use papaya_core::surrogate::{SurrogateConfig, SurrogateObjective};
use papaya_data::population::{Population, PopulationConfig};

/// Trains for a fixed number of server updates with artificially stale
/// clients and returns the final population loss.
fn run_with_weighting(weighting: StalenessWeighting) -> f64 {
    let pop = Population::generate(&PopulationConfig::default().with_size(300), 11);
    let obj = SurrogateObjective::new(&pop, SurrogateConfig::default(), 11);
    let mut model = ServerModel::new(obj.initial_parameters());
    let mut opt = FedAvg;
    let mut agg = FedBuffAggregator::new(10, weighting, None);
    let mut stale_params = obj.initial_parameters();
    for step in 0..40u64 {
        for c in 0..10usize {
            let client = (step as usize * 10 + c) % 300;
            // Every third client trains from a model that is 5 versions old.
            let (params, version) = if c % 3 == 0 && model.version() >= 5 {
                (stale_params.clone(), model.version() - 5)
            } else {
                (model.snapshot(), model.version())
            };
            let result = obj.train(client, &params, step * 100 + c as u64);
            agg.accumulate(
                ClientUpdate::from_result(client, version, result),
                model.version(),
                0.0,
            );
        }
        if model.version() >= 5 {
            stale_params = model.snapshot();
        }
        let delta = agg.take(0.0).expect("buffer full");
        model.apply_update(&mut opt, &delta);
    }
    let all: Vec<usize> = (0..300).collect();
    obj.evaluate(model.params(), &all)
}

fn staleness_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("staleness_weighting_ablation");
    group.sample_size(10);
    for (name, weighting) in [
        ("constant", StalenessWeighting::Constant),
        ("poly_half", StalenessWeighting::PolynomialHalf),
        ("linear", StalenessWeighting::Linear),
        ("exponential", StalenessWeighting::Exponential),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &weighting, |b, &w| {
            b.iter(|| run_with_weighting(w))
        });
    }
    group.finish();
}

criterion_group!(benches, staleness_ablation);
criterion_main!(benches);
