//! Criterion bench: FedBuff and synchronous aggregation throughput
//! (Section 6.3, "Fast Model Aggregation").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use papaya_core::aggregator::Aggregator;
use papaya_core::client::ClientUpdate;
use papaya_core::fedbuff::FedBuffAggregator;
use papaya_core::server_opt::{FedAdam, FedAvg, ServerOptimizer};
use papaya_core::staleness::StalenessWeighting;
use papaya_core::sync_agg::SyncRoundAggregator;
use papaya_nn::params::ParamVec;

fn make_update(id: usize, dim: usize) -> ClientUpdate {
    ClientUpdate {
        client_id: id,
        delta: ParamVec::from_vec((0..dim).map(|i| (i % 7) as f32 * 0.01).collect()),
        num_examples: 10 + id % 50,
        start_version: 0,
        train_loss: 0.0,
    }
}

fn fedbuff_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fedbuff_accumulate_k100");
    for dim in [1_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, &dim| {
            b.iter(|| {
                let mut agg = FedBuffAggregator::new(100, StalenessWeighting::PolynomialHalf, None);
                for i in 0..100 {
                    agg.accumulate(make_update(i, dim), i as u64 / 10, i as f64);
                }
                agg.take(100.0).unwrap()
            });
        });
    }
    group.finish();
}

fn sync_round_throughput(c: &mut Criterion) {
    c.bench_function("sync_round_aggregate_100x10k", |b| {
        b.iter(|| {
            let mut agg = SyncRoundAggregator::new(100);
            for i in 0..100 {
                agg.accumulate(make_update(i, 10_000), 0, i as f64);
            }
            agg.take(100.0).unwrap()
        });
    });
}

fn server_optimizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_optimizer_step_1M_params");
    let delta = ParamVec::from_vec(vec![0.001f32; 1_000_000]);
    group.bench_function("fedavg", |b| {
        let mut model = ParamVec::zeros(1_000_000);
        let mut opt = FedAvg;
        b.iter(|| opt.apply(&mut model, &delta));
    });
    group.bench_function("fedadam", |b| {
        let mut model = ParamVec::zeros(1_000_000);
        let mut opt = FedAdam::default_config();
        b.iter(|| opt.apply(&mut model, &delta));
    });
    group.finish();
}

criterion_group!(
    benches,
    fedbuff_throughput,
    sync_round_throughput,
    server_optimizers
);
criterion_main!(benches);
