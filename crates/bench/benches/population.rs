//! Criterion bench: population synthesis and the Figure 2 statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use papaya_data::population::{Population, PopulationConfig};
use papaya_data::stats::{ks_two_sample, Histogram};

fn population_generation(c: &mut Criterion) {
    c.bench_function("generate_population_100k", |b| {
        let config = PopulationConfig::default().with_size(100_000);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            Population::generate(&config, seed)
        });
    });
}

fn fig2_histogram(c: &mut Criterion) {
    let pop = Population::generate(&PopulationConfig::default().with_size(100_000), 7);
    let times = pop.execution_times();
    c.bench_function("fig2_log_histogram_100k", |b| {
        b.iter(|| Histogram::log_spaced(&times, 50))
    });
}

fn ks_test(c: &mut Criterion) {
    let pop = Population::generate(&PopulationConfig::default().with_size(50_000), 8);
    let a: Vec<f64> = pop.example_counts().iter().map(|&x| x as f64).collect();
    let b_sample: Vec<f64> = a.iter().rev().cloned().collect();
    c.bench_function("ks_two_sample_50k", |bch| {
        bch.iter(|| ks_two_sample(&a, &b_sample))
    });
}

criterion_group!(benches, population_generation, fig2_histogram, ks_test);
criterion_main!(benches);
