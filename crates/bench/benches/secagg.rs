//! Criterion bench: asynchronous secure aggregation (Figure 6 companion).
//!
//! Measures the real protocol cost per client and per buffer finalization,
//! and the modelled boundary-transfer times for the naive vs AsyncSecAgg
//! designs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use papaya_crypto::chacha20::ChaCha20Rng;
use papaya_secagg::cost::TeeBoundaryCostModel;
use papaya_secagg::{SecAggClient, SecAggConfig, Tsa, UntrustedAggregator};

fn client_participation(c: &mut Criterion) {
    let mut group = c.benchmark_group("secagg_client_participation");
    for vector_len in [1_000usize, 10_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(vector_len),
            &vector_len,
            |b, &len| {
                let config = SecAggConfig::insecure_fast(len, 1);
                let mut tsa = Tsa::new(&config, [1u8; 32]);
                let publication = tsa.publication();
                let mut rng = ChaCha20Rng::from_seed([2u8; 32]);
                let update = vec![0.01f32; len];
                // Pre-generate plenty of initial messages; each participation
                // consumes one.
                let mut initials = tsa.prepare_initial_messages(4096, &mut rng);
                b.iter(|| {
                    let init = initials.pop().expect("enough pre-generated messages");
                    SecAggClient::participate(&update, &init, &publication, &config, &mut rng)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn full_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("secagg_buffer_of_8_clients");
    group.sample_size(10);
    group.bench_function("vector_len_4096", |b| {
        b.iter(|| {
            let config = SecAggConfig::insecure_fast(4096, 8);
            let mut tsa = Tsa::new(&config, [3u8; 32]);
            let publication = tsa.publication();
            let mut rng = ChaCha20Rng::from_seed([4u8; 32]);
            let inits = tsa.prepare_initial_messages(8, &mut rng);
            let mut agg = UntrustedAggregator::new(&config);
            let update = vec![0.5f32; 4096];
            for init in &inits {
                let msg = SecAggClient::participate(&update, init, &publication, &config, &mut rng)
                    .unwrap();
                agg.submit(msg, &mut tsa).unwrap();
            }
            agg.finalize(&mut tsa).unwrap()
        });
    });
    group.finish();
}

fn boundary_cost_model(c: &mut Criterion) {
    c.bench_function("fig6_cost_model_sweep", |b| {
        let model = TeeBoundaryCostModel::default();
        b.iter(|| {
            let mut total = 0.0;
            for k in [10usize, 50, 100, 500, 1000] {
                total += model.naive_time_s(k, 20_000_000);
                total += model.async_secagg_time_s(k, 20_000_000);
            }
            total
        });
    });
}

criterion_group!(
    benches,
    client_participation,
    full_buffer,
    boundary_cost_model
);
criterion_main!(benches);
