//! Criterion bench: cryptographic primitives underlying AsyncSecAgg.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use papaya_crypto::chacha20::ChaCha20Rng;
use papaya_crypto::dh::{DhGroup, DhPrivateKey};
use papaya_crypto::merkle::MerkleLog;
use papaya_crypto::sha256::sha256;

fn hash_and_stream(c: &mut Criterion) {
    let data = vec![0xabu8; 1 << 20];
    let mut group = c.benchmark_group("sha256");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("1MiB", |b| b.iter(|| sha256(&data)));
    group.finish();

    c.bench_function("chacha20_expand_1M_group_elements", |b| {
        b.iter(|| {
            let mut rng = ChaCha20Rng::from_seed16([7u8; 16]);
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc = acc.wrapping_add(rng.next_below(1 << 32));
            }
            acc
        })
    });
}

fn dh_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("diffie_hellman");
    group.sample_size(10);
    for (name, g) in [
        ("test_256", DhGroup::test_group_256()),
        ("rfc3526_2048", DhGroup::rfc3526_2048()),
    ] {
        group.bench_function(name, |b| {
            let mut rng = ChaCha20Rng::from_seed([9u8; 32]);
            let server = DhPrivateKey::generate(&g, &mut rng);
            b.iter(|| {
                let client = DhPrivateKey::generate(&g, &mut rng);
                client.shared_secret(&server.public_key())
            });
        });
    }
    group.finish();
}

fn merkle_log(c: &mut Criterion) {
    c.bench_function("merkle_log_append_and_prove_1k", |b| {
        b.iter(|| {
            let mut log = MerkleLog::new();
            for i in 0..1000usize {
                log.append(format!("binary-{i}").into_bytes());
            }
            let root = log.root();
            let proof = log.inclusion_proof(999).unwrap();
            proof.verify(&root, b"binary-999", 999, 1000)
        })
    });
}

criterion_group!(benches, hash_and_stream, dh_exchange, merkle_log);
criterion_main!(benches);
