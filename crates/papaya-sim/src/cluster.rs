//! The control plane: Coordinator, Selectors, and persistent Aggregators
//! (Sections 4, 6.2, 6.3 and Appendix E.4).
//!
//! This module models the *placement and routing* responsibilities of the
//! PAPAYA server components, independent of the training dynamics simulated
//! by [`crate::engine`]:
//!
//! * the **Coordinator** assigns tasks to persistent Aggregators (balancing
//!   estimated workload), pools client demand from Aggregators, constructs
//!   per-client eligible-task lists, and randomly assigns clients to eligible
//!   tasks;
//! * **Aggregators** are long-lived and stateful; the Coordinator moves tasks
//!   only when it detects failure (missed heartbeats) or overload;
//! * **Selectors** route client requests using an assignment map refreshed
//!   from the Coordinator and identified by a sequence number, so stale maps
//!   are detected and refreshed.

use crate::control_plane::reconcile::{self, Correction};
use papaya_core::config::TaskConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Identifier of an Aggregator instance.
pub type AggregatorId = usize;
/// Identifier of a federated task.
pub type TaskId = usize;

/// Static description of a task used for placement and eligibility.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskSpec {
    /// Task identifier.
    pub id: TaskId,
    /// Human-readable name.
    pub name: String,
    /// Target concurrency (drives the workload estimate and client demand).
    pub concurrency: usize,
    /// Serialized model size in bytes (drives the workload estimate).
    pub model_size_bytes: u64,
    /// Minimum device capability tier required to train this task
    /// (clients report their tier; 0 means any device can participate).
    pub min_capability_tier: u8,
}

impl TaskSpec {
    /// Bridges a training-plane [`TaskConfig`] into the placement-plane spec
    /// the Coordinator works with.
    pub fn from_task_config(id: TaskId, config: &TaskConfig) -> Self {
        TaskSpec {
            id,
            name: config.name.clone(),
            concurrency: config.concurrency,
            model_size_bytes: config.model_size_bytes,
            min_capability_tier: config.min_capability_tier,
        }
    }

    /// Estimated workload used by the Coordinator to balance Aggregators:
    /// task concurrency × model size (Section 6.3).
    pub fn estimated_workload(&self) -> u64 {
        self.concurrency as u64 * self.model_size_bytes
    }
}

/// State the Coordinator tracks per Aggregator.
#[derive(Clone, Debug, PartialEq)]
struct AggregatorState {
    alive: bool,
    last_heartbeat_s: f64,
}

/// What a heartbeat did to the Coordinator's view of the sender.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeartbeatOutcome {
    /// The Aggregator was known and alive; its lease was refreshed.
    Refreshed,
    /// The Aggregator was known but marked failed; it is alive again.  Its
    /// orphaned tasks are re-placed by the next reconciliation pass.
    Recovered,
    /// The Aggregator was unknown (for example, it lost its registration
    /// state in a restart).  It was registered on the spot rather than
    /// silently ignored, so it cannot become a permanent ghost.
    Registered,
}

/// Where a submitted task ended up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskPlacement {
    /// The task was placed on the given Aggregator immediately.
    Placed(AggregatorId),
    /// No Aggregator was alive; the task is queued without a route and will
    /// be placed by the first reconciliation pass that finds a healthy
    /// Aggregator.
    Pending,
}

impl TaskPlacement {
    /// The Aggregator the task landed on, if it was placed immediately.
    pub fn aggregator(self) -> Option<AggregatorId> {
        match self {
            TaskPlacement::Placed(id) => Some(id),
            TaskPlacement::Pending => None,
        }
    }
}

/// Result of one failure-detection sweep.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FailureSweep {
    /// Aggregators newly declared failed (heartbeat overdue), ascending.
    pub failed: Vec<AggregatorId>,
    /// Tasks moved to a surviving Aggregator during this sweep, ascending.
    pub reassigned: Vec<TaskId>,
    /// Tasks left routed to a failed Aggregator because no Aggregator
    /// survived, ascending.  Their buffered updates are lost with the
    /// Aggregator; reconciliation re-places them on the first recovery.
    pub orphaned: Vec<TaskId>,
}

/// A snapshot of task→aggregator routing, tagged with a sequence number so
/// Selectors can detect staleness.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct AssignmentMap {
    /// Monotonic version of the map.
    pub sequence: u64,
    /// Task to aggregator routing.
    pub routes: BTreeMap<TaskId, AggregatorId>,
}

/// The Coordinator: single leader responsible for task placement and client
/// assignment.
///
/// `Clone`/`PartialEq` exist for the control-plane service: a checkpoint is
/// a clone of this struct (the RNG state included), and replay fidelity is
/// proven by comparing a replayed Coordinator against the live one.
#[derive(Clone, Debug, PartialEq)]
pub struct Coordinator {
    aggregators: BTreeMap<AggregatorId, AggregatorState>,
    tasks: BTreeMap<TaskId, TaskSpec>,
    assignments: BTreeMap<TaskId, AggregatorId>,
    /// Client demand per task as reported by Aggregators, plus the number of
    /// clients assigned but not yet confirmed (Section 6.2).
    reported_demand: BTreeMap<TaskId, usize>,
    unconfirmed_assignments: BTreeMap<TaskId, usize>,
    sequence: u64,
    heartbeat_timeout_s: f64,
    rng: StdRng,
}

impl Coordinator {
    /// Creates a Coordinator; Aggregators missing heartbeats for longer than
    /// `heartbeat_timeout_s` are considered failed.
    pub fn new(heartbeat_timeout_s: f64, seed: u64) -> Self {
        Coordinator {
            aggregators: BTreeMap::new(),
            tasks: BTreeMap::new(),
            assignments: BTreeMap::new(),
            reported_demand: BTreeMap::new(),
            unconfirmed_assignments: BTreeMap::new(),
            sequence: 0,
            heartbeat_timeout_s,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Registers a (healthy) Aggregator.
    pub fn register_aggregator(&mut self, id: AggregatorId, now_s: f64) {
        self.aggregators.insert(
            id,
            AggregatorState {
                alive: true,
                last_heartbeat_s: now_s,
            },
        );
    }

    /// Records a heartbeat from an Aggregator and says what it changed.  A
    /// previously failed Aggregator becomes eligible for new work again; an
    /// unknown sender is registered rather than silently ignored.
    pub fn heartbeat(&mut self, id: AggregatorId, now_s: f64) -> HeartbeatOutcome {
        match self.aggregators.get_mut(&id) {
            Some(state) => {
                let outcome = if state.alive {
                    HeartbeatOutcome::Refreshed
                } else {
                    HeartbeatOutcome::Recovered
                };
                state.alive = true;
                state.last_heartbeat_s = now_s;
                outcome
            }
            None => {
                self.register_aggregator(id, now_s);
                HeartbeatOutcome::Registered
            }
        }
    }

    /// Submits a task.  It is placed on the least-loaded alive Aggregator,
    /// or queued as [`TaskPlacement::Pending`] (no route) until a
    /// reconciliation pass finds a healthy Aggregator to drain it onto.
    pub fn submit_task(&mut self, spec: TaskSpec) -> TaskPlacement {
        let task_id = spec.id;
        self.tasks.insert(task_id, spec);
        match self.least_loaded_alive_aggregator() {
            Some(target) => {
                self.assignments.insert(task_id, target);
                self.sequence += 1;
                TaskPlacement::Placed(target)
            }
            None => TaskPlacement::Pending,
        }
    }

    fn least_loaded_alive_aggregator(&self) -> Option<AggregatorId> {
        let mut loads: BTreeMap<AggregatorId, u64> = self
            .aggregators
            .iter()
            .filter(|(_, s)| s.alive)
            .map(|(&id, _)| (id, 0))
            .collect();
        for (task, agg) in &self.assignments {
            if let (Some(load), Some(spec)) = (loads.get_mut(agg), self.tasks.get(task)) {
                *load += spec.estimated_workload();
            }
        }
        loads
            .into_iter()
            .min_by_key(|&(id, load)| (load, id))
            .map(|(id, _)| id)
    }

    /// Current workload (sum of estimated task workloads) per Aggregator.
    pub fn aggregator_loads(&self) -> BTreeMap<AggregatorId, u64> {
        let mut loads: BTreeMap<AggregatorId, u64> =
            self.aggregators.keys().map(|&id| (id, 0)).collect();
        for (task, agg) in &self.assignments {
            if let (Some(load), Some(spec)) = (loads.get_mut(agg), self.tasks.get(task)) {
                *load += spec.estimated_workload();
            }
        }
        loads
    }

    /// Detects Aggregators whose heartbeats are overdue and reassigns their
    /// tasks to healthy Aggregators (Appendix E.4, "Task Execution").
    pub fn detect_failures(&mut self, now_s: f64) -> FailureSweep {
        let mut failed: Vec<AggregatorId> = Vec::new();
        for (&id, state) in self.aggregators.iter_mut() {
            if state.alive && now_s - state.last_heartbeat_s > self.heartbeat_timeout_s {
                state.alive = false;
                failed.push(id);
            }
        }
        if failed.is_empty() {
            return FailureSweep::default();
        }
        let mut reassigned = Vec::new();
        let mut still_orphaned = Vec::new();
        let mut orphaned: Vec<TaskId> = self
            .assignments
            .iter()
            .filter(|(_, agg)| failed.contains(agg))
            .map(|(&task, _)| task)
            .collect();
        // Reassign in sorted task order so identical runs place identically
        // (the sort also documents the order for future map changes).
        orphaned.sort_unstable();
        for task in orphaned {
            if let Some(target) = self.least_loaded_alive_aggregator() {
                self.assignments.insert(task, target);
                reassigned.push(task);
            } else {
                // Total loss: the route is left pointing at the failed
                // Aggregator (Selectors refuse it as dead) and the task
                // waits for reconciliation to re-place it on first recovery.
                still_orphaned.push(task);
            }
        }
        if !reassigned.is_empty() {
            self.sequence += 1;
        }
        FailureSweep {
            failed,
            reassigned,
            orphaned: still_orphaned,
        }
    }

    /// One reconciliation pass: re-places every divergent task (pending, or
    /// routed to a failed Aggregator) on the least-loaded healthy Aggregator
    /// and bumps the map sequence if anything moved, so stale Selectors
    /// refresh.  See [`crate::control_plane::reconcile`] for the invariants.
    pub fn reconcile(&mut self) -> Vec<Correction> {
        reconcile::reconcile(self)
    }

    /// Whether a reconciliation pass would change any placement right now.
    pub fn needs_reconciliation(&self) -> bool {
        reconcile::needs_reconciliation(self)
    }

    /// An Aggregator reports the current client demand of one of its tasks
    /// (Section 6.2, "tracking client demand for each task").
    pub fn report_demand(&mut self, task: TaskId, demand: usize) {
        self.reported_demand.insert(task, demand);
        // A fresh report supersedes the unconfirmed-assignment estimate.
        self.unconfirmed_assignments.insert(task, 0);
    }

    /// Effective demand: reported demand minus clients assigned but not yet
    /// confirmed by an Aggregator report.
    pub fn effective_demand(&self, task: TaskId) -> usize {
        let reported = self.reported_demand.get(&task).copied().unwrap_or(0);
        let unconfirmed = self
            .unconfirmed_assignments
            .get(&task)
            .copied()
            .unwrap_or(0);
        reported.saturating_sub(unconfirmed)
    }

    /// Tasks a client with the given capability tier is eligible for:
    /// compatible and with positive effective demand (Section 6.2).
    pub fn eligible_tasks(&self, capability_tier: u8) -> Vec<TaskId> {
        let mut tasks: Vec<TaskId> = self
            .tasks
            .values()
            .filter(|spec| capability_tier >= spec.min_capability_tier)
            .filter(|spec| self.effective_demand(spec.id) > 0)
            .map(|spec| spec.id)
            .collect();
        tasks.sort_unstable();
        tasks
    }

    /// Randomly assigns a client to one of its eligible tasks and returns the
    /// task and the Aggregator responsible for it.  Returns `None` when no
    /// task is eligible (the client is rejected and will try later).
    pub fn assign_client(&mut self, capability_tier: u8) -> Option<(TaskId, AggregatorId)> {
        let eligible = self.eligible_tasks(capability_tier);
        if eligible.is_empty() {
            return None;
        }
        let task = eligible[self.rng.gen_range(0..eligible.len())];
        let aggregator = *self.assignments.get(&task)?;
        *self.unconfirmed_assignments.entry(task).or_insert(0) += 1;
        Some((task, aggregator))
    }

    /// The current assignment map for Selectors.
    pub fn assignment_map(&self) -> AssignmentMap {
        AssignmentMap {
            sequence: self.sequence,
            routes: self.assignments.clone(),
        }
    }

    /// Current sequence number of the assignment map.  Cheap staleness probe
    /// for Selectors — no route cloning.
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// The Aggregator currently responsible for `task`, per the
    /// Coordinator's authoritative state.
    pub fn aggregator_of(&self, task: TaskId) -> Option<AggregatorId> {
        self.assignments.get(&task).copied()
    }

    /// Whether the given Aggregator is currently considered alive.
    pub fn is_alive(&self, id: AggregatorId) -> bool {
        self.aggregators.get(&id).map(|s| s.alive).unwrap_or(false)
    }

    /// Ids of all submitted tasks, ascending.
    pub fn task_ids(&self) -> Vec<TaskId> {
        self.tasks.keys().copied().collect()
    }

    /// Ids of all registered Aggregators, ascending.
    pub fn aggregator_ids(&self) -> Vec<AggregatorId> {
        self.aggregators.keys().copied().collect()
    }

    /// Whether at least one registered Aggregator is alive.
    pub fn has_alive_aggregator(&self) -> bool {
        self.aggregators.values().any(|s| s.alive)
    }

    /// Tasks submitted but currently without any route (queued by
    /// [`Coordinator::submit_task`] during total Aggregator loss), ascending.
    pub fn pending_tasks(&self) -> Vec<TaskId> {
        self.tasks
            .keys()
            .filter(|t| !self.assignments.contains_key(t))
            .copied()
            .collect()
    }

    /// Routes `task` to the least-loaded alive Aggregator without touching
    /// the sequence; the reconciler batches its bump.
    pub(crate) fn place_on_least_loaded(&mut self, task: TaskId) -> Option<AggregatorId> {
        let target = self.least_loaded_alive_aggregator()?;
        self.assignments.insert(task, target);
        Some(target)
    }

    /// Publishes a new assignment-map version.
    pub(crate) fn bump_sequence(&mut self) {
        self.sequence += 1;
    }
}

/// A Selector: routes client requests to Aggregators using a cached
/// assignment map (Appendix E.4, "Client Routing").
#[derive(Clone, Debug, Default)]
pub struct Selector {
    map: AssignmentMap,
}

/// The result of routing a client request through a Selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteOutcome {
    /// The request was routed to the given Aggregator.
    Routed(AggregatorId),
    /// The Selector's map does not know the task; the client should retry
    /// through another Selector while this one refreshes.
    StaleMap,
}

impl Selector {
    /// Creates a Selector with an empty (stale) map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Refreshes the cached assignment map from the Coordinator.
    pub fn refresh(&mut self, coordinator: &Coordinator) {
        self.map = coordinator.assignment_map();
    }

    /// The sequence number of the cached map.
    pub fn map_sequence(&self) -> u64 {
        self.map.sequence
    }

    /// Routes a client request for `task`.
    pub fn route(&self, task: TaskId) -> RouteOutcome {
        match self.map.routes.get(&task) {
            Some(&agg) => RouteOutcome::Routed(agg),
            None => RouteOutcome::StaleMap,
        }
    }

    /// Returns true when this Selector's map is older than the Coordinator's.
    pub fn is_stale(&self, coordinator: &Coordinator) -> bool {
        self.map.sequence < coordinator.sequence()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: TaskId, concurrency: usize, tier: u8) -> TaskSpec {
        TaskSpec {
            id,
            name: format!("task-{id}"),
            concurrency,
            model_size_bytes: 1_000_000,
            min_capability_tier: tier,
        }
    }

    fn coordinator_with_aggregators(n: usize) -> Coordinator {
        let mut c = Coordinator::new(30.0, 7);
        for id in 0..n {
            c.register_aggregator(id, 0.0);
        }
        c
    }

    #[test]
    fn tasks_are_balanced_by_estimated_workload() {
        let mut c = coordinator_with_aggregators(2);
        // One huge task and two small ones: the small ones should share an
        // aggregator while the huge one gets its own.
        let a_big = c.submit_task(spec(0, 10_000, 0)).aggregator().unwrap();
        let a_small1 = c.submit_task(spec(1, 100, 0)).aggregator().unwrap();
        let a_small2 = c.submit_task(spec(2, 100, 0)).aggregator().unwrap();
        assert_ne!(a_big, a_small1);
        assert_eq!(a_small1, a_small2);
        let loads = c.aggregator_loads();
        assert_eq!(loads.len(), 2);
    }

    #[test]
    fn failed_aggregator_tasks_are_reassigned() {
        let mut c = coordinator_with_aggregators(2);
        let first = c.submit_task(spec(0, 100, 0)).aggregator().unwrap();
        let second = c.submit_task(spec(1, 100, 0)).aggregator().unwrap();
        assert_ne!(first, second);
        // Aggregator `first` stops heartbeating; `second` stays healthy.
        c.heartbeat(second, 100.0);
        let sweep = c.detect_failures(100.0);
        assert_eq!(sweep.failed, vec![first]);
        assert_eq!(sweep.reassigned, vec![0]);
        assert!(sweep.orphaned.is_empty());
        assert!(!c.is_alive(first));
        assert_eq!(c.assignment_map().routes[&0], second);
    }

    #[test]
    fn recovered_aggregator_receives_new_tasks() {
        let mut c = coordinator_with_aggregators(2);
        let a0 = c.submit_task(spec(0, 100, 0)).aggregator().unwrap();
        c.heartbeat(1 - a0, 100.0);
        c.detect_failures(100.0); // a0 fails
        assert!(!c.is_alive(a0));
        // It comes back and should be preferred for the next task (lower load).
        assert_eq!(c.heartbeat(a0, 200.0), HeartbeatOutcome::Recovered);
        let placed = c.submit_task(spec(1, 100, 0));
        assert_eq!(placed, TaskPlacement::Placed(a0));
    }

    #[test]
    fn no_reassignment_while_heartbeats_are_fresh() {
        let mut c = coordinator_with_aggregators(2);
        c.submit_task(spec(0, 100, 0));
        c.heartbeat(0, 10.0);
        c.heartbeat(1, 10.0);
        assert_eq!(c.detect_failures(20.0), FailureSweep::default());
    }

    #[test]
    fn client_assignment_requires_positive_demand_and_compatibility() {
        let mut c = coordinator_with_aggregators(1);
        c.submit_task(spec(0, 100, 0));
        c.submit_task(spec(1, 100, 2)); // needs capability tier >= 2
                                        // No demand reported yet: nothing eligible.
        assert_eq!(c.assign_client(3), None);
        c.report_demand(0, 5);
        c.report_demand(1, 5);
        // A weak device is only eligible for task 0.
        assert_eq!(c.eligible_tasks(0), vec![0]);
        // A strong device can get either.
        assert_eq!(c.eligible_tasks(3), vec![0, 1]);
        let (task, _) = c.assign_client(0).unwrap();
        assert_eq!(task, 0);
    }

    #[test]
    fn unconfirmed_assignments_reduce_effective_demand() {
        let mut c = coordinator_with_aggregators(1);
        c.submit_task(spec(0, 100, 0));
        c.report_demand(0, 2);
        assert!(c.assign_client(0).is_some());
        assert!(c.assign_client(0).is_some());
        // Demand 2 consumed by two unconfirmed assignments.
        assert_eq!(c.effective_demand(0), 0);
        assert_eq!(c.assign_client(0), None);
        // The Aggregator's next report resets the picture.
        c.report_demand(0, 1);
        assert!(c.assign_client(0).is_some());
    }

    #[test]
    fn random_assignment_spreads_clients_across_tasks() {
        let mut c = coordinator_with_aggregators(2);
        c.submit_task(spec(0, 100, 0));
        c.submit_task(spec(1, 100, 0));
        c.report_demand(0, 10_000);
        c.report_demand(1, 10_000);
        let mut counts = [0usize; 2];
        for _ in 0..200 {
            let (task, _) = c.assign_client(1).unwrap();
            counts[task] += 1;
        }
        assert!(counts[0] > 50 && counts[1] > 50, "{counts:?}");
    }

    #[test]
    fn selector_routes_and_detects_staleness() {
        let mut c = coordinator_with_aggregators(2);
        let placed = c.submit_task(spec(0, 100, 0)).aggregator().unwrap();
        let mut s = Selector::new();
        assert_eq!(s.route(0), RouteOutcome::StaleMap);
        s.refresh(&c);
        assert_eq!(s.route(0), RouteOutcome::Routed(placed));
        assert!(!s.is_stale(&c));
        // A failure-driven reassignment bumps the sequence; the selector is
        // stale until it refreshes.
        c.heartbeat(1 - placed, 100.0);
        c.detect_failures(100.0);
        assert!(s.is_stale(&c));
        s.refresh(&c);
        assert!(!s.is_stale(&c));
        assert_eq!(s.route(0), RouteOutcome::Routed(1 - placed));
    }

    #[test]
    fn submitting_with_no_alive_aggregator_queues_pending() {
        let mut c = Coordinator::new(30.0, 1);
        assert_eq!(c.submit_task(spec(0, 10, 0)), TaskPlacement::Pending);
        assert_eq!(c.pending_tasks(), vec![0]);
        assert_eq!(c.aggregator_of(0), None);
        // No map version was published for a placement that did not happen.
        assert_eq!(c.sequence(), 0);
        // Divergent but not actionable: with nobody alive a pass would do no
        // work, so nothing asks for one yet.
        assert!(!c.needs_reconciliation());
        // An Aggregator shows up; reconciliation drains the pending queue.
        c.register_aggregator(0, 5.0);
        assert!(c.needs_reconciliation());
        let corrections = c.reconcile();
        assert_eq!(corrections.len(), 1);
        assert_eq!(corrections[0].task, 0);
        assert_eq!(corrections[0].aggregator, 0);
        assert!(!corrections[0].was_placed);
        assert_eq!(c.aggregator_of(0), Some(0));
        assert_eq!(c.sequence(), 1);
        assert!(c.pending_tasks().is_empty());
        assert!(!c.needs_reconciliation());
    }

    #[test]
    fn heartbeat_reports_refresh_recover_and_register() {
        let mut c = coordinator_with_aggregators(1);
        assert_eq!(c.heartbeat(0, 10.0), HeartbeatOutcome::Refreshed);
        c.detect_failures(100.0); // 0 misses its deadline
        assert!(!c.is_alive(0));
        assert_eq!(c.heartbeat(0, 150.0), HeartbeatOutcome::Recovered);
        assert!(c.is_alive(0));
        // An id the Coordinator has never seen is registered, not dropped.
        assert_eq!(c.heartbeat(9, 150.0), HeartbeatOutcome::Registered);
        assert!(c.is_alive(9));
        assert_eq!(c.aggregator_ids(), vec![0, 9]);
        // And it is durable: the next heartbeat is an ordinary refresh.
        assert_eq!(c.heartbeat(9, 160.0), HeartbeatOutcome::Refreshed);
    }

    #[test]
    fn total_loss_orphans_are_replaced_on_first_recovery_heartbeat() {
        let mut c = coordinator_with_aggregators(2);
        c.submit_task(spec(0, 100, 0));
        c.submit_task(spec(1, 100, 0));
        let seq_before = c.sequence();
        // Nobody heartbeats: both Aggregators die in one sweep.
        let sweep = c.detect_failures(100.0);
        assert_eq!(sweep.failed, vec![0, 1]);
        assert!(sweep.reassigned.is_empty());
        assert_eq!(sweep.orphaned, vec![0, 1]);
        // Routes still point at corpses and no new map version exists yet;
        // with the whole fleet dead a reconcile pass has no work it can do.
        assert_eq!(c.sequence(), seq_before);
        assert!(c.aggregator_of(0).is_some());
        assert!(!c.needs_reconciliation());
        // Aggregator 1 heartbeats back; its own task's route is valid again
        // (never shuffled), and a single reconcile pass re-places the task
        // still riding the corpse and publishes a new map version.
        assert_eq!(c.heartbeat(1, 150.0), HeartbeatOutcome::Recovered);
        assert!(c.needs_reconciliation());
        let corrections = c.reconcile();
        assert_eq!(corrections.len(), 1);
        assert_eq!(corrections[0].task, 0);
        assert_eq!(corrections[0].aggregator, 1);
        assert!(corrections[0].was_placed);
        assert_eq!(c.sequence(), seq_before + 1);
        assert_eq!(c.aggregator_of(0), Some(1));
        assert_eq!(c.aggregator_of(1), Some(1));
        assert!(!c.needs_reconciliation());
    }

    #[test]
    fn reconcile_keeps_routes_to_recovered_aggregators() {
        let mut c = coordinator_with_aggregators(2);
        let placed = c.submit_task(spec(0, 100, 0)).aggregator().unwrap();
        c.detect_failures(100.0); // both die; task 0 is orphaned
        c.heartbeat(placed, 150.0);
        c.heartbeat(1 - placed, 150.0);
        // The original owner recovered, so the placement is valid again:
        // reconciliation must not shuffle it anywhere.
        assert!(!c.needs_reconciliation());
        assert!(c.reconcile().is_empty());
        assert_eq!(c.aggregator_of(0), Some(placed));
    }

    #[test]
    fn reconcile_waits_until_an_aggregator_is_alive() {
        let mut c = coordinator_with_aggregators(1);
        c.submit_task(spec(0, 100, 0));
        c.detect_failures(100.0); // total loss
                                  // Nothing alive to place on: reconciliation has no work it can do.
        assert!(!c.needs_reconciliation());
        assert!(c.reconcile().is_empty());
        assert_eq!(c.aggregator_of(0), Some(0));
    }

    #[test]
    fn stale_selector_refreshes_after_reconcile_bump() {
        let mut c = coordinator_with_aggregators(2);
        c.submit_task(spec(0, 100, 0));
        let mut s = Selector::new();
        s.refresh(&c);
        c.detect_failures(100.0); // total loss: no bump, selector still fresh
        assert!(!s.is_stale(&c));
        c.heartbeat(1, 150.0);
        c.reconcile();
        // The reconcile pass bumped the sequence, so the selector notices.
        assert!(s.is_stale(&c));
        s.refresh(&c);
        assert_eq!(s.route(0), RouteOutcome::Routed(1));
    }

    #[test]
    fn sequence_accessor_matches_assignment_map() {
        let mut c = coordinator_with_aggregators(2);
        assert_eq!(c.sequence(), 0);
        c.submit_task(spec(0, 100, 0));
        assert_eq!(c.sequence(), 1);
        assert_eq!(c.sequence(), c.assignment_map().sequence);
        c.heartbeat(1 - c.aggregator_of(0).unwrap(), 100.0);
        c.detect_failures(100.0);
        assert_eq!(c.sequence(), 2);
        assert_eq!(c.sequence(), c.assignment_map().sequence);
    }

    #[test]
    fn task_spec_bridges_from_task_config() {
        let config = TaskConfig::async_task("keyboard", 130, 16)
            .with_model_size_bytes(5_000_000)
            .with_min_capability_tier(1);
        let spec = TaskSpec::from_task_config(7, &config);
        assert_eq!(spec.id, 7);
        assert_eq!(spec.name, "keyboard");
        assert_eq!(spec.concurrency, 130);
        assert_eq!(spec.model_size_bytes, 5_000_000);
        assert_eq!(spec.min_capability_tier, 1);
        assert_eq!(spec.estimated_workload(), 130 * 5_000_000);
    }
}
