//! The simulated clock and event queue.
//!
//! Virtual time is measured in seconds as `f64`.  Events are totally ordered
//! by `(time, sequence_number)` so simulations are deterministic even when
//! several events share a timestamp.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Virtual time in seconds.
pub type SimTime = f64;

/// What happens when an event fires.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A participating client finished local training and reports/uploads.
    ClientFinished {
        /// Device id of the client.
        client_id: usize,
        /// Identifier of this participation (ties the finish to its start).
        participation_id: u64,
    },
    /// A participating client failed (dropout, crash, or timeout abort).
    ClientFailed {
        /// Device id of the client.
        client_id: usize,
        /// Identifier of this participation.
        participation_id: u64,
    },
    /// Periodic evaluation of the global model.
    Evaluate,
    /// Periodic utilization sample.
    SampleUtilization,
    /// Multi-task: a client participating in `task` finished local training
    /// and uploads its update.
    TaskClientFinished {
        /// The task the client trained for.
        task: usize,
        /// Device id of the client.
        client_id: usize,
        /// Identifier of this participation.
        participation_id: u64,
    },
    /// Multi-task: a client participating in `task` failed (dropout, crash,
    /// or timeout abort).
    TaskClientFailed {
        /// The task the client was training for.
        task: usize,
        /// Device id of the client.
        client_id: usize,
        /// Identifier of this participation.
        participation_id: u64,
    },
    /// Multi-task: periodic evaluation of one task's global model.
    EvaluateTask {
        /// The task to evaluate.
        task: usize,
    },
    /// Multi-task: periodic control-plane sweep — live Aggregators heartbeat,
    /// the Coordinator detects failures and reassigns orphaned tasks, client
    /// demand is pooled and new clients are assigned.
    ControlPlaneTick,
    /// Multi-task: periodic Selector refresh of the Coordinator's assignment
    /// map (between a reassignment and the next refresh, stale Selectors
    /// refuse to route).
    RefreshSelectors,
    /// Multi-task: injected failure — the given Aggregator process dies and
    /// stops heartbeating; its buffered state is lost.
    AggregatorCrash {
        /// The Aggregator that dies.
        aggregator: usize,
    },
    /// Multi-task: injected recovery — a crashed Aggregator comes back and
    /// heartbeats immediately; orphaned tasks are re-placed on it by the
    /// reconcile pass the heartbeat triggers.
    AggregatorRecover {
        /// The Aggregator that comes back.
        aggregator: usize,
    },
    /// Multi-task: a control-plane reconciliation pass — the Coordinator
    /// diffs desired placement (every task on a healthy Aggregator) against
    /// actual routes and emits corrective placements.  Scheduled only when
    /// the pass would do work, so scenarios that never diverge process no
    /// extra events.
    ReconcileTick,
    /// A deadline-based aggregation strategy may be ready without a new
    /// arrival: check the task's aggregator and release if due.
    AggregatorDeadline {
        /// The task whose aggregator reached its deadline.
        task: usize,
    },
    /// A secure task's buffer closed and the TSA released the aggregated
    /// unmask for it (the per-buffer key release of AsyncSecAgg).  Scheduled
    /// by scenario drivers at release time so every key release is visible
    /// in the event stream; the handler refreshes the task's
    /// secure-aggregation metrics from the aggregator's telemetry.
    TsaKeyRelease {
        /// The task whose buffer was unmasked.
        task: usize,
    },
    /// A DP task released a noised aggregate and the privacy accountant
    /// composed it into the cumulative ε.  Scheduled by scenario drivers at
    /// release time so every privacy-relevant release is visible in the
    /// event stream; the handler refreshes the task's DP metrics from the
    /// aggregator's telemetry and stops the run when the ε budget is
    /// exhausted.
    DpRelease {
        /// The task whose release was noised and accounted.
        task: usize,
    },
    /// A task defended by a robust-aggregation estimator released a server
    /// update (the estimator replaced or passed through the inner strategy's
    /// release).  Scheduled by scenario drivers at release time so every
    /// defense-mediated release is visible in the event stream; the handler
    /// refreshes the task's robustness metrics from the aggregator's
    /// telemetry.
    RobustRelease {
        /// The task whose release went through the robust estimator.
        task: usize,
    },
}

impl fmt::Display for EventKind {
    /// Human-readable event description for logs and example/bench output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::ClientFinished {
                client_id,
                participation_id,
            } => write!(
                f,
                "client {client_id} finished (participation {participation_id})"
            ),
            EventKind::ClientFailed {
                client_id,
                participation_id,
            } => write!(
                f,
                "client {client_id} failed (participation {participation_id})"
            ),
            EventKind::Evaluate => write!(f, "evaluate global model"),
            EventKind::SampleUtilization => write!(f, "sample utilization"),
            EventKind::TaskClientFinished {
                task,
                client_id,
                participation_id,
            } => write!(
                f,
                "task {task}: client {client_id} finished (participation {participation_id})"
            ),
            EventKind::TaskClientFailed {
                task,
                client_id,
                participation_id,
            } => write!(
                f,
                "task {task}: client {client_id} failed (participation {participation_id})"
            ),
            EventKind::EvaluateTask { task } => write!(f, "evaluate task {task}"),
            EventKind::ControlPlaneTick => {
                write!(f, "control-plane sweep (heartbeats, demand, assignment)")
            }
            EventKind::RefreshSelectors => write!(f, "refresh stale selector maps"),
            EventKind::AggregatorCrash { aggregator } => {
                write!(f, "aggregator {aggregator} crashes")
            }
            EventKind::AggregatorRecover { aggregator } => {
                write!(f, "aggregator {aggregator} recovers")
            }
            EventKind::ReconcileTick => {
                write!(f, "control-plane reconcile pass (re-place divergent tasks)")
            }
            EventKind::AggregatorDeadline { task } => {
                write!(f, "task {task}: aggregation deadline check")
            }
            EventKind::TsaKeyRelease { task } => {
                write!(f, "task {task}: TSA key release (buffer unmasked)")
            }
            EventKind::DpRelease { task } => {
                write!(f, "task {task}: DP release (noised and accounted)")
            }
            EventKind::RobustRelease { task } => {
                write!(f, "task {task}: robust release (estimator applied)")
            }
        }
    }
}

/// A scheduled event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Firing time in virtual seconds.
    pub time: SimTime,
    /// Monotonic sequence number breaking ties deterministically.
    pub seq: u64,
    /// The event payload.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not finite.
    pub fn schedule(&mut self, time: SimTime, kind: EventKind) {
        assert!(time.is_finite(), "event time must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, EventKind::Evaluate);
        q.schedule(1.0, EventKind::SampleUtilization);
        q.schedule(3.0, EventKind::Evaluate);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(
            2.0,
            EventKind::ClientFinished {
                client_id: 1,
                participation_id: 10,
            },
        );
        q.schedule(
            2.0,
            EventKind::ClientFinished {
                client_id: 2,
                participation_id: 11,
            },
        );
        let first = q.pop().unwrap();
        let second = q.pop().unwrap();
        assert_eq!(
            first.kind,
            EventKind::ClientFinished {
                client_id: 1,
                participation_id: 10
            }
        );
        assert_eq!(
            second.kind,
            EventKind::ClientFinished {
                client_id: 2,
                participation_id: 11
            }
        );
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, EventKind::Evaluate);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn control_plane_events_display_readably() {
        assert_eq!(
            EventKind::AggregatorCrash { aggregator: 2 }.to_string(),
            "aggregator 2 crashes"
        );
        assert_eq!(
            EventKind::ControlPlaneTick.to_string(),
            "control-plane sweep (heartbeats, demand, assignment)"
        );
        assert_eq!(
            EventKind::RefreshSelectors.to_string(),
            "refresh stale selector maps"
        );
        assert_eq!(
            EventKind::TaskClientFinished {
                task: 1,
                client_id: 7,
                participation_id: 9
            }
            .to_string(),
            "task 1: client 7 finished (participation 9)"
        );
        assert_eq!(
            EventKind::TsaKeyRelease { task: 3 }.to_string(),
            "task 3: TSA key release (buffer unmasked)"
        );
        assert_eq!(
            EventKind::DpRelease { task: 4 }.to_string(),
            "task 4: DP release (noised and accounted)"
        );
        assert_eq!(
            EventKind::RobustRelease { task: 5 }.to_string(),
            "task 5: robust release (estimator applied)"
        );
        assert_eq!(
            EventKind::AggregatorRecover { aggregator: 2 }.to_string(),
            "aggregator 2 recovers"
        );
        assert_eq!(
            EventKind::ReconcileTick.to_string(),
            "control-plane reconcile pass (re-place divergent tasks)"
        );
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_time_rejected() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, EventKind::Evaluate);
    }
}
