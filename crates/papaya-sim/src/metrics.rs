//! Metrics collected during a simulation run.

use std::collections::BTreeMap;

use papaya_core::dp::DpTelemetry;
use papaya_core::robust::RobustTelemetry;
use papaya_core::secure::{SecureTelemetry, SecureTimings};
use papaya_core::trace::{DecimatedTrace, TraceBudget};
use papaya_data::stats::{ks_two_sample, KsTestResult};

/// One client participation whose update was *aggregated* (or discarded),
/// used for the sampling-bias analysis of Section 7.4.
#[derive(Clone, Debug, PartialEq)]
pub struct ParticipationRecord {
    /// Device id.
    pub client_id: usize,
    /// Execution time of the participation in seconds.
    pub execution_time_s: f64,
    /// Number of training examples on the device.
    pub num_examples: usize,
    /// Whether the update was folded into a server model update (false for
    /// updates discarded by over-selection or staleness rejection).
    pub aggregated: bool,
}

/// Raw traces and counters produced by one simulation run.
///
/// The per-event traces (`utilization_trace`, `loss_curve`,
/// `participations`) are [`DecimatedTrace`]s: unbounded by default, capped
/// by deterministic stride decimation when the run sets a [`TraceBudget`]
/// (the `RunLimits::trace_budget` knob), so metrics memory stays O(budget)
/// at million-client scale.  Exact counters are never decimated.
/// `round_durations_s` stays a plain `Vec`: it grows with completed rounds,
/// not events.
#[derive(Clone, Debug, Default)]
pub struct MetricsCollector {
    /// `(virtual_seconds, active_clients)` samples.
    pub utilization_trace: DecimatedTrace<(f64, usize)>,
    /// `(virtual_hours, population loss)` samples.
    pub loss_curve: DecimatedTrace<(f64, f64)>,
    /// Client updates received at the server ("communication trips").
    pub comm_trips: u64,
    /// Updates discarded because the round had already closed
    /// (over-selection waste).
    pub discarded_updates: u64,
    /// Updates rejected because they exceeded the staleness bound.
    pub rejected_stale_updates: u64,
    /// Client participations that failed (dropout, crash, timeout abort).
    pub failed_participations: u64,
    /// Clients aborted because the round ended while they were still training.
    pub aborted_by_round_end: u64,
    /// Server model updates performed.
    pub server_updates: u64,
    /// Completed synchronous round durations in seconds.
    pub round_durations_s: Vec<f64>,
    /// Participation records for bias analysis.
    pub participations: DecimatedTrace<ParticipationRecord>,
    /// Sum of staleness over aggregated updates.
    pub staleness_sum: u64,
    /// Count of aggregated updates (denominator for mean staleness).
    pub aggregated_updates: u64,
    /// Buffered updates lost when the Aggregator holding this task died
    /// before reaching an aggregation goal.
    pub lost_buffered_updates: u64,
    /// Secure-aggregation telemetry, synced from the task's
    /// [`SecureAggregator`](papaya_core::secure::SecureAggregator): masked
    /// update counts, per-buffer TSA key releases (always equal to
    /// [`server_updates`](MetricsCollector::server_updates) for a secure
    /// task — the TSA never unmasks a partial buffer), crash-time buffer
    /// drops, TEE boundary bytes, and the per-release quantization-error
    /// trace.  All-zero/empty for tasks running in the clear.
    pub secure: SecureTelemetry,
    /// On-loop wall-clock breakdown of the secure pipeline (handshake,
    /// mask expansion, encode, unmask).  Machine-dependent, so it is kept
    /// out of [`SecureTelemetry`] and never hashed into run fingerprints;
    /// `perf_suite --profile` surfaces it for overhead triage.
    // papaya-lint: allow(metrics-fingerprint) -- wall-clock profiling is machine-dependent by nature; hashing it would break the determinism pin it exists to protect
    pub secure_timings: SecureTimings,
    /// Differential-privacy telemetry, synced from the task's
    /// [`DpAggregator`](papaya_core::dp::DpAggregator): clip counts, the
    /// per-release clip-fraction/noise-std trace, and the cumulative
    /// `epsilon(target_delta)` trajectory the accountant composed across
    /// releases.  All-zero/empty for tasks running without DP.
    pub dp: DpTelemetry,
    /// Robust-aggregation telemetry, synced from the task's
    /// [`RobustAggregator`](papaya_core::robust::RobustAggregator): typed
    /// rejection counts (non-finite values, norm-filter bound) and the
    /// per-release estimator trace.  All-zero/empty for tasks running
    /// without a robust defense — and for defended tasks that stay at the
    /// neutral defense and never reject, which keeps clear-run fingerprints
    /// unchanged.
    pub robust: RobustTelemetry,
    /// Updates whose payload or metadata a simulated Byzantine client
    /// corrupted before upload (the simulation's ground-truth attack count;
    /// a real deployment cannot observe this).
    pub attacked_updates: u64,
    /// Ground-truth attack counts keyed by the injected behavior's label
    /// (e.g. `"sign-flip"`, `"secagg-wrong-counter"`).
    pub attacks_by_label: BTreeMap<&'static str, u64>,
    /// `(virtual_seconds, client_id)` samples, one per corrupted upload.
    pub attack_trace: DecimatedTrace<(f64, usize)>,
    /// Updates a robust defense rejected before they reached the wrapped
    /// strategy's buffer (runtime-side mirror of
    /// [`RobustTelemetry::rejected_total`](papaya_core::robust::RobustTelemetry::rejected_total)).
    pub rejected_by_defense_updates: u64,
}

impl MetricsCollector {
    /// Creates an empty collector with unbounded traces.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies a retention budget to every per-event trace.
    ///
    /// Must be called before the first sample is recorded (the budget is
    /// part of the decimation state that run fingerprints hash).
    pub fn set_trace_budget(&mut self, budget: TraceBudget) {
        self.utilization_trace.set_budget(budget);
        self.loss_curve.set_budget(budget);
        self.participations.set_budget(budget);
        self.attack_trace.set_budget(budget);
    }

    /// Records one ground-truth corrupted upload.  Only the simulation's
    /// adversary injection calls this — a real deployment never knows which
    /// uploads were malicious, which is exactly why the robust defenses
    /// must work from the update contents alone.
    pub fn record_attack(&mut self, time_s: f64, client_id: usize, label: &'static str) {
        self.attacked_updates += 1;
        *self.attacks_by_label.entry(label).or_insert(0) += 1;
        self.attack_trace.push((time_s, client_id));
    }

    /// Mean staleness over aggregated updates.
    pub fn mean_staleness(&self) -> f64 {
        if self.aggregated_updates == 0 {
            0.0
        } else {
            self.staleness_sum as f64 / self.aggregated_updates as f64
        }
    }

    /// Mean synchronous round duration in seconds (0 if no rounds completed).
    pub fn mean_round_duration_s(&self) -> f64 {
        if self.round_durations_s.is_empty() {
            0.0
        } else {
            self.round_durations_s.iter().sum::<f64>() / self.round_durations_s.len() as f64
        }
    }

    /// Mean number of active clients over the utilization trace.
    pub fn mean_active_clients(&self) -> f64 {
        if self.utilization_trace.is_empty() {
            return 0.0;
        }
        self.utilization_trace
            .iter()
            .map(|&(_, a)| a as f64)
            .sum::<f64>()
            / self.utilization_trace.len() as f64
    }

    /// Execution times of participations whose update was aggregated.
    pub fn aggregated_execution_times(&self) -> Vec<f64> {
        self.participations
            .iter()
            .filter(|p| p.aggregated)
            .map(|p| p.execution_time_s)
            .collect()
    }

    /// Example counts of participations whose update was aggregated.
    pub fn aggregated_example_counts(&self) -> Vec<f64> {
        self.participations
            .iter()
            .filter(|p| p.aggregated)
            .map(|p| p.num_examples as f64)
            .collect()
    }

    /// Two-sample KS test of this run's aggregated example-count distribution
    /// against a reference distribution (the paper compares against SyncFL
    /// without over-selection as ground truth).
    pub fn ks_against(&self, reference_examples: &[f64]) -> KsTestResult {
        ks_two_sample(&self.aggregated_example_counts(), reference_examples)
    }
}

/// Summary statistics derived from a [`MetricsCollector`] at the end of a
/// run.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSummary {
    /// Total virtual time simulated, in hours.
    pub virtual_hours: f64,
    /// Server model updates per virtual hour.
    pub server_updates_per_hour: f64,
    /// Communication trips (client updates received).
    pub comm_trips: u64,
    /// Mean staleness of aggregated updates.
    pub mean_staleness: f64,
    /// Mean active clients (utilization numerator).
    pub mean_active_clients: f64,
    /// Mean synchronous round duration (seconds), if applicable.
    pub mean_round_duration_s: f64,
    /// Per-buffer TSA key releases (0 for tasks running in the clear).
    pub tsa_key_releases: u64,
    /// Mean inbound TEE-boundary bytes per masked update (0 for clear
    /// tasks).
    pub tee_boundary_bytes_per_masked_update: f64,
    /// Noised releases fed into the privacy accountant (0 for non-DP
    /// tasks).
    pub dp_releases: u64,
    /// Cumulative `epsilon(target_delta)` after the last DP release (0 for
    /// non-DP tasks; `∞` for a noiseless DP mechanism).
    pub cumulative_epsilon: f64,
    /// Updates a robust defense rejected (non-finite values or norm-filter
    /// bound; 0 for undefended tasks).
    pub robust_rejected_updates: u64,
    /// Releases where an engaged robust estimator (trimmed mean, coordinate
    /// median) replaced the inner strategy's aggregate (0 for undefended or
    /// filter-only tasks).
    pub robust_estimator_releases: u64,
    /// Ground-truth count of uploads a simulated Byzantine client corrupted
    /// (0 for honest populations).
    pub attacked_updates: u64,
}

impl MetricsCollector {
    /// Produces the run summary.
    pub fn summarize(&self, virtual_seconds: f64) -> MetricsSummary {
        let virtual_hours = virtual_seconds / 3600.0;
        MetricsSummary {
            virtual_hours,
            server_updates_per_hour: if virtual_hours > 0.0 {
                self.server_updates as f64 / virtual_hours
            } else {
                0.0
            },
            comm_trips: self.comm_trips,
            mean_staleness: self.mean_staleness(),
            mean_active_clients: self.mean_active_clients(),
            mean_round_duration_s: self.mean_round_duration_s(),
            tsa_key_releases: self.secure.tsa_key_releases,
            tee_boundary_bytes_per_masked_update: self.secure.tee_bytes_in_per_client(),
            dp_releases: self.dp.releases,
            cumulative_epsilon: self.dp.cumulative_epsilon,
            robust_rejected_updates: self.robust.rejected_total(),
            robust_estimator_releases: self.robust.estimator_releases,
            attacked_updates: self.attacked_updates,
        }
    }
}

/// End-of-run report for one task of a multi-tenant simulation.
#[derive(Clone, Debug)]
pub struct TaskSummary {
    /// Task identifier (index into the fleet's task list).
    pub task_id: usize,
    /// Human-readable task name.
    pub name: String,
    /// Population loss at the first evaluation.
    pub initial_loss: f64,
    /// Population loss at the last evaluation.
    pub final_loss: f64,
    /// Times this task was moved to a new Aggregator after a failure.
    pub reassignments: u64,
    /// Buffered updates this task lost to Aggregator failures.
    pub lost_buffered_updates: u64,
    /// The task's run summary (rates, staleness, utilization).
    pub summary: MetricsSummary,
}

impl TaskSummary {
    /// Fraction of the initial loss still remaining at the end of the run
    /// (1.0 means no progress; small values mean strong convergence).
    pub fn remaining_loss_fraction(&self) -> f64 {
        if self.initial_loss.abs() < f64::EPSILON {
            return 1.0;
        }
        self.final_loss / self.initial_loss
    }
}

/// Control-plane counters a multi-tenant run accumulates outside any single
/// task: failures, reassignments, and routing outcomes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ControlPlaneStats {
    /// Aggregator processes that failed during the run.
    pub aggregator_failures: u64,
    /// Task→Aggregator reassignments performed by the Coordinator.
    pub task_reassignments: u64,
    /// Client requests refused because a Selector's assignment map was
    /// stale (sequence behind the Coordinator's).
    pub stale_route_refusals: u64,
    /// Client updates lost in transit to a dead Aggregator.
    pub lost_in_transit_updates: u64,
    /// Final sequence number of the Coordinator's assignment map.
    pub final_map_sequence: u64,
    /// Tasks orphaned by total Aggregator loss (their route pointed at a
    /// corpse until a reconcile pass re-placed them).
    pub tasks_orphaned: u64,
    /// Corrective placements performed by reconcile passes (orphan
    /// re-placements plus pending first placements).
    pub tasks_reconciled: u64,
    /// Task submissions that found no alive Aggregator and were queued as
    /// pending instead of panicking.
    pub pending_task_submissions: u64,
    /// Heartbeats from unknown Aggregator ids that were accepted as
    /// implicit registrations.
    pub unknown_heartbeat_registrations: u64,
    /// Crashed Aggregator processes that came back during the run.
    pub aggregator_recoveries: u64,
    /// Heartbeats processed by the control plane.
    // papaya-lint: allow(metrics-fingerprint) -- derived from fleet size and tick count, both already pinned by the hashed event count; hashing it would add nothing but a second copy of run shape
    pub heartbeats: u64,
    /// Task placements performed (initial, reassignment, and reconcile).
    // papaya-lint: allow(metrics-fingerprint) -- the placements themselves are fingerprinted through routes, reassignment counters, and final params; this is their observability roll-up
    pub tasks_placed: u64,
    /// Absolute length of the control-plane event log at the end of the run.
    // papaya-lint: allow(metrics-fingerprint) -- an observability mirror fully determined by the hashed dispatch counts; hashing it would double-count them
    pub control_log_events: u64,
    /// Checkpoints the control plane took during the run.
    // papaya-lint: allow(metrics-fingerprint) -- checkpoint cadence is an operator knob that must not alter run identity; bit-identity across cadences is the checkpoint correctness proof
    pub checkpoints_taken: u64,
    /// Events appended since the last checkpoint (restore replay cost).
    // papaya-lint: allow(metrics-fingerprint) -- checkpoint cadence is an operator knob that must not alter run identity; bit-identity across cadences is the checkpoint correctness proof
    pub checkpoint_age_events: u64,
    /// Mid-run restores of the control plane from (checkpoint + log suffix).
    // papaya-lint: allow(metrics-fingerprint) -- a restore must be fingerprint-invisible: identical fingerprints with and without one IS the replay-fidelity proof
    pub coordinator_restores: u64,
}

impl ControlPlaneStats {
    /// Renders the counters in Prometheus text exposition format, for bench
    /// binaries that export fleet reports as scrape-able metrics.
    pub fn prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let counters = [
            (
                "papaya_fleet_aggregator_failures_total",
                "Aggregator processes that failed during the run.",
                self.aggregator_failures,
            ),
            (
                "papaya_fleet_aggregator_recoveries_total",
                "Crashed Aggregator processes that came back.",
                self.aggregator_recoveries,
            ),
            (
                "papaya_fleet_task_reassignments_total",
                "Task-to-Aggregator reassignments performed.",
                self.task_reassignments,
            ),
            (
                "papaya_fleet_tasks_orphaned_total",
                "Tasks orphaned by total Aggregator loss.",
                self.tasks_orphaned,
            ),
            (
                "papaya_fleet_tasks_reconciled_total",
                "Corrective placements performed by reconcile passes.",
                self.tasks_reconciled,
            ),
            (
                "papaya_fleet_pending_task_submissions_total",
                "Task submissions queued with no alive Aggregator.",
                self.pending_task_submissions,
            ),
            (
                "papaya_fleet_unknown_heartbeat_registrations_total",
                "Heartbeats from unknown ids accepted as registrations.",
                self.unknown_heartbeat_registrations,
            ),
            (
                "papaya_fleet_heartbeats_total",
                "Heartbeats processed by the control plane.",
                self.heartbeats,
            ),
            (
                "papaya_fleet_tasks_placed_total",
                "Task placements performed.",
                self.tasks_placed,
            ),
            (
                "papaya_fleet_stale_route_refusals_total",
                "Client requests refused by stale Selector maps.",
                self.stale_route_refusals,
            ),
            (
                "papaya_fleet_lost_in_transit_updates_total",
                "Client updates lost in transit to a dead Aggregator.",
                self.lost_in_transit_updates,
            ),
            (
                "papaya_fleet_control_log_events_total",
                "Absolute length of the control-plane event log.",
                self.control_log_events,
            ),
            (
                "papaya_fleet_checkpoints_total",
                "Checkpoints taken by the control plane.",
                self.checkpoints_taken,
            ),
            (
                "papaya_fleet_coordinator_restores_total",
                "Mid-run restores from (checkpoint + log suffix).",
                self.coordinator_restores,
            ),
        ];
        for (name, help, value) in counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, help, value) in [
            (
                "papaya_fleet_map_sequence",
                "Final sequence number of the assignment map.",
                self.final_map_sequence,
            ),
            (
                "papaya_fleet_checkpoint_age_events",
                "Events appended since the last checkpoint.",
                self.checkpoint_age_events,
            ),
        ] {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        out
    }
}

/// Cross-task roll-up of a multi-tenant run.
#[derive(Clone, Debug)]
pub struct FleetSummary {
    /// Total virtual time simulated, in hours.
    pub virtual_hours: f64,
    /// Number of tasks in the fleet.
    pub tasks: usize,
    /// Client updates received across all tasks.
    pub total_comm_trips: u64,
    /// Server model updates across all tasks.
    pub total_server_updates: u64,
    /// Failed participations across all tasks.
    pub total_failed_participations: u64,
    /// Buffered updates lost to Aggregator failures across all tasks.
    pub total_lost_buffered_updates: u64,
    /// Mean concurrently-active clients summed over tasks (fleet-wide
    /// device utilization).
    pub mean_active_clients: f64,
    /// Control-plane counters for the run.
    pub control_plane: ControlPlaneStats,
}

impl FleetSummary {
    /// Rolls up per-task summaries and control-plane counters.  Collectors
    /// are borrowed — only scalar counters are read, never copied traces.
    pub fn roll_up(
        virtual_hours: f64,
        tasks: &[TaskSummary],
        collectors: &[&MetricsCollector],
        control_plane: ControlPlaneStats,
    ) -> Self {
        FleetSummary {
            virtual_hours,
            tasks: tasks.len(),
            total_comm_trips: collectors.iter().map(|m| m.comm_trips).sum(),
            total_server_updates: collectors.iter().map(|m| m.server_updates).sum(),
            total_failed_participations: collectors.iter().map(|m| m.failed_participations).sum(),
            total_lost_buffered_updates: collectors.iter().map(|m| m.lost_buffered_updates).sum(),
            mean_active_clients: collectors.iter().map(|m| m.mean_active_clients()).sum(),
            control_plane,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_staleness_handles_empty() {
        let m = MetricsCollector::new();
        assert_eq!(m.mean_staleness(), 0.0);
    }

    #[test]
    fn summary_computes_rates() {
        let mut m = MetricsCollector::new();
        m.server_updates = 100;
        m.comm_trips = 500;
        m.staleness_sum = 50;
        m.aggregated_updates = 100;
        m.utilization_trace = vec![(0.0, 10), (1.0, 20)].into();
        let s = m.summarize(7200.0);
        assert_eq!(s.virtual_hours, 2.0);
        assert_eq!(s.server_updates_per_hour, 50.0);
        assert_eq!(s.comm_trips, 500);
        assert_eq!(s.mean_staleness, 0.5);
        assert_eq!(s.mean_active_clients, 15.0);
    }

    #[test]
    fn secure_telemetry_feeds_the_summary() {
        let mut m = MetricsCollector::new();
        assert_eq!(m.secure, SecureTelemetry::default());
        m.secure.masked_updates = 4;
        m.secure.tee_bytes_in = 1200;
        m.secure.tsa_key_releases = 2;
        m.secure.quantization_error_trace = vec![(10.0, 1e-6), (20.0, 3e-5), (30.0, 2e-6)];
        assert_eq!(m.secure.tee_bytes_in_per_client(), 300.0);
        assert_eq!(m.secure.max_quantization_error(), 3e-5);
        let s = m.summarize(3600.0);
        assert_eq!(s.tsa_key_releases, 2);
        assert_eq!(s.tee_boundary_bytes_per_masked_update, 300.0);
    }

    #[test]
    fn dp_telemetry_feeds_the_summary() {
        let mut m = MetricsCollector::new();
        assert_eq!(m.dp, DpTelemetry::default());
        m.dp.accepted_updates = 10;
        m.dp.clipped_updates = 4;
        m.dp.releases = 3;
        m.dp.cumulative_epsilon = 1.75;
        assert_eq!(m.dp.clip_fraction(), 0.4);
        let s = m.summarize(3600.0);
        assert_eq!(s.dp_releases, 3);
        assert_eq!(s.cumulative_epsilon, 1.75);
    }

    #[test]
    fn robust_telemetry_and_attack_counts_feed_the_summary() {
        let mut m = MetricsCollector::new();
        assert_eq!(m.robust, RobustTelemetry::default());
        m.robust.rejected_non_finite = 1;
        m.robust.rejected_by_norm = 2;
        m.robust.estimator_releases = 4;
        m.rejected_by_defense_updates = 3;
        m.record_attack(10.0, 7, "sign-flip");
        m.record_attack(20.0, 9, "sign-flip");
        m.record_attack(25.0, 11, "secagg-wrong-counter");
        assert_eq!(m.attacks_by_label.get("sign-flip"), Some(&2));
        assert_eq!(m.attacks_by_label.get("secagg-wrong-counter"), Some(&1));
        assert_eq!(m.attack_trace.len(), 3);
        let s = m.summarize(3600.0);
        assert_eq!(s.robust_rejected_updates, 3);
        assert_eq!(s.robust_estimator_releases, 4);
        assert_eq!(s.attacked_updates, 3);
    }

    #[test]
    fn attack_trace_respects_the_budget() {
        let mut m = MetricsCollector::new();
        m.set_trace_budget(TraceBudget::bounded(8));
        for i in 0..100 {
            m.record_attack(i as f64, i, "scaled");
        }
        assert_eq!(m.attacked_updates, 100);
        assert!(m.attack_trace.len() <= 8);
        assert_eq!(m.attacks_by_label.get("scaled"), Some(&100));
    }

    #[test]
    fn aggregated_filters_apply() {
        let mut m = MetricsCollector::new();
        m.participations = vec![
            ParticipationRecord {
                client_id: 0,
                execution_time_s: 10.0,
                num_examples: 5,
                aggregated: true,
            },
            ParticipationRecord {
                client_id: 1,
                execution_time_s: 99.0,
                num_examples: 50,
                aggregated: false,
            },
        ]
        .into();
        assert_eq!(m.aggregated_execution_times(), vec![10.0]);
        assert_eq!(m.aggregated_example_counts(), vec![5.0]);
    }

    #[test]
    fn fleet_summary_rolls_up_tasks() {
        let mut a = MetricsCollector::new();
        a.comm_trips = 100;
        a.server_updates = 10;
        a.failed_participations = 3;
        a.lost_buffered_updates = 2;
        a.utilization_trace = vec![(0.0, 4), (1.0, 6)].into();
        let mut b = MetricsCollector::new();
        b.comm_trips = 50;
        b.server_updates = 5;
        b.utilization_trace = vec![(0.0, 10), (1.0, 10)].into();
        let tasks = vec![
            TaskSummary {
                task_id: 0,
                name: "a".into(),
                initial_loss: 2.0,
                final_loss: 0.5,
                reassignments: 1,
                lost_buffered_updates: 2,
                summary: a.summarize(3600.0),
            },
            TaskSummary {
                task_id: 1,
                name: "b".into(),
                initial_loss: 1.0,
                final_loss: 0.9,
                reassignments: 0,
                lost_buffered_updates: 0,
                summary: b.summarize(3600.0),
            },
        ];
        let stats = ControlPlaneStats {
            aggregator_failures: 1,
            task_reassignments: 1,
            stale_route_refusals: 7,
            lost_in_transit_updates: 4,
            final_map_sequence: 3,
            ..Default::default()
        };
        let fleet = FleetSummary::roll_up(1.0, &tasks, &[&a, &b], stats.clone());
        assert_eq!(fleet.tasks, 2);
        assert_eq!(fleet.total_comm_trips, 150);
        assert_eq!(fleet.total_server_updates, 15);
        assert_eq!(fleet.total_failed_participations, 3);
        assert_eq!(fleet.total_lost_buffered_updates, 2);
        assert_eq!(fleet.mean_active_clients, 15.0);
        assert_eq!(fleet.control_plane, stats);
        assert!((tasks[0].remaining_loss_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn control_plane_stats_render_as_prometheus_text() {
        let stats = ControlPlaneStats {
            aggregator_failures: 2,
            tasks_orphaned: 3,
            tasks_reconciled: 3,
            coordinator_restores: 1,
            final_map_sequence: 9,
            ..Default::default()
        };
        let text = stats.prometheus_text();
        for needle in [
            "# HELP papaya_fleet_tasks_orphaned_total",
            "# TYPE papaya_fleet_tasks_orphaned_total counter",
            "papaya_fleet_tasks_orphaned_total 3",
            "papaya_fleet_tasks_reconciled_total 3",
            "papaya_fleet_coordinator_restores_total 1",
            "# TYPE papaya_fleet_map_sequence gauge",
            "papaya_fleet_map_sequence 9",
            "papaya_fleet_checkpoint_age_events 0",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn ks_against_detects_identical_distribution() {
        let mut m = MetricsCollector::new();
        for i in 0..200 {
            m.participations.push(ParticipationRecord {
                client_id: i,
                execution_time_s: 1.0,
                num_examples: i % 50,
                aggregated: true,
            });
        }
        let reference: Vec<f64> = (0..200).map(|i| (i % 50) as f64).collect();
        let result = m.ks_against(&reference);
        assert!(result.d_statistic < 0.05);
    }
}
