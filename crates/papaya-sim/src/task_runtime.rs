//! Per-task training state, factored out of the single-task engine.
//!
//! A [`TaskRuntime`] owns everything one federated task needs server-side:
//! the versioned model and its optimizer, the aggregation strategy (held as
//! a `Box<dyn Aggregator>`, so the runtime is agnostic of sync vs async vs
//! hybrid), the download snapshot, the in-flight participation map, round
//! bookkeeping, and a per-task [`MetricsCollector`].  It exposes a narrow
//! API — [`begin_participation`](TaskRuntime::begin_participation),
//! [`offer_update`](TaskRuntime::offer_update),
//! [`client_failed`](TaskRuntime::client_failed),
//! [`demand`](TaskRuntime::demand), [`evaluate`](TaskRuntime::evaluate),
//! [`poll`](TaskRuntime::poll) —
//! so the same runtime can be driven by any [`crate::scenario::Scenario`]
//! path or placed on a simulated Aggregator process.
//!
//! The runtime is deliberately ignorant of *who* participates and *when*:
//! client selection, event scheduling, dropouts, and timeouts belong to the
//! driving simulation.  On an Aggregator failure the driver calls
//! [`drop_buffered_updates`](TaskRuntime::drop_buffered_updates) —
//! reproducing the paper's fault-tolerance semantics (buffered state is
//! lost with the Aggregator; training resumes after reassignment).  For
//! in-flight participations a driver can either let their uploads fail
//! lazily when they arrive (what the fleet scenario path does: the upload
//! is addressed to the dead Aggregator and is reported through
//! [`client_failed`](TaskRuntime::client_failed)) or abort them all
//! eagerly with
//! [`abort_all_in_flight`](TaskRuntime::abort_all_in_flight).

use crate::events::SimTime;
use crate::executor::{Executor, TrainJob};
use crate::metrics::{MetricsCollector, ParticipationRecord};
use papaya_core::aggregator::{self, AccumulateOutcome, Aggregator};
use papaya_core::client::{participation_seed, ClientTrainer, ClientUpdate};
use papaya_core::config::{SecAggMode, TaskConfig};
use papaya_core::dp::DpAggregator;
use papaya_core::model::ServerModel;
use papaya_core::robust::RobustAggregator;
use papaya_core::secure::{self, SecureAggregator};
use papaya_core::server_opt::{FedAdam, FedAvg, FedSgd, ServerOptimizer};
use papaya_nn::params::ParamVec;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Which server optimizer a runtime applies to aggregated deltas.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ServerOptimizerKind {
    /// `model += delta`.
    FedAvg,
    /// `model += lr * delta`.
    FedSgd {
        /// Server learning rate.
        learning_rate: f32,
    },
    /// Adam on the server with the delta as pseudo-gradient.
    FedAdam {
        /// Server learning rate.
        learning_rate: f32,
        /// First-moment decay.
        beta1: f32,
    },
}

impl ServerOptimizerKind {
    fn build(&self) -> Box<dyn ServerOptimizer> {
        match *self {
            ServerOptimizerKind::FedAvg => Box::new(FedAvg),
            ServerOptimizerKind::FedSgd { learning_rate } => Box::new(FedSgd::new(learning_rate)),
            ServerOptimizerKind::FedAdam {
                learning_rate,
                beta1,
            } => Box::new(FedAdam::new(learning_rate, beta1)),
        }
    }
}

/// A client currently participating in this task.
#[derive(Clone, Debug)]
struct InFlight {
    client_id: usize,
    start_version: u64,
    start_params: Arc<ParamVec>,
    round: u64,
    execution_time_s: f64,
}

/// A participation released by the runtime (stale abort, round end, or a
/// forced abort after an Aggregator failure); the driver must return the
/// device to its selection pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FreedClient {
    /// The participation that ended.
    pub participation_id: u64,
    /// The device that is free again.
    pub client_id: usize,
}

/// What happened when an update was offered to the runtime.
#[derive(Clone, Debug, Default)]
pub struct UpdateOutcome {
    /// The update was folded into an aggregation buffer.
    pub accepted: bool,
    /// An aggregation goal was reached and the server model stepped.
    pub server_updated: bool,
    /// A synchronous round closed.
    pub round_ended: bool,
    /// The server update came from a secure buffer: the TSA released the
    /// per-buffer unmask key.  Drivers schedule a
    /// [`crate::events::EventKind::TsaKeyRelease`] event when this is set.
    pub tsa_key_released: bool,
    /// The server update was a DP release: the delta was noised and the
    /// privacy accountant composed it into the cumulative ε.  Drivers
    /// schedule a [`crate::events::EventKind::DpRelease`] event when this
    /// is set (whose handler also enforces the ε budget).
    pub dp_released: bool,
    /// The server update passed through a robust-aggregation defense that
    /// recorded new telemetry (an engaged-estimator release or a pending
    /// rejection count).  Drivers schedule a
    /// [`crate::events::EventKind::RobustRelease`] event when this is set
    /// (whose handler refreshes the robustness telemetry).  Deliberately
    /// *not* set for a neutral defense's pure pass-through releases: they
    /// add no information, and skipping their events keeps a
    /// neutral-defense run's event stream — and fingerprint — identical to
    /// the clear run's.
    pub robust_released: bool,
    /// Participations aborted as a consequence (staleness bound or round
    /// end); their devices are free again.
    pub freed: Vec<FreedClient>,
}

/// Server-side state of one federated task.
pub struct TaskRuntime {
    config: TaskConfig,
    seed: u64,
    target_loss: Option<f64>,
    trainer: Arc<dyn ClientTrainer>,
    model: ServerModel,
    snapshot: Arc<ParamVec>,
    /// The initial global parameters, frozen at construction.  Only the
    /// staleness-liar adversary reads this: the liar trains against the
    /// stale initial model while claiming its update is fresh.
    initial_params: Arc<ParamVec>,
    optimizer: Box<dyn ServerOptimizer>,
    aggregator: Box<dyn Aggregator>,
    in_flight: BTreeMap<u64, InFlight>,
    /// Parallel training pool, shared across the scenario's runtimes.
    /// `None` is the sequential path: training runs inline in
    /// [`offer_update`](TaskRuntime::offer_update).
    executor: Option<Arc<Executor>>,
    completed_this_round: usize,
    round_number: u64,
    round_start_time: SimTime,
    eval_ids: Vec<usize>,
    metrics: MetricsCollector,
    hours_to_target: Option<f64>,
    final_loss: f64,
}

impl TaskRuntime {
    /// Creates the runtime for one task.  `eval_ids` is the fixed evaluation
    /// sample (chosen by the driver from its population) and `seed` salts the
    /// per-participation training randomness.  The aggregation strategy is
    /// built from the task's mode by [`papaya_core::aggregator::for_task`];
    /// nothing in the runtime branches on the mode afterwards.
    pub fn new(
        config: TaskConfig,
        server_optimizer: ServerOptimizerKind,
        trainer: Arc<dyn ClientTrainer>,
        eval_ids: Vec<usize>,
        seed: u64,
        target_loss: Option<f64>,
    ) -> Self {
        let aggregator = aggregator::for_task(&config);
        Self::with_aggregator(
            config,
            server_optimizer,
            aggregator,
            trainer,
            eval_ids,
            seed,
            target_loss,
        )
    }

    /// Creates the runtime with an explicit aggregation strategy, for
    /// strategies a [`TaskConfig`] cannot express.
    ///
    /// When the task asks for [`SecAggMode::AsyncSecAgg`], the strategy is
    /// wrapped in a [`SecureAggregator`] here — the single place the flag is
    /// honored: masking on accumulate, a per-buffer TSA key release on
    /// take, crash-time buffer drops without a key release, with the
    /// threshold [`secure::recommended_threshold`] derives from the mode.
    ///
    /// When the task carries a [`papaya_core::dp::DpConfig`], the (possibly
    /// secure) strategy is additionally wrapped in a [`DpAggregator`] — DP
    /// goes outside SecAgg, so clipping happens on the client before any
    /// masking and the release noise lands on the decoded aggregate (where
    /// the TEE would add it).
    ///
    /// When the task carries a [`papaya_core::robust::RobustConfig`], the
    /// stack is finally wrapped in a [`RobustAggregator`] — the defense
    /// goes **outermost**: it screens raw client updates before any layer
    /// buffers them, and its engaged estimators replace the final release
    /// the server would otherwise apply.  When the task also carries an
    /// [`papaya_core::adversary::AdversarySpec`] with a SecAgg protocol
    /// deviation, the deviation is armed on the [`SecureAggregator`] here —
    /// the simulated malicious client stub lives inside the secure
    /// pipeline's client side.
    pub fn with_aggregator(
        config: TaskConfig,
        server_optimizer: ServerOptimizerKind,
        aggregator: Box<dyn Aggregator>,
        trainer: Arc<dyn ClientTrainer>,
        eval_ids: Vec<usize>,
        seed: u64,
        target_loss: Option<f64>,
    ) -> Self {
        let aggregator: Box<dyn Aggregator> = match config.secagg {
            SecAggMode::Disabled => aggregator,
            SecAggMode::AsyncSecAgg => {
                let mut secure = SecureAggregator::new(
                    aggregator,
                    trainer.parameter_count(),
                    secure::recommended_threshold(&config),
                    // Domain-separate the protocol stream from the training
                    // and driver streams derived from the same task seed.
                    seed ^ 0x5ECA_665E_CA66,
                );
                if let Some(spec) = config.adversary {
                    // Arms wrong-counter / garbage-mask uploads for the
                    // spec's malicious cohort (no-op for payload attacks).
                    secure = secure.with_deviation(spec);
                }
                Box::new(secure)
            }
            SecAggMode::AsyncSecAggPerUpdate => {
                let mut secure = SecureAggregator::new_per_update(
                    aggregator,
                    trainer.parameter_count(),
                    secure::recommended_threshold(&config),
                    // Same protocol-stream seed as the session-cached mode,
                    // so the modes differ only in the key-exchange schedule.
                    seed ^ 0x5ECA_665E_CA66,
                );
                if let Some(spec) = config.adversary {
                    secure = secure.with_deviation(spec);
                }
                Box::new(secure)
            }
        };
        let aggregator: Box<dyn Aggregator> = match config.dp {
            None => aggregator,
            // Domain-separate the noise stream from the training, driver,
            // and secure-protocol streams derived from the same task seed
            // (DpAggregator hashes its seed again under a dp-only domain).
            Some(dp) => Box::new(DpAggregator::new(aggregator, dp, seed ^ 0xD1FF_D1FF)),
        };
        let aggregator: Box<dyn Aggregator> = match config.robust {
            None => aggregator,
            // The defense wraps last: it screens raw updates before any
            // inner layer buffers them and corrects the stack's final
            // release.  Fully deterministic — no seed to domain-separate.
            Some(robust) => Box::new(RobustAggregator::new(aggregator, robust)),
        };
        let model = ServerModel::new(trainer.initial_parameters());
        let snapshot = Arc::new(model.snapshot());
        let initial_params = Arc::clone(&snapshot);
        let optimizer = server_optimizer.build();
        TaskRuntime {
            config,
            seed,
            target_loss,
            trainer,
            model,
            snapshot,
            initial_params,
            optimizer,
            aggregator,
            in_flight: BTreeMap::new(),
            executor: None,
            completed_this_round: 0,
            round_number: 0,
            round_start_time: 0.0,
            eval_ids,
            metrics: MetricsCollector::new(),
            hours_to_target: None,
            final_loss: f64::INFINITY,
        }
    }

    /// The task configuration.
    pub fn config(&self) -> &TaskConfig {
        &self.config
    }

    /// Current client demand per Appendix E.3 (concurrency minus active,
    /// minus this round's completions in synchronous mode).
    pub fn demand(&self) -> usize {
        self.config
            .client_demand(self.in_flight.len(), self.completed_this_round)
    }

    /// Number of clients currently in flight.
    pub fn active(&self) -> usize {
        self.in_flight.len()
    }

    /// Current server model version.
    pub fn version(&self) -> u64 {
        self.model.version()
    }

    /// Snapshot of the current server parameters (what a client downloads).
    pub fn model_snapshot(&self) -> ParamVec {
        self.model.snapshot()
    }

    /// The per-task metrics collected so far.
    pub fn metrics(&self) -> &MetricsCollector {
        &self.metrics
    }

    /// Virtual hours at which the target loss was reached, if it was.
    pub fn hours_to_target(&self) -> Option<f64> {
        self.hours_to_target
    }

    /// The most recently evaluated population loss.
    pub fn final_loss(&self) -> f64 {
        self.final_loss
    }

    /// The synchronous round currently in progress (0-based; stays 0 for
    /// buffered strategies, whose releases never close a round).
    pub fn round_number(&self) -> u64 {
        self.round_number
    }

    /// Registers a selected client: it downloads the current snapshot and
    /// starts training.  The driver owns participation-id allocation.
    pub fn begin_participation(
        &mut self,
        participation_id: u64,
        client_id: usize,
        execution_time_s: f64,
    ) {
        self.in_flight.insert(
            participation_id,
            InFlight {
                client_id,
                start_version: self.model.version(),
                start_params: Arc::clone(&self.snapshot),
                round: self.round_number,
                execution_time_s,
            },
        );
    }

    /// Whether the given participation is still in flight.
    pub fn is_in_flight(&self, participation_id: u64) -> bool {
        self.in_flight.contains_key(&participation_id)
    }

    /// Attaches (or detaches) the parallel training pool.  Scenario drivers
    /// share one executor across every runtime of a run.
    pub fn set_executor(&mut self, executor: Option<Arc<Executor>>) {
        self.executor = executor;
    }

    /// Applies the run's [`TraceBudget`](papaya_core::trace::TraceBudget)
    /// to this task's per-event metric traces.  Scenario drivers call this
    /// once at construction, before any event is processed.
    pub fn set_trace_budget(&mut self, budget: papaya_core::trace::TraceBudget) {
        self.metrics.set_trace_budget(budget);
    }

    /// Queues the participation's local training (and, for secure tasks, its
    /// mask precompute) on the executor, so both are (usually) already
    /// computed when the finish event fires.  Drivers call this only for
    /// participations that will reach their finish event — speculating on
    /// doomed ones would waste workers.
    ///
    /// The mask *plan* is issued here even on the sequential path (where it
    /// is consumed inline at upload time): planning burns the session's
    /// ratchet counter, and doing that at the same point of the event order
    /// regardless of parallelism is what keeps secure runs bit-identical at
    /// any thread count.
    pub fn prefetch_training(&mut self, participation_id: u64) {
        let in_flight = match self.in_flight.get(&participation_id) {
            Some(in_flight) => in_flight,
            None => return,
        };
        let client_id = in_flight.client_id;
        let start_params = Arc::clone(&in_flight.start_params);
        let mask_plan = self.aggregator.plan_mask_precompute(client_id);
        let executor = match &self.executor {
            Some(executor) => executor,
            None => return,
        };
        executor.submit(TrainJob {
            participation_id,
            client_id,
            start_params,
            seed: participation_seed(self.seed, participation_id),
            trainer: Arc::clone(&self.trainer),
        });
        if let Some(plan) = mask_plan {
            executor.submit_mask(participation_id, plan);
        }
    }

    /// Drops any speculative training or mask work queued for an aborted
    /// participation.
    fn discard_prefetch(&self, participation_id: u64) {
        if let Some(executor) = &self.executor {
            executor.discard(participation_id);
            executor.discard_mask(participation_id);
        }
    }

    /// Records a utilization sample at `now`.
    pub fn record_utilization(&mut self, now: SimTime) {
        self.metrics
            .utilization_trace
            .push((now, self.in_flight.len()));
    }

    /// A client finished local training and reports its update.  Runs the
    /// trainer, feeds the aggregator, and applies a server update when the
    /// aggregator becomes ready.  Returns `None` when the participation
    /// was already aborted (round end, staleness abort, or failover).
    pub fn offer_update(&mut self, participation_id: u64, now: SimTime) -> Option<UpdateOutcome> {
        let in_flight = self.in_flight.remove(&participation_id)?;
        let client_id = in_flight.client_id;
        self.metrics.comm_trips += 1;

        let seed = participation_seed(self.seed, participation_id);
        let mut result = match &self.executor {
            // The pool usually finished this job long ago; if it is still
            // queued the driver steals it and trains inline.  Either way the
            // inputs are identical to the sequential call below, so the
            // result is bit-identical.
            Some(executor) => executor.take_or_run(participation_id, || {
                self.trainer.train(client_id, &in_flight.start_params, seed)
            }),
            None => self.trainer.train(client_id, &in_flight.start_params, seed),
        };

        // Byzantine injection point: a malicious client corrupts its upload
        // after local training, before anything server-side sees it.  The
        // ground truth recorded here never reaches the defenses — they must
        // work from the update contents alone.  (SecAgg protocol deviations
        // are armed inside the secure pipeline instead; see
        // `with_aggregator`.)
        let mut claimed_start_version = in_flight.start_version;
        if let Some(spec) = self.config.adversary {
            if spec.is_malicious(client_id) {
                if spec.lies_about_staleness() {
                    // The liar trained against the frozen initial model but
                    // reports the current version: staleness metadata is
                    // client-claimed, so weighting schemes that trust it
                    // give the stale update full weight.  Retraining is
                    // inline on both executor paths, keeping runs
                    // bit-identical at any thread count.
                    result = self.trainer.train(client_id, &self.initial_params, seed);
                    claimed_start_version = self.model.version();
                }
                spec.corrupt_delta(client_id, &mut result.delta);
                self.metrics
                    .record_attack(now, client_id, spec.malice.label());
            }
        }
        let num_examples = result.num_examples;

        let mut outcome = UpdateOutcome::default();
        if self.aggregator.closes_round_on_release() && in_flight.round != self.round_number {
            // Update from a previous round arriving late; discarded (along
            // with any speculative mask still on the pool).
            if let Some(executor) = &self.executor {
                executor.discard_mask(participation_id);
            }
            self.metrics.discarded_updates += 1;
            self.metrics.participations.push(ParticipationRecord {
                client_id,
                execution_time_s: in_flight.execution_time_s,
                num_examples,
                aggregated: false,
            });
            return Some(outcome);
        }

        // Hand a speculatively precomputed mask to the secure pipeline.  A
        // still-queued job is cancelled (`take_mask` returns `None`) and the
        // aggregator expands the mask inline — the plan is pure, so the two
        // routes are bit-identical.
        if let Some(executor) = &self.executor {
            if let Some(mask) = executor.take_mask(participation_id) {
                self.aggregator.provide_precomputed_mask(client_id, mask);
            }
        }

        let update = ClientUpdate::from_result(client_id, claimed_start_version, result);
        let accumulate_outcome = self
            .aggregator
            .accumulate(update, self.model.version(), now);
        match accumulate_outcome {
            AccumulateOutcome::Accepted { staleness } => {
                outcome.accepted = true;
                self.metrics.staleness_sum += staleness;
                self.metrics.aggregated_updates += 1;
            }
            AccumulateOutcome::RejectedStale { .. } => {
                self.metrics.rejected_stale_updates += 1;
            }
            AccumulateOutcome::Discarded => {
                self.metrics.discarded_updates += 1;
            }
            AccumulateOutcome::RejectedByDefense => {
                self.metrics.rejected_by_defense_updates += 1;
            }
        }
        if self.aggregator.closes_round_on_release() {
            self.completed_this_round += 1;
        }
        self.metrics.participations.push(ParticipationRecord {
            client_id,
            execution_time_s: in_flight.execution_time_s,
            num_examples,
            aggregated: outcome.accepted,
        });

        if self.aggregator.is_ready(now) {
            let delta = self
                .aggregator
                .take(now)
                // papaya-lint: allow(panic-hygiene) -- take() is called under is_ready(); a None here is an aggregator contract breach
                .expect("ready aggregator must release");
            self.apply_server_update(&delta);
            outcome.server_updated = true;
            outcome.tsa_key_released = self.is_secure();
            outcome.dp_released = self.is_dp();
            outcome.robust_released = self.robust_telemetry_dirty();
            if self.aggregator.closes_round_on_release() {
                outcome.round_ended = true;
                outcome.freed = self.end_sync_round(now);
            } else {
                outcome.freed = self.abort_overly_stale_clients();
            }
        }
        Some(outcome)
    }

    /// Checks time-based release conditions at `now` (deadline strategies):
    /// if the aggregator is ready without a new arrival, the buffer is
    /// released and the server model steps.  Count-based strategies drain in
    /// [`offer_update`](TaskRuntime::offer_update), so this is a no-op for
    /// them.  Returns `None` when nothing was released.
    pub fn poll(&mut self, now: SimTime) -> Option<UpdateOutcome> {
        if !self.aggregator.is_ready(now) {
            return None;
        }
        let delta = self.aggregator.take(now)?;
        self.apply_server_update(&delta);
        let mut outcome = UpdateOutcome {
            server_updated: true,
            tsa_key_released: self.is_secure(),
            dp_released: self.is_dp(),
            robust_released: self.robust_telemetry_dirty(),
            ..UpdateOutcome::default()
        };
        if self.aggregator.closes_round_on_release() {
            outcome.round_ended = true;
            outcome.freed = self.end_sync_round(now);
        } else {
            outcome.freed = self.abort_overly_stale_clients();
        }
        Some(outcome)
    }

    /// The virtual time at which the aggregator becomes ready without a new
    /// arrival, if one exists (deadline strategies with an open buffer).
    /// Drivers schedule a [`poll`](TaskRuntime::poll) at this time.
    pub fn next_deadline_s(&self) -> Option<f64> {
        self.aggregator.next_deadline_s()
    }

    /// A participating client failed (dropout, crash, or timeout abort).
    /// Returns the freed device id, or `None` if the participation had
    /// already been aborted.
    pub fn client_failed(&mut self, participation_id: u64) -> Option<usize> {
        let in_flight = self.in_flight.remove(&participation_id)?;
        self.discard_prefetch(participation_id);
        self.metrics.failed_participations += 1;
        Some(in_flight.client_id)
    }

    /// Runs an evaluation at `now`; returns the loss and records it on the
    /// loss curve.  Sets [`hours_to_target`](TaskRuntime::hours_to_target)
    /// the first time the target loss is reached.
    pub fn evaluate(&mut self, now: SimTime) -> f64 {
        let loss = self.trainer.evaluate(self.model.params(), &self.eval_ids);
        self.final_loss = loss;
        self.metrics.loss_curve.push((now / 3600.0, loss));
        if self.hours_to_target.is_none() {
            if let Some(target) = self.target_loss {
                if loss <= target {
                    self.hours_to_target = Some(now / 3600.0);
                }
            }
        }
        loss
    }

    /// Whether the configured target loss has been reached.
    pub fn target_reached(&self) -> bool {
        self.hours_to_target.is_some()
    }

    /// Discards all buffered (not yet aggregated) updates, as happens when
    /// the Aggregator holding this task dies.  Returns how many buffered
    /// updates were lost; they are also recorded in the task metrics.
    pub fn drop_buffered_updates(&mut self) -> usize {
        let dropped = self.aggregator.reset();
        // A synchronous round loses its progress with the buffer.
        self.completed_this_round = 0;
        self.metrics.lost_buffered_updates += dropped as u64;
        dropped
    }

    /// Aborts every in-flight participation (failover path: their uploads
    /// would land on a dead Aggregator).  The driver must release the
    /// returned devices.
    pub fn abort_all_in_flight(&mut self) -> Vec<FreedClient> {
        let mut freed: Vec<FreedClient> = std::mem::take(&mut self.in_flight)
            .into_iter()
            .map(|(participation_id, f)| FreedClient {
                participation_id,
                client_id: f.client_id,
            })
            .collect();
        freed.sort_unstable_by_key(|f| f.participation_id);
        for f in &freed {
            self.discard_prefetch(f.participation_id);
        }
        self.metrics.failed_participations += freed.len() as u64;
        freed
    }

    /// Whether this task runs through the secure-aggregation pipeline.
    pub fn is_secure(&self) -> bool {
        self.aggregator.secure_telemetry().is_some()
    }

    /// Whether this task's releases are differentially private.
    pub fn is_dp(&self) -> bool {
        self.aggregator.dp_telemetry().is_some()
    }

    /// Whether this task's updates pass through a robust-aggregation
    /// defense.
    pub fn is_robust(&self) -> bool {
        self.aggregator.robust_telemetry().is_some()
    }

    /// Whether the robust pipeline holds telemetry the task metrics have
    /// not absorbed yet (false for undefended tasks, and for neutral
    /// defenses that never rejected anything).
    fn robust_telemetry_dirty(&self) -> bool {
        self.aggregator
            .robust_telemetry()
            .is_some_and(|telemetry| *telemetry != self.metrics.robust)
    }

    /// Whether the task's cumulative ε has reached its configured budget
    /// (always false for tasks without DP or without a budget).  Drivers
    /// check this after handling a
    /// [`crate::events::EventKind::DpRelease`] event and stop the scenario
    /// with a privacy-budget stop reason.
    pub fn privacy_budget_exhausted(&self) -> bool {
        match (&self.config.dp, self.aggregator.dp_telemetry()) {
            (Some(dp), Some(telemetry)) => dp
                .epsilon_budget
                .is_some_and(|budget| telemetry.cumulative_epsilon >= budget),
            _ => false,
        }
    }

    /// Copies the DP pipeline's cumulative telemetry into the task metrics
    /// (a no-op for non-DP tasks).  Drivers call this when handling a
    /// [`crate::events::EventKind::DpRelease`] event, and
    /// [`into_parts`](TaskRuntime::into_parts) calls it once more so the
    /// final report is complete.
    pub fn sync_dp_telemetry(&mut self) {
        if let Some(telemetry) = self.aggregator.dp_telemetry() {
            // Incremental: counters are overwritten, the append-only
            // release trace only copies entries the metrics have not seen.
            self.metrics.dp.sync_from(telemetry);
        }
    }

    /// Copies the secure pipeline's cumulative telemetry into the task
    /// metrics (a no-op for clear tasks).  Drivers call this when handling
    /// a [`crate::events::EventKind::TsaKeyRelease`] event, and
    /// [`into_parts`](TaskRuntime::into_parts) calls it once more so the
    /// final report covers post-release activity (crash-time drops,
    /// trailing discarded uploads).
    pub fn sync_secure_telemetry(&mut self) {
        if let Some(telemetry) = self.aggregator.secure_telemetry() {
            // Incremental: counters are overwritten, the append-only error
            // trace only copies entries the metrics have not seen yet.
            self.metrics.secure.sync_from(telemetry);
        }
        if let Some(timings) = self.aggregator.secure_timings() {
            self.metrics.secure_timings = timings;
        }
    }

    /// Copies the robust pipeline's cumulative telemetry into the task
    /// metrics (a no-op for undefended tasks).  Drivers call this when
    /// handling a [`crate::events::EventKind::RobustRelease`] event, and
    /// [`into_parts`](TaskRuntime::into_parts) calls it once more so the
    /// final report covers rejections after the last release.
    pub fn sync_robust_telemetry(&mut self) {
        if let Some(telemetry) = self.aggregator.robust_telemetry() {
            // Incremental: counters are overwritten, the append-only
            // estimator trace only copies entries the metrics have not seen.
            self.metrics.robust.sync_from(telemetry);
        }
    }

    /// Consumes the runtime and returns its pieces for result assembly.
    pub fn into_parts(mut self) -> (MetricsCollector, ParamVec, u64, f64, Option<f64>) {
        self.sync_secure_telemetry();
        self.sync_dp_telemetry();
        self.sync_robust_telemetry();
        (
            self.metrics,
            self.model.snapshot(),
            self.model.version(),
            self.final_loss,
            self.hours_to_target,
        )
    }

    fn apply_server_update(&mut self, delta: &ParamVec) {
        self.model.apply_update(self.optimizer.as_mut(), delta);
        self.snapshot = Arc::new(self.model.snapshot());
        self.metrics.server_updates += 1;
    }

    /// Aborts in-flight clients whose staleness would exceed the strategy's
    /// bound (Appendix E.1: "clients may also be aborted by the server if
    /// staleness is higher than a configurable value").  No-op for
    /// strategies without a staleness bound.
    fn abort_overly_stale_clients(&mut self) -> Vec<FreedClient> {
        let max_staleness = match self.aggregator.max_staleness() {
            Some(max) => max,
            None => return Vec::new(),
        };
        let version = self.model.version();
        let mut to_abort: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|(_, f)| version.saturating_sub(f.start_version) > max_staleness)
            .map(|(&id, _)| id)
            .collect();
        to_abort.sort_unstable();
        let mut freed = Vec::with_capacity(to_abort.len());
        for id in to_abort {
            if let Some(f) = self.in_flight.remove(&id) {
                self.discard_prefetch(id);
                self.metrics.failed_participations += 1;
                freed.push(FreedClient {
                    participation_id: id,
                    client_id: f.client_id,
                });
            }
        }
        freed
    }

    /// Ends a synchronous round: aborts all still-running clients of the
    /// round and starts the next one.
    fn end_sync_round(&mut self, now: SimTime) -> Vec<FreedClient> {
        let round = self.round_number;
        let mut to_abort: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|(_, f)| f.round == round)
            .map(|(&id, _)| id)
            .collect();
        to_abort.sort_unstable();
        let mut freed = Vec::with_capacity(to_abort.len());
        for id in to_abort {
            if let Some(f) = self.in_flight.remove(&id) {
                self.discard_prefetch(id);
                self.metrics.aborted_by_round_end += 1;
                freed.push(FreedClient {
                    participation_id: id,
                    client_id: f.client_id,
                });
            }
        }
        self.metrics
            .round_durations_s
            .push(now - self.round_start_time);
        self.round_number += 1;
        self.round_start_time = now;
        self.completed_this_round = 0;
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papaya_core::surrogate::{SurrogateConfig, SurrogateObjective};
    use papaya_data::population::{Population, PopulationConfig};

    fn runtime(config: TaskConfig) -> TaskRuntime {
        let pop = Population::generate(&PopulationConfig::default().with_size(200), 5);
        let trainer = Arc::new(SurrogateObjective::new(&pop, SurrogateConfig::default(), 5));
        TaskRuntime::new(
            config,
            ServerOptimizerKind::FedAvg,
            trainer,
            (0..50).collect(),
            5,
            None,
        )
    }

    #[test]
    fn async_goal_triggers_server_update() {
        let mut rt = runtime(TaskConfig::async_task("t", 8, 2));
        rt.begin_participation(0, 0, 10.0);
        rt.begin_participation(1, 1, 10.0);
        assert_eq!(rt.active(), 2);
        assert_eq!(rt.demand(), 6);
        let first = rt.offer_update(0, 10.0).unwrap();
        assert!(first.accepted && !first.server_updated);
        let second = rt.offer_update(1, 11.0).unwrap();
        assert!(second.accepted && second.server_updated);
        assert_eq!(rt.version(), 1);
        assert_eq!(rt.metrics().comm_trips, 2);
    }

    #[test]
    fn unknown_participation_is_ignored() {
        let mut rt = runtime(TaskConfig::async_task("t", 8, 2));
        assert!(rt.offer_update(99, 1.0).is_none());
        assert!(rt.client_failed(99).is_none());
        assert_eq!(rt.metrics().comm_trips, 0);
    }

    #[test]
    fn sync_round_end_frees_stragglers() {
        let mut rt = runtime(TaskConfig::sync_task("t", 3, 0.5));
        // Goal is 3 / 1.5 = 2; the third client is a straggler.
        rt.begin_participation(0, 0, 10.0);
        rt.begin_participation(1, 1, 10.0);
        rt.begin_participation(2, 2, 100.0);
        rt.offer_update(0, 10.0).unwrap();
        let outcome = rt.offer_update(1, 11.0).unwrap();
        assert!(outcome.round_ended && outcome.server_updated);
        assert_eq!(
            outcome.freed,
            vec![FreedClient {
                participation_id: 2,
                client_id: 2
            }]
        );
        assert_eq!(rt.round_number(), 1);
        assert_eq!(rt.metrics().aborted_by_round_end, 1);
        // The straggler's late report is silently ignored.
        assert!(rt.offer_update(2, 100.0).is_none());
    }

    #[test]
    fn failed_client_is_freed_and_counted() {
        let mut rt = runtime(TaskConfig::async_task("t", 8, 4));
        rt.begin_participation(7, 3, 5.0);
        assert_eq!(rt.client_failed(7), Some(3));
        assert_eq!(rt.metrics().failed_participations, 1);
        assert_eq!(rt.active(), 0);
    }

    #[test]
    fn drop_buffered_updates_loses_progress() {
        let mut rt = runtime(TaskConfig::async_task("t", 8, 3));
        rt.begin_participation(0, 0, 1.0);
        rt.begin_participation(1, 1, 1.0);
        rt.offer_update(0, 1.0).unwrap();
        rt.offer_update(1, 1.0).unwrap();
        assert_eq!(rt.drop_buffered_updates(), 2);
        assert_eq!(rt.metrics().lost_buffered_updates, 2);
        // The next goal needs a full buffer again.
        rt.begin_participation(2, 2, 1.0);
        rt.begin_participation(3, 3, 1.0);
        rt.offer_update(2, 2.0).unwrap();
        let outcome = rt.offer_update(3, 2.0).unwrap();
        assert!(!outcome.server_updated, "buffer was reset, goal is 3");
        assert_eq!(rt.version(), 0);
    }

    #[test]
    fn abort_all_in_flight_frees_everyone() {
        let mut rt = runtime(TaskConfig::async_task("t", 8, 3));
        rt.begin_participation(0, 4, 1.0);
        rt.begin_participation(1, 9, 1.0);
        let freed = rt.abort_all_in_flight();
        assert_eq!(freed.len(), 2);
        assert_eq!(freed[0].participation_id, 0);
        assert_eq!(rt.active(), 0);
        assert_eq!(rt.metrics().failed_participations, 2);
    }

    #[test]
    fn evaluate_tracks_target() {
        let pop = Population::generate(&PopulationConfig::default().with_size(100), 5);
        let trainer = Arc::new(SurrogateObjective::new(&pop, SurrogateConfig::default(), 5));
        let initial = trainer.evaluate(&trainer.initial_parameters(), &[0, 1, 2]);
        let mut rt = TaskRuntime::new(
            TaskConfig::async_task("t", 4, 2),
            ServerOptimizerKind::FedAvg,
            trainer,
            vec![0, 1, 2],
            5,
            Some(initial * 2.0),
        );
        assert!(!rt.target_reached());
        let loss = rt.evaluate(3600.0);
        assert!((loss - initial).abs() < 1e-9);
        assert!(rt.target_reached());
        assert_eq!(rt.hours_to_target(), Some(1.0));
    }

    #[test]
    fn executor_backed_runtime_matches_sequential() {
        let drive = |executor: Option<Arc<crate::executor::Executor>>| {
            let mut rt = runtime(TaskConfig::async_task("t", 8, 3));
            rt.set_executor(executor);
            // A mix of prefetched finishes, an un-prefetched finish, a
            // failure, and a staleness-era release.
            for pid in 0..4u64 {
                rt.begin_participation(pid, pid as usize, 5.0);
            }
            rt.prefetch_training(0);
            rt.prefetch_training(1);
            rt.prefetch_training(3); // later fails; result discarded
            rt.client_failed(3);
            rt.offer_update(0, 10.0).unwrap();
            rt.offer_update(1, 11.0).unwrap();
            rt.offer_update(2, 12.0).unwrap(); // never prefetched
            (rt.version(), rt.metrics().comm_trips, rt.model_snapshot())
        };
        let sequential = drive(None);
        let parallel = drive(Some(Arc::new(crate::executor::Executor::new(2))));
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn secagg_config_flag_wraps_the_aggregator() {
        let mut clear = runtime(TaskConfig::async_task("t", 8, 2));
        assert!(!clear.is_secure());

        let mut rt = runtime(
            TaskConfig::async_task("t", 8, 2).with_secagg(papaya_core::SecAggMode::AsyncSecAgg),
        );
        assert!(rt.is_secure());
        rt.begin_participation(0, 0, 10.0);
        rt.begin_participation(1, 1, 10.0);
        rt.offer_update(0, 10.0).unwrap();
        let outcome = rt.offer_update(1, 11.0).unwrap();
        assert!(outcome.server_updated && outcome.tsa_key_released);
        assert_eq!(rt.version(), 1);

        // The clear runtime's releases carry no key-release marker.
        clear.begin_participation(0, 0, 10.0);
        clear.begin_participation(1, 1, 10.0);
        clear.offer_update(0, 10.0).unwrap();
        let clear_outcome = clear.offer_update(1, 11.0).unwrap();
        assert!(clear_outcome.server_updated && !clear_outcome.tsa_key_released);

        // The secure and clear models agree to fixed-point tolerance.
        let secure_params = rt.model_snapshot();
        let clear_params = clear.model_snapshot();
        let max_diff = secure_params
            .as_slice()
            .iter()
            .zip(clear_params.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 1e-3, "secure vs clear diverged: {max_diff}");

        let (metrics, ..) = rt.into_parts();
        assert_eq!(metrics.secure.masked_updates, 2);
        assert_eq!(metrics.secure.tsa_key_releases, 1);
        assert!(metrics.secure.tee_bytes_in > 0);
        assert_eq!(metrics.secure.quantization_error_trace.len(), 1);
    }

    #[test]
    fn secure_drop_buffered_updates_has_no_key_release() {
        let mut rt = runtime(
            TaskConfig::async_task("t", 8, 3).with_secagg(papaya_core::SecAggMode::AsyncSecAgg),
        );
        rt.begin_participation(0, 0, 1.0);
        rt.begin_participation(1, 1, 1.0);
        rt.offer_update(0, 1.0).unwrap();
        rt.offer_update(1, 1.0).unwrap();
        assert_eq!(rt.drop_buffered_updates(), 2);
        let (metrics, ..) = rt.into_parts();
        assert_eq!(metrics.secure.buffers_dropped_unreleased, 1);
        assert_eq!(metrics.secure.tsa_key_releases, 0);
        assert_eq!(metrics.lost_buffered_updates, 2);
    }

    #[test]
    fn dp_config_flag_wraps_the_aggregator() {
        let clear = runtime(TaskConfig::async_task("t", 8, 2));
        assert!(!clear.is_dp());
        assert!(!clear.privacy_budget_exhausted());

        let mut rt = runtime(
            TaskConfig::async_task("t", 8, 2)
                .with_dp(papaya_core::DpConfig::new(50.0, 1.0).with_epsilon_budget(1e6)),
        );
        assert!(rt.is_dp());
        assert!(!rt.is_secure());
        rt.begin_participation(0, 0, 10.0);
        rt.begin_participation(1, 1, 10.0);
        rt.offer_update(0, 10.0).unwrap();
        let outcome = rt.offer_update(1, 11.0).unwrap();
        assert!(outcome.server_updated && outcome.dp_released);
        assert!(!outcome.tsa_key_released);
        assert!(!rt.privacy_budget_exhausted(), "budget of 1e6 is generous");
        let (metrics, ..) = rt.into_parts();
        assert_eq!(metrics.dp.releases, 1);
        assert_eq!(metrics.dp.accepted_updates, 2);
        assert_eq!(metrics.dp.release_trace.len(), 1);
        assert!(metrics.dp.cumulative_epsilon > 0.0);
    }

    #[test]
    fn dp_stacks_over_secagg_in_the_runtime() {
        let mut rt = runtime(
            TaskConfig::async_task("t", 8, 2)
                .with_secagg(papaya_core::SecAggMode::AsyncSecAgg)
                .with_dp(papaya_core::DpConfig::new(50.0, 0.0)),
        );
        assert!(rt.is_dp() && rt.is_secure());
        rt.begin_participation(0, 0, 10.0);
        rt.begin_participation(1, 1, 10.0);
        rt.offer_update(0, 10.0).unwrap();
        let outcome = rt.offer_update(1, 11.0).unwrap();
        assert!(outcome.server_updated && outcome.dp_released && outcome.tsa_key_released);
        let (metrics, ..) = rt.into_parts();
        assert_eq!(metrics.dp.releases, 1);
        assert_eq!(metrics.secure.tsa_key_releases, 1);
        assert_eq!(metrics.secure.masked_updates, 2);
    }

    #[test]
    fn robust_config_flag_wraps_the_aggregator() {
        let mut clear = runtime(TaskConfig::async_task("t", 8, 2));
        assert!(!clear.is_robust());

        let mut rt = runtime(
            TaskConfig::async_task("t", 8, 2).with_robust(papaya_core::RobustConfig::neutral()),
        );
        assert!(rt.is_robust() && !rt.is_dp() && !rt.is_secure());
        for (pid, cid) in [(0u64, 0usize), (1, 1)] {
            rt.begin_participation(pid, cid, 10.0);
            clear.begin_participation(pid, cid, 10.0);
        }
        rt.offer_update(0, 10.0).unwrap();
        clear.offer_update(0, 10.0).unwrap();
        let outcome = rt.offer_update(1, 11.0).unwrap();
        let clear_outcome = clear.offer_update(1, 11.0).unwrap();
        // A neutral pass-through release records no telemetry, so no
        // RobustRelease event is warranted — the wrapped run's event
        // stream stays identical to the clear run's.
        assert!(outcome.server_updated && !outcome.robust_released);
        assert!(clear_outcome.server_updated && !clear_outcome.robust_released);

        // The neutral defense is a pure pass-through: bit-identical model.
        assert_eq!(
            rt.model_snapshot().as_slice(),
            clear.model_snapshot().as_slice()
        );
        let (metrics, ..) = rt.into_parts();
        assert_eq!(metrics.robust.rejected_total(), 0);
        assert_eq!(metrics.robust.estimator_releases, 0);
        assert_eq!(metrics.attacked_updates, 0);
    }

    #[test]
    fn norm_filter_rejects_a_scaled_attacker() {
        let mut rt = runtime(
            TaskConfig::async_task("t", 8, 2)
                .with_robust(papaya_core::RobustConfig::new(
                    papaya_core::RobustDefense::NormFilter { max_norm: 10.0 },
                ))
                .with_adversary(papaya_core::AdversarySpec::new(
                    1.0,
                    papaya_core::Malice::Scaled { factor: 1e6 },
                )),
        );
        rt.begin_participation(0, 0, 10.0);
        rt.begin_participation(1, 1, 10.0);
        let first = rt.offer_update(0, 10.0).unwrap();
        let second = rt.offer_update(1, 11.0).unwrap();
        assert!(!first.accepted && !second.accepted);
        assert_eq!(rt.version(), 0, "every poisoned update was filtered");
        assert_eq!(rt.metrics().rejected_by_defense_updates, 2);
        assert_eq!(rt.metrics().attacked_updates, 2);
        assert_eq!(rt.metrics().attacks_by_label.get("scaled"), Some(&2));
        let (metrics, ..) = rt.into_parts();
        assert_eq!(metrics.robust.rejected_by_norm, 2);
    }

    #[test]
    fn staleness_liar_claims_fresh_metadata() {
        let mut rt = runtime(TaskConfig::async_task("t", 8, 2).with_adversary(
            papaya_core::AdversarySpec::new(1.0, papaya_core::Malice::StalenessLiar),
        ));
        rt.begin_participation(0, 0, 10.0);
        rt.begin_participation(1, 1, 10.0);
        rt.begin_participation(2, 2, 10.0);
        rt.offer_update(0, 10.0).unwrap();
        rt.offer_update(1, 11.0).unwrap();
        assert_eq!(rt.version(), 1);
        // Participation 2 started at version 0 and uploads at version 1 —
        // honest staleness 1, but the liar claims to be fresh.
        let outcome = rt.offer_update(2, 12.0).unwrap();
        assert!(outcome.accepted);
        assert_eq!(rt.metrics().staleness_sum, 0, "the lie zeroed staleness");
        assert_eq!(
            rt.metrics().attacks_by_label.get("staleness-liar"),
            Some(&3)
        );
    }

    #[test]
    fn secagg_deviation_is_armed_from_the_task_config() {
        let mut rt = runtime(
            TaskConfig::async_task("t", 8, 2)
                .with_secagg(papaya_core::SecAggMode::AsyncSecAgg)
                .with_adversary(papaya_core::AdversarySpec::new(
                    1.0,
                    papaya_core::Malice::SecAggDeviation {
                        kind: papaya_core::DeviationKind::WrongCounter,
                    },
                )),
        );
        rt.begin_participation(0, 0, 10.0);
        rt.begin_participation(1, 1, 10.0);
        rt.offer_update(0, 10.0).unwrap();
        let outcome = rt.offer_update(1, 11.0).unwrap();
        assert!(outcome.server_updated, "deviation never panics the release");
        let (metrics, ..) = rt.into_parts();
        assert_eq!(
            metrics.secure.out_of_range_releases, 1,
            "the wrong-counter upload corrupted the decode and was flagged"
        );
        assert_eq!(
            metrics.attacks_by_label.get("secagg-wrong-counter"),
            Some(&2)
        );
    }

    #[test]
    fn poll_is_a_noop_for_count_based_strategies() {
        let mut rt = runtime(TaskConfig::async_task("t", 8, 3));
        rt.begin_participation(0, 0, 1.0);
        rt.offer_update(0, 1.0).unwrap();
        assert!(rt.poll(1e9).is_none());
        assert_eq!(rt.version(), 0);
    }

    #[test]
    fn poll_releases_a_timed_hybrid_buffer_on_deadline() {
        let mut rt = runtime(TaskConfig::timed_hybrid_task("t", 8, 100, 60.0));
        rt.begin_participation(0, 0, 1.0);
        rt.begin_participation(1, 1, 1.0);
        rt.offer_update(0, 10.0).unwrap();
        rt.offer_update(1, 20.0).unwrap();
        // Goal of 100 is nowhere near met; before the deadline nothing moves.
        assert!(rt.poll(50.0).is_none());
        assert_eq!(rt.version(), 0);
        // 60 s after the buffer opened, poll force-releases it.
        let outcome = rt.poll(70.0).expect("deadline release");
        assert!(outcome.server_updated && !outcome.round_ended);
        assert_eq!(rt.version(), 1);
        assert_eq!(rt.metrics().server_updates, 1);
        // The buffer restarts empty.
        assert!(rt.poll(71.0).is_none());
    }

    #[test]
    fn hybrid_runtime_rejects_overly_stale_uploads() {
        let mut rt =
            runtime(TaskConfig::timed_hybrid_task("t", 8, 1, 1000.0).with_max_staleness(0));
        // Client 0 downloads at version 0; two releases later its upload is
        // staler than the bound and must be rejected.
        rt.begin_participation(0, 0, 1.0);
        rt.begin_participation(1, 1, 1.0);
        rt.begin_participation(2, 2, 1.0);
        rt.offer_update(1, 1.0).unwrap(); // goal 1 → release, version 1
        assert_eq!(rt.version(), 1);
        let outcome = rt.offer_update(0, 2.0);
        // Client 0 was aborted by the post-release staleness sweep (its
        // staleness exceeded the bound), or rejected on arrival.
        match outcome {
            None => {}
            Some(o) => assert!(!o.accepted),
        }
        assert!(
            rt.metrics().rejected_stale_updates + rt.metrics().failed_participations > 0,
            "stale client neither rejected nor aborted"
        );
    }
}
