//! The on-device client runtime (Section 4 "Client Runtime" and
//! Appendix E.5 "Edge Training Engine").
//!
//! The production client is both a hosting platform and an ML framework.
//! This module models the pieces that affect *whether and when* a device
//! participates in training:
//!
//! * [`EligibilityCriteria`] / [`DeviceConditions`] — a device may train only
//!   when idle, charging, and on an unmetered network (Section 7.1);
//! * [`ExampleStore`] — collects training examples in persistent storage and
//!   enforces the data-retention policy (old examples are purged) and a
//!   capacity bound;
//! * [`ParticipationHistory`] — tracks prior participations "to enable fair
//!   and unbiased client selection": a device declines to check in again
//!   before a minimum interval has passed and keeps a bounded log of its
//!   participations.

/// Instantaneous device conditions relevant to training eligibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceConditions {
    /// The user is not actively using the device.
    pub idle: bool,
    /// The device is connected to power.
    pub charging: bool,
    /// The device is on an unmetered (e.g. Wi-Fi) network.
    pub unmetered_network: bool,
    /// Battery level in percent (0–100).
    pub battery_percent: u8,
}

impl DeviceConditions {
    /// Conditions under which every criterion is satisfied.
    pub fn ideal() -> Self {
        DeviceConditions {
            idle: true,
            charging: true,
            unmetered_network: true,
            battery_percent: 100,
        }
    }
}

/// The eligibility policy a task imposes on devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EligibilityCriteria {
    /// Require the device to be idle.
    pub require_idle: bool,
    /// Require the device to be charging.
    pub require_charging: bool,
    /// Require an unmetered network.
    pub require_unmetered_network: bool,
    /// Minimum battery level in percent.
    pub min_battery_percent: u8,
}

impl Default for EligibilityCriteria {
    fn default() -> Self {
        // The paper's language-model task: idle, charging, unmetered.
        EligibilityCriteria {
            require_idle: true,
            require_charging: true,
            require_unmetered_network: true,
            min_battery_percent: 0,
        }
    }
}

impl EligibilityCriteria {
    /// Returns true when a device in the given conditions may participate.
    pub fn is_eligible(&self, conditions: &DeviceConditions) -> bool {
        (!self.require_idle || conditions.idle)
            && (!self.require_charging || conditions.charging)
            && (!self.require_unmetered_network || conditions.unmetered_network)
            && conditions.battery_percent >= self.min_battery_percent
    }
}

/// One training example held by the example store.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredExample {
    /// Token sequence (or any serialized features).
    pub tokens: Vec<usize>,
    /// Time the example was collected, in seconds since the epoch used by
    /// the simulation.
    pub collected_at_s: f64,
}

/// On-device example storage with a retention policy.
///
/// Examples older than `retention_s` are purged whenever the store is
/// touched, and the store never holds more than `capacity` examples (oldest
/// evicted first) — both behaviours of the production Example Store.
#[derive(Clone, Debug)]
pub struct ExampleStore {
    retention_s: f64,
    capacity: usize,
    examples: Vec<StoredExample>,
}

impl ExampleStore {
    /// Creates a store keeping at most `capacity` examples for at most
    /// `retention_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `retention_s` is not positive.
    pub fn new(capacity: usize, retention_s: f64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(retention_s > 0.0, "retention must be positive");
        ExampleStore {
            retention_s,
            capacity,
            examples: Vec::new(),
        }
    }

    /// Adds an example collected at `now_s`, evicting the oldest if full.
    pub fn add(&mut self, tokens: Vec<usize>, now_s: f64) {
        self.purge_expired(now_s);
        if self.examples.len() == self.capacity {
            self.examples.remove(0);
        }
        self.examples.push(StoredExample {
            tokens,
            collected_at_s: now_s,
        });
    }

    /// Removes examples older than the retention window.
    pub fn purge_expired(&mut self, now_s: f64) {
        let cutoff = now_s - self.retention_s;
        self.examples.retain(|e| e.collected_at_s >= cutoff);
    }

    /// Examples currently usable for training at time `now_s`.
    pub fn usable_examples(&mut self, now_s: f64) -> &[StoredExample] {
        self.purge_expired(now_s);
        &self.examples
    }

    /// Number of stored examples (without purging).
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Returns true when the store holds no examples.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Record of one past participation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParticipationRecord {
    /// Simulation time at which the participation started.
    pub started_at_s: f64,
    /// Whether the participation completed successfully (vs dropped out,
    /// timed out, or was aborted).
    pub completed: bool,
}

/// Tracks prior participation so the client can throttle its own check-ins
/// ("fair and unbiased client selection", Section 4).
#[derive(Clone, Debug)]
pub struct ParticipationHistory {
    min_interval_s: f64,
    max_records: usize,
    records: Vec<ParticipationRecord>,
}

impl ParticipationHistory {
    /// Creates a history that allows a new check-in only `min_interval_s`
    /// seconds after the previous participation started, and remembers at
    /// most `max_records` participations.
    ///
    /// # Panics
    ///
    /// Panics if `max_records == 0` or `min_interval_s` is negative.
    pub fn new(min_interval_s: f64, max_records: usize) -> Self {
        assert!(max_records > 0, "max_records must be positive");
        assert!(min_interval_s >= 0.0, "interval must be non-negative");
        ParticipationHistory {
            min_interval_s,
            max_records,
            records: Vec::new(),
        }
    }

    /// Whether the device may check in for training at time `now_s`.
    pub fn may_check_in(&self, now_s: f64) -> bool {
        match self.records.last() {
            Some(last) => now_s - last.started_at_s >= self.min_interval_s,
            None => true,
        }
    }

    /// Records a participation attempt.
    pub fn record(&mut self, started_at_s: f64, completed: bool) {
        if self.records.len() == self.max_records {
            self.records.remove(0);
        }
        self.records.push(ParticipationRecord {
            started_at_s,
            completed,
        });
    }

    /// Number of remembered participations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns true when the device has never participated.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Fraction of remembered participations that completed successfully
    /// (1.0 for a device that has never participated).
    pub fn completion_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.records.iter().filter(|r| r.completed).count() as f64 / self.records.len() as f64
    }
}

/// The client runtime: ties eligibility, the example store, and the
/// participation history together into the check-in decision.
#[derive(Clone, Debug)]
pub struct ClientRuntime {
    /// Eligibility policy for the task this runtime serves.
    pub criteria: EligibilityCriteria,
    /// Local example storage.
    pub example_store: ExampleStore,
    /// Prior participation tracking.
    pub history: ParticipationHistory,
    /// Minimum number of usable examples required to train at all.
    pub min_examples: usize,
}

impl ClientRuntime {
    /// Creates a runtime with the given policy components.
    pub fn new(
        criteria: EligibilityCriteria,
        example_store: ExampleStore,
        history: ParticipationHistory,
        min_examples: usize,
    ) -> Self {
        ClientRuntime {
            criteria,
            example_store,
            history,
            min_examples,
        }
    }

    /// The full check-in decision: eligible conditions, enough fresh data,
    /// and not throttled by recent participation.
    pub fn should_check_in(&mut self, conditions: &DeviceConditions, now_s: f64) -> bool {
        self.criteria.is_eligible(conditions)
            && self.history.may_check_in(now_s)
            && self.example_store.usable_examples(now_s).len() >= self.min_examples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eligibility_requires_all_configured_conditions() {
        let criteria = EligibilityCriteria::default();
        assert!(criteria.is_eligible(&DeviceConditions::ideal()));
        for broken in [
            DeviceConditions {
                idle: false,
                ..DeviceConditions::ideal()
            },
            DeviceConditions {
                charging: false,
                ..DeviceConditions::ideal()
            },
            DeviceConditions {
                unmetered_network: false,
                ..DeviceConditions::ideal()
            },
        ] {
            assert!(!criteria.is_eligible(&broken), "{broken:?}");
        }
    }

    #[test]
    fn relaxed_criteria_ignore_conditions() {
        let criteria = EligibilityCriteria {
            require_idle: false,
            require_charging: false,
            require_unmetered_network: false,
            min_battery_percent: 30,
        };
        let conditions = DeviceConditions {
            idle: false,
            charging: false,
            unmetered_network: false,
            battery_percent: 50,
        };
        assert!(criteria.is_eligible(&conditions));
        assert!(!criteria.is_eligible(&DeviceConditions {
            battery_percent: 20,
            ..conditions
        }));
    }

    #[test]
    fn example_store_enforces_capacity() {
        let mut store = ExampleStore::new(3, 1_000.0);
        for i in 0..5usize {
            store.add(vec![i], i as f64);
        }
        assert_eq!(store.len(), 3);
        // Oldest were evicted first.
        assert_eq!(store.usable_examples(4.0)[0].tokens, vec![2]);
    }

    #[test]
    fn example_store_enforces_retention() {
        let mut store = ExampleStore::new(100, 10.0);
        store.add(vec![1], 0.0);
        store.add(vec![2], 5.0);
        store.add(vec![3], 12.0);
        // At t=14, the example from t=0 is expired (older than 10 s).
        let usable = store.usable_examples(14.0);
        assert_eq!(usable.len(), 2);
        assert!(usable.iter().all(|e| e.tokens != vec![1]));
        // At t=30 everything is expired.
        assert!(store.usable_examples(30.0).is_empty());
        assert!(store.is_empty());
    }

    #[test]
    fn participation_history_throttles_check_ins() {
        let mut history = ParticipationHistory::new(3_600.0, 10);
        assert!(history.may_check_in(0.0));
        history.record(0.0, true);
        assert!(!history.may_check_in(1_800.0));
        assert!(history.may_check_in(3_600.0));
    }

    #[test]
    fn participation_history_bounds_records_and_tracks_completion() {
        let mut history = ParticipationHistory::new(0.0, 3);
        assert_eq!(history.completion_rate(), 1.0);
        history.record(0.0, true);
        history.record(1.0, false);
        history.record(2.0, true);
        history.record(3.0, true); // evicts the first record
        assert_eq!(history.len(), 3);
        assert!((history.completion_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn runtime_combines_all_gates() {
        let mut runtime = ClientRuntime::new(
            EligibilityCriteria::default(),
            ExampleStore::new(10, 1_000.0),
            ParticipationHistory::new(100.0, 5),
            2,
        );
        let ideal = DeviceConditions::ideal();
        // No data yet.
        assert!(!runtime.should_check_in(&ideal, 0.0));
        runtime.example_store.add(vec![1, 2, 3], 0.0);
        runtime.example_store.add(vec![4, 5], 1.0);
        assert!(runtime.should_check_in(&ideal, 1.0));
        // Not eligible while the user is active.
        assert!(!runtime.should_check_in(
            &DeviceConditions {
                idle: false,
                ..ideal
            },
            1.0
        ));
        // Throttled right after a participation.
        runtime.history.record(1.0, true);
        assert!(!runtime.should_check_in(&ideal, 50.0));
        assert!(runtime.should_check_in(&ideal, 150.0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_store_rejected() {
        let _ = ExampleStore::new(0, 1.0);
    }
}
