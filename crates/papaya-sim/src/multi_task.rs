//! The multi-tenant simulation: many federated tasks over one shared
//! device population (Sections 4, 6.2–6.3, Appendix E.4).
//!
//! [`MultiTaskSimulation`] wires the control plane of [`crate::cluster`]
//! into the training dynamics of [`crate::task_runtime`]:
//!
//! * the **Coordinator** places each task's [`TaskRuntime`] on one of M
//!   persistent Aggregators, balancing estimated workload, and pools client
//!   demand reported by the runtimes (with unconfirmed-assignment
//!   accounting);
//! * devices check in from one shared [`Population`]; their capability tier
//!   (derived from compute speed) restricts which tasks they are eligible
//!   for, and the Coordinator assigns each check-in to a random eligible
//!   task with positive effective demand;
//! * **Selectors** route the resulting participation to the task's
//!   Aggregator from a cached assignment map; a Selector whose map sequence
//!   is behind the Coordinator's refuses to route until its periodic
//!   refresh (the client simply retries later);
//! * **Aggregator failures** can be injected at any virtual time: the dead
//!   process stops heartbeating, its tasks' buffered updates are lost,
//!   in-flight uploads addressed to it are dropped in transit, and once the
//!   Coordinator misses enough heartbeats it reassigns the orphaned tasks —
//!   after which training resumes on the surviving Aggregators.
//!
//! The run produces a per-task [`TaskSummary`] (loss trajectory, rates,
//! staleness, lost updates) and a cross-task [`FleetSummary`] with the
//! control-plane counters (failures, reassignments, stale-route refusals).

use crate::cluster::{AggregatorId, Coordinator, RouteOutcome, Selector, TaskSpec};
use crate::events::{EventKind, EventQueue, SimTime};
use crate::metrics::{ControlPlaneStats, FleetSummary, MetricsCollector, TaskSummary};
use crate::sampling::SamplingPool;
use crate::task_runtime::{ServerOptimizerKind, TaskRuntime};
use papaya_core::client::ClientTrainer;
use papaya_core::config::TaskConfig;
use papaya_core::surrogate::{SurrogateConfig, SurrogateObjective};
use papaya_data::population::{DeviceProfile, Population};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// An Aggregator failure injected at a fixed virtual time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InjectedCrash {
    /// When the Aggregator dies, in virtual seconds.
    pub time_s: f64,
    /// Which Aggregator dies.
    pub aggregator: AggregatorId,
}

/// Configuration of a multi-tenant run.
#[derive(Clone, Debug)]
pub struct MultiTaskConfig {
    /// The fleet's tasks.  Each entry becomes one [`TaskRuntime`].
    pub tasks: Vec<TaskConfig>,
    /// Number of persistent Aggregator processes.
    pub num_aggregators: usize,
    /// Number of Selector processes routing client requests.
    pub num_selectors: usize,
    /// Hard stop on virtual time, in seconds.
    pub max_virtual_time_s: f64,
    /// Virtual seconds between per-task evaluations.
    pub eval_interval_s: f64,
    /// Number of clients sampled (once, per task) for evaluation.
    pub eval_sample_size: usize,
    /// Delay between a client being assigned and starting to train.
    pub selection_latency_s: f64,
    /// Interval of the control-plane sweep (heartbeats, failure detection,
    /// demand pooling, client assignment).
    pub control_plane_interval_s: f64,
    /// Interval at which Selectors refresh their assignment maps.
    pub selector_refresh_interval_s: f64,
    /// Heartbeat silence after which the Coordinator declares an Aggregator
    /// failed; must exceed `control_plane_interval_s`.
    pub heartbeat_timeout_s: f64,
    /// Server optimizer applied to every task's aggregated deltas.
    pub server_optimizer: ServerOptimizerKind,
    /// RNG seed controlling selection, assignment, and training noise.
    pub seed: u64,
    /// Aggregator failures to inject.
    pub crashes: Vec<InjectedCrash>,
}

impl MultiTaskConfig {
    /// Creates a configuration with sensible defaults for the given tasks.
    pub fn new(tasks: Vec<TaskConfig>) -> Self {
        MultiTaskConfig {
            tasks,
            num_aggregators: 2,
            num_selectors: 2,
            max_virtual_time_s: 2.0 * 3600.0,
            eval_interval_s: 300.0,
            eval_sample_size: 200,
            selection_latency_s: 2.0,
            control_plane_interval_s: 10.0,
            selector_refresh_interval_s: 45.0,
            heartbeat_timeout_s: 25.0,
            server_optimizer: ServerOptimizerKind::FedAvg,
            seed: 0,
            crashes: Vec::new(),
        }
    }

    /// Sets the number of Aggregators.
    pub fn with_aggregators(mut self, n: usize) -> Self {
        self.num_aggregators = n;
        self
    }

    /// Sets the number of Selectors.
    pub fn with_selectors(mut self, n: usize) -> Self {
        self.num_selectors = n;
        self
    }

    /// Sets the virtual-time budget in hours.
    pub fn with_max_virtual_time_hours(mut self, hours: f64) -> Self {
        self.max_virtual_time_s = hours * 3600.0;
        self
    }

    /// Sets the evaluation interval in virtual seconds.
    pub fn with_eval_interval_s(mut self, interval: f64) -> Self {
        self.eval_interval_s = interval;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Injects an Aggregator crash at the given virtual time.
    pub fn with_crash(mut self, time_s: f64, aggregator: AggregatorId) -> Self {
        self.crashes.push(InjectedCrash { time_s, aggregator });
        self
    }

    /// Sets the server optimizer used by every task.
    pub fn with_server_optimizer(mut self, kind: ServerOptimizerKind) -> Self {
        self.server_optimizer = kind;
        self
    }
}

/// Capability tier a device reports at check-in, derived from its compute
/// speed: the fastest devices (tier 2) can train any task, median devices
/// (tier 1) mid-size tasks, and slow devices (tier 0) only unrestricted
/// tasks.
pub fn capability_tier(device: &DeviceProfile) -> u8 {
    if device.speed_factor >= 1.25 {
        2
    } else if device.speed_factor >= 0.75 {
        1
    } else {
        0
    }
}

/// The outcome of a multi-tenant run.
#[derive(Clone, Debug)]
pub struct MultiTaskResult {
    /// Total virtual hours simulated.
    pub virtual_hours: f64,
    /// Per-task end-of-run reports, in task order.
    pub tasks: Vec<TaskSummary>,
    /// Per-task raw metric traces, in task order.
    pub metrics: Vec<MetricsCollector>,
    /// Cross-task roll-up including control-plane counters.
    pub fleet: FleetSummary,
}

/// A multi-tenant simulation over one shared device population.
pub struct MultiTaskSimulation {
    config: MultiTaskConfig,
    population: Population,
    trainers: Vec<Arc<dyn ClientTrainer>>,
}

impl MultiTaskSimulation {
    /// Creates a simulation with one trainer per task.
    ///
    /// # Panics
    ///
    /// Panics if the population is empty, no tasks or Aggregators are
    /// configured, or the trainer count does not match the task count.
    pub fn new(
        config: MultiTaskConfig,
        population: Population,
        trainers: Vec<Arc<dyn ClientTrainer>>,
    ) -> Self {
        assert!(!population.is_empty(), "population must not be empty");
        assert!(!config.tasks.is_empty(), "at least one task is required");
        assert!(
            config.num_aggregators > 0,
            "at least one aggregator is required"
        );
        assert!(
            config.num_selectors > 0,
            "at least one selector is required"
        );
        assert_eq!(
            config.tasks.len(),
            trainers.len(),
            "one trainer per task is required"
        );
        assert!(
            config.heartbeat_timeout_s > config.control_plane_interval_s,
            "heartbeat timeout must exceed the control-plane interval"
        );
        MultiTaskSimulation {
            config,
            population,
            trainers,
        }
    }

    /// Convenience constructor: every task trains its own surrogate
    /// objective over the shared population (seeded per task, so tasks are
    /// distinct learning problems).
    pub fn with_surrogate_trainers(config: MultiTaskConfig, population: Population) -> Self {
        let trainers: Vec<Arc<dyn ClientTrainer>> = (0..config.tasks.len())
            .map(|task_id| {
                // Salt with task_id + 1 so task 0's stream is decorrelated
                // from the driver RNG (and the population generator) too.
                Arc::new(SurrogateObjective::new(
                    &population,
                    SurrogateConfig::default(),
                    config.seed ^ (task_id as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15),
                )) as Arc<dyn ClientTrainer>
            })
            .collect();
        Self::new(config, population, trainers)
    }

    /// Runs the simulation to completion and returns per-task and fleet
    /// results.
    pub fn run(&self) -> MultiTaskResult {
        MultiState::new(&self.config, &self.population, &self.trainers).run()
    }
}

struct MultiState<'a> {
    config: &'a MultiTaskConfig,
    population: &'a Population,
    rng: StdRng,
    queue: EventQueue,
    runtimes: Vec<TaskRuntime>,
    coordinator: Coordinator,
    selectors: Vec<Selector>,
    selector_cursor: usize,
    crashed: HashSet<AggregatorId>,
    pool: SamplingPool,
    tiers: Vec<u8>,
    /// Aggregator each in-flight participation will upload to (the route
    /// the client received at selection time).
    upload_route: HashMap<u64, AggregatorId>,
    next_participation_id: u64,
    reassignments: Vec<u64>,
    stats: ControlPlaneStats,
    now: SimTime,
}

impl<'a> MultiState<'a> {
    fn new(
        config: &'a MultiTaskConfig,
        population: &'a Population,
        trainers: &[Arc<dyn ClientTrainer>],
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut coordinator = Coordinator::new(config.heartbeat_timeout_s, config.seed ^ 0xC0FFEE);
        for id in 0..config.num_aggregators {
            coordinator.register_aggregator(id, 0.0);
        }
        let mut runtimes = Vec::with_capacity(config.tasks.len());
        for (task_id, task) in config.tasks.iter().enumerate() {
            coordinator.submit_task(TaskSpec::from_task_config(task_id, task));
            let eval_ids =
                crate::engine::sample_eval_ids(&mut rng, population.len(), config.eval_sample_size);
            runtimes.push(TaskRuntime::new(
                task.clone(),
                config.server_optimizer,
                Arc::clone(&trainers[task_id]),
                eval_ids,
                config.seed ^ ((task_id as u64 + 1) << 32),
                None,
            ));
        }
        let mut selectors = vec![Selector::new(); config.num_selectors];
        for selector in &mut selectors {
            selector.refresh(&coordinator);
        }
        let tiers = population.iter().map(capability_tier).collect();
        MultiState {
            config,
            population,
            rng,
            queue: EventQueue::new(),
            runtimes,
            coordinator,
            selectors,
            selector_cursor: 0,
            crashed: HashSet::new(),
            pool: SamplingPool::new(population.len()),
            tiers,
            upload_route: HashMap::new(),
            next_participation_id: 0,
            reassignments: vec![0; config.tasks.len()],
            stats: ControlPlaneStats::default(),
            now: 0.0,
        }
    }

    fn run(mut self) -> MultiTaskResult {
        self.queue.schedule(0.0, EventKind::ControlPlaneTick);
        self.queue.schedule(
            self.config.selector_refresh_interval_s,
            EventKind::RefreshSelectors,
        );
        for task in 0..self.runtimes.len() {
            self.queue.schedule(0.0, EventKind::EvaluateTask { task });
        }
        for crash in &self.config.crashes {
            self.queue.schedule(
                crash.time_s,
                EventKind::AggregatorCrash {
                    aggregator: crash.aggregator,
                },
            );
        }

        while let Some(event) = self.queue.pop() {
            if event.time > self.config.max_virtual_time_s {
                self.now = self.config.max_virtual_time_s;
                break;
            }
            self.now = event.time;
            match event.kind {
                EventKind::ControlPlaneTick => self.control_plane_tick(),
                EventKind::RefreshSelectors => self.refresh_selectors(),
                EventKind::AggregatorCrash { aggregator } => {
                    if self.crashed.insert(aggregator) {
                        self.stats.aggregator_failures += 1;
                    }
                }
                EventKind::TaskClientFinished {
                    task,
                    client_id,
                    participation_id,
                } => self.handle_client_finished(task, client_id, participation_id),
                EventKind::TaskClientFailed {
                    task,
                    client_id: _,
                    participation_id,
                } => {
                    self.upload_route.remove(&participation_id);
                    if let Some(freed) = self.runtimes[task].client_failed(participation_id) {
                        self.pool.release(freed);
                    }
                }
                EventKind::EvaluateTask { task } => {
                    self.runtimes[task].evaluate(self.now);
                    self.queue.schedule(
                        self.now + self.config.eval_interval_s,
                        EventKind::EvaluateTask { task },
                    );
                }
                _ => unreachable!("multi-task simulation schedules no single-task events"),
            }
        }

        // Final evaluation so every task's final loss reflects its last model.
        for runtime in &mut self.runtimes {
            runtime.evaluate(self.now);
        }
        self.stats.final_map_sequence = self.coordinator.sequence();

        let virtual_hours = self.now / 3600.0;
        let mut summaries = Vec::with_capacity(self.runtimes.len());
        let mut collectors = Vec::with_capacity(self.runtimes.len());
        for (task_id, runtime) in self.runtimes.into_iter().enumerate() {
            let name = runtime.config().name.clone();
            let (metrics, _params, _version, final_loss, _target) = runtime.into_parts();
            let initial_loss = metrics
                .loss_curve
                .first()
                .map(|&(_, loss)| loss)
                .unwrap_or(f64::INFINITY);
            summaries.push(TaskSummary {
                task_id,
                name,
                initial_loss,
                final_loss,
                reassignments: self.reassignments[task_id],
                lost_buffered_updates: metrics.lost_buffered_updates,
                summary: metrics.summarize(self.now),
            });
            collectors.push(metrics);
        }
        let fleet = FleetSummary::roll_up(virtual_hours, &summaries, &collectors, self.stats);
        MultiTaskResult {
            virtual_hours,
            tasks: summaries,
            metrics: collectors,
            fleet,
        }
    }

    /// One control-plane sweep: heartbeats, failure detection and task
    /// reassignment, demand pooling, and client assignment.
    fn control_plane_tick(&mut self) {
        // Live Aggregators heartbeat; crashed ones stay silent.
        for id in 0..self.config.num_aggregators {
            if !self.crashed.contains(&id) {
                self.coordinator.heartbeat(id, self.now);
            }
        }

        // Failure detection: orphaned tasks lose their buffered updates and
        // move to a surviving Aggregator.
        let reassigned = self.coordinator.detect_failures(self.now);
        for task in reassigned {
            self.runtimes[task].drop_buffered_updates();
            self.reassignments[task] += 1;
            self.stats.task_reassignments += 1;
        }

        // Demand pooling: every runtime reports its current client demand.
        for (task_id, runtime) in self.runtimes.iter().enumerate() {
            self.coordinator.report_demand(task_id, runtime.demand());
        }

        // Client assignment: idle devices check in and are assigned to
        // eligible tasks until demand is met (or no check-in succeeds).
        let total_demand: usize = (0..self.runtimes.len())
            .map(|task| self.coordinator.effective_demand(task))
            .sum();
        let mut assigned = 0;
        let mut turned_away = Vec::new();
        let max_checkins = 4 * total_demand + 8;
        for _ in 0..max_checkins {
            if assigned >= total_demand {
                break;
            }
            let client_id = match self.pool.acquire_random(&mut self.rng) {
                Some(id) => id,
                None => break, // every device is already participating
            };
            match self.coordinator.assign_client(self.tiers[client_id]) {
                Some((task, aggregator)) => {
                    if self.route_and_start(task, aggregator, client_id) {
                        assigned += 1;
                    } else {
                        turned_away.push(client_id);
                    }
                }
                None => turned_away.push(client_id), // no eligible task now
            }
        }
        for client_id in turned_away {
            self.pool.release(client_id);
        }

        for runtime in &mut self.runtimes {
            runtime.record_utilization(self.now);
        }
        self.queue.schedule(
            self.now + self.config.control_plane_interval_s,
            EventKind::ControlPlaneTick,
        );
    }

    /// Routes an assigned client through the next Selector and, if routing
    /// succeeds, starts the participation.  Returns false when the client
    /// must retry later (stale Selector map or dead Aggregator).
    fn route_and_start(&mut self, task: usize, aggregator: AggregatorId, client_id: usize) -> bool {
        let selector_index = self.selector_cursor % self.selectors.len();
        self.selector_cursor += 1;
        let selector = &self.selectors[selector_index];

        // A Selector whose map sequence is behind the Coordinator's refuses
        // to route and asks the client to retry while it refreshes.
        if selector.is_stale(&self.coordinator) {
            self.stats.stale_route_refusals += 1;
            return false;
        }
        match selector.route(task) {
            RouteOutcome::StaleMap => {
                self.stats.stale_route_refusals += 1;
                return false;
            }
            RouteOutcome::Routed(routed) => {
                // The connection to a dead Aggregator fails outright; the
                // client retries at a later check-in.
                if self.crashed.contains(&routed) || routed != aggregator {
                    return false;
                }
            }
        }

        let device = self.population.device(client_id);
        let participation_id = self.next_participation_id;
        self.next_participation_id += 1;

        let timeout = self.runtimes[task].config().client_timeout_s;
        let start = self.now + self.config.selection_latency_s;
        let drops_out = self.rng.gen::<f64>() < device.dropout_prob;
        let exceeds_timeout = device.exceeds_timeout(timeout);
        let execution_time = device.clamped_execution_time(timeout);

        self.runtimes[task].begin_participation(participation_id, client_id, execution_time);
        self.upload_route.insert(participation_id, aggregator);

        if drops_out {
            let fraction: f64 = self.rng.gen_range(0.05..0.95);
            self.queue.schedule(
                start + fraction * execution_time,
                EventKind::TaskClientFailed {
                    task,
                    client_id,
                    participation_id,
                },
            );
        } else if exceeds_timeout {
            self.queue.schedule(
                start + timeout,
                EventKind::TaskClientFailed {
                    task,
                    client_id,
                    participation_id,
                },
            );
        } else {
            self.queue.schedule(
                start + execution_time,
                EventKind::TaskClientFinished {
                    task,
                    client_id,
                    participation_id,
                },
            );
        }
        true
    }

    fn refresh_selectors(&mut self) {
        for selector in &mut self.selectors {
            if selector.is_stale(&self.coordinator) {
                selector.refresh(&self.coordinator);
            }
        }
        self.queue.schedule(
            self.now + self.config.selector_refresh_interval_s,
            EventKind::RefreshSelectors,
        );
    }

    fn handle_client_finished(&mut self, task: usize, client_id: usize, participation_id: u64) {
        let destination = self.upload_route.remove(&participation_id);
        // An upload addressed to a dead Aggregator is lost in transit; the
        // participation failed from the task's point of view.
        if destination
            .map(|agg| self.crashed.contains(&agg))
            .unwrap_or(false)
        {
            self.stats.lost_in_transit_updates += 1;
            if let Some(freed) = self.runtimes[task].client_failed(participation_id) {
                self.pool.release(freed);
            }
            return;
        }
        let outcome = match self.runtimes[task].offer_update(participation_id, self.now) {
            Some(outcome) => outcome,
            None => return, // aborted earlier (round end, staleness, failover)
        };
        self.pool.release(client_id);
        for freed in &outcome.freed {
            self.pool.release(freed.client_id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papaya_data::population::PopulationConfig;

    fn population(n: usize) -> Population {
        Population::generate(&PopulationConfig::default().with_size(n), 23)
    }

    fn four_tasks() -> Vec<TaskConfig> {
        vec![
            TaskConfig::async_task("kbd-lm", 64, 16),
            TaskConfig::async_task("kws", 32, 8).with_min_capability_tier(1),
            TaskConfig::sync_task("ranker", 40, 0.3),
            TaskConfig::async_task("asr", 24, 8).with_min_capability_tier(2),
        ]
    }

    #[test]
    fn all_tasks_train_concurrently_over_shared_population() {
        let config = MultiTaskConfig::new(four_tasks())
            .with_aggregators(3)
            .with_max_virtual_time_hours(2.0)
            .with_eval_interval_s(600.0)
            .with_seed(7);
        let sim = MultiTaskSimulation::with_surrogate_trainers(config, population(2000));
        let result = sim.run();
        assert_eq!(result.tasks.len(), 4);
        for task in &result.tasks {
            assert!(
                task.summary.comm_trips > 0,
                "task {} received no updates",
                task.name
            );
            assert!(
                task.final_loss < task.initial_loss,
                "task {} did not improve: {} -> {}",
                task.name,
                task.initial_loss,
                task.final_loss
            );
        }
        assert_eq!(
            result.fleet.total_comm_trips,
            result
                .tasks
                .iter()
                .map(|t| t.summary.comm_trips)
                .sum::<u64>()
        );
        assert_eq!(result.fleet.control_plane.aggregator_failures, 0);
        assert_eq!(result.fleet.control_plane.task_reassignments, 0);
    }

    #[test]
    fn capability_tiers_restrict_participation() {
        let config = MultiTaskConfig::new(four_tasks())
            .with_aggregators(2)
            .with_max_virtual_time_hours(1.0)
            .with_eval_interval_s(600.0)
            .with_seed(13);
        let pop = population(1500);
        let tiers: Vec<u8> = pop.iter().map(capability_tier).collect();
        let sim = MultiTaskSimulation::with_surrogate_trainers(config, pop);
        let result = sim.run();
        // Task 3 requires tier 2; every participant must be a tier-2 device.
        for record in &result.metrics[3].participations {
            assert!(
                tiers[record.client_id] >= 2,
                "tier-{} device {} participated in the tier-2 task",
                tiers[record.client_id],
                record.client_id
            );
        }
        // The unrestricted task sees lower-tier devices too.
        assert!(result.metrics[0]
            .participations
            .iter()
            .any(|r| tiers[r.client_id] < 2));
    }

    #[test]
    fn no_device_serves_two_tasks_at_once() {
        // The shared sampling pool guarantees exclusivity; this asserts the
        // invariant survives the full control-plane flow, including crashes.
        let config = MultiTaskConfig::new(four_tasks())
            .with_aggregators(2)
            .with_max_virtual_time_hours(1.0)
            .with_eval_interval_s(600.0)
            .with_crash(600.0, 0)
            .with_seed(3);
        let sim = MultiTaskSimulation::with_surrogate_trainers(config, population(1200));
        // `SamplingPool::release` panics on double-release, so a successful
        // run is itself the assertion; spot-check utilization stays bounded.
        let result = sim.run();
        let max_concurrency: usize = four_tasks().iter().map(|t| t.concurrency).sum();
        for metrics in &result.metrics {
            assert!(metrics
                .utilization_trace
                .iter()
                .all(|&(_, active)| active <= max_concurrency));
        }
    }

    #[test]
    fn crash_drops_buffers_reassigns_and_training_resumes() {
        let config = MultiTaskConfig::new(four_tasks())
            .with_aggregators(2)
            .with_max_virtual_time_hours(2.0)
            .with_eval_interval_s(300.0)
            .with_crash(1800.0, 0)
            .with_seed(21);
        let sim = MultiTaskSimulation::with_surrogate_trainers(config, population(2000));
        let result = sim.run();
        let cp = &result.fleet.control_plane;
        assert_eq!(cp.aggregator_failures, 1);
        assert!(cp.task_reassignments > 0, "no task was reassigned");
        // The reassignment bumps the map sequence past the initial submits.
        assert!(cp.final_map_sequence > 4);
        // Tasks on the dead Aggregator lost in-transit uploads.
        assert!(cp.lost_in_transit_updates > 0);
        // Every task still converges.
        for task in &result.tasks {
            assert!(
                task.final_loss < task.initial_loss,
                "task {} did not improve after failover",
                task.name
            );
        }
        // At least one task was moved and lost buffered progress.
        assert!(result.tasks.iter().any(|t| t.reassignments > 0));
    }

    #[test]
    fn runs_are_deterministic_for_the_same_seed() {
        let run = || {
            let config = MultiTaskConfig::new(four_tasks())
                .with_aggregators(2)
                .with_max_virtual_time_hours(1.0)
                .with_eval_interval_s(600.0)
                .with_crash(900.0, 1)
                .with_seed(5);
            MultiTaskSimulation::with_surrogate_trainers(config, population(1000)).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.fleet.total_comm_trips, b.fleet.total_comm_trips);
        assert_eq!(a.fleet.total_server_updates, b.fleet.total_server_updates);
        assert_eq!(a.fleet.control_plane, b.fleet.control_plane);
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.final_loss, y.final_loss);
            assert_eq!(x.summary.comm_trips, y.summary.comm_trips);
        }
    }

    #[test]
    fn demand_pooling_keeps_unconfirmed_assignments_bounded() {
        // With a single small task, the Coordinator must not assign more
        // clients than the task's demand between Aggregator reports.
        let config = MultiTaskConfig::new(vec![TaskConfig::async_task("t", 16, 4)])
            .with_aggregators(1)
            .with_selectors(1)
            .with_max_virtual_time_hours(0.5)
            .with_eval_interval_s(600.0)
            .with_seed(9);
        let sim = MultiTaskSimulation::with_surrogate_trainers(config, population(400));
        let result = sim.run();
        assert!(result.metrics[0]
            .utilization_trace
            .iter()
            .all(|&(_, active)| active <= 16));
        assert!(result.tasks[0].summary.comm_trips > 0);
    }
}
