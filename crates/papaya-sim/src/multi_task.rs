//! The multi-tenant front-end, kept as a thin shim over
//! [`crate::scenario::Scenario`] (Sections 4, 6.2–6.3, Appendix E.4).
//!
//! [`MultiTaskSimulation`] wires the control plane of [`crate::cluster`]
//! into the training dynamics of [`crate::task_runtime`]:
//!
//! * the **Coordinator** places each task's `TaskRuntime` on one of M
//!   persistent Aggregators, balancing estimated workload, and pools client
//!   demand reported by the runtimes (with unconfirmed-assignment
//!   accounting);
//! * devices check in from one shared [`Population`]; their capability tier
//!   (derived from compute speed through a configurable
//!   [`TierPolicy`]) restricts which tasks they are eligible for, and the
//!   Coordinator assigns each check-in to a random eligible task with
//!   positive effective demand;
//! * **Selectors** route the resulting participation to the task's
//!   Aggregator from a cached assignment map; a Selector whose map sequence
//!   is behind the Coordinator's refuses to route until its periodic
//!   refresh (the client simply retries later);
//! * **Aggregator failures** can be injected at any virtual time: the dead
//!   process stops heartbeating, its tasks' buffered updates are lost,
//!   in-flight uploads addressed to it are dropped in transit, and once the
//!   Coordinator misses enough heartbeats it reassigns the orphaned tasks —
//!   after which training resumes on the surviving Aggregators.  Even
//!   *total* Aggregator loss recovers: orphans wait as divergent placement
//!   and the reconciler re-places them on the first recovery heartbeat
//!   (see `docs/CONTROL_PLANE.md`).
//!
//! Underneath, the Coordinator runs inside the event-sourced
//! [`crate::control_plane::ControlPlaneService`]: every control mutation is
//! logged, checkpointed, and replayable, and a mid-run restore is
//! fingerprint-invisible by construction.
//!
//! New code should compose a [`Scenario`] with a
//! [`FleetSpec`] directly; this front-end survives for existing call sites
//! and translates the unified [`crate::scenario::Report`] back into a
//! [`MultiTaskResult`] (per-task [`TaskSummary`] plus a cross-task
//! [`FleetSummary`]).

use crate::cluster::AggregatorId;
use crate::metrics::{FleetSummary, MetricsCollector, TaskSummary};
pub use crate::scenario::InjectedCrash;
use crate::scenario::{EvalPolicy, FleetSpec, RunLimits, Scenario, TierPolicy};
use crate::task_runtime::ServerOptimizerKind;
use papaya_core::client::ClientTrainer;
use papaya_core::config::TaskConfig;
use papaya_data::population::{DeviceProfile, Population};
use std::sync::Arc;

/// Configuration of a multi-tenant run.
#[derive(Clone, Debug)]
pub struct MultiTaskConfig {
    /// The fleet's tasks.  Each entry becomes one task runtime.
    pub tasks: Vec<TaskConfig>,
    /// Control-plane sizing and timing.
    pub fleet: FleetSpec,
    /// Stop conditions (the legacy front-end only ever used virtual time).
    pub limits: RunLimits,
    /// Evaluation cadence and sample size.
    pub eval: EvalPolicy,
    /// Capability-tier policy applied at device check-in.
    pub tier_policy: TierPolicy,
    /// Delay between a client being assigned and starting to train.
    pub selection_latency_s: f64,
    /// Server optimizer applied to every task's aggregated deltas.
    pub server_optimizer: ServerOptimizerKind,
    /// RNG seed controlling selection, assignment, and training noise.
    pub seed: u64,
    /// Aggregator failures to inject.
    pub crashes: Vec<InjectedCrash>,
}

impl MultiTaskConfig {
    /// Creates a configuration with sensible defaults for the given tasks.
    pub fn new(tasks: Vec<TaskConfig>) -> Self {
        MultiTaskConfig {
            tasks,
            fleet: FleetSpec::new(2, 2),
            limits: RunLimits::default().with_max_virtual_time_hours(2.0),
            eval: EvalPolicy::default(),
            tier_policy: TierPolicy::default(),
            selection_latency_s: 2.0,
            server_optimizer: ServerOptimizerKind::FedAvg,
            seed: 0,
            crashes: Vec::new(),
        }
    }

    /// Sets the number of Aggregators.
    pub fn with_aggregators(mut self, n: usize) -> Self {
        self.fleet.aggregators = n;
        self
    }

    /// Sets the number of Selectors.
    pub fn with_selectors(mut self, n: usize) -> Self {
        self.fleet.selectors = n;
        self
    }

    /// Sets the virtual-time budget in hours.
    pub fn with_max_virtual_time_hours(mut self, hours: f64) -> Self {
        self.limits = self.limits.with_max_virtual_time_hours(hours);
        self
    }

    /// Sets the evaluation interval in virtual seconds.
    pub fn with_eval_interval_s(mut self, interval: f64) -> Self {
        self.eval = self.eval.with_interval_s(interval);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Injects an Aggregator crash at the given virtual time.
    pub fn with_crash(mut self, time_s: f64, aggregator: AggregatorId) -> Self {
        self.crashes.push(InjectedCrash { time_s, aggregator });
        self
    }

    /// Sets the server optimizer used by every task.
    pub fn with_server_optimizer(mut self, kind: ServerOptimizerKind) -> Self {
        self.server_optimizer = kind;
        self
    }

    /// Sets the capability-tier policy.
    pub fn with_tier_policy(mut self, policy: TierPolicy) -> Self {
        self.tier_policy = policy;
        self
    }
}

/// Capability tier a device reports at check-in under the default
/// [`TierPolicy`]: the fastest devices (tier 2) can train any task, median
/// devices (tier 1) mid-size tasks, and slow devices (tier 0) only
/// unrestricted tasks.
pub fn capability_tier(device: &DeviceProfile) -> u8 {
    TierPolicy::default().tier(device)
}

/// The outcome of a multi-tenant run.
#[derive(Clone, Debug)]
pub struct MultiTaskResult {
    /// Total virtual hours simulated.
    pub virtual_hours: f64,
    /// Per-task end-of-run reports, in task order.
    pub tasks: Vec<TaskSummary>,
    /// Per-task raw metric traces, in task order.
    pub metrics: Vec<MetricsCollector>,
    /// Cross-task roll-up including control-plane counters.
    pub fleet: FleetSummary,
}

/// A multi-tenant simulation over one shared device population (thin shim
/// over [`Scenario`]).
pub struct MultiTaskSimulation {
    scenario: Scenario,
}

/// Applies everything but the tasks to a fresh [`ScenarioBuilder`]; both
/// constructors add tasks on top, so a new config knob is wired exactly
/// once.
fn base_builder(
    config: MultiTaskConfig,
    population: Population,
) -> (crate::scenario::ScenarioBuilder, Vec<TaskConfig>) {
    let mut builder = Scenario::builder()
        .population(population)
        .fleet(config.fleet)
        .limits(config.limits)
        .eval(config.eval)
        .tier_policy(config.tier_policy)
        .selection_latency_s(config.selection_latency_s)
        .server_optimizer(config.server_optimizer)
        .seed(config.seed);
    for crash in config.crashes {
        builder = builder.crash_at(crash.time_s, crash.aggregator);
    }
    (builder, config.tasks)
}

impl MultiTaskSimulation {
    /// Creates a simulation with one trainer per task.
    ///
    /// # Panics
    ///
    /// Panics if the population is empty, no tasks or Aggregators are
    /// configured, or the trainer count does not match the task count.
    pub fn new(
        config: MultiTaskConfig,
        population: Population,
        trainers: Vec<Arc<dyn ClientTrainer>>,
    ) -> Self {
        assert_eq!(
            config.tasks.len(),
            trainers.len(),
            "one trainer per task is required"
        );
        let (mut builder, tasks) = base_builder(config, population);
        for (task, trainer) in tasks.into_iter().zip(trainers) {
            builder = builder.task_with_trainer(task, trainer);
        }
        MultiTaskSimulation {
            scenario: builder.build(),
        }
    }

    /// Convenience constructor: every task trains its own surrogate
    /// objective over the shared population (seeded per task, so tasks are
    /// distinct learning problems).
    pub fn with_surrogate_trainers(config: MultiTaskConfig, population: Population) -> Self {
        let (mut builder, tasks) = base_builder(config, population);
        for task in tasks {
            builder = builder.task(task);
        }
        MultiTaskSimulation {
            scenario: builder.build(),
        }
    }

    /// Runs the simulation to completion and returns per-task and fleet
    /// results.
    pub fn run(&self) -> MultiTaskResult {
        let report = self.scenario.run();
        let tasks: Vec<TaskSummary> = report.tasks.iter().map(|t| t.to_task_summary()).collect();
        let metrics: Vec<MetricsCollector> = report.tasks.into_iter().map(|t| t.metrics).collect();
        MultiTaskResult {
            virtual_hours: report.virtual_hours,
            tasks,
            metrics,
            fleet: report.fleet,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papaya_data::population::PopulationConfig;

    fn population(n: usize) -> Population {
        Population::generate(&PopulationConfig::default().with_size(n), 23)
    }

    fn four_tasks() -> Vec<TaskConfig> {
        vec![
            TaskConfig::async_task("kbd-lm", 64, 16),
            TaskConfig::async_task("kws", 32, 8).with_min_capability_tier(1),
            TaskConfig::sync_task("ranker", 40, 0.3),
            TaskConfig::async_task("asr", 24, 8).with_min_capability_tier(2),
        ]
    }

    #[test]
    fn all_tasks_train_concurrently_over_shared_population() {
        let config = MultiTaskConfig::new(four_tasks())
            .with_aggregators(3)
            .with_max_virtual_time_hours(2.0)
            .with_eval_interval_s(600.0)
            .with_seed(7);
        let sim = MultiTaskSimulation::with_surrogate_trainers(config, population(2000));
        let result = sim.run();
        assert_eq!(result.tasks.len(), 4);
        for task in &result.tasks {
            assert!(
                task.summary.comm_trips > 0,
                "task {} received no updates",
                task.name
            );
            assert!(
                task.final_loss < task.initial_loss,
                "task {} did not improve: {} -> {}",
                task.name,
                task.initial_loss,
                task.final_loss
            );
        }
        assert_eq!(
            result.fleet.total_comm_trips,
            result
                .tasks
                .iter()
                .map(|t| t.summary.comm_trips)
                .sum::<u64>()
        );
        assert_eq!(result.fleet.control_plane.aggregator_failures, 0);
        assert_eq!(result.fleet.control_plane.task_reassignments, 0);
    }

    #[test]
    fn capability_tiers_restrict_participation() {
        let config = MultiTaskConfig::new(four_tasks())
            .with_aggregators(2)
            .with_max_virtual_time_hours(1.0)
            .with_eval_interval_s(600.0)
            .with_seed(13);
        let pop = population(1500);
        let tiers: Vec<u8> = pop.iter().map(|d| capability_tier(&d)).collect();
        let sim = MultiTaskSimulation::with_surrogate_trainers(config, pop);
        let result = sim.run();
        // Task 3 requires tier 2; every participant must be a tier-2 device.
        for record in &result.metrics[3].participations {
            assert!(
                tiers[record.client_id] >= 2,
                "tier-{} device {} participated in the tier-2 task",
                tiers[record.client_id],
                record.client_id
            );
        }
        // The unrestricted task sees lower-tier devices too.
        assert!(result.metrics[0]
            .participations
            .iter()
            .any(|r| tiers[r.client_id] < 2));
    }

    #[test]
    fn no_device_serves_two_tasks_at_once() {
        // The shared sampling pool guarantees exclusivity; this asserts the
        // invariant survives the full control-plane flow, including crashes.
        let config = MultiTaskConfig::new(four_tasks())
            .with_aggregators(2)
            .with_max_virtual_time_hours(1.0)
            .with_eval_interval_s(600.0)
            .with_crash(600.0, 0)
            .with_seed(3);
        let sim = MultiTaskSimulation::with_surrogate_trainers(config, population(1200));
        // `SamplingPool::release` panics on double-release, so a successful
        // run is itself the assertion; spot-check utilization stays bounded.
        let result = sim.run();
        let max_concurrency: usize = four_tasks().iter().map(|t| t.concurrency).sum();
        for metrics in &result.metrics {
            assert!(metrics
                .utilization_trace
                .iter()
                .all(|&(_, active)| active <= max_concurrency));
        }
    }

    #[test]
    fn crash_drops_buffers_reassigns_and_training_resumes() {
        let config = MultiTaskConfig::new(four_tasks())
            .with_aggregators(2)
            .with_max_virtual_time_hours(2.0)
            .with_eval_interval_s(300.0)
            .with_crash(1800.0, 0)
            .with_seed(21);
        let sim = MultiTaskSimulation::with_surrogate_trainers(config, population(2000));
        let result = sim.run();
        let cp = &result.fleet.control_plane;
        assert_eq!(cp.aggregator_failures, 1);
        assert!(cp.task_reassignments > 0, "no task was reassigned");
        // The reassignment bumps the map sequence past the initial submits.
        assert!(cp.final_map_sequence > 4);
        // Tasks on the dead Aggregator lost in-transit uploads.
        assert!(cp.lost_in_transit_updates > 0);
        // Every task still converges.
        for task in &result.tasks {
            assert!(
                task.final_loss < task.initial_loss,
                "task {} did not improve after failover",
                task.name
            );
        }
        // At least one task was moved and lost buffered progress.
        assert!(result.tasks.iter().any(|t| t.reassignments > 0));
    }

    #[test]
    fn runs_are_deterministic_for_the_same_seed() {
        let run = || {
            let config = MultiTaskConfig::new(four_tasks())
                .with_aggregators(2)
                .with_max_virtual_time_hours(1.0)
                .with_eval_interval_s(600.0)
                .with_crash(900.0, 1)
                .with_seed(5);
            MultiTaskSimulation::with_surrogate_trainers(config, population(1000)).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.fleet.total_comm_trips, b.fleet.total_comm_trips);
        assert_eq!(a.fleet.total_server_updates, b.fleet.total_server_updates);
        assert_eq!(a.fleet.control_plane, b.fleet.control_plane);
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.final_loss, y.final_loss);
            assert_eq!(x.summary.comm_trips, y.summary.comm_trips);
        }
    }

    #[test]
    fn demand_pooling_keeps_unconfirmed_assignments_bounded() {
        // With a single small task, the Coordinator must not assign more
        // clients than the task's demand between Aggregator reports.
        let config = MultiTaskConfig::new(vec![TaskConfig::async_task("t", 16, 4)])
            .with_aggregators(1)
            .with_selectors(1)
            .with_max_virtual_time_hours(0.5)
            .with_eval_interval_s(600.0)
            .with_seed(9);
        let sim = MultiTaskSimulation::with_surrogate_trainers(config, population(400));
        let result = sim.run();
        assert!(result.metrics[0]
            .utilization_trace
            .iter()
            .all(|&(_, active)| active <= 16));
        assert!(result.tasks[0].summary.comm_trips > 0);
    }
}
