//! The control plane as an event-sourced, reconciled service.
//!
//! PR 10 promotes the Coordinator from simulation-internal state into the
//! shape the paper's production counterpart has (Sections 4, 6.2–6.3): an
//! observable, recoverable service.  Three pieces:
//!
//! * [`event_log`] — an append-only, deterministic log of every
//!   control-plane state mutation.  Replaying the log through the single
//!   apply dispatcher reconstructs the exact Coordinator state, RNG
//!   included, so crash recovery is replay.
//! * [`reconcile`] — a declarative reconciliation pass that diffs desired
//!   placement (every submitted task on a healthy Aggregator) against
//!   actual routes and emits corrective placements.  This is what makes
//!   the orphaned-task class of bug structurally impossible: any route to
//!   a dead Aggregator, however it came about, is divergence to repair.
//! * [`service`] — the [`service::ControlPlaneService`] facade that owns
//!   the Coordinator, logs every mutation before applying it, checkpoints
//!   on a fixed cadence, restores from (checkpoint + log suffix), and
//!   exports Prometheus-style text counters and a fleet-status snapshot.
//!
//! See `docs/CONTROL_PLANE.md` for the log format, checkpoint semantics,
//! and the reconciliation invariants.

pub mod event_log;
pub mod reconcile;
pub mod service;

pub use event_log::{ControlEvent, EventLog};
pub use reconcile::Correction;
pub use service::{
    AggregatorStatus, Checkpoint, ControlPlaneService, FleetStatus, ServiceCounters,
};
