//! The append-only control-plane event log.
//!
//! Every state mutation of the Coordinator is recorded as a
//! [`ControlEvent`] *before* it is applied, and application happens through
//! one exhaustive dispatcher ([`crate::control_plane::service`]), so live
//! execution and replay share the same code path.  Because the Coordinator
//! is deterministic (its RNG is part of its state), replaying a log from
//! [`ControlEvent::Init`] reconstructs the live state bit-for-bit — which
//! makes crash recovery replay, and is proven by property tests.
//!
//! The log supports *compaction*: once a checkpoint exists at offset `k`,
//! everything before `k` can be dropped and the log remembers only that
//! `base_offset = k`.  Restore never needs more than (checkpoint + suffix),
//! so a long run keeps O(checkpoint interval) events in memory.

use crate::cluster::{AggregatorId, TaskId, TaskSpec};

/// One logged control-plane state mutation.
///
/// Fields carry exactly what the apply dispatcher needs to repeat the
/// mutation deterministically; outcomes (placements, sweep results) are
/// *not* logged because they are recomputed identically on replay.
#[derive(Clone, Debug, PartialEq)]
pub enum ControlEvent {
    /// Log genesis: (re)creates the Coordinator from scratch.  Always the
    /// first event; replay of any full log starts here.
    Init {
        /// Heartbeat lease length handed to the Coordinator.
        heartbeat_timeout_s: f64,
        /// Seed of the Coordinator's assignment RNG.
        seed: u64,
    },
    /// An Aggregator registered (fleet bring-up).
    AggregatorRegistered {
        /// The registering Aggregator.
        id: AggregatorId,
        /// Virtual registration time.
        time_s: f64,
    },
    /// An Aggregator heartbeat (refresh, recovery, or implicit
    /// registration of an unknown sender — the outcome is recomputed on
    /// replay, not stored).
    Heartbeat {
        /// The sender.
        id: AggregatorId,
        /// Virtual send time.
        time_s: f64,
    },
    /// A task was submitted for placement.
    TaskSubmitted {
        /// The placement-plane description of the task.
        spec: TaskSpec,
    },
    /// An Aggregator reported the client demand of one of its tasks.
    DemandReported {
        /// The task the demand belongs to.
        task: TaskId,
        /// Clients wanted right now.
        demand: usize,
    },
    /// A device checked in and asked for an assignment (consumes one RNG
    /// draw when any task is eligible).
    ClientCheckIn {
        /// The device's capability tier.
        capability_tier: u8,
    },
    /// A failure-detection sweep ran.
    FailureSweep {
        /// Virtual sweep time.
        time_s: f64,
    },
    /// A reconciliation pass ran.
    Reconcile {
        /// Virtual pass time.
        time_s: f64,
    },
}

impl std::fmt::Display for ControlEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlEvent::Init {
                heartbeat_timeout_s,
                seed,
            } => write!(f, "init timeout={heartbeat_timeout_s}s seed={seed}"),
            ControlEvent::AggregatorRegistered { id, time_s } => {
                write!(f, "aggregator {id} registered at {time_s}s")
            }
            ControlEvent::Heartbeat { id, time_s } => {
                write!(f, "heartbeat from aggregator {id} at {time_s}s")
            }
            ControlEvent::TaskSubmitted { spec } => {
                write!(f, "task {} ({}) submitted", spec.id, spec.name)
            }
            ControlEvent::DemandReported { task, demand } => {
                write!(f, "task {task} demand reported: {demand}")
            }
            ControlEvent::ClientCheckIn { capability_tier } => {
                write!(f, "client check-in (tier {capability_tier})")
            }
            ControlEvent::FailureSweep { time_s } => write!(f, "failure sweep at {time_s}s"),
            ControlEvent::Reconcile { time_s } => write!(f, "reconcile pass at {time_s}s"),
        }
    }
}

/// The append-only log, possibly compacted behind a checkpoint.
///
/// Offsets are *absolute*: event `i` keeps offset `i` forever, compaction
/// only forgets storage.  `len()` is the absolute length (total events ever
/// appended), not the retained count.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EventLog {
    base_offset: u64,
    events: Vec<ControlEvent>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event and returns its absolute offset.
    pub fn append(&mut self, event: ControlEvent) -> u64 {
        let offset = self.len();
        self.events.push(event);
        offset
    }

    /// Absolute log length: total events ever appended.
    pub fn len(&self) -> u64 {
        self.base_offset + self.events.len() as u64
    }

    /// Whether nothing has ever been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Offset of the oldest retained event.
    pub fn base_offset(&self) -> u64 {
        self.base_offset
    }

    /// Retained events from absolute offset `from` (inclusive) to the end.
    ///
    /// # Panics
    ///
    /// Panics if `from` lies before the compaction horizon — those events
    /// no longer exist anywhere.
    pub fn iter_from(&self, from: u64) -> impl Iterator<Item = &ControlEvent> {
        assert!(
            from >= self.base_offset,
            "offset {from} is behind the compaction horizon {}",
            self.base_offset
        );
        let skip = (from - self.base_offset) as usize;
        self.events.iter().skip(skip)
    }

    /// Drops storage for every event before absolute offset `upto`
    /// (typically the latest checkpoint's offset).  Offsets are preserved.
    pub fn compact_to(&mut self, upto: u64) {
        let upto = upto.clamp(self.base_offset, self.len());
        let drop = (upto - self.base_offset) as usize;
        self.events.drain(..drop);
        self.base_offset = upto;
    }

    /// Number of events currently held in memory.
    pub fn retained(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heartbeat(id: AggregatorId) -> ControlEvent {
        ControlEvent::Heartbeat {
            id,
            time_s: id as f64,
        }
    }

    #[test]
    fn offsets_are_stable_across_compaction() {
        let mut log = EventLog::new();
        assert!(log.is_empty());
        for id in 0..10 {
            assert_eq!(log.append(heartbeat(id)), id as u64);
        }
        assert_eq!(log.len(), 10);
        log.compact_to(6);
        assert_eq!(log.len(), 10);
        assert_eq!(log.base_offset(), 6);
        assert_eq!(log.retained(), 4);
        let suffix: Vec<_> = log.iter_from(7).cloned().collect();
        assert_eq!(suffix, vec![heartbeat(7), heartbeat(8), heartbeat(9)]);
        // Appending after compaction continues the absolute numbering.
        assert_eq!(log.append(heartbeat(10)), 10);
        // Compacting backwards or past the end is clamped, not an error.
        log.compact_to(2);
        assert_eq!(log.base_offset(), 6);
        log.compact_to(1_000);
        assert_eq!(log.base_offset(), 11);
        assert_eq!(log.retained(), 0);
    }

    #[test]
    #[should_panic(expected = "compaction horizon")]
    fn reading_behind_the_horizon_panics() {
        let mut log = EventLog::new();
        for id in 0..4 {
            log.append(heartbeat(id));
        }
        log.compact_to(2);
        let _ = log.iter_from(1).count();
    }

    #[test]
    fn events_display_readably() {
        let spec = TaskSpec {
            id: 3,
            name: "keyboard".into(),
            concurrency: 10,
            model_size_bytes: 1_000,
            min_capability_tier: 0,
        };
        let rendered = [
            ControlEvent::Init {
                heartbeat_timeout_s: 25.0,
                seed: 7,
            }
            .to_string(),
            ControlEvent::AggregatorRegistered { id: 1, time_s: 0.0 }.to_string(),
            ControlEvent::Heartbeat { id: 2, time_s: 9.5 }.to_string(),
            ControlEvent::TaskSubmitted { spec }.to_string(),
            ControlEvent::DemandReported { task: 3, demand: 8 }.to_string(),
            ControlEvent::ClientCheckIn { capability_tier: 2 }.to_string(),
            ControlEvent::FailureSweep { time_s: 30.0 }.to_string(),
            ControlEvent::Reconcile { time_s: 30.0 }.to_string(),
        ];
        for (text, needle) in rendered.iter().zip([
            "init",
            "registered",
            "heartbeat",
            "keyboard",
            "demand",
            "check-in",
            "sweep",
            "reconcile",
        ]) {
            assert!(text.contains(needle), "{text:?} missing {needle:?}");
        }
    }
}
