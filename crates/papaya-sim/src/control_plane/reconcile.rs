//! Placement reconciliation: desired state vs. actual routes.
//!
//! Desired placement is declarative — **every submitted task routed to an
//! alive Aggregator, load-balanced** — and a reconciliation pass repairs
//! whatever diverges from it, regardless of how the divergence arose
//! (total Aggregator loss, a submit with nobody alive, an operator
//! restoring an old checkpoint).  Invariants:
//!
//! 1. A task is *divergent* iff it has no route (pending) or its route
//!    points at a dead Aggregator (orphaned).  A route to a recovered —
//!    now alive — Aggregator is valid again and is never shuffled.
//! 2. Divergent tasks are re-placed in ascending task order onto the
//!    least-loaded alive Aggregator, the same policy `submit_task` uses,
//!    so identical states reconcile identically.
//! 3. The map sequence is bumped exactly once per pass that placed
//!    anything, so stale Selectors refresh; a pass that placed nothing
//!    publishes nothing.
//! 4. With no alive Aggregator there is no work a pass can do:
//!    [`needs_reconciliation`] is `false` and [`reconcile`] is a no-op
//!    until a recovery heartbeat arrives.

use crate::cluster::{AggregatorId, Coordinator, TaskId};

/// One corrective placement emitted by a reconciliation pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Correction {
    /// The task that was re-placed.
    pub task: TaskId,
    /// The healthy Aggregator it now routes to.
    pub aggregator: AggregatorId,
    /// `true` when the task previously had a (dead) route — an orphan
    /// repair; `false` when it was pending with no route at all.
    pub was_placed: bool,
}

/// Tasks whose actual placement diverges from the desired state, ascending:
/// no route, or a route to an Aggregator that is not alive.
pub fn divergent_tasks(coordinator: &Coordinator) -> Vec<TaskId> {
    coordinator
        .task_ids()
        .into_iter()
        .filter(|&task| match coordinator.aggregator_of(task) {
            Some(agg) => !coordinator.is_alive(agg),
            None => true,
        })
        .collect()
}

/// Whether a reconciliation pass would change any placement right now:
/// some task is divergent *and* an alive Aggregator exists to take it.
pub fn needs_reconciliation(coordinator: &Coordinator) -> bool {
    coordinator.has_alive_aggregator() && !divergent_tasks(coordinator).is_empty()
}

/// Runs one reconciliation pass and returns the corrective placements.
pub fn reconcile(coordinator: &mut Coordinator) -> Vec<Correction> {
    let mut corrections = Vec::new();
    for task in divergent_tasks(coordinator) {
        let was_placed = coordinator.aggregator_of(task).is_some();
        if let Some(aggregator) = coordinator.place_on_least_loaded(task) {
            corrections.push(Correction {
                task,
                aggregator,
                was_placed,
            });
        }
    }
    if !corrections.is_empty() {
        coordinator.bump_sequence();
    }
    corrections
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::TaskSpec;

    fn spec(id: TaskId) -> TaskSpec {
        TaskSpec {
            id,
            name: format!("task-{id}"),
            concurrency: 100,
            model_size_bytes: 1_000_000,
            min_capability_tier: 0,
        }
    }

    #[test]
    fn divergence_covers_pending_and_orphaned_but_not_healthy() {
        let mut c = Coordinator::new(30.0, 3);
        c.register_aggregator(0, 0.0);
        c.submit_task(spec(0)); // healthy route
        assert!(divergent_tasks(&c).is_empty());
        c.detect_failures(100.0); // 0 dies: task 0 orphaned
        c.submit_task(spec(1)); // nobody alive: task 1 pending
        assert_eq!(divergent_tasks(&c), vec![0, 1]);
        // Dead fleet: divergent but not actionable.
        assert!(!needs_reconciliation(&c));
        c.heartbeat(0, 150.0);
        assert!(needs_reconciliation(&c));
    }

    #[test]
    fn reconcile_balances_across_alive_aggregators() {
        let mut c = Coordinator::new(30.0, 3);
        for id in 0..4 {
            c.register_aggregator(id, 0.0);
        }
        c.submit_task(spec(0)); // -> aggregator 0 (least-loaded, lowest id)
        c.submit_task(spec(1)); // -> aggregator 1
        c.detect_failures(100.0); // total loss: both owners stay dead...
        c.heartbeat(2, 150.0);
        c.heartbeat(3, 150.0); // ...and two other processes come back.
        let corrections = reconcile(&mut c);
        assert_eq!(corrections.len(), 2);
        // Equal workloads spread over both survivors, ascending task order.
        assert_eq!(corrections[0].task, 0);
        assert_eq!(corrections[1].task, 1);
        assert_ne!(corrections[0].aggregator, corrections[1].aggregator);
        for correction in &corrections {
            assert!(correction.aggregator >= 2, "placed on an alive process");
        }
        // A second pass finds nothing to do.
        assert!(reconcile(&mut c).is_empty());
    }

    #[test]
    fn empty_pass_publishes_no_map_version() {
        let mut c = Coordinator::new(30.0, 3);
        c.register_aggregator(0, 0.0);
        c.submit_task(spec(0));
        let seq = c.sequence();
        assert!(reconcile(&mut c).is_empty());
        assert_eq!(c.sequence(), seq);
    }
}
