//! The control-plane service: an event-sourced Coordinator facade.
//!
//! [`ControlPlaneService`] owns the [`Coordinator`] and is the only way the
//! simulation mutates it.  Every mutation is appended to the
//! [`EventLog`] *first* and then routed through one exhaustive apply
//! dispatcher, so the live path and the replay path are the same code:
//!
//! ```text
//! caller ──▶ record(event) ──▶ log.append(event)
//!                          └─▶ apply(coordinator, counters, event)
//! ```
//!
//! Checkpoints are taken automatically every `checkpoint_interval` log
//! events: a checkpoint is a clone of the Coordinator (RNG state included)
//! plus the counters and the log offset it was taken at.  Restoring is
//! `checkpoint + replay(log suffix)`, which reconstructs the live state
//! bit-for-bit — a run interrupted at an arbitrary control tick and resumed
//! this way produces a fingerprint identical to the uninterrupted run.
//! Once a checkpoint exists the log prefix behind it is compacted away, so
//! memory stays O(checkpoint interval) on long runs.

use crate::cluster::{
    AggregatorId, Coordinator, FailureSweep, HeartbeatOutcome, TaskId, TaskPlacement, TaskSpec,
};
use crate::control_plane::event_log::{ControlEvent, EventLog};
use crate::control_plane::reconcile::Correction;
use std::fmt::Write as _;

/// Default checkpoint cadence, in log events.
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 1024;

/// Service-level counters, replayed together with the Coordinator (they
/// are a pure function of the event log, so a replayed service agrees with
/// the live one on every value).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Heartbeats processed.
    pub heartbeats: u64,
    /// Heartbeats from unknown Aggregators that were registered on the spot.
    pub unknown_heartbeat_registrations: u64,
    /// Tasks placed on an Aggregator (at submit or by reconciliation).
    pub tasks_placed: u64,
    /// Task submissions queued pending because no Aggregator was alive.
    pub pending_task_submissions: u64,
    /// Tasks left orphaned by a failure sweep that had no survivor to
    /// re-place them on.
    pub tasks_orphaned: u64,
    /// Corrective placements emitted by reconciliation passes.
    pub tasks_reconciled: u64,
    /// Failure-detection sweeps run.
    pub failure_sweeps: u64,
    /// Demand reports processed.
    pub demand_reports: u64,
    /// Device check-ins processed.
    pub client_checkins: u64,
}

/// A point-in-time snapshot the service can restore from.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Absolute log offset the snapshot was taken at: replaying events
    /// `log_offset..` on top of it reproduces the present.
    pub log_offset: u64,
    /// The Coordinator as of the snapshot, RNG state included.
    pub coordinator: Coordinator,
    /// The counters as of the snapshot.
    pub counters: ServiceCounters,
}

/// Per-Aggregator line of a [`FleetStatus`] snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggregatorStatus {
    /// The Aggregator.
    pub id: AggregatorId,
    /// Whether the Coordinator currently considers it alive.
    pub alive: bool,
    /// Sum of estimated workloads of the tasks routed to it.
    pub load: u64,
    /// Tasks routed to it, ascending.
    pub tasks: Vec<TaskId>,
}

/// An operator-facing snapshot of the control plane.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetStatus {
    /// One line per registered Aggregator, ascending by id.
    pub aggregators: Vec<AggregatorStatus>,
    /// Tasks submitted but currently without a route, ascending.
    pub pending_tasks: Vec<TaskId>,
    /// Current assignment-map sequence number.
    pub map_sequence: u64,
    /// Absolute event-log length.
    pub log_events: u64,
    /// Log events appended since the last checkpoint.
    pub checkpoint_age_events: u64,
}

/// What applying one [`ControlEvent`] produced.
enum ApplyOutcome {
    Unit,
    Heartbeat(HeartbeatOutcome),
    Placement(TaskPlacement),
    Assignment(Option<(TaskId, AggregatorId)>),
    Sweep(FailureSweep),
    Corrections(Vec<Correction>),
}

/// The event-sourced control-plane service.
#[derive(Clone, Debug)]
pub struct ControlPlaneService {
    coordinator: Coordinator,
    counters: ServiceCounters,
    log: EventLog,
    checkpoint: Checkpoint,
    checkpoint_interval: u64,
    compact_on_checkpoint: bool,
    checkpoints_taken: u64,
    restores: u64,
}

impl ControlPlaneService {
    /// Creates a service with a fresh Coordinator; the log opens with
    /// [`ControlEvent::Init`] so a full replay is self-contained.
    pub fn new(heartbeat_timeout_s: f64, seed: u64) -> Self {
        let coordinator = Coordinator::new(heartbeat_timeout_s, seed);
        let mut service = ControlPlaneService {
            checkpoint: Checkpoint {
                log_offset: 0,
                coordinator: coordinator.clone(),
                counters: ServiceCounters::default(),
            },
            coordinator,
            counters: ServiceCounters::default(),
            log: EventLog::new(),
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
            compact_on_checkpoint: true,
            checkpoints_taken: 0,
            restores: 0,
        };
        service.record(ControlEvent::Init {
            heartbeat_timeout_s,
            seed,
        });
        service
    }

    /// Disables log compaction so the full log stays replayable from
    /// genesis (used by the replay property tests).
    pub fn retain_full_log(mut self) -> Self {
        self.compact_on_checkpoint = false;
        self
    }

    /// Overrides the automatic checkpoint cadence.
    ///
    /// # Panics
    ///
    /// Panics if `every_events` is zero.
    pub fn with_checkpoint_interval(mut self, every_events: u64) -> Self {
        assert!(every_events > 0, "checkpoint interval must be positive");
        self.checkpoint_interval = every_events;
        self
    }

    /// Read-only view of the Coordinator (Selector refresh, demand reads).
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// The replayed service counters.
    pub fn counters(&self) -> &ServiceCounters {
        &self.counters
    }

    /// The event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The latest checkpoint.
    pub fn checkpoint(&self) -> &Checkpoint {
        &self.checkpoint
    }

    /// Log events appended since the latest checkpoint.
    pub fn checkpoint_age_events(&self) -> u64 {
        self.log.len() - self.checkpoint.log_offset
    }

    /// Checkpoints taken so far (operational, not part of replayed state).
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints_taken
    }

    /// Restores performed so far (operational, not part of replayed state).
    pub fn restores(&self) -> u64 {
        self.restores
    }

    /// Registers a (healthy) Aggregator.
    pub fn register_aggregator(&mut self, id: AggregatorId, now_s: f64) {
        self.record(ControlEvent::AggregatorRegistered { id, time_s: now_s });
    }

    /// Records a heartbeat; unknown senders are registered, not dropped.
    pub fn heartbeat(&mut self, id: AggregatorId, now_s: f64) -> HeartbeatOutcome {
        match self.record(ControlEvent::Heartbeat { id, time_s: now_s }) {
            ApplyOutcome::Heartbeat(outcome) => outcome,
            _ => unreachable!("apply(Heartbeat) yields Heartbeat"),
        }
    }

    /// Submits a task for placement (or pending, with nobody alive).
    pub fn submit_task(&mut self, spec: TaskSpec) -> TaskPlacement {
        match self.record(ControlEvent::TaskSubmitted { spec }) {
            ApplyOutcome::Placement(placement) => placement,
            _ => unreachable!("apply(TaskSubmitted) yields Placement"),
        }
    }

    /// Records an Aggregator's demand report for one task.
    pub fn report_demand(&mut self, task: TaskId, demand: usize) {
        self.record(ControlEvent::DemandReported { task, demand });
    }

    /// Assigns a checking-in device to a random eligible task.
    pub fn assign_client(&mut self, capability_tier: u8) -> Option<(TaskId, AggregatorId)> {
        match self.record(ControlEvent::ClientCheckIn { capability_tier }) {
            ApplyOutcome::Assignment(assignment) => assignment,
            _ => unreachable!("apply(ClientCheckIn) yields Assignment"),
        }
    }

    /// Runs a failure-detection sweep.
    pub fn detect_failures(&mut self, now_s: f64) -> FailureSweep {
        match self.record(ControlEvent::FailureSweep { time_s: now_s }) {
            ApplyOutcome::Sweep(sweep) => sweep,
            _ => unreachable!("apply(FailureSweep) yields Sweep"),
        }
    }

    /// Runs one reconciliation pass.
    pub fn reconcile(&mut self, now_s: f64) -> Vec<Correction> {
        match self.record(ControlEvent::Reconcile { time_s: now_s }) {
            ApplyOutcome::Corrections(corrections) => corrections,
            _ => unreachable!("apply(Reconcile) yields Corrections"),
        }
    }

    /// Whether a reconciliation pass would change any placement right now.
    /// Read-only: callers use it to decide whether to schedule a pass, so a
    /// probe must not pollute the log.
    pub fn needs_reconciliation(&self) -> bool {
        self.coordinator.needs_reconciliation()
    }

    /// Takes a checkpoint of the present state and (by default) compacts
    /// the log prefix behind it.
    pub fn checkpoint_now(&mut self) {
        self.checkpoint = Checkpoint {
            log_offset: self.log.len(),
            coordinator: self.coordinator.clone(),
            counters: self.counters.clone(),
        };
        self.checkpoints_taken += 1;
        if self.compact_on_checkpoint {
            self.log.compact_to(self.checkpoint.log_offset);
        }
    }

    /// Rebuilds the live state from (latest checkpoint + log suffix) and
    /// swaps it in.  Because replay is deterministic this is an identity on
    /// an uncorrupted service — which is exactly what the mid-run
    /// checkpoint/resume fingerprint test proves end to end.
    pub fn restore_from_checkpoint(&mut self) {
        let mut coordinator = self.checkpoint.coordinator.clone();
        let mut counters = self.checkpoint.counters.clone();
        for event in self.log.iter_from(self.checkpoint.log_offset) {
            Self::apply(&mut coordinator, &mut counters, event);
        }
        self.coordinator = coordinator;
        self.counters = counters;
        self.restores += 1;
    }

    /// Reconstructs a service purely from a full (uncompacted) log.
    ///
    /// # Panics
    ///
    /// Panics if the log was compacted — replay-from-genesis needs every
    /// event.
    pub fn replay(log: &EventLog) -> Self {
        assert_eq!(log.base_offset(), 0, "full replay needs an uncompacted log");
        // Placeholder state; the leading `Init` event rebuilds it.
        let mut coordinator = Coordinator::new(0.0, 0);
        let mut counters = ServiceCounters::default();
        for event in log.iter_from(0) {
            Self::apply(&mut coordinator, &mut counters, event);
        }
        ControlPlaneService {
            checkpoint: Checkpoint {
                log_offset: log.len(),
                coordinator: coordinator.clone(),
                counters: counters.clone(),
            },
            coordinator,
            counters,
            log: log.clone(),
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
            compact_on_checkpoint: false,
            checkpoints_taken: 0,
            restores: 0,
        }
    }

    /// Appends the event to the log, applies it, and auto-checkpoints when
    /// the log has outgrown the checkpoint cadence.
    fn record(&mut self, event: ControlEvent) -> ApplyOutcome {
        self.log.append(event.clone());
        let outcome = Self::apply(&mut self.coordinator, &mut self.counters, &event);
        if self.checkpoint_age_events() >= self.checkpoint_interval {
            self.checkpoint_now();
        }
        outcome
    }

    /// The single dispatcher every logged event goes through, live or
    /// replayed.  Exhaustive on purpose: papaya-lint's `event-dispatch`
    /// rule checks that every `ControlEvent` variant is named here.
    fn apply(
        coordinator: &mut Coordinator,
        counters: &mut ServiceCounters,
        control_event: &ControlEvent,
    ) -> ApplyOutcome {
        match control_event {
            ControlEvent::Init {
                heartbeat_timeout_s,
                seed,
            } => {
                *coordinator = Coordinator::new(*heartbeat_timeout_s, *seed);
                *counters = ServiceCounters::default();
                ApplyOutcome::Unit
            }
            ControlEvent::AggregatorRegistered { id, time_s } => {
                coordinator.register_aggregator(*id, *time_s);
                ApplyOutcome::Unit
            }
            ControlEvent::Heartbeat { id, time_s } => {
                let outcome = coordinator.heartbeat(*id, *time_s);
                counters.heartbeats += 1;
                if outcome == HeartbeatOutcome::Registered {
                    counters.unknown_heartbeat_registrations += 1;
                }
                ApplyOutcome::Heartbeat(outcome)
            }
            ControlEvent::TaskSubmitted { spec } => {
                let placement = coordinator.submit_task(spec.clone());
                match placement {
                    TaskPlacement::Placed(_) => counters.tasks_placed += 1,
                    TaskPlacement::Pending => counters.pending_task_submissions += 1,
                }
                ApplyOutcome::Placement(placement)
            }
            ControlEvent::DemandReported { task, demand } => {
                coordinator.report_demand(*task, *demand);
                counters.demand_reports += 1;
                ApplyOutcome::Unit
            }
            ControlEvent::ClientCheckIn { capability_tier } => {
                let assignment = coordinator.assign_client(*capability_tier);
                counters.client_checkins += 1;
                ApplyOutcome::Assignment(assignment)
            }
            ControlEvent::FailureSweep { time_s } => {
                let sweep = coordinator.detect_failures(*time_s);
                counters.failure_sweeps += 1;
                counters.tasks_orphaned += sweep.orphaned.len() as u64;
                ApplyOutcome::Sweep(sweep)
            }
            ControlEvent::Reconcile { time_s: _ } => {
                let corrections = coordinator.reconcile();
                counters.tasks_reconciled += corrections.len() as u64;
                counters.tasks_placed += corrections.len() as u64;
                ApplyOutcome::Corrections(corrections)
            }
        }
    }

    /// Operator-facing snapshot of the fleet.
    pub fn fleet_status(&self) -> FleetStatus {
        let routes = self.coordinator.assignment_map().routes;
        let loads = self.coordinator.aggregator_loads();
        let aggregators = self
            .coordinator
            .aggregator_ids()
            .into_iter()
            .map(|id| AggregatorStatus {
                id,
                alive: self.coordinator.is_alive(id),
                load: loads.get(&id).copied().unwrap_or(0),
                tasks: routes
                    .iter()
                    .filter(|(_, &agg)| agg == id)
                    .map(|(&task, _)| task)
                    .collect(),
            })
            .collect();
        FleetStatus {
            aggregators,
            pending_tasks: self.coordinator.pending_tasks(),
            map_sequence: self.coordinator.sequence(),
            log_events: self.log.len(),
            checkpoint_age_events: self.checkpoint_age_events(),
        }
    }

    /// Prometheus text-format rendering of the service counters.
    pub fn prometheus_text(&self) -> String {
        let c = &self.counters;
        let alive = self
            .coordinator
            .aggregator_ids()
            .into_iter()
            .filter(|&id| self.coordinator.is_alive(id))
            .count() as u64;
        let mut out = String::new();
        let metrics: [(&str, &str, &str, u64); 15] = [
            (
                "papaya_cp_heartbeats_total",
                "counter",
                "Heartbeats processed by the Coordinator.",
                c.heartbeats,
            ),
            (
                "papaya_cp_unknown_heartbeat_registrations_total",
                "counter",
                "Heartbeats from unknown Aggregators registered on the spot.",
                c.unknown_heartbeat_registrations,
            ),
            (
                "papaya_cp_tasks_placed_total",
                "counter",
                "Tasks placed on an Aggregator (submit or reconcile).",
                c.tasks_placed,
            ),
            (
                "papaya_cp_pending_task_submissions_total",
                "counter",
                "Task submissions queued with no Aggregator alive.",
                c.pending_task_submissions,
            ),
            (
                "papaya_cp_tasks_orphaned_total",
                "counter",
                "Tasks orphaned by total Aggregator loss.",
                c.tasks_orphaned,
            ),
            (
                "papaya_cp_tasks_reconciled_total",
                "counter",
                "Corrective placements emitted by reconciliation.",
                c.tasks_reconciled,
            ),
            (
                "papaya_cp_failure_sweeps_total",
                "counter",
                "Failure-detection sweeps run.",
                c.failure_sweeps,
            ),
            (
                "papaya_cp_demand_reports_total",
                "counter",
                "Demand reports processed.",
                c.demand_reports,
            ),
            (
                "papaya_cp_client_checkins_total",
                "counter",
                "Device check-ins processed.",
                c.client_checkins,
            ),
            (
                "papaya_cp_log_events_total",
                "counter",
                "Control-plane events appended to the log.",
                self.log.len(),
            ),
            (
                "papaya_cp_checkpoints_total",
                "counter",
                "Checkpoints taken.",
                self.checkpoints_taken,
            ),
            (
                "papaya_cp_restores_total",
                "counter",
                "Restores from (checkpoint + log suffix).",
                self.restores,
            ),
            (
                "papaya_cp_checkpoint_age_events",
                "gauge",
                "Log events appended since the latest checkpoint.",
                self.checkpoint_age_events(),
            ),
            (
                "papaya_cp_map_sequence",
                "gauge",
                "Current assignment-map sequence number.",
                self.coordinator.sequence(),
            ),
            (
                "papaya_cp_aggregators_alive",
                "gauge",
                "Registered Aggregators currently alive.",
                alive,
            ),
        ];
        for (name, kind, help, value) in metrics {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {value}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: TaskId) -> TaskSpec {
        TaskSpec {
            id,
            name: format!("task-{id}"),
            concurrency: 100,
            model_size_bytes: 1_000_000,
            min_capability_tier: 0,
        }
    }

    /// A busy scripted session touching every event kind, including RNG
    /// draws (client assignments) and a total-loss/recovery cycle.
    fn scripted_service() -> ControlPlaneService {
        let mut service = ControlPlaneService::new(25.0, 42).retain_full_log();
        for id in 0..3 {
            service.register_aggregator(id, 0.0);
        }
        for task in 0..4 {
            service.submit_task(spec(task));
        }
        for step in 0..20 {
            let now = 10.0 * (step + 1) as f64;
            for id in 0..3 {
                // Steps 0..5: everyone healthy.  Steps 5..12: nobody
                // heartbeats — total loss.  Steps 12..: only 1 comes back.
                if step < 5 || (step >= 12 && id == 1) {
                    service.heartbeat(id, now);
                }
            }
            service.detect_failures(now);
            for task in 0..4 {
                service.report_demand(task, 3);
            }
            for tier in [0u8, 1, 2] {
                service.assign_client(tier);
            }
            if service.needs_reconciliation() {
                service.reconcile(now);
            }
        }
        service
    }

    #[test]
    fn replay_reproduces_live_state() {
        let live = scripted_service();
        let replayed = ControlPlaneService::replay(live.log());
        assert_eq!(replayed.coordinator(), live.coordinator());
        assert_eq!(replayed.counters(), live.counters());
        // The reconstruction agrees on derived views too — modulo
        // checkpoint bookkeeping, which is operational state: a replayed
        // process owes no checkpoint cadence to the original one.
        let mut replayed_status = replayed.fleet_status();
        let mut live_status = live.fleet_status();
        replayed_status.checkpoint_age_events = 0;
        live_status.checkpoint_age_events = 0;
        assert_eq!(replayed_status, live_status);
    }

    #[test]
    fn restore_from_checkpoint_is_an_identity() {
        let mut service = scripted_service();
        let coordinator_before = service.coordinator().clone();
        let counters_before = service.counters().clone();
        service.checkpoint_now();
        // Keep going past the checkpoint so there is a real suffix.
        service.heartbeat(1, 1_000.0);
        service.report_demand(0, 9);
        service.assign_client(2);
        let coordinator_live = service.coordinator().clone();
        let counters_live = service.counters().clone();
        service.restore_from_checkpoint();
        assert_eq!(service.coordinator(), &coordinator_live);
        assert_eq!(service.counters(), &counters_live);
        assert_eq!(service.restores(), 1);
        assert_ne!(service.coordinator(), &coordinator_before);
        assert_ne!(service.counters(), &counters_before);
    }

    #[test]
    fn compaction_keeps_restore_working_with_bounded_memory() {
        let mut service = ControlPlaneService::new(25.0, 7).with_checkpoint_interval(16);
        service.register_aggregator(0, 0.0);
        service.submit_task(spec(0));
        for step in 0..200 {
            let now = step as f64;
            service.heartbeat(0, now);
            service.report_demand(0, 2);
            service.assign_client(0);
        }
        // The compacted log never holds more than one cadence worth.
        assert!(service.log().retained() <= 16);
        assert!(service.checkpoints_taken() > 1);
        let live = service.coordinator().clone();
        service.restore_from_checkpoint();
        assert_eq!(service.coordinator(), &live);
    }

    #[test]
    fn fleet_status_reports_routes_and_pending() {
        let mut service = ControlPlaneService::new(25.0, 1);
        service.register_aggregator(0, 0.0);
        service.register_aggregator(1, 0.0);
        service.submit_task(spec(0));
        service.submit_task(spec(1));
        let status = service.fleet_status();
        assert_eq!(status.aggregators.len(), 2);
        assert!(status.aggregators.iter().all(|a| a.alive));
        assert_eq!(
            status
                .aggregators
                .iter()
                .map(|a| a.tasks.len())
                .sum::<usize>(),
            2
        );
        assert!(status.pending_tasks.is_empty());
        assert_eq!(status.map_sequence, 2);
        // Kill the fleet: routes stay (orphaned), a fresh submit parks.
        service.detect_failures(1_000.0);
        service.submit_task(spec(2));
        let status = service.fleet_status();
        assert!(status.aggregators.iter().all(|a| !a.alive));
        assert_eq!(status.pending_tasks, vec![2]);
    }

    #[test]
    fn prometheus_text_renders_all_counters() {
        let service = scripted_service();
        let text = service.prometheus_text();
        for needle in [
            "papaya_cp_heartbeats_total",
            "papaya_cp_tasks_placed_total",
            "papaya_cp_tasks_orphaned_total",
            "papaya_cp_tasks_reconciled_total",
            "papaya_cp_log_events_total",
            "papaya_cp_checkpoint_age_events",
            "papaya_cp_aggregators_alive",
            "# HELP",
            "# TYPE",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // The scripted session exercised the orphan/reconcile machinery.
        assert!(service.counters().tasks_orphaned > 0);
        assert!(service.counters().tasks_reconciled > 0);
    }
}
