//! Deterministic parallel execution of client local training.
//!
//! The production system the paper describes runs client training massively
//! in parallel while the coordinator stays a small sequential control plane
//! (Section 4).  The simulator mirrors that split: the event loop remains a
//! single sequential thread owning every piece of mutable simulation state,
//! and only the *client local training* — by far the hot path at scale — is
//! farmed out to a fixed-size [`Executor`] worker pool.
//!
//! Correctness rests on one invariant: [`ClientTrainer::train`] is a pure
//! function of `(client_id, start_params, seed)` (the trait demands
//! determinism, and trainers take `&self`).  All three inputs are fixed the
//! moment a client is selected — the download snapshot is captured at
//! [`begin_participation`](crate::task_runtime::TaskRuntime::begin_participation)
//! time and the per-participation seed is derived with
//! [`papaya_core::client::participation_seed`] — so the pool can start
//! computing a result *speculatively* as soon as the client is selected,
//! long before its finish event fires.  The event loop consumes results in
//! strict event order and performs every state mutation (aggregation, model
//! steps, metrics) itself, which makes a run **bit-identical to the
//! sequential path at any thread count**: the exact same `train` calls
//! happen with the exact same arguments, and everything order-sensitive
//! stays on one thread.  Speculative results for participations that are
//! later aborted (dropout, timeout, round end, staleness abort, Aggregator
//! failover) are simply discarded — trainers are immutable, so a wasted
//! computation has no observable effect.
//!
//! If the driver reaches a finish event whose job is still queued, it steals
//! the job and runs it inline rather than blocking — the pool accelerates
//! the simulation but never serializes it.

use papaya_core::client::{ClientTrainer, LocalTrainResult};
use papaya_core::secure::{MaskPlan, MaskScratch, PrecomputedMask};
use papaya_nn::params::ParamVec;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// How many worker threads run client local training.
///
/// `Parallelism(0)` (the default) is the sequential path: no pool is
/// created and training runs inline on the event-loop thread.
/// `Parallelism(n)` with `n ≥ 1` spawns `n` workers.  Results are
/// bit-identical at every setting; see the module docs for why.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Parallelism(pub usize);

impl Parallelism {
    /// Training runs inline on the event-loop thread (the default).
    pub fn sequential() -> Self {
        Parallelism(0)
    }

    /// One worker per hardware thread reported by the OS.
    pub fn auto() -> Self {
        Parallelism(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Number of worker threads (0 means sequential).
    pub fn workers(&self) -> usize {
        self.0
    }

    /// Whether training runs inline without a pool.
    pub fn is_sequential(&self) -> bool {
        self.0 == 0
    }
}

/// One unit of speculative work: everything `train` needs, captured at
/// selection time.
pub struct TrainJob {
    /// Identifier of the participation the result belongs to.
    pub participation_id: u64,
    /// The device doing the training.
    pub client_id: usize,
    /// The model snapshot the client downloaded.
    pub start_params: Arc<ParamVec>,
    /// The participation's derived RNG seed.
    pub seed: u64,
    /// The task's trainer.
    pub trainer: Arc<dyn ClientTrainer>,
}

impl TrainJob {
    fn run(&self) -> LocalTrainResult {
        self.trainer
            .train(self.client_id, &self.start_params, self.seed)
    }
}

/// Lifetime counters of one executor, for perf harness output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Jobs completed by worker threads.
    pub completed_by_workers: u64,
    /// Jobs the event loop stole and ran inline because the result was
    /// needed before a worker picked them up.
    pub stolen_by_driver: u64,
    /// Speculative results discarded because the participation was aborted.
    pub discarded: u64,
    /// Mask-precompute jobs completed by worker threads.
    pub masks_completed_by_workers: u64,
    /// Mask jobs still queued when the driver needed them: the job is
    /// cancelled and the aggregator expands the mask inline instead.
    pub masks_cancelled_unstarted: u64,
    /// Speculative masks discarded because the participation was aborted.
    pub masks_discarded: u64,
}

/// Every submitted-but-unconsumed participation id lives in exactly one of
/// `jobs` (queued), `running`, or `results` — transitions happen atomically
/// under the one mutex, which is what makes [`Executor::take_or_run`] safe.
#[derive(Default)]
struct Inner {
    /// Queued jobs by participation id.
    jobs: BTreeMap<u64, TrainJob>,
    /// FIFO order of queued participation ids (ids may be stale if the job
    /// was stolen or discarded; workers skip missing entries).
    order: VecDeque<u64>,
    /// Participations currently being trained by a worker.
    running: BTreeSet<u64>,
    /// Finished results awaiting consumption.  `Err` carries the panic
    /// message of a trainer that panicked on the worker; the driver
    /// re-raises it in [`Executor::take_or_run`] so the failure surfaces
    /// exactly like the sequential path's instead of deadlocking the loop.
    results: BTreeMap<u64, Result<LocalTrainResult, String>>,
    /// Running participations whose result must be dropped on completion.
    cancelled: BTreeSet<u64>,
    /// Queued mask-precompute plans by participation id (secure tasks).
    mask_jobs: BTreeMap<u64, MaskPlan>,
    /// FIFO order of queued mask jobs; stale ids are skipped like `order`.
    mask_order: VecDeque<u64>,
    /// Mask computations currently running on a worker.
    mask_running: BTreeSet<u64>,
    /// Finished masks awaiting consumption (`Err` = worker panic message).
    mask_results: BTreeMap<u64, Result<PrecomputedMask, String>>,
    /// Running mask jobs whose result must be dropped on completion.
    mask_cancelled: BTreeSet<u64>,
    stats: ExecutorStats,
    shutdown: bool,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Signalled when a job is queued (or shutdown begins).
    job_ready: Condvar,
    /// Signalled when a worker publishes a result.
    result_ready: Condvar,
}

impl Shared {
    /// Locks the executor state.  Poisoning is unreachable: every worker
    /// panic is caught by `catch_unwind` *before* the worker re-locks, so no
    /// thread can die while holding the mutex — a poisoned lock is a harness
    /// bug worth a loud crash, not a recoverable condition.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        // papaya-lint: allow(panic-hygiene) -- lock poisoning is unreachable (worker panics are caught before re-locking); crashing loudly beats limping on poisoned state
        self.inner.lock().unwrap()
    }
}

/// Blocks on `condvar`, with the same poisoning argument as [`Shared::lock`].
fn wait_on<'a>(condvar: &Condvar, guard: MutexGuard<'a, Inner>) -> MutexGuard<'a, Inner> {
    // papaya-lint: allow(panic-hygiene) -- lock poisoning is unreachable (worker panics are caught before re-locking); crashing loudly beats limping on poisoned state
    condvar.wait(guard).unwrap()
}

/// A fixed-size `std::thread` pool running [`TrainJob`]s off the event-loop
/// thread.  Created per scenario run; dropping it joins the workers.
pub struct Executor {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Executor {
    /// Spawns a pool with the given number of worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`; use no executor at all for the sequential
    /// path.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "an executor needs at least one worker");
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner::default()),
            job_ready: Condvar::new(),
            result_ready: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("papaya-train-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // papaya-lint: allow(panic-hygiene) -- thread spawn fails only on OS resource exhaustion at pool construction; no run state exists yet to unwind
                    .expect("spawn training worker")
            })
            .collect();
        Executor { shared, workers }
    }

    /// Builds a pool for the given knob, or `None` for the sequential path.
    pub fn from_parallelism(parallelism: Parallelism) -> Option<Arc<Executor>> {
        if parallelism.is_sequential() {
            None
        } else {
            Some(Arc::new(Executor::new(parallelism.workers())))
        }
    }

    /// Queues a speculative training job.  Ids must be unique for the
    /// lifetime of the executor (the scenario drivers' participation ids
    /// are).
    pub fn submit(&self, job: TrainJob) {
        let mut inner = self.shared.lock();
        inner.order.push_back(job.participation_id);
        inner.jobs.insert(job.participation_id, job);
        drop(inner);
        self.shared.job_ready.notify_one();
    }

    /// Returns the result for `participation_id`, in one of three ways:
    /// still queued → the driver steals the job and runs it inline; running
    /// → blocks until the worker publishes it; never submitted → runs
    /// `fallback` inline (the sequential code path).
    pub fn take_or_run(
        &self,
        participation_id: u64,
        fallback: impl FnOnce() -> LocalTrainResult,
    ) -> LocalTrainResult {
        let mut inner = self.shared.lock();
        if let Some(job) = inner.jobs.remove(&participation_id) {
            inner.stats.stolen_by_driver += 1;
            drop(inner);
            return job.run();
        }
        loop {
            if let Some(result) = inner.results.remove(&participation_id) {
                match result {
                    Ok(result) => return result,
                    Err(message) => panic!(
                        "client trainer panicked on a worker thread \
                         (participation {participation_id}): {message}"
                    ),
                }
            }
            if !inner.running.contains(&participation_id) {
                // Never submitted (or already consumed, which drivers never
                // do): train inline exactly as the sequential path would.
                drop(inner);
                return fallback();
            }
            inner = wait_on(&self.shared.result_ready, inner);
        }
    }

    /// Drops any speculative work for an aborted participation: removes a
    /// queued job or finished result, or marks a running job so its result
    /// is discarded on completion.  A no-op for ids never submitted.
    pub fn discard(&self, participation_id: u64) {
        let mut inner = self.shared.lock();
        let dropped = inner.jobs.remove(&participation_id).is_some()
            || inner.results.remove(&participation_id).is_some()
            || (inner.running.contains(&participation_id)
                && inner.cancelled.insert(participation_id));
        if dropped {
            inner.stats.discarded += 1;
        }
    }

    /// Queues a speculative mask-precompute job for a secure task's
    /// participation.  Ids share the participation-id space of
    /// [`Executor::submit`] — each participation has at most one training
    /// and one mask job.
    pub fn submit_mask(&self, participation_id: u64, plan: MaskPlan) {
        let mut inner = self.shared.lock();
        inner.mask_order.push_back(participation_id);
        inner.mask_jobs.insert(participation_id, plan);
        drop(inner);
        self.shared.job_ready.notify_one();
    }

    /// Returns the speculative mask for `participation_id` if a worker
    /// produced (or is producing) it: finished → the result; running →
    /// blocks until published; still queued → the job is *cancelled* and
    /// `None` returned, so the aggregator expands the mask inline — mask
    /// plans are pure, so both routes are bit-identical.  `None` for ids
    /// never submitted.  Re-raises a worker panic on the driver thread.
    pub fn take_mask(&self, participation_id: u64) -> Option<PrecomputedMask> {
        let mut inner = self.shared.lock();
        if inner.mask_jobs.remove(&participation_id).is_some() {
            inner.stats.masks_cancelled_unstarted += 1;
            return None;
        }
        loop {
            if let Some(result) = inner.mask_results.remove(&participation_id) {
                match result {
                    Ok(result) => return Some(result),
                    Err(message) => panic!(
                        "mask precompute panicked on a worker thread \
                         (participation {participation_id}): {message}"
                    ),
                }
            }
            if !inner.mask_running.contains(&participation_id) {
                return None;
            }
            inner = wait_on(&self.shared.result_ready, inner);
        }
    }

    /// Drops speculative mask work for an aborted participation, in the
    /// same three states as [`Executor::discard`].
    pub fn discard_mask(&self, participation_id: u64) {
        let mut inner = self.shared.lock();
        let dropped = inner.mask_jobs.remove(&participation_id).is_some()
            || inner.mask_results.remove(&participation_id).is_some()
            || (inner.mask_running.contains(&participation_id)
                && inner.mask_cancelled.insert(participation_id));
        if dropped {
            inner.stats.masks_discarded += 1;
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> ExecutorStats {
        self.shared.lock().stats
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut inner = self.shared.lock();
            inner.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The two kinds of speculative work a worker can pick up.
enum WorkerJob {
    Train(TrainJob),
    Mask(u64, MaskPlan),
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn worker_loop(shared: &Shared) {
    // Each worker owns one reusable mask-expansion buffer, so steady-state
    // mask precompute allocates once per mask instead of twice and workers
    // never contend on shared scratch.
    let mut scratch = MaskScratch::default();
    let mut inner = shared.lock();
    loop {
        // Find the next queued job, skipping ids that were stolen or
        // discarded while waiting in the order queue.  Mask jobs drain
        // first: they are orders of magnitude cheaper than training and
        // unblock the event loop's upload processing.
        let job = loop {
            if inner.shutdown {
                return;
            }
            if let Some(id) = inner.mask_order.pop_front() {
                if let Some(plan) = inner.mask_jobs.remove(&id) {
                    inner.mask_running.insert(id);
                    break WorkerJob::Mask(id, plan);
                }
                continue;
            }
            match inner.order.pop_front() {
                Some(id) => {
                    if let Some(job) = inner.jobs.remove(&id) {
                        inner.running.insert(id);
                        break WorkerJob::Train(job);
                    }
                }
                None => {
                    inner = wait_on(&shared.job_ready, inner);
                }
            }
        };
        drop(inner);

        // Catch panics so a buggy trainer or mask plan fails the run loudly
        // (the driver re-raises in `take_or_run`/`take_mask`) instead of
        // leaving the id stuck in a running set and deadlocking the loop.
        match job {
            WorkerJob::Train(job) => {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.run()))
                    .map_err(panic_message);
                inner = shared.lock();
                inner.running.remove(&job.participation_id);
                if inner.cancelled.remove(&job.participation_id) {
                    // Aborted mid-flight; the result (or panic) must not
                    // surface — the sequential path would never have run
                    // this training at all.
                } else {
                    if result.is_ok() {
                        inner.stats.completed_by_workers += 1;
                    }
                    inner.results.insert(job.participation_id, result);
                    shared.result_ready.notify_all();
                }
            }
            WorkerJob::Mask(id, plan) => {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    plan.compute(&mut scratch)
                }))
                .map_err(panic_message);
                inner = shared.lock();
                inner.mask_running.remove(&id);
                if inner.mask_cancelled.remove(&id) {
                    // Aborted mid-flight; drop the mask.
                } else {
                    if result.is_ok() {
                        inner.stats.masks_completed_by_workers += 1;
                    }
                    inner.mask_results.insert(id, result);
                    shared.result_ready.notify_all();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papaya_core::surrogate::{SurrogateConfig, SurrogateObjective};
    use papaya_data::population::{Population, PopulationConfig};

    fn trainer() -> Arc<dyn ClientTrainer> {
        let pop = Population::generate(&PopulationConfig::default().with_size(50), 3);
        Arc::new(SurrogateObjective::new(&pop, SurrogateConfig::default(), 3))
    }

    fn job(trainer: &Arc<dyn ClientTrainer>, pid: u64, client: usize) -> TrainJob {
        TrainJob {
            participation_id: pid,
            client_id: client,
            start_params: Arc::new(trainer.initial_parameters()),
            seed: 0xABC ^ pid,
            trainer: Arc::clone(trainer),
        }
    }

    #[test]
    fn pool_results_match_inline_training() {
        let trainer = trainer();
        let executor = Executor::new(3);
        for pid in 0..20u64 {
            executor.submit(job(&trainer, pid, pid as usize % 50));
        }
        for pid in 0..20u64 {
            let expected = trainer.train(
                pid as usize % 50,
                &trainer.initial_parameters(),
                0xABC ^ pid,
            );
            let got = executor.take_or_run(pid, || unreachable!("job was submitted"));
            assert_eq!(got, expected, "participation {pid}");
        }
        let stats = executor.stats();
        assert_eq!(stats.completed_by_workers + stats.stolen_by_driver, 20);
    }

    #[test]
    fn unsubmitted_id_falls_back_inline() {
        let trainer = trainer();
        let executor = Executor::new(1);
        let expected = trainer.train(7, &trainer.initial_parameters(), 42);
        let got = executor.take_or_run(99, || trainer.train(7, &trainer.initial_parameters(), 42));
        assert_eq!(got, expected);
    }

    #[test]
    fn discard_drops_queued_and_finished_work() {
        let trainer = trainer();
        let executor = Executor::new(1);
        executor.submit(job(&trainer, 1, 1));
        executor.submit(job(&trainer, 2, 2));
        executor.discard(1);
        executor.discard(1); // idempotent
        executor.discard(77); // never submitted: no-op
                              // Participation 2 is unaffected.
        let expected = trainer.train(2, &trainer.initial_parameters(), 0xABC ^ 2);
        assert_eq!(executor.take_or_run(2, || unreachable!()), expected);
        assert!(executor.stats().discarded >= 1);
    }

    #[test]
    fn worker_panic_propagates_to_the_driver() {
        let trainer = trainer();
        let executor = Executor::new(1);
        // Client 999 does not exist; the surrogate trainer panics on it.
        executor.submit(job(&trainer, 5, 999));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            executor.take_or_run(5, || unreachable!("job was submitted"))
        }));
        // Whether the worker hit the panic or the driver stole the job, the
        // failure must surface as a panic here — never as a hang.
        assert!(outcome.is_err(), "trainer panic was swallowed");
    }

    #[test]
    fn parallelism_knob_semantics() {
        assert!(Parallelism::default().is_sequential());
        assert!(Parallelism::sequential().is_sequential());
        assert_eq!(Parallelism(4).workers(), 4);
        assert!(!Parallelism(1).is_sequential());
        assert!(Parallelism::auto().workers() >= 1);
        assert!(Executor::from_parallelism(Parallelism::sequential()).is_none());
        let pool = Executor::from_parallelism(Parallelism(2)).expect("pool");
        assert_eq!(pool.threads(), 2);
    }

    #[test]
    fn drop_joins_workers_with_pending_jobs() {
        let trainer = trainer();
        let executor = Executor::new(2);
        for pid in 0..50u64 {
            executor.submit(job(&trainer, pid, pid as usize % 50));
        }
        drop(executor); // must not hang or panic
    }

    /// Real plans straight off a session-mode [`SecureAggregator`] — the
    /// only way the sim ever obtains them.
    fn mask_plans(n: usize) -> Vec<MaskPlan> {
        use papaya_core::fedbuff::FedBuffAggregator;
        use papaya_core::secure::SecureAggregator;
        use papaya_core::staleness::StalenessWeighting;
        use papaya_core::Aggregator;
        let mut agg = SecureAggregator::new(
            Box::new(FedBuffAggregator::new(
                4,
                StalenessWeighting::Constant,
                None,
            )),
            6,
            1,
            0xFEED,
        );
        (0..n)
            .map(|client| {
                agg.plan_mask_precompute(client)
                    .expect("session mode always plans")
            })
            .collect()
    }

    #[test]
    fn mask_jobs_round_trip_bit_identically() {
        let plans = mask_plans(8);
        let executor = Executor::new(2);
        for (pid, plan) in plans.iter().enumerate() {
            executor.submit_mask(pid as u64, plan.clone());
        }
        let mut scratch = MaskScratch::default();
        for (pid, plan) in plans.iter().enumerate() {
            let expected = plan.compute(&mut scratch);
            // A still-queued job is cancelled (None) and the caller computes
            // inline; either path must be bit-identical to the reference.
            let got = match executor.take_mask(pid as u64) {
                Some(pre) => pre,
                None => plan.compute(&mut scratch),
            };
            assert_eq!(got.plan_id, expected.plan_id);
            assert_eq!(got.mask, expected.mask, "participation {pid}");
        }
        let stats = executor.stats();
        assert_eq!(
            stats.masks_completed_by_workers + stats.masks_cancelled_unstarted,
            8
        );
    }

    #[test]
    fn discarded_and_unknown_mask_jobs_return_none() {
        let plans = mask_plans(2);
        let executor = Executor::new(1);
        executor.submit_mask(0, plans[0].clone());
        executor.submit_mask(1, plans[1].clone());
        executor.discard_mask(0);
        executor.discard_mask(0); // idempotent
        assert!(executor.take_mask(0).is_none(), "discarded job resurfaced");
        assert!(executor.take_mask(99).is_none(), "unknown id produced work");
        // Participation 1 is unaffected by its neighbor's discard.
        let expected = plans[1].compute(&mut MaskScratch::default());
        let got = match executor.take_mask(1) {
            Some(pre) => pre,
            None => plans[1].compute(&mut MaskScratch::default()),
        };
        assert_eq!(got.mask, expected.mask);
        assert!(executor.stats().masks_discarded >= 1);
    }

    #[test]
    fn mask_jobs_jump_the_training_queue() {
        // Uploads block on masks, not on other clients' training, so
        // workers must drain the mask queue first.  With one worker and the
        // training queue stuffed, a late-submitted mask still finishes
        // without the driver having to steal every training job.
        let trainer = trainer();
        let plans = mask_plans(1);
        let executor = Executor::new(1);
        for pid in 0..6u64 {
            executor.submit(job(&trainer, pid, pid as usize % 50));
        }
        executor.submit_mask(100, plans[0].clone());
        let expected = plans[0].compute(&mut MaskScratch::default());
        let got = match executor.take_mask(100) {
            Some(pre) => pre,
            None => plans[0].compute(&mut MaskScratch::default()),
        };
        assert_eq!(got.mask, expected.mask);
        for pid in 0..6u64 {
            let _ = executor.take_or_run(pid, || {
                trainer.train(
                    pid as usize % 50,
                    &trainer.initial_parameters(),
                    0xABC ^ pid,
                )
            });
        }
    }
}
