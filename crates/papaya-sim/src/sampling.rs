//! O(1) uniform sampling of free devices from a shared population.
//!
//! The engine previously selected clients by rejection sampling — draw a
//! random device id and retry while it is busy — which degenerates to
//! O(population) per selection once most of the population participates.
//! Multi-task sharing creates exactly that regime: several tenants drawing
//! from one population can saturate it.  [`SamplingPool`] keeps the free
//! device ids in a dense vector with an id→slot index, so acquiring a
//! uniformly random free device and releasing a busy one are both O(1)
//! (index-swap / swap-remove).

use rand::rngs::StdRng;
use rand::Rng;

/// Constant-time uniform sampler over the free subset of `0..n` device ids.
#[derive(Clone, Debug)]
pub struct SamplingPool {
    /// Dense list of free device ids.
    free: Vec<usize>,
    /// `slot[id]` is the index of `id` in `free`, or `None` while acquired.
    slot: Vec<Option<usize>>,
}

impl SamplingPool {
    /// Creates a pool over ids `0..n`, all free.
    pub fn new(n: usize) -> Self {
        SamplingPool {
            free: (0..n).collect(),
            slot: (0..n).map(Some).collect(),
        }
    }

    /// Number of ids currently free.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Total number of ids managed by the pool.
    pub fn len(&self) -> usize {
        self.slot.len()
    }

    /// Returns true when the pool manages no ids.
    pub fn is_empty(&self) -> bool {
        self.slot.is_empty()
    }

    /// Whether `id` is currently free.
    pub fn is_free(&self, id: usize) -> bool {
        self.slot.get(id).map(|s| s.is_some()).unwrap_or(false)
    }

    /// Acquires a uniformly random free id, or `None` when all are busy.
    pub fn acquire_random(&mut self, rng: &mut StdRng) -> Option<usize> {
        if self.free.is_empty() {
            return None;
        }
        let index = rng.gen_range(0..self.free.len());
        let id = self.free.swap_remove(index);
        if let Some(&moved) = self.free.get(index) {
            self.slot[moved] = Some(index);
        }
        self.slot[id] = None;
        Some(id)
    }

    /// Releases a previously acquired id back into the pool.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already free (double release).
    pub fn release(&mut self, id: usize) {
        assert!(
            self.slot[id].is_none(),
            "device {id} released while already free"
        );
        self.slot[id] = Some(self.free.len());
        self.free.push(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn acquire_removes_and_release_restores() {
        let mut pool = SamplingPool::new(10);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(pool.available(), 10);
        let a = pool.acquire_random(&mut rng).unwrap();
        assert!(!pool.is_free(a));
        assert_eq!(pool.available(), 9);
        pool.release(a);
        assert!(pool.is_free(a));
        assert_eq!(pool.available(), 10);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut pool = SamplingPool::new(3);
        let mut rng = StdRng::seed_from_u64(2);
        let mut taken = HashSet::new();
        for _ in 0..3 {
            assert!(taken.insert(pool.acquire_random(&mut rng).unwrap()));
        }
        assert_eq!(pool.acquire_random(&mut rng), None);
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn never_hands_out_a_busy_id() {
        let mut pool = SamplingPool::new(50);
        let mut rng = StdRng::seed_from_u64(3);
        let mut held: Vec<usize> = Vec::new();
        for step in 0..10_000 {
            if step % 3 == 2 && !held.is_empty() {
                let id = held.swap_remove(step % held.len());
                pool.release(id);
            } else if let Some(id) = pool.acquire_random(&mut rng) {
                assert!(!held.contains(&id), "id {id} handed out twice");
                held.push(id);
            }
            assert_eq!(pool.available() + held.len(), 50);
        }
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let mut pool = SamplingPool::new(10);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            let id = pool.acquire_random(&mut rng).unwrap();
            counts[id] += 1;
            pool.release(id);
        }
        for &c in &counts {
            assert!((1500..2500).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "already free")]
    fn double_release_panics() {
        let mut pool = SamplingPool::new(2);
        pool.release(0);
    }
}
