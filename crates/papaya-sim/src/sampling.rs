//! O(1) uniform sampling of free devices from a shared population.
//!
//! The engine previously selected clients by rejection sampling — draw a
//! random device id and retry while it is busy — which degenerates to
//! O(population) per selection once most of the population participates.
//! Multi-task sharing creates exactly that regime: several tenants drawing
//! from one population can saturate it.  [`ShardedSamplingPool`] keeps the
//! free device ids in a dense *sharded* vector with an id→slot index, so
//! acquiring a uniformly random free device and releasing a busy one are
//! both O(1) (index-swap / swap-remove) — O(draw), never O(population).
//!
//! # Sharding
//!
//! At million-client scale a single contiguous free vector is hostile to
//! the allocator: growth doubles a multi-megabyte allocation and every
//! resize copies the whole population.  The pool therefore stores the free
//! list as fixed-capacity shards (chunks of one *conceptual* flat vector):
//! growth allocates at most one `shard_capacity`-sized block, and shrink
//! returns whole shards to the allocator.  Idle bookkeeping is
//! [`ShardedSamplingPool::BYTES_PER_DEVICE`] (8) bytes per device — a `u32`
//! free-list entry plus a `u32` slot index (see `docs/SCALING.md`).
//!
//! # Determinism
//!
//! The shard layout is pure bookkeeping: a draw indexes the conceptual
//! flat vector exactly as `Vec::swap_remove` would, so for a fixed seed
//! the sequence of acquired ids is **bit-identical for every shard
//! capacity** — and identical to the historical unsharded pool.  Scenario
//! fingerprints therefore cannot move when the shard capacity is tuned
//! (see `docs/DETERMINISM.md`; pinned by this module's tests and by the
//! `shard_capacity_never_moves_fingerprints` scenario test).

use rand::rngs::StdRng;
use rand::Rng;

/// Sentinel in the id→slot index marking an id as acquired (not free).
const NOT_FREE: u32 = u32::MAX;

/// Shard capacity used by [`ShardedSamplingPool::new`]: 64Ki ids (256 KiB
/// per shard) keeps allocator traffic coarse at million-client scale while
/// costing nothing at 20k.
pub const DEFAULT_SHARD_CAPACITY: usize = 1 << 16;

/// Constant-time uniform sampler over the free subset of `0..n` device ids,
/// sharded so no single allocation scales with the population.
///
/// The capacity knob is surfaced as
/// [`RunLimits::sampling_shard_capacity`](crate::scenario::RunLimits); it
/// affects memory/allocator behaviour only, never the drawn sequence.
#[derive(Clone, Debug)]
pub struct ShardedSamplingPool {
    /// Ids per shard; every shard except the last holds exactly this many.
    shard_capacity: usize,
    /// The conceptual flat free vector, split into fixed-capacity chunks.
    shards: Vec<Vec<u32>>,
    /// Total number of free ids across all shards.
    free_len: usize,
    /// `slot[id]` is the id's index in the conceptual flat free vector, or
    /// [`NOT_FREE`] while acquired.
    slot: Vec<u32>,
}

/// The historical name; the sharded pool is a drop-in replacement with the
/// same drawn sequence.
pub type SamplingPool = ShardedSamplingPool;

impl ShardedSamplingPool {
    /// Idle-state bytes per managed device: one `u32` free-list entry plus
    /// one `u32` slot index.  `docs/SCALING.md` budgets against this and a
    /// test pins it.
    pub const BYTES_PER_DEVICE: usize = 2 * std::mem::size_of::<u32>();

    /// Creates a pool over ids `0..n`, all free, with
    /// [`DEFAULT_SHARD_CAPACITY`].
    pub fn new(n: usize) -> Self {
        Self::with_shard_capacity(n, DEFAULT_SHARD_CAPACITY)
    }

    /// Creates a pool over ids `0..n`, all free, with `shard_capacity` ids
    /// per shard.
    ///
    /// # Panics
    ///
    /// Panics when `shard_capacity` is zero or `n` exceeds the `u32` id
    /// space.
    pub fn with_shard_capacity(n: usize, shard_capacity: usize) -> Self {
        assert!(shard_capacity > 0, "shard capacity must be positive");
        assert!(
            n < u32::MAX as usize,
            "population of {n} exceeds the u32 id space"
        );
        let mut shards = Vec::with_capacity(n.div_ceil(shard_capacity));
        let mut next = 0u32;
        let mut remaining = n;
        while remaining > 0 {
            let take = remaining.min(shard_capacity);
            shards.push((next..next + take as u32).collect());
            next += take as u32;
            remaining -= take;
        }
        ShardedSamplingPool {
            shard_capacity,
            shards,
            free_len: n,
            slot: (0..n as u32).collect(),
        }
    }

    /// Number of ids currently free.
    pub fn available(&self) -> usize {
        self.free_len
    }

    /// Total number of ids managed by the pool.
    pub fn len(&self) -> usize {
        self.slot.len()
    }

    /// Returns true when the pool manages no ids.
    pub fn is_empty(&self) -> bool {
        self.slot.is_empty()
    }

    /// Ids per shard.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Number of currently allocated shards (`ceil(available / capacity)`).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether `id` is currently free.
    pub fn is_free(&self, id: usize) -> bool {
        self.slot.get(id).map(|&s| s != NOT_FREE).unwrap_or(false)
    }

    /// Appends `id` at the tail of the conceptual flat free vector.
    fn push_free(&mut self, id: u32) {
        if self.free_len.is_multiple_of(self.shard_capacity) {
            self.shards.push(Vec::with_capacity(self.shard_capacity));
        }
        let last = self.shards.len() - 1;
        self.shards[last].push(id);
        self.free_len += 1;
    }

    /// Pops the tail of the conceptual flat free vector, freeing emptied
    /// shards.
    fn pop_free(&mut self) -> Option<u32> {
        let id = self.shards.last_mut()?.pop()?;
        self.free_len -= 1;
        if self.shards.last().is_some_and(|s| s.is_empty()) {
            self.shards.pop();
        }
        Some(id)
    }

    /// Acquires a uniformly random free id, or `None` when all are busy.
    ///
    /// Exactly `Vec::swap_remove` on the conceptual flat free vector: the
    /// drawn sequence for a fixed RNG stream is independent of the shard
    /// capacity.
    pub fn acquire_random(&mut self, rng: &mut StdRng) -> Option<usize> {
        if self.free_len == 0 {
            return None;
        }
        let index = rng.gen_range(0..self.free_len);
        let tail = self.pop_free()?;
        // After the pop, `free_len` is the conceptual vector's new length:
        // an interior draw is replaced by the old tail, a tail draw is the
        // popped element itself.
        let id = if index < self.free_len {
            let shard = index / self.shard_capacity;
            let offset = index % self.shard_capacity;
            let id = self.shards[shard][offset];
            self.shards[shard][offset] = tail;
            self.slot[tail as usize] = index as u32;
            id
        } else {
            tail
        };
        self.slot[id as usize] = NOT_FREE;
        Some(id as usize)
    }

    /// Releases a previously acquired id back into the pool.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already free (double release).
    pub fn release(&mut self, id: usize) {
        assert!(
            self.slot[id] == NOT_FREE,
            "device {id} released while already free"
        );
        self.slot[id] = self.free_len as u32;
        self.push_free(id as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn acquire_removes_and_release_restores() {
        let mut pool = SamplingPool::new(10);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(pool.available(), 10);
        let a = pool.acquire_random(&mut rng).unwrap();
        assert!(!pool.is_free(a));
        assert_eq!(pool.available(), 9);
        pool.release(a);
        assert!(pool.is_free(a));
        assert_eq!(pool.available(), 10);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut pool = SamplingPool::new(3);
        let mut rng = StdRng::seed_from_u64(2);
        let mut taken = HashSet::new();
        for _ in 0..3 {
            assert!(taken.insert(pool.acquire_random(&mut rng).unwrap()));
        }
        assert_eq!(pool.acquire_random(&mut rng), None);
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn never_hands_out_a_busy_id() {
        let mut pool = ShardedSamplingPool::with_shard_capacity(50, 8);
        let mut rng = StdRng::seed_from_u64(3);
        let mut held: Vec<usize> = Vec::new();
        for step in 0..10_000 {
            if step % 3 == 2 && !held.is_empty() {
                let id = held.swap_remove(step % held.len());
                pool.release(id);
            } else if let Some(id) = pool.acquire_random(&mut rng) {
                assert!(!held.contains(&id), "id {id} handed out twice");
                held.push(id);
            }
            assert_eq!(pool.available() + held.len(), 50);
        }
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let mut pool = ShardedSamplingPool::with_shard_capacity(10, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            let id = pool.acquire_random(&mut rng).unwrap();
            counts[id] += 1;
            pool.release(id);
        }
        for &c in &counts {
            assert!((1500..2500).contains(&c), "counts {counts:?}");
        }
    }

    /// Replays a fixed mixed acquire/release script and records every draw.
    fn draw_script(n: usize, capacity: usize, seed: u64) -> Vec<Option<usize>> {
        let mut pool = ShardedSamplingPool::with_shard_capacity(n, capacity);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut held: Vec<usize> = Vec::new();
        let mut drawn = Vec::new();
        for step in 0..5_000 {
            if step % 3 == 2 && !held.is_empty() {
                let id = held.swap_remove(step % held.len());
                pool.release(id);
            } else {
                let got = pool.acquire_random(&mut rng);
                if let Some(id) = got {
                    held.push(id);
                }
                drawn.push(got);
            }
        }
        drawn
    }

    #[test]
    fn draws_are_bit_identical_across_shard_capacities() {
        // A capacity >= n is a single shard: the historical flat pool.
        let flat = draw_script(100, 100, 7);
        for capacity in [1, 3, 7, 64, 1024] {
            assert_eq!(draw_script(100, capacity, 7), flat, "capacity {capacity}");
        }
    }

    #[test]
    fn shards_grow_and_shrink_with_the_free_set() {
        let mut pool = ShardedSamplingPool::with_shard_capacity(10, 4);
        assert_eq!(pool.shard_count(), 3);
        let mut rng = StdRng::seed_from_u64(5);
        let mut held = Vec::new();
        while let Some(id) = pool.acquire_random(&mut rng) {
            held.push(id);
        }
        assert_eq!(pool.shard_count(), 0);
        for id in held {
            pool.release(id);
        }
        assert_eq!(pool.shard_count(), 3);
        assert_eq!(pool.available(), 10);
    }

    #[test]
    fn byte_budget_matches_the_stored_state() {
        // The documented per-device idle cost is exactly what the pool
        // stores: one u32 in a shard plus one u32 slot entry.
        assert_eq!(
            ShardedSamplingPool::BYTES_PER_DEVICE,
            std::mem::size_of::<u32>() * 2
        );
    }

    #[test]
    #[should_panic(expected = "already free")]
    fn double_release_panics() {
        let mut pool = SamplingPool::new(2);
        pool.release(0);
    }
}
