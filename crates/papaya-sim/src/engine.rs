//! The single-task front-end, kept as a thin shim over
//! [`crate::scenario::Scenario`].
//!
//! One [`Simulation`] runs one federated task (synchronous, asynchronous, or
//! timed-hybrid) over a synthetic device population with a pluggable
//! [`ClientTrainer`], and produces the traces every figure of the paper is
//! built from: loss over virtual time, utilization, communication trips,
//! server-update frequency, participation distributions, and staleness.
//!
//! New code should compose a [`Scenario`] directly — it subsumes this
//! front-end and the multi-tenant one behind a single builder.  The types
//! here survive so existing call sites keep working: [`SimulationConfig`]
//! forwards its knobs into the shared [`RunLimits`]/[`EvalPolicy`] structs,
//! and [`Simulation::run`] delegates to the scenario's direct path,
//! translating the unified [`crate::scenario::Report`] back into a
//! [`SimulationResult`].

use crate::executor::Parallelism;
use crate::metrics::{MetricsCollector, MetricsSummary};
pub use crate::scenario::StopReason;
use crate::scenario::{EvalPolicy, RunLimits, Scenario};
pub use crate::task_runtime::ServerOptimizerKind;
use papaya_core::client::ClientTrainer;
use papaya_core::config::TaskConfig;
use papaya_data::population::Population;
use papaya_nn::params::ParamVec;
use std::sync::Arc;

/// Configuration of one single-task simulation run.
#[derive(Clone, Debug)]
pub struct SimulationConfig {
    /// The federated task being trained.
    pub task: TaskConfig,
    /// Stop conditions (virtual time, client updates, target loss).
    pub limits: RunLimits,
    /// Evaluation cadence and sample size.
    pub eval: EvalPolicy,
    /// Delay between a client being selected and starting to train.
    pub selection_latency_s: f64,
    /// Interval of the utilization sampler.
    pub utilization_sample_interval_s: f64,
    /// Server optimizer applied to aggregated deltas.
    pub server_optimizer: ServerOptimizerKind,
    /// RNG seed controlling selection, dropouts, and local-training noise.
    pub seed: u64,
}

impl SimulationConfig {
    /// Creates a configuration with sensible defaults for the given task.
    pub fn new(task: TaskConfig) -> Self {
        SimulationConfig {
            task,
            limits: RunLimits::default(),
            eval: EvalPolicy::default(),
            selection_latency_s: 2.0,
            utilization_sample_interval_s: 60.0,
            server_optimizer: ServerOptimizerKind::FedAvg,
            seed: 0,
        }
    }

    /// Sets the target loss stopping criterion.
    pub fn with_target_loss(mut self, target: f64) -> Self {
        self.limits = self.limits.with_target_loss(target);
        self
    }

    /// Sets the virtual-time budget in hours.
    pub fn with_max_virtual_time_hours(mut self, hours: f64) -> Self {
        self.limits = self.limits.with_max_virtual_time_hours(hours);
        self
    }

    /// Sets the client-update budget.
    pub fn with_max_client_updates(mut self, updates: u64) -> Self {
        self.limits = self.limits.with_max_client_updates(updates);
        self
    }

    /// Sets the client-training parallelism (results are bit-identical at
    /// every setting; see [`crate::executor`]).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.limits = self.limits.with_parallelism(parallelism);
        self
    }

    /// Sets the evaluation interval in virtual seconds.
    pub fn with_eval_interval_s(mut self, interval: f64) -> Self {
        self.eval = self.eval.with_interval_s(interval);
        self
    }

    /// Sets the evaluation sample size.
    pub fn with_eval_sample_size(mut self, n: usize) -> Self {
        self.eval = self.eval.with_sample_size(n);
        self
    }

    /// Sets the server optimizer.
    pub fn with_server_optimizer(mut self, kind: ServerOptimizerKind) -> Self {
        self.server_optimizer = kind;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The outcome of a simulation run.
#[derive(Clone, Debug)]
pub struct SimulationResult {
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Virtual hours at which the target loss was reached, if it was.
    pub hours_to_target: Option<f64>,
    /// Last evaluated population loss.
    pub final_loss: f64,
    /// Final server model version.
    pub final_version: u64,
    /// Total virtual hours simulated.
    pub virtual_hours: f64,
    /// Server model updates performed.
    pub server_updates: u64,
    /// Client updates received at the server.
    pub comm_trips: u64,
    /// Final model parameters.
    pub final_params: ParamVec,
    /// Raw metric traces.
    pub metrics: MetricsCollector,
    /// Summary statistics.
    pub summary: MetricsSummary,
}

/// A single-task simulation (thin shim over [`Scenario`]).
pub struct Simulation {
    scenario: Scenario,
}

impl Simulation {
    /// Creates a simulation over the given population and client trainer.
    ///
    /// # Panics
    ///
    /// Panics if the population is empty.
    pub fn new(
        config: SimulationConfig,
        population: Population,
        trainer: Arc<dyn ClientTrainer>,
    ) -> Self {
        let scenario = Scenario::builder()
            .population(population)
            .task_with_trainer(config.task, trainer)
            .limits(config.limits)
            .eval(config.eval)
            .selection_latency_s(config.selection_latency_s)
            .utilization_sample_interval_s(config.utilization_sample_interval_s)
            .server_optimizer(config.server_optimizer)
            .seed(config.seed)
            .build();
        Simulation { scenario }
    }

    /// Runs the simulation to completion and returns the result.
    pub fn run(&self) -> SimulationResult {
        let report = self.scenario.run();
        let stop_reason = report.stop_reason;
        let virtual_hours = report.virtual_hours;
        let task = report.into_single();
        SimulationResult {
            stop_reason,
            hours_to_target: task.hours_to_target,
            final_loss: task.final_loss,
            final_version: task.final_version,
            virtual_hours,
            server_updates: task.metrics.server_updates,
            comm_trips: task.metrics.comm_trips,
            final_params: task.final_params,
            summary: task.summary,
            metrics: task.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papaya_core::surrogate::{SurrogateConfig, SurrogateObjective};
    use papaya_data::population::PopulationConfig;

    fn population(n: usize) -> Population {
        Population::generate(&PopulationConfig::default().with_size(n), 17)
    }

    fn trainer(pop: &Population) -> Arc<SurrogateObjective> {
        Arc::new(SurrogateObjective::new(pop, SurrogateConfig::default(), 17))
    }

    fn run(task: TaskConfig, hours: f64, pop_size: usize) -> SimulationResult {
        let pop = population(pop_size);
        let t = trainer(&pop);
        let config = SimulationConfig::new(task)
            .with_max_virtual_time_hours(hours)
            .with_eval_interval_s(600.0)
            .with_seed(3);
        Simulation::new(config, pop, t).run()
    }

    #[test]
    fn async_simulation_trains_and_reduces_loss() {
        let result = run(TaskConfig::async_task("t", 64, 16), 3.0, 1000);
        assert!(result.server_updates > 10, "{}", result.server_updates);
        assert_eq!(result.final_version, result.server_updates);
        let first_loss = result.metrics.loss_curve.first().unwrap().1;
        assert!(
            result.final_loss < 0.5 * first_loss,
            "loss {} -> {}",
            first_loss,
            result.final_loss
        );
    }

    #[test]
    fn sync_simulation_trains_and_counts_rounds() {
        let result = run(TaskConfig::sync_task("t", 65, 0.3), 6.0, 1000);
        assert!(result.server_updates > 2);
        assert_eq!(
            result.metrics.round_durations_s.len() as u64,
            result.server_updates
        );
        assert!(result.metrics.mean_round_duration_s() > 0.0);
        // Over-selection aborts some still-running clients each round.
        assert!(result.metrics.aborted_by_round_end > 0);
    }

    #[test]
    fn async_has_more_server_updates_than_sync_in_same_time() {
        let async_result = run(TaskConfig::async_task("a", 64, 16), 2.0, 800);
        let sync_result = run(TaskConfig::sync_task("s", 64, 0.3), 2.0, 800);
        assert!(
            async_result.server_updates > 2 * sync_result.server_updates,
            "async {} vs sync {}",
            async_result.server_updates,
            sync_result.server_updates
        );
    }

    #[test]
    fn async_utilization_is_higher_than_sync() {
        let async_result = run(TaskConfig::async_task("a", 50, 10), 2.0, 800);
        let sync_result = run(TaskConfig::sync_task("s", 50, 0.0), 2.0, 800);
        let mean_active = |r: &SimulationResult| {
            let t = &r.metrics.utilization_trace;
            t.iter().map(|&(_, a)| a as f64).sum::<f64>() / t.len() as f64
        };
        assert!(mean_active(&async_result) > mean_active(&sync_result));
        // AsyncFL stays close to the concurrency target.
        assert!(mean_active(&async_result) > 40.0);
    }

    #[test]
    fn concurrency_bound_is_respected() {
        let result = run(TaskConfig::async_task("t", 32, 8), 1.0, 500);
        assert!(result
            .metrics
            .utilization_trace
            .iter()
            .all(|&(_, active)| active <= 32));
    }

    #[test]
    fn target_loss_stops_early() {
        let pop = population(800);
        let t = trainer(&pop);
        let initial_loss = {
            let all: Vec<usize> = (0..pop.len()).collect();
            t.evaluate(&t.initial_parameters(), &all)
        };
        let config = SimulationConfig::new(TaskConfig::async_task("t", 64, 16))
            .with_max_virtual_time_hours(20.0)
            .with_target_loss(initial_loss * 0.3)
            .with_eval_interval_s(300.0)
            .with_seed(5);
        let result = Simulation::new(config, pop, t).run();
        assert_eq!(result.stop_reason, StopReason::TargetLossReached);
        assert!(result.hours_to_target.is_some());
        assert!(result.virtual_hours < 20.0);
    }

    #[test]
    fn max_client_updates_stops_run() {
        let pop = population(500);
        let t = trainer(&pop);
        let config = SimulationConfig::new(TaskConfig::async_task("t", 32, 8))
            .with_max_virtual_time_hours(50.0)
            .with_max_client_updates(200)
            .with_seed(1);
        let result = Simulation::new(config, pop, t).run();
        assert_eq!(result.stop_reason, StopReason::MaxClientUpdates);
        assert_eq!(result.comm_trips, 200);
    }

    #[test]
    fn simulation_is_deterministic_for_same_seed() {
        let a = run(TaskConfig::async_task("t", 32, 8), 1.0, 400);
        let b = run(TaskConfig::async_task("t", 32, 8), 1.0, 400);
        assert_eq!(a.server_updates, b.server_updates);
        assert_eq!(a.comm_trips, b.comm_trips);
        assert_eq!(a.final_loss, b.final_loss);
    }

    #[test]
    fn dropouts_are_recorded_and_replaced() {
        let pop = Population::generate(
            &PopulationConfig::default().with_size(600).with_dropout(0.3),
            9,
        );
        let t = trainer(&pop);
        let config = SimulationConfig::new(TaskConfig::async_task("t", 32, 8))
            .with_max_virtual_time_hours(1.0)
            .with_seed(9);
        let result = Simulation::new(config, pop, t).run();
        assert!(result.metrics.failed_participations > 0);
        // Training still progresses despite failures.
        assert!(result.server_updates > 0);
    }

    #[test]
    fn tight_staleness_bound_rejects_updates() {
        let pop = population(800);
        let t = trainer(&pop);
        let task = TaskConfig::async_task("t", 256, 4).with_max_staleness(1);
        let config = SimulationConfig::new(task)
            .with_max_virtual_time_hours(1.0)
            .with_seed(2);
        let result = Simulation::new(config, pop, t).run();
        // With 256 concurrent clients and K = 4, staleness frequently
        // exceeds 1, so some updates must be rejected or clients aborted.
        assert!(result.metrics.rejected_stale_updates + result.metrics.failed_participations > 0);
    }

    #[test]
    fn sync_without_over_selection_has_no_aborted_clients_at_round_end() {
        let result = run(TaskConfig::sync_task("t", 40, 0.0), 4.0, 800);
        // Without over-selection the round waits for every member (failures
        // are replaced), so nobody is aborted when the round closes.
        assert_eq!(result.metrics.aborted_by_round_end, 0);
        assert!(result.metrics.discarded_updates == 0);
    }

    #[test]
    fn selection_stays_fast_when_population_is_saturated() {
        // Concurrency equal to the population size: every selection after
        // warm-up happens from a nearly-empty free pool, the regime the old
        // rejection-sampling loop handled in O(population) per pick.
        let result = run(TaskConfig::async_task("t", 120, 8), 1.0, 120);
        assert!(result.server_updates > 0);
        assert!(result
            .metrics
            .utilization_trace
            .iter()
            .all(|&(_, active)| active <= 120));
    }

    #[test]
    fn parallelism_knob_preserves_results_through_the_shim() {
        let pop = population(400);
        let t = trainer(&pop);
        let base = SimulationConfig::new(TaskConfig::async_task("t", 32, 8))
            .with_max_virtual_time_hours(0.5)
            .with_seed(3);
        let sequential = Simulation::new(base.clone(), pop.clone(), t.clone()).run();
        let parallel = Simulation::new(base.with_parallelism(Parallelism(2)), pop, t).run();
        assert_eq!(sequential.comm_trips, parallel.comm_trips);
        assert_eq!(sequential.server_updates, parallel.server_updates);
        assert_eq!(sequential.final_loss, parallel.final_loss);
        assert_eq!(sequential.final_params, parallel.final_params);
    }

    #[test]
    fn timed_hybrid_runs_through_the_shim() {
        // The third aggregation strategy works through the legacy front-end
        // too: an unreachable goal means every release is deadline-driven.
        let result = run(
            TaskConfig::timed_hybrid_task("h", 24, 10_000, 300.0),
            1.0,
            400,
        );
        assert!(result.server_updates > 0);
        assert_eq!(result.metrics.round_durations_s.len(), 0);
    }
}
